// Table 3 — ECL-MIS iteration counts across multiple runs.
//
// The paper measures each input several times to expose the internal
// (thread-timing) nondeterminism of the lock-free asynchronous kernel. Here
// "timing" is the simulator's shuffled scheduler: each run uses a different
// seed, so iteration counts vary run to run while the MIS itself remains
// valid — and rerunning this bench reproduces the identical table, because
// the nondeterminism is seed-controlled.
#include "algos/mis/ecl_mis.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 3: ECL-MIS iteration counts across runs");

  const int runs = std::max(ctx.runs, 3);
  Table t("Table 3 — ECL-MIS iterations across " + std::to_string(runs) +
          " shuffled-schedule runs");
  std::vector<std::string> header = {"Graph"};
  for (int r = 1; r <= runs; ++r) {
    header.push_back("Run " + std::to_string(r) + " Avg");
    header.push_back("Run " + std::to_string(r) + " Max");
  }
  t.set_header(std::move(header));

  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(ctx.scale);
    std::vector<std::string> row = {spec.name};
    for (int r = 0; r < runs; ++r) {
      auto dev = harness::make_device(0x7ab1e3 + static_cast<u64>(r),
                                      sim::ScheduleMode::kShuffled);
      const auto res = algos::mis::run(dev, g);
      ECLP_CHECK_MSG(algos::mis::verify(g, res.status),
                     "invalid MIS on " << spec.name << " run " << r);
      row.push_back(fmt::fixed(res.metrics.iterations.mean, 2));
      row.push_back(fmt::fixed(res.metrics.iterations.max, 0));
    }
    t.add_row(std::move(row));
  }
  harness::emit(ctx, "table3_mis_runs", t);
  std::printf(
      "note: every run produced a valid MIS; the counts differ run to run\n"
      "(internal nondeterminism) while trends per input stay stable, as the\n"
      "paper observes in §6.1.1.\n");
  return 0;
}
