// Ablation — how sensitive the MIS metrics are to thread scheduling.
//
// Extends the paper's Table 3 from three runs to a seed sweep and reports
// the distribution (min / median / max, relative spread) of the
// per-thread-iteration statistics, plus the MIS size, per input. This
// quantifies the §6.1.1 claim that "iteration counts are a little different
// for every run, but the general trends remain the same".
#include "algos/mis/ecl_mis.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"
#include "support/stats.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("seeds", "number of scheduler seeds to sweep", "10");
  const auto ctx = harness::parse(
      argc, argv, "Ablation: MIS metric sensitivity to scheduling", cli);
  const int seeds = static_cast<int>(ctx.cli.get_int("seeds"));

  Table t("Ablation — ECL-MIS across " + std::to_string(seeds) +
          " scheduler seeds");
  t.set_header({"Graph", "iterAvg med", "iterAvg spread", "iterMax med",
                "iterMax spread", "|MIS| med", "|MIS| spread"});

  // A representative subset spanning the degree regimes.
  for (const char* name : {"2d-2e20.sym", "as-skitter", "europe_osm",
                           "kron_g500-logn21", "internet"}) {
    const auto g = gen::find_input(name).make(ctx.scale);
    std::vector<double> avgs, maxes, sizes;
    for (int s = 0; s < seeds; ++s) {
      auto dev = harness::make_device(1000 + static_cast<u64>(s),
                                      sim::ScheduleMode::kShuffled);
      const auto res = algos::mis::run(dev, g);
      ECLP_CHECK_MSG(algos::mis::verify(g, res.status),
                     "invalid MIS on " << name << " seed " << s);
      avgs.push_back(res.metrics.iterations.mean);
      maxes.push_back(res.metrics.iterations.max);
      sizes.push_back(static_cast<double>(res.set_size));
    }
    const auto spread = [](std::vector<double>& xs) {
      const auto s = stats::summarize(std::span<const double>(xs));
      return s.mean > 0 ? 100.0 * (s.max - s.min) / s.mean : 0.0;
    };
    t.add_row({name, fmt::fixed(stats::median(avgs), 2),
               fmt::fixed(spread(avgs), 1) + "%",
               fmt::fixed(stats::median(maxes), 0),
               fmt::fixed(spread(maxes), 1) + "%",
               fmt::fixed(stats::median(sizes), 0),
               fmt::fixed(spread(sizes), 2) + "%"});
  }
  harness::emit(ctx, "ablation_seeds", t);
  std::printf(
      "expected: iteration metrics vary by a few percent across seeds (the\n"
      "internal nondeterminism of Table 3); the MIS size varies far less.\n");
  return 0;
}
