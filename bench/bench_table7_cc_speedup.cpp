// Table 7 — ECL-CC speedup from the optimized init kernel.
//
// The optimization (§6.2.2): adjacency lists are sorted, so the first
// neighbor is the smallest — init never needs to scan further. Speedup =
// original modeled cycles / optimized modeled cycles. Expected shape: gains
// concentrate on the inputs whose Table 4 traversed/initialized ratio is
// large and whose init share of runtime is nontrivial; others are ~1.00.
#include "algos/cc/ecl_cc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 7: ECL-CC speedup from the optimized init kernel");

  Table t("Table 7 — ECL-CC overall speedup (optimized init)");
  t.set_header({"Graph", "Speedup", "init share", "traversed/initialized"});
  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(ctx.scale);
    auto d1 = harness::make_device();
    auto d2 = harness::make_device();
    algos::cc::Options orig, fast;
    fast.optimized_init = true;
    const auto a = algos::cc::run(d1, g, orig);
    const auto b = algos::cc::run(d2, g, fast);
    ECLP_CHECK_MSG(algos::cc::verify(g, b.labels),
                   "wrong CC labels on " << spec.name);
    const double speedup = static_cast<double>(a.modeled_cycles) /
                           static_cast<double>(b.modeled_cycles);
    const double init_share = static_cast<double>(a.init_cycles) /
                              static_cast<double>(a.modeled_cycles);
    const double ratio =
        static_cast<double>(a.profile.init_neighbors_traversed) /
        static_cast<double>(a.profile.vertices_initialized);
    t.add_row({spec.name, fmt::fixed(speedup, 2),
               fmt::fixed(100.0 * init_share, 1) + "%",
               fmt::fixed(ratio, 2)});
  }
  harness::emit(ctx, "table7_cc_speedup", t);
  std::printf(
      "the paper lists only the inputs with noticeable gains (1.03-1.16);\n"
      "columns 3-4 explain who gains: a high traversed/initialized ratio\n"
      "combined with a nontrivial init share of total runtime.\n");
  return 0;
}
