// Table 4 — profiling of the ECL-CC init kernel.
//
// Two counters per input: vertices initialized (== |V|, shown as the
// reference) and adjacency entries traversed while searching for the first
// smaller neighbor. A small gap means most vertices find a smaller neighbor
// immediately; a large gap (citation graphs) means many vertices scan their
// whole — sorted! — list in vain, the waste §6.2.2 eliminates.
#include "algos/cc/ecl_cc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"
#include "profile/histogram.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx =
      harness::parse(argc, argv, "Table 4: ECL-CC init-kernel counters");

  Table t("Table 4 — ECL-CC init kernel profile");
  t.set_header({"Graph", "Vertices initialized", "Vertices traversed",
                "ratio", "bimodal %"});
  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(ctx.scale);
    auto dev = harness::make_device();
    algos::cc::Options opt;
    opt.record_per_vertex_traversals = true;
    const auto res = algos::cc::run(dev, g, opt);
    ECLP_CHECK_MSG(algos::cc::verify(g, res.labels),
                   "wrong CC labels on " << spec.name);
    const double init =
        static_cast<double>(res.profile.vertices_initialized);
    const double trav =
        static_cast<double>(res.profile.init_neighbors_traversed);
    // Paper §6.1.3: "the number of vertices traversed is either 1 or equal
    // to the vertex's degree". Verify directly on the per-vertex data.
    u64 bimodal = 0, with_edges = 0;
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      if (g.degree(v) == 0) continue;
      ++with_edges;
      const u64 tr = res.init_traversal_per_vertex[v];
      bimodal += (tr == 1 || tr == g.degree(v));
    }
    t.add_row({spec.name, fmt::sci(init, 2), fmt::sci(trav, 2),
               fmt::fixed(trav / init, 2),
               fmt::fixed(with_edges ? 100.0 * static_cast<double>(bimodal) /
                                           static_cast<double>(with_edges)
                                     : 100.0,
                          1)});
  }
  harness::emit(ctx, "table4_cc_init", t);

  // The distribution behind one traversal-heavy input, as a histogram.
  {
    const auto g = gen::find_input("cit-Patents").make(ctx.scale);
    auto dev = harness::make_device();
    algos::cc::Options opt;
    opt.record_per_vertex_traversals = true;
    const auto res = algos::cc::run(dev, g, opt);
    profile::Log2Histogram h;
    h.add_all(res.init_traversal_per_vertex);
    std::printf("%s\n",
                h.to_table("per-vertex init traversals on cit-Patents")
                    .to_text()
                    .c_str());
  }
  std::printf(
      "the 'bimodal %%' column verifies the paper's §6.1.3 per-vertex claim:\n"
      "a vertex either stops at its first (smallest) neighbor or scans its\n"
      "whole sorted list in vain.\n");
  return 0;
}
