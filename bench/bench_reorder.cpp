// Reordering sweep — how the vertex numbering drives modeled LLC locality
// across all five ECL codes.
//
// The paper attributes much of the codes' memory behavior to how well
// contiguous vertex ids cover tightly-connected regions (§6 locality
// observations). This bench makes that quantitative: for every ordering in
// the shared suite (graph::reorder_suite() — the same list the numbering
// ablation uses) it reruns each algorithm with the modeled LLC enabled and
// reports the static locality metrics (locality_score, block_affinity)
// next to the dynamic ones (modeled cycles, LLC hit rate, miss count).
// The committed BENCH_reorder.json pins the headline: degree-aware orders
// (hub, gorder) cut modeled misses relative to a random numbering.
//
// The LLC defaults to "on" here even without --llc: a locality sweep with
// the cache model off would report identical global-access costs for every
// ordering. --llc=L:W:S still overrides the shape.
#include <map>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "sim/cache.hpp"

using namespace eclp;

namespace {

struct Cell {
  u64 cycles = 0;
  u64 hits = 0;
  u64 misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Reordering sweep: modeled LLC locality of the five ECL codes under "
      "the shared ordering suite");

  const sim::CacheConfig cache =
      ctx.llc.enabled ? ctx.llc : sim::parse_cache_config("on");

  // One representative input per algorithm — the same pairs the profiling
  // smoke tests pin, so bench and CI observe the same workloads.
  const std::vector<std::pair<std::string, std::string>> workloads = {
      {"cc", "rmat16.sym"},  {"gc", "rmat16.sym"}, {"mis", "internet"},
      {"mst", "USA-road-d.NY"}, {"scc", "cold-flow"}};

  const auto run_algo = [](const std::string& algo, sim::Device& dev,
                           const graph::Csr& g) -> u64 {
    if (algo == "cc") {
      const auto r = algos::cc::run(dev, g);
      ECLP_CHECK(algos::cc::verify(g, r.labels));
      return r.modeled_cycles;
    }
    if (algo == "gc") {
      const auto r = algos::gc::run(dev, g);
      ECLP_CHECK(algos::gc::verify(g, r.colors));
      return r.modeled_cycles;
    }
    if (algo == "mis") {
      const auto r = algos::mis::run(dev, g);
      ECLP_CHECK(algos::mis::verify(g, r.status));
      return r.modeled_cycles;
    }
    if (algo == "mst") {
      const auto r = algos::mst::run(dev, g);
      ECLP_CHECK(algos::mst::verify(g, r));
      return r.modeled_cycles;
    }
    const auto r = algos::scc::run(dev, g);
    ECLP_CHECK(algos::scc::verify(g, r.scc_id));
    return r.modeled_cycles;
  };

  Table t("modeled LLC (" + sim::cache_config_label(cache) +
          ") under the shared reorder suite");
  t.set_header({"algo", "graph", "order", "locality", "affinity@256",
                "modeled cycles", "llc hit rate", "llc misses"});
  // Per algo: the cells the headline compares (random baseline vs. the
  // degree-aware orders).
  std::map<std::string, std::map<graph::ReorderSpec::Kind, Cell>> cells;

  for (const auto& [algo, input] : workloads) {
    graph::Csr base = gen::find_input(input).make(ctx.scale);
    // Weights before reordering, so every ordering of one input solves an
    // isomorphic weighted problem (with_random_weights hashes endpoint ids).
    if (algo == "mst" && !base.weighted()) {
      base = graph::with_random_weights(base, 42);
    }
    for (const graph::ReorderSpec& spec : graph::reorder_suite()) {
      const graph::Csr g = graph::apply_reorder(base, spec);
      sim::CostModel cost;
      cost.cache = cache;
      sim::Device dev(cost);
      const u64 cycles = run_algo(algo, dev, g);
      const Cell cell{cycles, dev.llc_hits(), dev.llc_misses()};
      cells[algo][spec.kind] = cell;
      const u64 total = cell.hits + cell.misses;
      t.add_row({algo, input, spec.canonical(),
                 fmt::fixed(graph::locality_score(g), 4),
                 fmt::fixed(graph::block_affinity(g, 256), 4),
                 fmt::grouped(cycles),
                 fmt::fixed(total == 0
                                ? 100.0
                                : 100.0 * static_cast<double>(cell.hits) /
                                      static_cast<double>(total),
                            1) +
                     "%",
                 fmt::grouped(cell.misses)});
    }
  }
  harness::emit(ctx, "reorder_sweep", t);

  // The headline the committed artifact pins: per algorithm, how much of
  // the random-order miss traffic and modeled time a degree-aware order
  // (hub or gorder, whichever misses less) wins back.
  Table h("degree-aware ordering vs. random baseline");
  h.set_header({"algo", "best order", "miss reduction", "cycle reduction"});
  double best_reduction = 0.0;
  for (const auto& [algo, input] : workloads) {
    const auto& by_kind = cells[algo];
    const Cell& random = by_kind.at(graph::ReorderSpec::Kind::kRandom);
    const Cell& hub = by_kind.at(graph::ReorderSpec::Kind::kHub);
    const Cell& gorder = by_kind.at(graph::ReorderSpec::Kind::kGorder);
    const bool hub_wins = hub.misses <= gorder.misses;
    const Cell& best = hub_wins ? hub : gorder;
    const auto reduction = [](u64 base, u64 improved) {
      if (base == 0) return 0.0;
      return 100.0 *
             (static_cast<double>(base) - static_cast<double>(improved)) /
             static_cast<double>(base);
    };
    const double miss_red = reduction(random.misses, best.misses);
    const double cycle_red = reduction(random.cycles, best.cycles);
    best_reduction = std::max({best_reduction, miss_red, cycle_red});
    h.add_row({algo, hub_wins ? "hub" : "gorder",
               fmt::fixed(miss_red, 1) + "%", fmt::fixed(cycle_red, 1) + "%"});
  }
  harness::emit(ctx, "reorder_headline", h);
  std::printf(
      "expected: hub/gorder pack hot vertices into shared cache lines, so\n"
      "their miss counts sit well below the random baseline (best win here:\n"
      "%.1f%%); the static locality/affinity columns move the same way,\n"
      "which is what makes them usable as cheap reordering predictors.\n",
      best_reduction);
  return 0;
}
