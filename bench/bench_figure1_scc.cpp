// Figure 1 — ECL-SCC code progression on the star mesh.
//
// The paper plots, for selected (m, n) iterations, the number of signature
// updates performed by each thread block. This bench reproduces the four
// panels — (m=1, n=1), (m=1, late n), (m=2, n=1), (m=2, second-to-last n) —
// as summary rows plus a per-block CSV (figure1_scc_blocks.csv) from which
// the full figure can be plotted. Expected shape (paper §6.1.2): many
// updates in every block at (1,1); far fewer updates and many inactive
// blocks late in a propagation; only a handful of active blocks near the
// end of m=2.
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"
#include "support/plot.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "mesh input to profile", "star");
  const auto ctx = harness::parse(
      argc, argv, "Figure 1: ECL-SCC per-block signature updates", cli);

  const auto& spec = gen::find_input(ctx.cli.get("input"));
  const auto g = spec.make(ctx.scale);
  auto dev = harness::make_device();
  algos::scc::Options opt;
  opt.record_series = true;
  const auto res = algos::scc::run(dev, g, opt);
  ECLP_CHECK_MSG(algos::scc::verify(g, res.scc_id), "wrong SCC partition");

  std::printf("input %s: %u vertices, %u arcs, %zu SCCs, m = %u outer "
              "iterations; n per m:",
              spec.name.c_str(), g.num_vertices(), g.num_edges(),
              res.num_sccs, res.outer_iterations);
  for (const u32 n : res.inner_per_outer) std::printf(" %u", n);
  std::printf("\n\n");

  // The paper's four panels, generalized to whatever m/n we observed.
  Table t("Figure 1 — per-block update summaries at selected (m, n)");
  t.set_header({"m", "n", "active blocks", "total blocks", "total updates",
                "avg updates", "max updates"});
  const auto add_panel = [&](u32 m, u64 n) {
    const auto* snap = res.series.find(m, n);
    if (snap == nullptr) return;
    usize active = 0;
    u64 total = 0, mx = 0;
    for (const u64 u : snap->per_block) {
      active += (u > 0);
      total += u;
      mx = std::max(mx, u);
    }
    t.add_row({std::to_string(m), std::to_string(n), std::to_string(active),
               std::to_string(snap->per_block.size()), fmt::grouped(total),
               fmt::fixed(static_cast<double>(total) /
                              static_cast<double>(snap->per_block.size()),
                          2),
               fmt::grouped(mx)});
  };
  const u64 n1_max = res.series.max_inner(1);
  add_panel(1, 1);
  add_panel(1, std::max<u64>(1, (n1_max * 27) / 43));  // the paper's 27th of 43
  if (res.outer_iterations >= 2) {
    const u64 n2_max = res.series.max_inner(2);
    add_panel(2, 1);
    add_panel(2, n2_max > 1 ? n2_max - 1 : 1);  // second-to-last
  }
  harness::emit(ctx, "figure1_scc_panels", t);

  // ASCII rendering of the paper's four panels (block id vs. updates).
  const auto panel_plot = [&](u32 m, u64 n) {
    const auto* snap = res.series.find(m, n);
    if (snap == nullptr) return;
    plot::Scatter sc;
    sc.title = "m=" + std::to_string(m) + ", n=" + std::to_string(n) +
               "  (x: block id, y: signature updates)";
    for (usize b = 0; b < snap->per_block.size(); ++b) {
      sc.xs.push_back(static_cast<double>(b));
      sc.ys.push_back(static_cast<double>(snap->per_block[b]));
    }
    std::printf("%s\n", sc.render().c_str());
  };
  panel_plot(1, 1);
  panel_plot(1, std::max<u64>(1, (n1_max * 27) / 43));
  if (res.outer_iterations >= 2) {
    const u64 n2 = res.series.max_inner(2);
    panel_plot(2, 1);
    panel_plot(2, n2 > 1 ? n2 - 1 : 1);
  }

  // Full series for plotting.
  harness::emit_raw(ctx, "figure1_scc_blocks.csv", res.series.to_csv());
  std::printf("full per-block series written to figure1_scc_blocks.csv "
              "(%zu snapshots)\n", res.series.size());
  return 0;
}
