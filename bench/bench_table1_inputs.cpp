// Table 1 — input graphs.
//
// Regenerates the paper's input table for the synthetic stand-ins: name,
// measured edge/vertex counts, type, average and maximum degree, alongside
// the values Table 1 reports for the original files so the degree regimes
// can be compared directly.
#include "gen/suite.hpp"
#include "graph/csr.hpp"
#include "harness/harness.hpp"

using namespace eclp;

namespace {

void add_rows(Table& t, const std::vector<gen::InputSpec>& specs,
              gen::Scale scale) {
  for (const auto& spec : specs) {
    const auto g = spec.make(scale);
    const auto s = graph::degree_stats(g);
    t.add_row({spec.name, fmt::grouped(g.num_edges()),
               fmt::grouped(g.num_vertices()), spec.paper.type,
               fmt::fixed(s.avg, 2), fmt::grouped(s.max),
               fmt::grouped(spec.paper.edges), fmt::grouped(spec.paper.vertices),
               fmt::fixed(spec.paper.d_avg, 2),
               fmt::grouped(static_cast<u64>(spec.paper.d_max))});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 1: input graphs (measured vs. paper)");

  Table t("Table 1 — input graphs (ours, scaled | paper original)");
  t.set_header({"Graph", "Edges", "Vertices", "Type", "d-avg", "d-max",
                "paper E", "paper V", "paper d-avg", "paper d-max"});
  add_rows(t, gen::general_inputs(), ctx.scale);
  add_rows(t, gen::mesh_inputs(), ctx.scale);
  harness::emit(ctx, "table1_inputs", t);
  return 0;
}
