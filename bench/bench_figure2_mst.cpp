// Figure 2 — ECL-MST per-iteration metrics on amazon0601.
//
// For every iteration of the main kernel (Regular iterations over light
// edges, then Filter iterations over the heavy remainder), three
// percentages: threads that had work, threads whose atomics conflicted, and
// useless atomics (ineffective atomicMin / failed atomicCAS). The paper's
// error bars are 95% confidence intervals around the median of several
// runs; we reproduce them by rerunning under distinct scheduler seeds.
#include "algos/mst/ecl_mst.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "support/plot.hpp"
#include "support/stats.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "input graph to profile", "amazon0601");
  const auto ctx = harness::parse(
      argc, argv, "Figure 2: ECL-MST per-iteration profile", cli);

  const auto& spec = gen::find_input(ctx.cli.get("input"));
  const auto g =
      graph::with_random_weights(spec.make(ctx.scale), /*seed=*/42);

  // Collect per-iteration metrics across runs (distinct seeds).
  std::vector<std::vector<algos::mst::IterationMetrics>> all_runs;
  for (int r = 0; r < std::max(3, ctx.runs); ++r) {
    auto dev = harness::make_device(static_cast<u64>(r),
                                    r == 0 ? sim::ScheduleMode::kDeterministic
                                           : sim::ScheduleMode::kShuffled);
    algos::mst::Options opt;
    opt.record_iteration_metrics = true;
    auto res = algos::mst::run(dev, g, opt);
    ECLP_CHECK_MSG(algos::mst::verify(g, res), "wrong MST");
    all_runs.push_back(std::move(res.iterations));
  }

  // Median (and 95% CI) of each metric per iteration index/kind.
  const auto& shape = all_runs.front();
  Table t("Figure 2 — ECL-MST metrics per iteration on " + spec.name +
          " (median of runs, [95% CI])");
  t.set_header({"Iteration", "% threads w/ work", "% conflicting",
                "% useless atomics"});
  for (usize i = 0; i < shape.size(); ++i) {
    std::vector<double> work, conf, useless;
    for (const auto& run : all_runs) {
      if (i >= run.size() || run[i].kind != shape[i].kind) continue;
      work.push_back(run[i].pct_with_work());
      conf.push_back(run[i].pct_conflicting());
      useless.push_back(run[i].pct_useless_atomics());
    }
    if (work.empty()) continue;
    const auto cell = [](std::vector<double>& xs) {
      const double med = stats::median(xs);
      const auto ci = stats::median_ci95(xs);
      return fmt::fixed(med, 1) + " [" + fmt::fixed(ci.lo, 1) + "," +
             fmt::fixed(ci.hi, 1) + "]";
    };
    t.add_row({shape[i].kind + " " + std::to_string(shape[i].index),
               cell(work), cell(conf), cell(useless)});
  }
  harness::emit(ctx, "figure2_mst", t);

  // ASCII rendering of the figure's grouped bars (medians).
  plot::BarChart chart;
  chart.title = "ECL-MST per-iteration metrics on " + spec.name + " (%)";
  chart.series = {"threads w/ work", "conflicting", "useless atomics"};
  for (usize i = 0; i < shape.size(); ++i) {
    std::vector<double> work, conf, useless;
    for (const auto& run : all_runs) {
      if (i >= run.size() || run[i].kind != shape[i].kind) continue;
      work.push_back(run[i].pct_with_work());
      conf.push_back(run[i].pct_conflicting());
      useless.push_back(run[i].pct_useless_atomics());
    }
    if (work.empty()) continue;
    chart.row_labels.push_back(shape[i].kind + " " +
                               std::to_string(shape[i].index));
    chart.rows.push_back({stats::median(work), stats::median(conf),
                          stats::median(useless)});
  }
  std::printf("%s\n", chart.render().c_str());

  std::printf(
      "expected shape (paper §6.1.4): high %%-with-work only in the first\n"
      "iteration of each kind; conflicts decrease with iteration count;\n"
      "useless atomics increase with iteration count.\n");
  return 0;
}
