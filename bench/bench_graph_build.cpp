// Ingest-pipeline benchmark: serial vs. parallel CSR assembly, chunked
// text parsing, and the content-addressed graph cache (docs/INGEST.md).
//
// Four tables:
//   1. build_serial_vs_parallel — Builder::build() on the largest suite
//      inputs' edge lists, serial vs. the three-phase parallel pipeline,
//      with a byte-identity check between the two outputs;
//   2. build_worker_attribution — per-worker busy time / task counts from
//      the ingest pool while the parallel build runs (on a single-core
//      host, wall-clock speedup is unavailable, so this is the evidence
//      that the pipeline actually fans out);
//   3. parse_serial_vs_parallel — chunked Matrix Market / edge-list /
//      DIMACS parsing at 1 vs. N ingest threads;
//   4. cache_cold_vs_warm — cold generate+build vs. warm cache hit for the
//      same inputs, with the speedup factor (target: >= 5x).
#include <filesystem>
#include <sstream>
#include <vector>

#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/dimacs.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

/// Inputs spanning the suite's structural classes; big enough that the
/// build cost dominates the measurement.
const char* const kInputs[] = {"europe_osm", "r4-2e23.sym",
                               "kron_g500-logn21", "soc-LiveJournal1",
                               "2d-2e20.sym"};

std::string bytes_of(const graph::Csr& g) {
  std::stringstream ss;
  graph::write_binary(g, ss);
  return std::move(ss).str();
}

/// Median-of-runs wall time for fn(), in milliseconds.
template <typename Fn>
double median_ms(int runs, Fn&& fn) {
  std::vector<double> ms;
  for (int r = 0; r < runs; ++r) {
    Timer t;
    fn();
    ms.push_back(t.milliseconds());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Extract the raw edge list (and vertex count) a suite input's CSR
/// represents, so the bench can re-run just the Builder on it.
std::pair<vidx, std::vector<graph::Edge>> edges_of(const graph::Csr& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    for (eidx e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      // Undirected CSRs store both arcs; keep u <= v so the rebuild (which
      // mirrors) reproduces the same graph.
      const vidx u = g.edge_target(e);
      if (!g.directed() && u < v) continue;
      edges.push_back({v, u, g.weighted() ? g.edge_weight(e) : 0});
    }
  }
  return {g.num_vertices(), std::move(edges)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Ingest pipeline: parallel CSR build, chunked parsing, graph cache");
  const u32 threads = build_threads();

  // --- 1+2: serial vs parallel build, with worker attribution --------------
  {
    // On a single-core host build_threads() is 1 and the pool would be
    // skipped entirely; force a multi-worker pool so the parallel pipeline
    // (not the serial fallback) is what gets measured. Wall-clock speedup
    // on such a host comes from the pipeline's counting sort beating the
    // global stable sort, not from concurrency — the attribution table is
    // the evidence the work actually fans out across workers.
    const u32 fan_threads = threads > 1 ? threads : 7;
    Table t("CSR assembly: serial vs. parallel pipeline (" +
            std::to_string(fan_threads) + " ingest threads)");
    t.set_header({"Graph", "Edges", "serial ms", "parallel ms", "speedup",
                  "identical"});
    Table w("Parallel build: per-worker attribution (" +
            std::to_string(fan_threads) + " ingest threads)");
    w.set_header({"Graph", "workers used", "tasks", "busy ms total",
                  "max worker share"});
    for (const char* name : kInputs) {
      const auto g = gen::find_input(name).make(ctx.scale);
      const auto [n, edges] = edges_of(g);
      graph::BuildOptions opt;
      opt.directed = g.directed();
      opt.weighted = g.weighted();

      set_build_threads(1);  // pipeline still runs, but inline
      graph::set_parallel_build_min_edges(edges.size() + 1);  // force serial
      graph::Csr serial_g;
      const double serial_ms = median_ms(
          ctx.runs, [&] { serial_g = graph::from_edges(n, edges, opt); });

      graph::set_parallel_build_min_edges(1);
      set_build_threads(fan_threads);
      Pool* pool = build_pool();
      ECLP_CHECK(pool != nullptr);
      pool->reset_worker_samples();
      pool->set_sampling(true);
      graph::Csr parallel_g;
      const double parallel_ms = median_ms(
          ctx.runs, [&] { parallel_g = graph::from_edges(n, edges, opt); });
      pool->set_sampling(false);

      const bool identical = bytes_of(serial_g) == bytes_of(parallel_g);
      t.add_row({name, std::to_string(edges.size()),
                 fmt::fixed(serial_ms, 2), fmt::fixed(parallel_ms, 2),
                 fmt::fixed(serial_ms / parallel_ms, 2),
                 identical ? "yes" : "NO"});
      ECLP_CHECK_MSG(identical, "parallel build diverged from serial");

      u64 tasks = 0, busy_ns = 0, max_busy = 0;
      u32 used = 0;
      for (const auto& s : pool->worker_samples()) {
        if (s.tasks == 0 && s.busy_ns == 0) continue;
        ++used;
        tasks += s.tasks;
        busy_ns += s.busy_ns;
        max_busy = std::max(max_busy, s.busy_ns);
      }
      w.add_row({name, std::to_string(used), std::to_string(tasks),
                 fmt::fixed(static_cast<double>(busy_ns) / 1e6, 2),
                 busy_ns == 0
                     ? "-"
                     : fmt::fixed(100.0 * static_cast<double>(max_busy) /
                                      static_cast<double>(busy_ns),
                                  1) + "%"});
      set_build_threads(threads);
    }
    harness::emit(ctx, "build_serial_vs_parallel", t);
    harness::emit(ctx, "build_worker_attribution", w);
  }

  // --- 3: chunked parsing at 1 vs N threads ---------------------------------
  {
    const u32 fan_threads = threads > 1 ? threads : 7;
    Table t("Text parsing: 1 thread vs. " + std::to_string(fan_threads) +
            " threads");
    t.set_header({"Format", "bytes", "1-thread ms", "N-thread ms", "speedup"});
    const auto g = gen::find_input("soc-LiveJournal1").make(ctx.scale);
    const auto weighted = graph::with_random_weights(g, 7);
    struct Fmt {
      const char* name;
      std::string text;
      std::function<graph::Csr()> parse;
    };
    std::vector<Fmt> fmts;
    {
      std::stringstream ss;
      graph::write_matrix_market(g, ss);
      std::string text = ss.str();
      fmts.push_back({".mtx", text, [text] {
                        return graph::parse_matrix_market(text);
                      }});
    }
    {
      std::stringstream ss;
      graph::write_edge_list(g, ss);
      std::string text = ss.str();
      const vidx n = g.num_vertices();
      fmts.push_back({".el", text, [text, n] {
                        return graph::parse_edge_list(text, false, n);
                      }});
    }
    {
      std::stringstream ss;
      graph::write_dimacs_sp(weighted, ss);
      std::string text = ss.str();
      fmts.push_back({".gr", text, [text] {
                        return graph::parse_dimacs_sp(text, true);
                      }});
    }
    graph::set_parallel_build_min_edges(0);  // restore default threshold
    for (const auto& f : fmts) {
      set_build_threads(1);
      const double one_ms = median_ms(ctx.runs, [&] { f.parse(); });
      set_build_threads(fan_threads);
      const double n_ms = median_ms(ctx.runs, [&] { f.parse(); });
      t.add_row({f.name, std::to_string(f.text.size()), fmt::fixed(one_ms, 2),
                 fmt::fixed(n_ms, 2), fmt::fixed(one_ms / n_ms, 2)});
    }
    set_build_threads(threads);
    harness::emit(ctx, "parse_serial_vs_parallel", t);
  }

  // --- 4: cache cold vs warm -----------------------------------------------
  {
    Table t("Graph cache: cold generate+build vs. warm hit");
    t.set_header({"Graph", "cold ms", "warm ms", "speedup", "hits"});
    const auto dir = std::filesystem::path(ctx.out_dir) / "graph_cache";
    std::filesystem::remove_all(dir);
    graph::set_cache_dir(dir.string());
    for (const char* name : kInputs) {
      const auto& spec = gen::find_input(name);
      graph::reset_cache_stats();
      Timer cold_t;
      spec.make(ctx.scale);
      const double cold_ms = cold_t.milliseconds();
      const double warm_ms =
          median_ms(ctx.runs, [&] { spec.make(ctx.scale); });
      t.add_row({name, fmt::fixed(cold_ms, 2), fmt::fixed(warm_ms, 2),
                 fmt::fixed(cold_ms / warm_ms, 1),
                 std::to_string(graph::cache_stats().hits)});
    }
    graph::set_cache_dir("");
    harness::emit(ctx, "cache_cold_vs_warm", t);
  }

  return 0;
}
