// Ingest-pipeline benchmark: serial vs. parallel CSR assembly, chunked
// text parsing, and the content-addressed graph cache (docs/INGEST.md).
//
// Six tables:
//   1. build_serial_vs_parallel — Builder::build() on the largest suite
//      inputs' edge lists, serial vs. the three-phase parallel pipeline,
//      with a byte-identity check between the two outputs;
//   2. build_worker_attribution — per-worker busy time / task counts from
//      the ingest pool while the parallel build runs (on a single-core
//      host, wall-clock speedup is unavailable, so this is the evidence
//      that the pipeline actually fans out);
//   3. parse_serial_vs_parallel — chunked Matrix Market / edge-list /
//      DIMACS parsing at 1 vs. N ingest threads;
//   4. cache_cold_vs_warm — cold generate+build vs. warm cache hit for the
//      same inputs, with the speedup factor (target: >= 5x);
//   5. build_peak_rss — materialized (edge list + Builder) vs. streamed
//      (build_from_chunks, no edge list) peak RSS for the chunked
//      generator streams; above tiny scale these rows are the scale=huge
//      suite parameterizations (~10^8 arcs) and the streamed peak must
//      stay under 2x the final CSR bytes;
//   6. gen_throughput_scaling — streamed generation+build throughput
//      (million edges per second) across ingest thread counts.
#include <filesystem>
#include <sstream>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "gen/stream.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/dimacs.hpp"
#include "graph/io.hpp"
#include "graph/stream_build.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "support/parallel_for.hpp"
#include "support/rss.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

/// Inputs spanning the suite's structural classes; big enough that the
/// build cost dominates the measurement.
const char* const kInputs[] = {"europe_osm", "r4-2e23.sym",
                               "kron_g500-logn21", "soc-LiveJournal1",
                               "2d-2e20.sym"};

std::string bytes_of(const graph::Csr& g) {
  std::stringstream ss;
  graph::write_binary(g, ss);
  return std::move(ss).str();
}

/// Median-of-runs wall time for fn(), in milliseconds.
template <typename Fn>
double median_ms(int runs, Fn&& fn) {
  std::vector<double> ms;
  for (int r = 0; r < runs; ++r) {
    Timer t;
    fn();
    ms.push_back(t.milliseconds());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Extract the raw edge list (and vertex count) a suite input's CSR
/// represents, so the bench can re-run just the Builder on it.
std::pair<vidx, std::vector<graph::Edge>> edges_of(const graph::Csr& g) {
  std::vector<graph::Edge> edges;
  edges.reserve(g.num_edges());
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    for (eidx e = g.edge_begin(v); e < g.edge_end(v); ++e) {
      // Undirected CSRs store both arcs; keep u <= v so the rebuild (which
      // mirrors) reproduces the same graph.
      const vidx u = g.edge_target(e);
      if (!g.directed() && u < v) continue;
      edges.push_back({v, u, g.weighted() ? g.edge_weight(e) : 0});
    }
  }
  return {g.num_vertices(), std::move(edges)};
}

/// Bytes of the finished CSR arrays (offsets + targets + weights).
u64 csr_bytes(const graph::Csr& g) {
  u64 b = (static_cast<u64>(g.num_vertices()) + 1 + g.num_edges()) * 4;
  if (g.weighted()) b += static_cast<u64>(g.num_edges()) * 4;
  return b;
}

struct PeakSample {
  graph::Csr g;
  double ms = 0;
  u64 peak_delta = 0;  ///< peak RSS above the pre-call RSS; 0 = unknown
};

/// Run fn() with the RSS watermark reset around it (support/rss.hpp).
/// malloc_trim first, so pages freed by a previous arm are returned to
/// the kernel instead of silently absorbing this arm's allocations.
template <typename Fn>
PeakSample measure_peak(Fn&& fn) {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  const bool windowed = reset_peak_rss();
  const u64 before = current_rss_bytes();
  PeakSample s;
  Timer t;
  s.g = fn();
  s.ms = t.milliseconds();
  const u64 peak = peak_rss_bytes();
  if (windowed && peak > before) s.peak_delta = peak - before;
  return s;
}

/// One build_peak_rss row: both assembly paths over the same chunk
/// source (type-erased; the source is tiny, copying it is free).
struct RssRow {
  std::string name;
  u64 emitted;  ///< canonical-sequence edge count (pre-mirror/dedupe)
  std::function<graph::Csr()> materialized;
  std::function<graph::Csr()> streamed;
};

template <typename Source>
RssRow rss_row(std::string name, Source source) {
  return {std::move(name), source.estimated_edges(),
          [source] { return graph::build_materialized(source); },
          [source] { return graph::build_from_chunks(source); }};
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Ingest pipeline: parallel CSR build, chunked parsing, graph cache");
  const u32 threads = build_threads();

  // --- 1+2: serial vs parallel build, with worker attribution --------------
  {
    // On a single-core host build_threads() is 1 and the pool would be
    // skipped entirely; force a multi-worker pool so the parallel pipeline
    // (not the serial fallback) is what gets measured. Wall-clock speedup
    // on such a host comes from the pipeline's counting sort beating the
    // global stable sort, not from concurrency — the attribution table is
    // the evidence the work actually fans out across workers.
    const u32 fan_threads = threads > 1 ? threads : 7;
    Table t("CSR assembly: serial vs. parallel pipeline (" +
            std::to_string(fan_threads) + " ingest threads)");
    t.set_header({"Graph", "Edges", "serial ms", "parallel ms", "speedup",
                  "identical"});
    Table w("Parallel build: per-worker attribution (" +
            std::to_string(fan_threads) + " ingest threads)");
    w.set_header({"Graph", "workers used", "tasks", "busy ms total",
                  "max worker share"});
    for (const char* name : kInputs) {
      const auto g = gen::find_input(name).make(ctx.scale);
      const auto [n, edges] = edges_of(g);
      graph::BuildOptions opt;
      opt.directed = g.directed();
      opt.weighted = g.weighted();

      set_build_threads(1);  // pipeline still runs, but inline
      graph::set_parallel_build_min_edges(edges.size() + 1);  // force serial
      graph::Csr serial_g;
      const double serial_ms = median_ms(
          ctx.runs, [&] { serial_g = graph::from_edges(n, edges, opt); });

      graph::set_parallel_build_min_edges(1);
      set_build_threads(fan_threads);
      Pool* pool = build_pool();
      ECLP_CHECK(pool != nullptr);
      pool->reset_worker_samples();
      pool->set_sampling(true);
      graph::Csr parallel_g;
      const double parallel_ms = median_ms(
          ctx.runs, [&] { parallel_g = graph::from_edges(n, edges, opt); });
      pool->set_sampling(false);

      const bool identical = bytes_of(serial_g) == bytes_of(parallel_g);
      t.add_row({name, std::to_string(edges.size()),
                 fmt::fixed(serial_ms, 2), fmt::fixed(parallel_ms, 2),
                 fmt::fixed(serial_ms / parallel_ms, 2),
                 identical ? "yes" : "NO"});
      ECLP_CHECK_MSG(identical, "parallel build diverged from serial");

      u64 tasks = 0, busy_ns = 0, max_busy = 0;
      u32 used = 0;
      for (const auto& s : pool->worker_samples()) {
        if (s.tasks == 0 && s.busy_ns == 0) continue;
        ++used;
        tasks += s.tasks;
        busy_ns += s.busy_ns;
        max_busy = std::max(max_busy, s.busy_ns);
      }
      w.add_row({name, std::to_string(used), std::to_string(tasks),
                 fmt::fixed(static_cast<double>(busy_ns) / 1e6, 2),
                 busy_ns == 0
                     ? "-"
                     : fmt::fixed(100.0 * static_cast<double>(max_busy) /
                                      static_cast<double>(busy_ns),
                                  1) + "%"});
      set_build_threads(threads);
    }
    harness::emit(ctx, "build_serial_vs_parallel", t);
    harness::emit(ctx, "build_worker_attribution", w);
  }

  // --- 3: chunked parsing at 1 vs N threads ---------------------------------
  {
    const u32 fan_threads = threads > 1 ? threads : 7;
    Table t("Text parsing: 1 thread vs. " + std::to_string(fan_threads) +
            " threads");
    t.set_header({"Format", "bytes", "1-thread ms", "N-thread ms", "speedup"});
    const auto g = gen::find_input("soc-LiveJournal1").make(ctx.scale);
    const auto weighted = graph::with_random_weights(g, 7);
    struct Fmt {
      const char* name;
      std::string text;
      std::function<graph::Csr()> parse;
    };
    std::vector<Fmt> fmts;
    {
      std::stringstream ss;
      graph::write_matrix_market(g, ss);
      std::string text = ss.str();
      fmts.push_back({".mtx", text, [text] {
                        return graph::parse_matrix_market(text);
                      }});
    }
    {
      std::stringstream ss;
      graph::write_edge_list(g, ss);
      std::string text = ss.str();
      const vidx n = g.num_vertices();
      fmts.push_back({".el", text, [text, n] {
                        return graph::parse_edge_list(text, false, n);
                      }});
    }
    {
      std::stringstream ss;
      graph::write_dimacs_sp(weighted, ss);
      std::string text = ss.str();
      fmts.push_back({".gr", text, [text] {
                        return graph::parse_dimacs_sp(text, true);
                      }});
    }
    graph::set_parallel_build_min_edges(0);  // restore default threshold
    for (const auto& f : fmts) {
      set_build_threads(1);
      const double one_ms = median_ms(ctx.runs, [&] { f.parse(); });
      set_build_threads(fan_threads);
      const double n_ms = median_ms(ctx.runs, [&] { f.parse(); });
      t.add_row({f.name, std::to_string(f.text.size()), fmt::fixed(one_ms, 2),
                 fmt::fixed(n_ms, 2), fmt::fixed(one_ms / n_ms, 2)});
    }
    set_build_threads(threads);
    harness::emit(ctx, "parse_serial_vs_parallel", t);
  }

  // --- 4: cache cold vs warm -----------------------------------------------
  {
    Table t("Graph cache: cold generate+build vs. warm hit");
    t.set_header({"Graph", "cold ms", "warm ms", "speedup", "hits"});
    const auto dir = std::filesystem::path(ctx.out_dir) / "graph_cache";
    std::filesystem::remove_all(dir);
    graph::set_cache_dir(dir.string());
    for (const char* name : kInputs) {
      const auto& spec = gen::find_input(name);
      graph::reset_cache_stats();
      Timer cold_t;
      spec.make(ctx.scale);
      const double cold_ms = cold_t.milliseconds();
      const double warm_ms =
          median_ms(ctx.runs, [&] { spec.make(ctx.scale); });
      t.add_row({name, fmt::fixed(cold_ms, 2), fmt::fixed(warm_ms, 2),
                 fmt::fixed(cold_ms / warm_ms, 1),
                 std::to_string(graph::cache_stats().hits)});
    }
    graph::set_cache_dir("");
    harness::emit(ctx, "cache_cold_vs_warm", t);
  }

  // --- 5: peak RSS, materialized vs streamed --------------------------------
  {
    const bool huge = ctx.scale != gen::Scale::kTiny;
    // Above tiny, measure the actual scale=huge suite parameterizations
    // (~10^8 arcs); under bench-smoke keep the rows small and fast.
    std::vector<RssRow> rows;
    if (huge) {
      const vidx un = vidx{1} << 24;
      rows.push_back(rss_row(
          "r4-2e23.sym (huge)",
          gen::UniformRandomStream(un, static_cast<u64>(un) * 4, 1)));
      rows.push_back(rss_row(
          "rmat22.sym (huge)",
          gen::RmatStream(22, u64{8} << 22, 0.45, 0.22, 0.22, 2)));
      rows.push_back(rss_row(
          "kron_g500-logn21 (huge)",
          gen::RmatStream(21, u64{22} << 21, 0.57, 0.19, 0.19, 3)));
      rows.push_back(rss_row(
          "as-skitter (huge)",
          gen::PreferentialAttachmentStream(vidx{1} << 21, 7, 4)));
    } else {
      rows.push_back(rss_row(
          "uniform (tiny)", gen::UniformRandomStream(1 << 14, 1 << 16, 1)));
      rows.push_back(rss_row(
          "rmat (tiny)",
          gen::RmatStream(14, 1 << 16, 0.45, 0.22, 0.22, 2)));
      rows.push_back(rss_row(
          "pa (tiny)",
          gen::PreferentialAttachmentStream(1 << 14, 7, 4)));
    }
    const u32 fan_threads = threads > 1 ? threads : 7;
    set_build_threads(fan_threads);
    Table t("Peak build memory: materialized edge list vs. chunked stream (" +
            std::to_string(fan_threads) + " ingest threads)");
    t.set_header({"Graph", "emitted", "arcs", "csr MiB", "mat peak MiB",
                  "mat ms", "stream peak MiB", "stream ms", "stream peak/csr",
                  "identical"});
    for (const auto& row : rows) {
      // Peak RSS is a property of one execution, not a timing median —
      // single run per arm (the huge arms are also far too big to repeat).
      const auto mat = measure_peak(row.materialized);
      const auto stream = measure_peak(row.streamed);
      const bool identical = bytes_of(mat.g) == bytes_of(stream.g);
      const double csr_mib = static_cast<double>(csr_bytes(stream.g)) /
                             (1024.0 * 1024.0);
      const double mat_mib =
          static_cast<double>(mat.peak_delta) / (1024.0 * 1024.0);
      const double stream_mib =
          static_cast<double>(stream.peak_delta) / (1024.0 * 1024.0);
      t.add_row({row.name, std::to_string(row.emitted),
                 std::to_string(stream.g.num_edges()), fmt::fixed(csr_mib, 1),
                 mat.peak_delta == 0 ? "-" : fmt::fixed(mat_mib, 1),
                 fmt::fixed(mat.ms, 0),
                 stream.peak_delta == 0 ? "-" : fmt::fixed(stream_mib, 1),
                 fmt::fixed(stream.ms, 0),
                 stream.peak_delta == 0 ? "-"
                                        : fmt::fixed(stream_mib / csr_mib, 2),
                 identical ? "yes" : "NO"});
      ECLP_CHECK_MSG(identical, "streamed build diverged from materialized");
    }
    set_build_threads(threads);
    harness::emit(ctx, "build_peak_rss", t);
  }

  // --- 6: streamed generation throughput across thread counts ---------------
  {
    const bool huge = ctx.scale != gen::Scale::kTiny;
    const vidx un = huge ? (vidx{1} << 24) : (vidx{1} << 14);
    const gen::UniformRandomStream source(un, static_cast<u64>(un) * 4, 1);
    Table t(std::string("Streamed generation throughput: r4-2e23.sym (") +
            (huge ? "huge" : "tiny") + "), chunked two-pass build");
    t.set_header({"threads", "gen chunks", "build ms", "Medges/s"});
    for (const u32 n_threads : {1u, 2u, 4u, 7u}) {
      set_build_threads(n_threads);
      Timer t_build;
      const auto g = graph::build_from_chunks(source);
      const double ms = t_build.milliseconds();
      // Throughput counts canonical-sequence edges generated (each edge is
      // emitted twice — histogram and scatter pass — but lands once).
      const double medges =
          static_cast<double>(source.estimated_edges()) / 1e6;
      t.add_row({std::to_string(n_threads),
                 std::to_string(source.num_chunks()), fmt::fixed(ms, 0),
                 fmt::fixed(medges / (ms / 1000.0), 2)});
      ECLP_CHECK(g.num_edges() > 0);
    }
    set_build_threads(threads);
    harness::emit(ctx, "gen_throughput_scaling", t);
  }

  return 0;
}
