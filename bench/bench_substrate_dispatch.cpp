// Microbench — what the zero-erasure dispatch path is worth.
//
// The launch entry points of sim/device.hpp are templates: the kernel body
// is invoked directly and its cost charges accumulate in a ThreadCtx-local
// tally flushed once per invocation. This bench quantifies both halves of
// that design on a tight grid-stride kernel by running the same body four
// ways:
//
//   dispatch = template   the body is a raw lambda (the normal API use);
//   dispatch = erased     the body is wrapped in std::function before the
//                         launch, reintroducing one indirect call + erased
//                         body per simulated thread — the pre-refactor
//                         dispatch cost, measured on today's substrate;
//   charging = batched    the body charges through ThreadCtx (local tally,
//                         one flush per thread);
//   charging = per-op     the body additionally performs one shared-state
//                         update per memory op against an external
//                         per-thread work table — the pre-refactor charge()
//                         pattern (indexed read-modify-write per op).
//
// Reported as ns per simulated thread (median of --runs), with speedups
// relative to the erased/per-op combination, i.e. the old substrate. Run
//
//   bench_substrate_dispatch --json BENCH_substrate_dispatch.json
//
// to record the perf-trajectory artifact the repo tracks across PRs.
//
// A second table measures the operator substrate (sim/operators.hpp): the
// same bodies run hand-rolled vs. through ops::compute / ops::advance. The
// operators are templates forwarding straight into launch(), so their
// wall-clock overhead must stay within 5% of the hand-rolled loops — and
// their modeled cycles identical (checked here).
#include <algorithm>
#include <functional>
#include <vector>

#include "algos/common.hpp"
#include "graph/builder.hpp"
#include "harness/harness.hpp"
#include "sim/operators.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

constexpr u32 kBlocks = 64;
constexpr u32 kThreadsPerBlock = 256;
constexpr u32 kElemsPerThread = 8;

/// Elements each simulated thread strides over; the values only exist so
/// the reads cannot be optimized away.
std::vector<u32> make_data(u32 total_threads) {
  std::vector<u32> data(static_cast<usize>(total_threads) * kElemsPerThread);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u32>(i * 2654435761u);
  return data;
}

/// The grid-stride kernel body, parameterized on the charging style.
/// `per_op_work` is null for batched charging; non-null makes every charge
/// also hit the external per-thread table, one read-modify-write per op.
template <bool kPerOp>
struct Kernel {
  const std::vector<u32>* data;
  std::vector<u64>* per_op_work;
  u64* sink;

  void operator()(sim::ThreadCtx& ctx) const {
    const u32 n = static_cast<u32>(data->size());
    const u32 stride = ctx.grid_size();
    u64 acc = 0;
    for (u32 i = ctx.global_id(); i < n; i += stride) {
      acc ^= (*data)[i];
      ctx.charge_reads(1);
      ctx.charge_alu(1);
      if constexpr (kPerOp) {
        // One shared-state update per op, like the old Device::charge().
        (*per_op_work)[ctx.global_id()] += 5;  // global_read + alu
      }
    }
    *sink ^= acc;
  }
};

struct Sample {
  double ns_per_thread = 0;
  u64 modeled_cycles = 0;
};

/// Median ns/simulated-thread for one launch variant over ctx.runs runs.
template <typename LaunchFn>
Sample measure(const harness::BenchContext& ctx, u32 total_threads,
               LaunchFn&& launch_once) {
  constexpr int kLaunchesPerRun = 20;
  std::vector<double> times;
  Sample sample;
  launch_once();  // warm-up (and page in the data)
  for (int r = 0; r < ctx.runs; ++r) {
    Timer timer;
    u64 cycles = 0;
    for (int i = 0; i < kLaunchesPerRun; ++i) cycles = launch_once();
    times.push_back(timer.seconds() * 1e9 /
                    (static_cast<double>(kLaunchesPerRun) * total_threads));
    sample.modeled_cycles = cycles;
  }
  std::sort(times.begin(), times.end());
  sample.ns_per_thread = times[times.size() / 2];
  return sample;
}

struct PairSample {
  Sample hand;
  Sample op;
  double overhead_pct = 0;  ///< median of per-run op/hand ratios, minus one
};

/// Interleaved A/B measurement for the operator-overhead table: each run
/// times the hand-rolled and the operator form back to back. The ns/thread
/// columns report each variant's *minimum* across runs (the least
/// noise-contaminated estimate of its true cost), but the overhead column
/// is the median of *per-run ratios*: the two forms share each run's noise
/// window, so the ratio cancels common-mode contention, and the median
/// discards runs where a spike landed between the two timings. On a
/// machine with background load this paired estimator is stable to ~1%
/// where comparing two independent minima can swing several percent on
/// whichever variant drew the quietest window.
template <typename HandFn, typename OpFn>
PairSample measure_pair(const harness::BenchContext& ctx, u32 total_threads,
                        HandFn&& hand_once, OpFn&& op_once) {
  constexpr int kLaunchesPerRun = 20;
  const int runs = std::max(ctx.runs, 11);
  std::vector<double> hand_ns, op_ns;
  PairSample pair;
  hand_once();  // warm-up both paths (and page in the data)
  op_once();
  for (int r = 0; r < runs; ++r) {
    Timer hand_timer;
    for (int i = 0; i < kLaunchesPerRun; ++i) {
      pair.hand.modeled_cycles = hand_once();
    }
    hand_ns.push_back(hand_timer.seconds() * 1e9 /
                      (static_cast<double>(kLaunchesPerRun) * total_threads));
    Timer op_timer;
    for (int i = 0; i < kLaunchesPerRun; ++i) {
      pair.op.modeled_cycles = op_once();
    }
    op_ns.push_back(op_timer.seconds() * 1e9 /
                    (static_cast<double>(kLaunchesPerRun) * total_threads));
  }
  pair.hand.ns_per_thread = *std::min_element(hand_ns.begin(), hand_ns.end());
  pair.op.ns_per_thread = *std::min_element(op_ns.begin(), op_ns.end());
  std::vector<double> ratios(hand_ns.size());
  for (usize r = 0; r < ratios.size(); ++r) ratios[r] = op_ns[r] / hand_ns[r];
  std::sort(ratios.begin(), ratios.end());
  pair.overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  return pair;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Substrate: erased vs. template dispatch, per-op vs. batched charging");

  const sim::LaunchConfig cfg{kBlocks, kThreadsPerBlock};
  const u32 total = cfg.total_threads();
  const auto data = make_data(total);
  std::vector<u64> per_op_work(total, 0);
  u64 sink = 0;

  auto dev = harness::make_device();
  const Kernel<false> batched{&data, nullptr, &sink};
  const Kernel<true> per_op{&data, &per_op_work, &sink};

  // The erased variants wrap the identical bodies in std::function, putting
  // one type-erasure boundary back between the launch loop and the body.
  const std::function<void(sim::ThreadCtx&)> batched_erased = batched;
  const std::function<void(sim::ThreadCtx&)> per_op_erased = per_op;

  const auto run = [&](const auto& body) {
    return [&dev, &cfg, &body] {
      return dev.launch("stride", cfg, body).cost.modeled_cycles;
    };
  };

  const Sample s_tpl_batched = measure(ctx, total, run(batched));
  const Sample s_tpl_perop = measure(ctx, total, run(per_op));
  const Sample s_er_batched = measure(ctx, total, run(batched_erased));
  const Sample s_er_perop = measure(ctx, total, run(per_op_erased));

  // All four variants charge ThreadCtx identically, so the modeled cycles
  // must agree — the per-op table and the erasure wrapper are wall-clock
  // effects only.
  ECLP_CHECK(s_tpl_batched.modeled_cycles == s_er_perop.modeled_cycles);
  ECLP_CHECK(s_tpl_perop.modeled_cycles == s_er_batched.modeled_cycles);
  ECLP_CHECK(s_tpl_batched.modeled_cycles == s_tpl_perop.modeled_cycles);

  const double baseline = s_er_perop.ns_per_thread;
  const auto add = [&](Table& t, const char* dispatch, const char* charging,
                       const Sample& s) {
    t.add_row({dispatch, charging, fmt::fixed(s.ns_per_thread, 2),
               fmt::fixed(baseline / s.ns_per_thread, 2) + "x",
               fmt::grouped(s.modeled_cycles)});
  };

  Table t("Substrate dispatch — ns per simulated thread (" +
          std::to_string(kElemsPerThread) + " charged ops each)");
  t.set_header({"dispatch", "charging", "ns/thread", "speedup vs erased/per-op",
                "modeled cycles"});
  add(t, "erased", "per-op", s_er_perop);
  add(t, "erased", "batched", s_er_batched);
  add(t, "template", "per-op", s_tpl_perop);
  add(t, "template", "batched", s_tpl_batched);
  harness::emit(ctx, "substrate_dispatch", t);

  std::printf(
      "template/batched is the production path; erased/per-op replays the\n"
      "pre-refactor substrate (std::function per body call, shared-state\n"
      "update per charged op) on the same kernel. sink=%llu\n",
      static_cast<unsigned long long>(sink));

  // --- operator substrate overhead ------------------------------------------
  // The same work written as the hand-rolled launch loop an algorithm would
  // contain vs. spelled with the operators that replaced those loops. The
  // bodies charge identically, so modeled cycles must be bit-identical; the
  // only question is the wall-clock cost of the operator plumbing.
  const u32 n_elems = static_cast<u32>(data.size());
  const auto hand_compute = [&] {
    return dev
        .launch("op_stride", cfg,
                [&](sim::ThreadCtx& c) {
                  for (u32 i = c.global_id(); i < n_elems; i += c.grid_size()) {
                    c.charge_reads(1);
                    c.charge_alu(1);
                    sink ^= data[i];
                  }
                })
        .cost.modeled_cycles;
  };
  const auto op_compute = [&] {
    return sim::ops::compute(dev, "op_stride", cfg, n_elems,
                             [&](sim::ThreadCtx& c, vidx i) {
                               c.charge_reads(1);
                               c.charge_alu(1);
                               sink ^= data[i];
                             })
        .cost.modeled_cycles;
  };

  // advance: thread-per-vertex frontier expansion over a degree-8 ring
  // (ECL-CC's low-bin shape: 2 coalesced row-offset reads per visit, one
  // coalesced read per adjacency entry, and one instrumented scattered load
  // per edge — the lightest edge body any ported kernel has; CC chases
  // representatives, MIS reads neighbor priorities, GC reads neighbor
  // colors). Both paths run the identical body, so the ratio isolates the
  // operator plumbing.
  constexpr vidx kAdvVertices = 1u << 14;
  graph::Builder builder(kAdvVertices);
  for (vidx v = 0; v < kAdvVertices; ++v) {
    for (vidx k = 1; k <= 4; ++k) builder.add(v, (v + k) % kAdvVertices);
  }
  const graph::Csr g = builder.build();
  std::vector<u64> labels(kAdvVertices);
  for (vidx v = 0; v < kAdvVertices; ++v) labels[v] = v * 0x9e3779b97f4a7c15ull;
  // Runtime bound, like every real kernel's bin/worklist size — a constexpr
  // trip count would hand the hand-rolled loop an advantage no algorithm
  // actually has.
  const vidx adv_n = g.num_vertices();
  const sim::LaunchConfig adv_cfg =
      algos::blocks_for(adv_n, kThreadsPerBlock);
  const auto hand_advance = [&] {
    return dev
        .launch("op_expand", adv_cfg,
                [&](sim::ThreadCtx& c) {
                  for (u32 v = c.global_id(); v < adv_n;
                       v += c.grid_size()) {
                    c.charge_coalesced_reads(2);
                    u64 acc = v;
                    for (const vidx u : g.neighbors(v)) {
                      c.charge_coalesced_reads(1);
                      acc ^= c.load(labels[u]);
                    }
                    sink ^= acc;
                  }
                })
        .cost.modeled_cycles;
  };
  const auto op_advance = [&] {
    return sim::ops::advance(
               dev, "op_expand", adv_cfg, g,
               sim::ops::all_vertices(adv_n),
               sim::ops::AdvanceShape{
                   .width = 1,
                   .row_offset_reads = 2,
                   .edge_charge = sim::ops::AdvanceShape::EdgeCharge::kCoalesced},
               [](sim::ThreadCtx&, vidx v, u32) { return u64{v}; },
               [&](sim::ThreadCtx& c, u64& acc, vidx, vidx u) {
                 acc ^= c.load(labels[u]);
               },
               [&](sim::ThreadCtx&, vidx, u64& acc) { sink ^= acc; })
        .cost.modeled_cycles;
  };

  const PairSample p_compute = measure_pair(ctx, total, hand_compute, op_compute);
  const u32 adv_total = adv_cfg.total_threads();
  const PairSample p_advance =
      measure_pair(ctx, adv_total, hand_advance, op_advance);

  // Bit-identical charging is the operator layer's contract
  // (modeled_invariance_test holds the algorithm-level version of this).
  ECLP_CHECK(p_compute.op.modeled_cycles == p_compute.hand.modeled_cycles);
  ECLP_CHECK(p_advance.op.modeled_cycles == p_advance.hand.modeled_cycles);

  const auto add_op = [&](Table& table, const char* op, const char* path,
                          const Sample& s, double overhead_pct) {
    table.add_row({op, path, fmt::fixed(s.ns_per_thread, 2),
                   fmt::fixed(overhead_pct, 1) + "%",
                   fmt::grouped(s.modeled_cycles)});
  };
  Table ot("Operator substrate — ns per simulated thread vs hand-rolled");
  ot.set_header({"operator", "path", "ns/thread", "overhead vs hand-rolled",
                 "modeled cycles"});
  add_op(ot, "compute", "hand-rolled", p_compute.hand, 0.0);
  add_op(ot, "compute", "ops::compute", p_compute.op, p_compute.overhead_pct);
  add_op(ot, "advance", "hand-rolled", p_advance.hand, 0.0);
  add_op(ot, "advance", "ops::advance", p_advance.op, p_advance.overhead_pct);
  harness::emit(ctx, "operator_overhead", ot);
  return 0;
}
