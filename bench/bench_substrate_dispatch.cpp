// Microbench — what the zero-erasure dispatch path is worth.
//
// The launch entry points of sim/device.hpp are templates: the kernel body
// is invoked directly and its cost charges accumulate in a ThreadCtx-local
// tally flushed once per invocation. This bench quantifies both halves of
// that design on a tight grid-stride kernel by running the same body four
// ways:
//
//   dispatch = template   the body is a raw lambda (the normal API use);
//   dispatch = erased     the body is wrapped in std::function before the
//                         launch, reintroducing one indirect call + erased
//                         body per simulated thread — the pre-refactor
//                         dispatch cost, measured on today's substrate;
//   charging = batched    the body charges through ThreadCtx (local tally,
//                         one flush per thread);
//   charging = per-op     the body additionally performs one shared-state
//                         update per memory op against an external
//                         per-thread work table — the pre-refactor charge()
//                         pattern (indexed read-modify-write per op).
//
// Reported as ns per simulated thread (median of --runs), with speedups
// relative to the erased/per-op combination, i.e. the old substrate. Run
//
//   bench_substrate_dispatch --json BENCH_substrate_dispatch.json
//
// to record the perf-trajectory artifact the repo tracks across PRs.
#include <algorithm>
#include <functional>
#include <vector>

#include "harness/harness.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

constexpr u32 kBlocks = 64;
constexpr u32 kThreadsPerBlock = 256;
constexpr u32 kElemsPerThread = 8;

/// Elements each simulated thread strides over; the values only exist so
/// the reads cannot be optimized away.
std::vector<u32> make_data(u32 total_threads) {
  std::vector<u32> data(static_cast<usize>(total_threads) * kElemsPerThread);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u32>(i * 2654435761u);
  return data;
}

/// The grid-stride kernel body, parameterized on the charging style.
/// `per_op_work` is null for batched charging; non-null makes every charge
/// also hit the external per-thread table, one read-modify-write per op.
template <bool kPerOp>
struct Kernel {
  const std::vector<u32>* data;
  std::vector<u64>* per_op_work;
  u64* sink;

  void operator()(sim::ThreadCtx& ctx) const {
    const u32 n = static_cast<u32>(data->size());
    const u32 stride = ctx.grid_size();
    u64 acc = 0;
    for (u32 i = ctx.global_id(); i < n; i += stride) {
      acc ^= (*data)[i];
      ctx.charge_reads(1);
      ctx.charge_alu(1);
      if constexpr (kPerOp) {
        // One shared-state update per op, like the old Device::charge().
        (*per_op_work)[ctx.global_id()] += 5;  // global_read + alu
      }
    }
    *sink ^= acc;
  }
};

struct Sample {
  double ns_per_thread = 0;
  u64 modeled_cycles = 0;
};

/// Median ns/simulated-thread for one launch variant over ctx.runs runs.
template <typename LaunchFn>
Sample measure(const harness::BenchContext& ctx, u32 total_threads,
               LaunchFn&& launch_once) {
  constexpr int kLaunchesPerRun = 20;
  std::vector<double> times;
  Sample sample;
  launch_once();  // warm-up (and page in the data)
  for (int r = 0; r < ctx.runs; ++r) {
    Timer timer;
    u64 cycles = 0;
    for (int i = 0; i < kLaunchesPerRun; ++i) cycles = launch_once();
    times.push_back(timer.seconds() * 1e9 /
                    (static_cast<double>(kLaunchesPerRun) * total_threads));
    sample.modeled_cycles = cycles;
  }
  std::sort(times.begin(), times.end());
  sample.ns_per_thread = times[times.size() / 2];
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Substrate: erased vs. template dispatch, per-op vs. batched charging");

  const sim::LaunchConfig cfg{kBlocks, kThreadsPerBlock};
  const u32 total = cfg.total_threads();
  const auto data = make_data(total);
  std::vector<u64> per_op_work(total, 0);
  u64 sink = 0;

  auto dev = harness::make_device();
  const Kernel<false> batched{&data, nullptr, &sink};
  const Kernel<true> per_op{&data, &per_op_work, &sink};

  // The erased variants wrap the identical bodies in std::function, putting
  // one type-erasure boundary back between the launch loop and the body.
  const std::function<void(sim::ThreadCtx&)> batched_erased = batched;
  const std::function<void(sim::ThreadCtx&)> per_op_erased = per_op;

  const auto run = [&](const auto& body) {
    return [&dev, &cfg, &body] {
      return dev.launch("stride", cfg, body).cost.modeled_cycles;
    };
  };

  const Sample s_tpl_batched = measure(ctx, total, run(batched));
  const Sample s_tpl_perop = measure(ctx, total, run(per_op));
  const Sample s_er_batched = measure(ctx, total, run(batched_erased));
  const Sample s_er_perop = measure(ctx, total, run(per_op_erased));

  // All four variants charge ThreadCtx identically, so the modeled cycles
  // must agree — the per-op table and the erasure wrapper are wall-clock
  // effects only.
  ECLP_CHECK(s_tpl_batched.modeled_cycles == s_er_perop.modeled_cycles);
  ECLP_CHECK(s_tpl_perop.modeled_cycles == s_er_batched.modeled_cycles);
  ECLP_CHECK(s_tpl_batched.modeled_cycles == s_tpl_perop.modeled_cycles);

  const double baseline = s_er_perop.ns_per_thread;
  const auto add = [&](Table& t, const char* dispatch, const char* charging,
                       const Sample& s) {
    t.add_row({dispatch, charging, fmt::fixed(s.ns_per_thread, 2),
               fmt::fixed(baseline / s.ns_per_thread, 2) + "x",
               fmt::grouped(s.modeled_cycles)});
  };

  Table t("Substrate dispatch — ns per simulated thread (" +
          std::to_string(kElemsPerThread) + " charged ops each)");
  t.set_header({"dispatch", "charging", "ns/thread", "speedup vs erased/per-op",
                "modeled cycles"});
  add(t, "erased", "per-op", s_er_perop);
  add(t, "erased", "batched", s_er_batched);
  add(t, "template", "per-op", s_tpl_perop);
  add(t, "template", "batched", s_tpl_batched);
  harness::emit(ctx, "substrate_dispatch", t);

  std::printf(
      "template/batched is the production path; erased/per-op replays the\n"
      "pre-refactor substrate (std::function per body call, shared-state\n"
      "update per charged op) on the same kernel. sink=%llu\n",
      static_cast<unsigned long long>(sink));
  return 0;
}
