// The paper's §3.1 "general metrics" — load balance, idle vs. active
// threads, atomic outcomes — collected automatically for every kernel of
// every ECL code via the device's per-thread work accounting, plus the
// degree-binning ablation they motivate.
//
// Part 1: per-kernel load-balance/activity table for all five codes on one
// input each (the §3.1.1/3.1.3/3.1.4 metrics standard profilers lack).
// Part 2: ECL-CC with its three degree-binned compute kernels vs. a single
// thread-per-vertex kernel — the load-balancing design §2.1 describes.
#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "sim/trace.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "General metrics (paper §3.1) across the five ECL codes");

  {
    sim::Device dev;
    sim::Trace trace;
    dev.set_trace(&trace);
    // --profile=<path> (or ECLP_PROFILE) captures this five-algorithm sweep
    // as one profiling session: every run() annotates its phases.
    const auto session = harness::maybe_session(ctx, dev);
    const auto g = gen::find_input("as-skitter").make(ctx.scale);
    algos::cc::run(dev, g);
    algos::mis::run(dev, g);
    algos::gc::run(dev, g);
    algos::mst::run(dev, graph::with_random_weights(g, 42));
    const auto mesh = gen::find_input("cold-flow").make(ctx.scale);
    algos::scc::run(dev, mesh);
    harness::emit(ctx, "general_metrics_load_balance",
                  trace.load_balance(
                      "load balance & thread activity by kernel "
                      "(as-skitter / cold-flow)"));
    harness::emit(ctx, "general_metrics_timeline",
                  trace.summary("cycle share by kernel"));
    std::printf("atomicCAS failure rate across all runs: %.2f%%; "
                "atomicMin ineffective rate: %.2f%% (§3.1.5)\n\n",
                100.0 * dev.atomic_stats().cas_failure_rate(),
                100.0 * dev.atomic_stats().min_ineffective_rate());
  }

  {
    Table t("ECL-CC degree binning ablation (power-law inputs)");
    t.set_header({"Graph", "binned worst imbalance", "single worst imbalance",
                  "binned cycles", "single cycles", "binning speedup"});
    for (const char* name :
         {"as-skitter", "kron_g500-logn21", "soc-LiveJournal1", "in-2004"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      const auto measure = [&](const algos::cc::Options& opt) {
        sim::Device dev;
        sim::Trace trace;
        dev.set_trace(&trace);
        const auto res = algos::cc::run(dev, g, opt);
        ECLP_CHECK(algos::cc::verify(g, res.labels));
        double worst = 1.0;
        for (const auto& e : trace.events()) {
          if (e.kernel.rfind("cc_compute", 0) == 0) {
            worst = std::max(worst, e.imbalance);
          }
        }
        return std::pair{worst, res.modeled_cycles};
      };
      algos::cc::Options binned;  // defaults: low/mid/high kernels
      algos::cc::Options single;  // everything through the low kernel
      single.low_degree_limit = ~vidx{0};
      single.high_degree_limit = ~vidx{0};
      const auto [wb, cb] = measure(binned);
      const auto [ws, cs] = measure(single);
      t.add_row({name, fmt::fixed(wb, 1), fmt::fixed(ws, 1),
                 fmt::grouped(cb), fmt::grouped(cs),
                 fmt::fixed(static_cast<double>(cs) / static_cast<double>(cb),
                            2)});
    }
    harness::emit(ctx, "general_metrics_binning", t);
    std::printf(
        "degree binning (thread / warp / block per vertex, §2.1) caps the\n"
        "per-thread work spread that a single thread-per-vertex kernel\n"
        "suffers on power-law inputs. The cycle win tracks the degree\n"
        "skew: at this scale it shows on the most skewed inputs (kron,\n"
        "in-2004); on the originals, whose hubs are 20-200x larger\n"
        "(Table 1), the serialized hub thread dominates every input.\n");
  }
  return 0;
}
