// Table 2 — ECL-MIS per-thread metrics.
//
// For each general input: average/maximum per-thread iterations, average
// vertices assigned, and average/maximum vertices finalized, exactly the
// columns of the paper's Table 2. Afterwards the correlations the paper
// quotes in §6.1.1 are computed on our data:
//   * avg iterations vs. d-max/d-avg (paper: r = 0.64),
//   * max iterations vs. number of vertices (paper: r = -0.37),
//   * avg and max vertices finalized vs. number of vertices (paper: >= 0.98).
#include <cmath>

#include "algos/mis/ecl_mis.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx =
      harness::parse(argc, argv, "Table 2: ECL-MIS per-thread metrics");

  Table t("Table 2 — ECL-MIS metrics (per thread)");
  t.set_header({"Graph", "Iter Avg", "Iter Max", "Assigned Avg", "Final Avg",
                "Final Max"});

  std::vector<double> iter_avg, iter_max, skew, nverts, fin_avg, fin_max;
  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(ctx.scale);
    auto dev = harness::make_device();
    const auto res = algos::mis::run(dev, g);
    const auto& m = res.metrics;
    t.add_row({spec.name, fmt::fixed(m.iterations.mean, 2),
               fmt::fixed(m.iterations.max, 0),
               fmt::fixed(m.vertices_assigned.mean, 2),
               fmt::fixed(m.vertices_finalized.mean, 2),
               fmt::fixed(m.vertices_finalized.max, 0)});
    const auto deg = graph::degree_stats(g);
    iter_avg.push_back(m.iterations.mean);
    iter_max.push_back(m.iterations.max);
    skew.push_back(static_cast<double>(deg.max) / deg.avg);
    nverts.push_back(static_cast<double>(g.num_vertices()));
    fin_avg.push_back(m.vertices_finalized.mean);
    fin_max.push_back(m.vertices_finalized.max);
  }
  harness::emit(ctx, "table2_mis", t);

  harness::report_correlation("avg iterations vs d-max/d-avg (paper: +0.64)",
                              iter_avg, skew);
  harness::report_correlation("max iterations vs #vertices   (paper: -0.37)",
                              iter_max, nverts);
  harness::report_correlation("avg finalized vs #vertices    (paper: >=0.98)",
                              fin_avg, nverts);
  harness::report_correlation("max finalized vs #vertices    (paper: >=0.98)",
                              fin_max, nverts);
  return 0;
}
