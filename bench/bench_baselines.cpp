// Baseline comparisons — the algorithms the ECL codes improve on.
//
// The paper profiles the ECL suite because those codes are state of the
// art; this bench grounds that by running each against its classic GPU
// predecessor on the simulated device:
//   * ECL-CC            vs. min-label propagation with pointer jumping,
//   * ECL-MIS           vs. Luby's round-synchronous random selection,
//   * ECL-SCC           vs. forward-backward (FW-BW) with trimming.
// Speedup > 1 means the ECL code is faster in modeled cycles.
#include "algos/baselines/fw_bw_scc.hpp"
#include "algos/baselines/label_prop_cc.hpp"
#include "algos/baselines/luby_mis.hpp"
#include "algos/cc/ecl_cc.hpp"
#include "algos/common.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Baselines: ECL codes vs. their classic GPU predecessors");

  {
    Table t("ECL-CC vs. label propagation");
    t.set_header({"Graph", "LP rounds", "LP cycles", "ECL-CC cycles",
                  "ECL speedup"});
    for (const char* name :
         {"2d-2e20.sym", "as-skitter", "europe_osm", "kron_g500-logn21",
          "r4-2e23.sym", "USA-road-d.USA"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      const auto lp = algos::baselines::label_prop_cc(d1, g);
      const auto ecl = algos::cc::run(d2, g);
      ECLP_CHECK(algos::cc::verify(g, lp.labels));
      ECLP_CHECK(algos::cc::verify(g, ecl.labels));
      t.add_row({name, std::to_string(lp.rounds),
                 fmt::grouped(lp.modeled_cycles),
                 fmt::grouped(ecl.modeled_cycles),
                 fmt::fixed(static_cast<double>(lp.modeled_cycles) /
                                static_cast<double>(ecl.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "baselines_cc", t);
  }

  {
    Table t("ECL-MIS vs. Luby");
    t.set_header({"Graph", "Luby rounds", "Luby |MIS|", "ECL |MIS|",
                  "size gain", "ECL speedup"});
    for (const char* name : {"internet", "as-skitter", "europe_osm",
                             "rmat16.sym", "r4-2e23.sym"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      const auto luby = algos::baselines::luby_mis(d1, g, /*seed=*/42);
      const auto ecl = algos::mis::run(d2, g);
      ECLP_CHECK(algos::mis::verify(g, luby.status));
      ECLP_CHECK(algos::mis::verify(g, ecl.status));
      t.add_row({name, std::to_string(luby.rounds),
                 fmt::grouped(luby.set_size), fmt::grouped(ecl.set_size),
                 fmt::signed_pct(100.0 *
                                     (static_cast<double>(ecl.set_size) /
                                          static_cast<double>(luby.set_size) -
                                      1.0),
                                 1) +
                     "%",
                 fmt::fixed(static_cast<double>(luby.modeled_cycles) /
                                static_cast<double>(ecl.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "baselines_mis", t);
  }

  {
    Table t("ECL-SCC vs. FW-BW");
    t.set_header({"Graph", "FW-BW pivots", "FW-BW BFS launches",
                  "FW-BW cycles", "ECL-SCC cycles", "ECL speedup"});
    for (const auto& spec : gen::mesh_inputs()) {
      const auto g = spec.make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      const auto fwbw = algos::baselines::fw_bw_scc(d1, g);
      const auto ecl = algos::scc::run(d2, g);
      ECLP_CHECK(algos::scc::verify(g, fwbw.scc_id));
      ECLP_CHECK(algos::scc::verify(g, ecl.scc_id));
      t.add_row({spec.name, std::to_string(fwbw.pivots),
                 std::to_string(fwbw.bfs_launches),
                 fmt::grouped(fwbw.modeled_cycles),
                 fmt::grouped(ecl.modeled_cycles),
                 fmt::fixed(static_cast<double>(fwbw.modeled_cycles) /
                                static_cast<double>(ecl.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "baselines_scc", t);
  }
  return 0;
}
