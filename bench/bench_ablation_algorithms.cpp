// Ablations of the algorithmic design choices the paper's §2 describes.
//
//   * ECL-GC's shortcuts 1/2 (vs. strict Jones-Plassmann): fewer coloring
//     rounds and cycles, same proper coloring;
//   * ECL-CC's init heuristic (first smaller neighbor vs. own id): the
//     paper claims it "leads to less work in the next phase" — measured
//     here as CAS hook attempts and total cycles;
//   * ECL-MST's filter step (defer heavy edges vs. process all): fewer
//     edges competing per round on dense graphs.
#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Ablations: the design choices inside the ECL codes");

  {
    Table t("ECL-GC shortcuts vs. strict Jones-Plassmann");
    t.set_header({"Graph", "JP rounds", "ECL rounds", "JP colors",
                  "ECL colors", "shortcut speedup"});
    for (const char* name : {"citationCiteseer", "coPapersDBLP", "internet",
                             "rmat16.sym", "kron_g500-logn21"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      algos::gc::Options strict;
      strict.use_shortcuts = false;
      const auto jp = algos::gc::run(d1, g, strict);
      const auto ecl = algos::gc::run(d2, g);
      ECLP_CHECK(algos::gc::verify(g, jp.colors));
      ECLP_CHECK(algos::gc::verify(g, ecl.colors));
      t.add_row({name, std::to_string(jp.host_iterations),
                 std::to_string(ecl.host_iterations),
                 std::to_string(jp.num_colors),
                 std::to_string(ecl.num_colors),
                 fmt::fixed(static_cast<double>(jp.modeled_cycles) /
                                static_cast<double>(ecl.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "ablation_gc_shortcuts", t);
  }

  {
    Table t("ECL-CC init heuristic vs. own-id init");
    t.set_header({"Graph", "own-id hooks", "heuristic hooks", "hook savings",
                  "heuristic speedup"});
    for (const char* name : {"2d-2e20.sym", "europe_osm", "as-skitter",
                             "r4-2e23.sym", "soc-LiveJournal1"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      algos::cc::Options naive;
      naive.init_mode = algos::cc::InitMode::kOwnId;
      const auto own = algos::cc::run(d1, g, naive);
      const auto ecl = algos::cc::run(d2, g);
      ECLP_CHECK(algos::cc::verify(g, own.labels));
      ECLP_CHECK(algos::cc::verify(g, ecl.labels));
      t.add_row(
          {name, fmt::grouped(own.profile.hook_attempts),
           fmt::grouped(ecl.profile.hook_attempts),
           fmt::signed_pct(
               100.0 * (1.0 - static_cast<double>(ecl.profile.hook_attempts) /
                                  static_cast<double>(
                                      own.profile.hook_attempts)),
               1) +
               "%",
           fmt::fixed(static_cast<double>(own.modeled_cycles) /
                          static_cast<double>(ecl.modeled_cycles),
                      2)});
    }
    harness::emit(ctx, "ablation_cc_init", t);
  }

  {
    Table t("ECL-MST filter step on/off");
    t.set_header({"Graph", "no-filter cycles", "filter cycles",
                  "filter speedup"});
    for (const char* name : {"coPapersDBLP", "kron_g500-logn21",
                             "soc-LiveJournal1", "europe_osm",
                             "USA-road-d.NY"}) {
      const auto g = graph::with_random_weights(
          gen::find_input(name).make(ctx.scale), 42);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      algos::mst::Options off;
      off.filter_percentile = 0.0;
      const auto no_filter = algos::mst::run(d1, g, off);
      const auto filtered = algos::mst::run(d2, g);
      ECLP_CHECK(no_filter.total_weight == filtered.total_weight);
      t.add_row({name, fmt::grouped(no_filter.modeled_cycles),
                 fmt::grouped(filtered.modeled_cycles),
                 fmt::fixed(static_cast<double>(no_filter.modeled_cycles) /
                                static_cast<double>(filtered.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "ablation_mst_filter", t);
  }

  {
    Table t("ECL-SCC trimming on/off");
    t.set_header({"Graph", "trimmed vertices", "m w/o trim", "m w/ trim",
                  "trim speedup"});
    for (const auto& spec : gen::mesh_inputs()) {
      const auto g = spec.make(ctx.scale);
      auto d1 = harness::make_device();
      auto d2 = harness::make_device();
      algos::scc::Options base, trimmed;
      trimmed.trim = true;
      const auto a = algos::scc::run(d1, g, base);
      const auto b = algos::scc::run(d2, g, trimmed);
      ECLP_CHECK(algos::scc::verify(g, a.scc_id));
      ECLP_CHECK(algos::scc::verify(g, b.scc_id));
      ECLP_CHECK(a.num_sccs == b.num_sccs);
      t.add_row({spec.name, fmt::grouped(b.trimmed_vertices),
                 std::to_string(a.outer_iterations),
                 std::to_string(b.outer_iterations),
                 fmt::fixed(static_cast<double>(a.modeled_cycles) /
                                static_cast<double>(b.modeled_cycles),
                            2)});
    }
    harness::emit(ctx, "ablation_scc_trim", t);
    std::printf(
        "trimming pays where many vertices sit on no cycle (cold-flow);\n"
        "where everything is cyclic it is a cheap no-op.\n");
  }

  {
    Table t("ECL-MIS priority function (set size; paper §2.3 motivation)");
    t.set_header({"Graph", "degree-aware |MIS|", "uniform-hash |MIS|",
                  "vertex-id |MIS|", "degree-aware gain"});
    for (const char* name : {"internet", "as-skitter", "kron_g500-logn21",
                             "soc-LiveJournal1", "r4-2e23.sym"}) {
      const auto g = gen::find_input(name).make(ctx.scale);
      const auto size_with = [&](algos::mis::Priority p) {
        auto dev = harness::make_device();
        algos::mis::Options opt;
        opt.priority = p;
        const auto res = algos::mis::run(dev, g, opt);
        ECLP_CHECK(algos::mis::verify(g, res.status));
        return res.set_size;
      };
      const usize aware = size_with(algos::mis::Priority::kDegreeAware);
      const usize uniform = size_with(algos::mis::Priority::kUniformHash);
      const usize by_id = size_with(algos::mis::Priority::kVertexId);
      t.add_row({name, fmt::grouped(aware), fmt::grouped(uniform),
                 fmt::grouped(by_id),
                 fmt::signed_pct(100.0 * (static_cast<double>(aware) /
                                              static_cast<double>(uniform) -
                                          1.0),
                                 1) +
                     "%"});
    }
    harness::emit(ctx, "ablation_mis_priority", t);
    std::printf(
        "the degree-aware priority is why ECL-MIS finds larger sets than\n"
        "random-priority selection on skewed-degree inputs.\n");
  }
  return 0;
}
