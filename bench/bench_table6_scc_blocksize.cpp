// Table 6 — ECL-SCC speedups for different thread-block sizes.
//
// The paper tunes the propagation kernel's block size after observing
// (Figure 1) that block-wide synchronization keeps idle threads alive.
// Speedup = modeled cycles at the original 512 threads/block divided by
// modeled cycles at the candidate size. Expected shape: small blocks lose
// (propagation crosses more block boundaries => more grid relaunches);
// 1024 loses (idle threads in every block-wide sync); 128/256 win or tie.
#include "algos/common.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 6: ECL-SCC speedup vs. thread-block size");

  const std::vector<u32> sizes = {64, 128, 256, 1024};
  Table t("Table 6 — ECL-SCC speedups over 512 threads/block");
  t.set_header({"Graph", "64", "128", "256", "1024"});

  for (const auto& spec : gen::mesh_inputs()) {
    const auto g = spec.make(ctx.scale);
    const auto cycles_at = [&](u32 tpb) {
      auto dev = harness::make_device();
      algos::scc::Options opt;
      opt.threads_per_block = tpb;
      const auto res = algos::scc::run(dev, g, opt);
      ECLP_CHECK_MSG(algos::scc::verify(g, res.scc_id),
                     "wrong SCCs on " << spec.name << " tpb " << tpb);
      return res.modeled_cycles;
    };
    const u64 base = cycles_at(512);
    std::vector<std::string> row = {spec.name};
    for (const u32 tpb : sizes) {
      row.push_back(fmt::fixed(
          static_cast<double>(base) / static_cast<double>(cycles_at(tpb)),
          2));
    }
    t.add_row(std::move(row));
  }
  harness::emit(ctx, "table6_scc_blocksize", t);
  return 0;
}
