// Microbenchmarks (google-benchmark) for the substrate the reproductions
// stand on: simulator launch/atomic throughput, profiling counter cost,
// graph construction, and the sequential references. These guard against
// performance regressions in the simulator itself — the table benches
// depend on it being fast enough to run the full suite.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "algos/cc/ecl_cc.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/builder.hpp"
#include "graph/properties.hpp"
#include "graph/transforms.hpp"
#include "profile/counters.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"

namespace {

using namespace eclp;

void BM_SimLaunchOverhead(benchmark::State& state) {
  sim::Device dev;
  for (auto _ : state) {
    dev.launch("noop", {1, 32}, [](sim::ThreadCtx&) {});
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_SimLaunchOverhead);

void BM_SimThreadDispatch(benchmark::State& state) {
  sim::Device dev;
  const u32 threads = static_cast<u32>(state.range(0));
  for (auto _ : state) {
    dev.launch("dispatch", {threads / 256, 256},
               [](sim::ThreadCtx& ctx) { ctx.charge_alu(1); });
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * threads);
}
BENCHMARK(BM_SimThreadDispatch)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_SimAtomicCas(benchmark::State& state) {
  sim::Device dev;
  u32 target = 0;
  for (auto _ : state) {
    dev.launch("cas", {1, 256}, [&](sim::ThreadCtx& ctx) {
      for (int i = 0; i < 16; ++i) {
        const u32 old = target;
        ctx.atomic_cas(target, old, old + 1);
      }
    });
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 256 * 16);
}
BENCHMARK(BM_SimAtomicCas);

// --- profiling session overhead ----------------------------------------------
// The observability contract (docs/OBSERVABILITY.md): with no session
// attached a launch pays one null check and a ScopedSpan annotation one
// thread-local load — compare against BM_SimLaunchOverhead and
// BM_ScopedSpanNoSession. With a session attached every launch records a
// closed kernel span and every annotation opens/closes a phase span; the
// batch variants below amortize session setup and bound the span log.

void BM_ScopedSpanNoSession(benchmark::State& state) {
  for (auto _ : state) {
    profile::ScopedSpan span("phase");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ScopedSpanNoSession);

void BM_SessionAttachedLaunch(benchmark::State& state) {
  sim::Device dev;
  constexpr u32 kBatch = 256;
  for (auto _ : state) {
    profile::Session session(dev);
    for (u32 i = 0; i < kBatch; ++i) {
      dev.launch("noop", {1, 32}, [](sim::ThreadCtx&) {});
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SessionAttachedLaunch);

void BM_SessionSpanRecording(benchmark::State& state) {
  sim::Device dev;
  constexpr u32 kBatch = 1024;
  for (auto _ : state) {
    profile::Session session(dev);
    for (u32 i = 0; i < kBatch; ++i) {
      profile::ScopedSpan span("phase");
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kBatch);
}
BENCHMARK(BM_SessionSpanRecording);

void BM_CounterPerThreadInc(benchmark::State& state) {
  profile::PerThreadCounter counter(1u << 16);
  u32 i = 0;
  for (auto _ : state) {
    counter.inc(i++ & 0xffff);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CounterPerThreadInc);

void BM_GraphBuildCsr(benchmark::State& state) {
  const vidx n = static_cast<vidx>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::uniform_random(n, n * 4, 7));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * n * 4);
}
BENCHMARK(BM_GraphBuildCsr)->Arg(1 << 12)->Arg(1 << 15);

void BM_GraphBfs(benchmark::State& state) {
  const auto g = gen::grid2d_torus(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_GraphBfs);

void BM_EclCcEndToEnd(benchmark::State& state) {
  const auto g = gen::rmat(13, 60000, 0.45, 0.22, 0.22, 5);
  for (auto _ : state) {
    sim::Device dev;
    benchmark::DoNotOptimize(algos::cc::run(dev, g));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_EclCcEndToEnd);

void BM_EclMstEndToEnd(benchmark::State& state) {
  const auto g =
      graph::with_random_weights(gen::uniform_random(10000, 40000, 9), 9);
  for (auto _ : state) {
    sim::Device dev;
    benchmark::DoNotOptimize(algos::mst::run(dev, g));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_EclMstEndToEnd);

void BM_EclSccEndToEnd(benchmark::State& state) {
  const auto g = gen::cold_flow(64, 3);
  for (auto _ : state) {
    sim::Device dev;
    benchmark::DoNotOptimize(algos::scc::run(dev, g));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_EclSccEndToEnd);

// --- parallel scaling --------------------------------------------------------
// Block-parallel dispatch of block-independent launches across the host
// pool. The interesting numbers are the 1-worker run (must not regress
// against the pre-pool sequential path) and the speedup at 2/4/8 workers;
// on a single-core machine the >1-worker rows only measure scheduling
// overhead. Results are bit-identical at every worker count by design —
// these benches measure wall clock only.

/// A launch shaped like SCC propagation's per-block sweep loop: every
/// thread scans an edge stripe and does Jacobi-style buffered updates.
void BM_PoolScalingSccPropagate(benchmark::State& state) {
  const u32 workers = static_cast<u32>(state.range(0));
  sim::Pool pool(workers);
  const auto g = gen::cold_flow(96, 3);
  for (auto _ : state) {
    sim::Device dev;
    dev.set_pool(workers > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(algos::scc::run(dev, g));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_PoolScalingSccPropagate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// A pure compute-heavy block-independent map, the best case for scaling.
void BM_PoolScalingMapKernel(benchmark::State& state) {
  const u32 workers = static_cast<u32>(state.range(0));
  sim::Pool pool(workers);
  sim::LaunchConfig cfg{64, 256};
  cfg.block_independent = true;
  for (auto _ : state) {
    sim::Device dev;
    dev.set_pool(workers > 1 ? &pool : nullptr);
    dev.launch("map", cfg, [](sim::ThreadCtx& ctx) {
      u64 acc = ctx.global_id();
      for (int i = 0; i < 64; ++i) acc = acc * 6364136223846793005ULL + 1;
      benchmark::DoNotOptimize(acc);
      ctx.charge_alu(64);
    });
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          cfg.total_threads());
}
BENCHMARK(BM_PoolScalingMapKernel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TarjanReference(benchmark::State& state) {
  const auto g = gen::klein_bottle(64, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algos::scc::reference_scc(g));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          g.num_edges());
}
BENCHMARK(BM_TarjanReference);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): accept the suite-wide
// `--json <path>` / `--json=<path>` convention (harness/harness.hpp) by
// translating it to google-benchmark's --benchmark_out flags, so
//   bench_micro_substrate --json BENCH_micro_substrate.json
// emits the same machine-readable perf-trajectory artifact as the
// table benches. All other flags pass through to google-benchmark.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 1);
  for (usize i = 0; i < args.size(); ++i) {
    std::string path;
    if (args[i] == "--json" && i + 1 < args.size()) {
      path = args[++i];
    } else if (args[i].rfind("--json=", 0) == 0) {
      path = args[i].substr(std::strlen("--json="));
    } else {
      translated.push_back(args[i]);
      continue;
    }
    translated.push_back("--benchmark_out=" + path);
    translated.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  cargs.reserve(translated.size());
  for (std::string& a : translated) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
