// Table 5 — per-vertex statistics of the ECL-GC runLarge kernel.
//
// For every input that has vertices of degree > 31 (the runLarge threshold):
// how often a vertex's best available color was invalidated by a
// higher-priority neighbor's claim, and how often a vertex was processed
// without being colorable yet. The paper correlates both averages with the
// input's average degree (r ~ 0.62).
#include "algos/gc/ecl_gc.hpp"
#include "gen/suite.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 5: ECL-GC runLarge per-vertex counters");

  Table t("Table 5 — ECL-GC runLarge kernel (per vertex, degree > 31)");
  t.set_header({"Graph", "BestChanged Avg", "BestChanged Max",
                "NotYetPossible Avg", "NotYetPossible Max"});
  std::vector<double> avg_changed, avg_nyp, avg_degree;
  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(ctx.scale);
    if (graph::degree_stats(g).max <= algos::gc::kLargeDegree) {
      continue;  // the paper's table excludes such inputs
    }
    auto dev = harness::make_device();
    const auto res = algos::gc::run(dev, g);
    ECLP_CHECK_MSG(algos::gc::verify(g, res.colors),
                   "improper coloring on " << spec.name);
    const auto& rl = res.run_large;
    t.add_row({spec.name, fmt::fixed(rl.best_color_changed.mean, 2),
               fmt::fixed(rl.best_color_changed.max, 0),
               fmt::fixed(rl.not_yet_possible.mean, 2),
               fmt::fixed(rl.not_yet_possible.max, 0)});
    avg_changed.push_back(rl.best_color_changed.mean);
    avg_nyp.push_back(rl.not_yet_possible.mean);
    avg_degree.push_back(graph::degree_stats(g).avg);
  }
  harness::emit(ctx, "table5_gc", t);

  harness::report_correlation(
      "avg best-color-changed vs avg degree (paper: ~+0.62)", avg_changed,
      avg_degree);
  harness::report_correlation(
      "avg not-yet-possible  vs avg degree (paper: ~+0.62)", avg_nyp,
      avg_degree);
  return 0;
}
