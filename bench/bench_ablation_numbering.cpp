// Ablation — how the vertex numbering drives ECL-SCC's block locality.
//
// The paper observes (§6.1.2) that "signature propagations appear to remain
// largely localized within thread blocks". That is a property of the mesh
// *numbering*, not the algorithm: contiguous ids must cover spatially
// compact patches. This bench reruns ECL-SCC on one mesh under the shared
// reorder suite (graph::reorder_suite() — the same sweep bench_reorder
// uses, so the two benches cannot drift): the shipped Morton numbering is
// the "natural" entry, and each other spec relabels it. For every order it
// reports the block affinity, the propagation launches (n) it needs, and
// the modeled cost.
#include "algos/common.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "mesh input", "toroid-wedge");
  const auto ctx = harness::parse(
      argc, argv, "Ablation: vertex numbering vs. SCC block locality", cli);

  const auto base = gen::find_input(cli.get("input")).make(ctx.scale);

  struct Variant {
    std::string name;
    graph::Csr g;
  };
  std::vector<Variant> variants;
  for (const graph::ReorderSpec& spec : graph::reorder_suite()) {
    const std::string name = spec.is_natural() ? "shipped (Morton)"
                                               : spec.canonical();
    variants.push_back({name, graph::apply_reorder(base, spec)});
  }

  Table t("ECL-SCC on " + cli.get("input") +
          " under the shared reorder suite");
  t.set_header({"numbering", "block affinity@512", "total n launches",
                "modeled cycles", "slowdown"});
  u64 baseline_cycles = 0;
  std::vector<vidx> expected;
  for (const auto& variant : variants) {
    auto dev = harness::make_device(ctx);
    algos::scc::Options opt;
    opt.record_series = true;
    const auto res = algos::scc::run(dev, variant.g, opt);
    ECLP_CHECK(algos::scc::verify(variant.g, res.scc_id));
    // All numberings must find the same number of SCCs.
    if (expected.empty()) {
      expected.assign(1, static_cast<vidx>(res.num_sccs));
    } else {
      ECLP_CHECK(res.num_sccs == expected[0]);
    }
    u64 total_n = 0;
    for (const u32 inner : res.inner_per_outer) total_n += inner;
    const double affinity = graph::block_affinity(variant.g, 512);
    if (baseline_cycles == 0) baseline_cycles = res.modeled_cycles;
    t.add_row({variant.name, fmt::fixed(100.0 * affinity, 1) + "%",
               std::to_string(total_n),
               fmt::grouped(res.modeled_cycles),
               fmt::fixed(static_cast<double>(res.modeled_cycles) /
                              static_cast<double>(baseline_cycles),
                          2) +
                   "x"});
  }
  harness::emit(ctx, "ablation_numbering", t);
  std::printf(
      "expected: the locality-preserving numbering keeps most arcs inside a\n"
      "block (high affinity), needs the fewest grid relaunches, and is the\n"
      "cheapest — the structural basis of the paper's §6.1.2 observation.\n");
  return 0;
}
