// Table 8 — ECL-MST runtime change from the corrected launch configuration.
//
// The profiling (Figure 2) showed most launched threads idle in later
// iterations because the block count is computed once from the initial
// worklist. The fix recomputes it per iteration — but pays a device-to-host
// readback of the live worklist size before every launch. Expected shape
// (paper §6.2.3): changes hover around zero (within a few percent), with
// small wins on some inputs and small losses on others, because the saved
// idle-thread work is nearly offset by the host-side recomputation.
// Positive % = corrected version is faster.
#include "algos/mst/ecl_mst.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Table 8: ECL-MST corrected launch configuration");

  Table t("Table 8 — ECL-MST runtime % change (corrected launch config)");
  t.set_header({"Graph", "Runtime % change"});
  for (const auto& spec : gen::general_inputs()) {
    const auto g =
        graph::with_random_weights(spec.make(ctx.scale), /*seed=*/42);
    auto d1 = harness::make_device();
    auto d2 = harness::make_device();
    algos::mst::Options orig, fixed_cfg;
    fixed_cfg.corrected_launch = true;
    const auto a = algos::mst::run(d1, g, orig);
    const auto b = algos::mst::run(d2, g, fixed_cfg);
    ECLP_CHECK_MSG(a.total_weight == b.total_weight,
                   "weight mismatch on " << spec.name);
    const double pct = 100.0 *
                       (static_cast<double>(a.modeled_cycles) -
                        static_cast<double>(b.modeled_cycles)) /
                       static_cast<double>(a.modeled_cycles);
    t.add_row({spec.name, fmt::signed_pct(pct, 2)});
  }
  harness::emit(ctx, "table8_mst_launch", t);
  return 0;
}
