// Serving-harness benchmark (src/serve/): cold vs. warm graph pool,
// request throughput, and latency percentiles under concurrent load.
//
// Four tables:
//   1. serve_cold_vs_warm — the same request batch served twice on one
//      Server: the cold round pays graph generation + CSR build per
//      distinct graph, the warm round runs entirely off the ref-counted
//      in-process pool (target: >= 2x round throughput);
//   2. serve_latency — p50/p99 request latency and sustained requests/sec
//      for a mixed algorithm stream over a warm pool;
//   3. serve_eviction — the same stream against a pool whose byte budget
//      forces continuous eviction, quantifying what the pool budget is
//      worth (hit rate and throughput vs. the unconstrained pool);
//   4. serve_telemetry_overhead — warm-pool throughput with telemetry off,
//      with the metrics registry bound, and with metrics + request tracing,
//      measured as paired alternating rounds (the acceptance bar for the
//      telemetry subsystem is <= 5% on the metrics row).
#include <algorithm>
#include <memory>
#include <vector>

#include "gen/suite.hpp"
#include "graph/pool.hpp"
#include "harness/harness.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

/// Distinct suite inputs, so the cold round builds several graphs; same
/// structural spread the ingest bench uses.
const char* const kInputs[] = {"europe_osm", "r4-2e23.sym",
                               "kron_g500-logn21", "soc-LiveJournal1",
                               "2d-2e20.sym"};

serve::Request make_request(const std::string& id, serve::Algo algo,
                            const char* input, gen::Scale scale) {
  serve::Request r;
  r.id = id;
  r.algo = algo;
  r.input = input;
  r.scale = scale;
  return r;
}

double percentile(std::vector<double> v, double p) {
  ECLP_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<usize>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

double req_per_sec(usize requests, double ms) {
  return 1e3 * static_cast<double>(requests) / ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv,
      "Serving harness: graph-pool reuse, throughput, latency percentiles");

  // --- 1: cold vs warm pool --------------------------------------------------
  {
    Table t("Serving: cold build round vs. warm pool round");
    t.set_header({"Requests", "cold ms", "cold req/s", "warm ms",
                  "warm req/s", "speedup", "hit rate"});

    // One request per distinct graph, cheapest algorithm: the cold round
    // is dominated by graph generation + CSR build, which is exactly the
    // cost the pool exists to amortize.
    serve::ServerOptions opt;
    serve::Server server(opt);
    std::vector<serve::Request> batch;
    for (usize i = 0; i < std::size(kInputs); ++i) {
      batch.push_back(make_request("cc-" + std::to_string(i), serve::Algo::kCc,
                                   kInputs[i], ctx.scale));
    }

    Timer cold_t;
    const auto cold = server.serve(batch);
    const double cold_ms = cold_t.milliseconds();
    for (const auto& r : cold) {
      ECLP_CHECK_MSG(r.status == serve::Status::kOk, r.id << ": " << r.error);
    }

    // Warm rounds hit the resident pool; median over --runs.
    std::vector<double> warm_ms_runs;
    for (int run = 0; run < ctx.runs; ++run) {
      Timer warm_t;
      const auto warm = server.serve(batch);
      warm_ms_runs.push_back(warm_t.milliseconds());
      for (usize i = 0; i < warm.size(); ++i) {
        ECLP_CHECK_MSG(warm[i].checksum == cold[i].checksum,
                       warm[i].id << ": warm result diverged from cold");
      }
    }
    const double warm_ms = percentile(warm_ms_runs, 0.5);

    const auto stats = server.stats();
    const double hit_rate =
        100.0 * static_cast<double>(stats.graphs.hits) /
        static_cast<double>(stats.graphs.requests);
    t.add_row({std::to_string(batch.size()), fmt::fixed(cold_ms, 2),
               fmt::fixed(req_per_sec(batch.size(), cold_ms), 1),
               fmt::fixed(warm_ms, 2),
               fmt::fixed(req_per_sec(batch.size(), warm_ms), 1),
               fmt::fixed(cold_ms / warm_ms, 2),
               fmt::fixed(hit_rate, 1) + "%"});
    harness::emit(ctx, "serve_cold_vs_warm", t);
  }

  // --- 2: latency percentiles under mixed load -------------------------------
  {
    Table t("Serving: latency percentiles, mixed algorithms, warm pool");
    t.set_header({"Requests", "threads", "total ms", "req/s", "p50 ms",
                  "p99 ms", "hit rate"});
    const serve::Algo algos[] = {serve::Algo::kCc, serve::Algo::kGc,
                                 serve::Algo::kMis};
    for (const u32 threads : {1u, 4u}) {
      serve::ServerOptions opt;
      opt.threads = threads;
      serve::Server server(opt);
      std::vector<serve::Request> stream;
      for (usize i = 0; i < 8 * std::size(kInputs); ++i) {
        stream.push_back(make_request(
            "s" + std::to_string(i), algos[i % std::size(algos)],
            kInputs[i % std::size(kInputs)], ctx.scale));
      }
      server.serve(stream);  // warm-up round: populate the pool

      Timer total_t;
      const auto responses = server.serve(stream);
      const double total_ms = total_t.milliseconds();
      std::vector<double> latencies;
      for (const auto& r : responses) {
        ECLP_CHECK_MSG(r.status == serve::Status::kOk,
                       r.id << ": " << r.error);
        latencies.push_back(r.wall_ms);
      }
      const auto stats = server.stats();
      t.add_row({std::to_string(stream.size()), std::to_string(threads),
                 fmt::fixed(total_ms, 2),
                 fmt::fixed(req_per_sec(stream.size(), total_ms), 1),
                 fmt::fixed(percentile(latencies, 0.5), 2),
                 fmt::fixed(percentile(latencies, 0.99), 2),
                 fmt::fixed(100.0 * static_cast<double>(stats.graphs.hits) /
                                static_cast<double>(stats.graphs.requests),
                            1) + "%"});
    }
    harness::emit(ctx, "serve_latency", t);
  }

  // --- 3: eviction pressure --------------------------------------------------
  {
    Table t("Serving: unconstrained pool vs. eviction-forcing byte budget");
    t.set_header({"Pool budget", "req/s", "hit rate", "evictions"});
    for (const bool constrained : {false, true}) {
      serve::ServerOptions opt;
      opt.threads = 4;
      // The constrained pool holds roughly one graph of the working set.
      opt.graph_pool_bytes = constrained ? (u64{1} << 20) : (u64{512} << 20);
      serve::Server server(opt);
      std::vector<serve::Request> stream;
      for (usize i = 0; i < 6 * std::size(kInputs); ++i) {
        stream.push_back(make_request("e" + std::to_string(i),
                                      serve::Algo::kCc,
                                      kInputs[i % std::size(kInputs)],
                                      ctx.scale));
      }
      server.serve(stream);  // warm-up (a no-op for the constrained pool)
      Timer total_t;
      const auto responses = server.serve(stream);
      const double total_ms = total_t.milliseconds();
      for (const auto& r : responses) {
        ECLP_CHECK_MSG(r.status == serve::Status::kOk,
                       r.id << ": " << r.error);
      }
      const auto stats = server.stats();
      t.add_row({constrained ? "1 MiB" : "512 MiB",
                 fmt::fixed(req_per_sec(stream.size(), total_ms), 1),
                 fmt::fixed(100.0 * static_cast<double>(stats.graphs.hits) /
                                static_cast<double>(stats.graphs.requests),
                            1) + "%",
                 std::to_string(stats.graphs.evictions)});
    }
    harness::emit(ctx, "serve_eviction", t);
  }

  // --- 4: telemetry overhead -------------------------------------------------
  {
    Table t("Serving: telemetry overhead on a warm pool, mixed stream");
    t.set_header({"Telemetry", "Requests", "median ms", "req/s", "overhead"});

    // The sharded counters and per-trace event buffers are the only new
    // work on the request path, so the honest measurement is the hot one:
    // a warm pool (no graph builds to hide behind) and the same mixed
    // stream as the latency table.
    const serve::Algo algos[] = {serve::Algo::kCc, serve::Algo::kGc,
                                 serve::Algo::kMis};
    std::vector<serve::Request> stream;
    for (usize i = 0; i < 8 * std::size(kInputs); ++i) {
      stream.push_back(make_request(
          "t" + std::to_string(i), algos[i % std::size(algos)],
          kInputs[i % std::size(kInputs)], ctx.scale));
    }

    struct Config {
      const char* label;
      std::unique_ptr<metrics::Registry> registry;
      std::unique_ptr<serve::TraceLog> trace;
      std::unique_ptr<serve::Server> server;
      std::vector<double> round_ms;
    };
    Config configs[3];
    configs[0].label = "off";
    configs[1].label = "metrics";
    configs[2].label = "metrics+trace";
    for (usize i = 0; i < std::size(configs); ++i) {
      auto& c = configs[i];
      if (i >= 1) c.registry = std::make_unique<metrics::Registry>();
      if (i >= 2) c.trace = std::make_unique<serve::TraceLog>();
      serve::ServerOptions opt;
      opt.threads = 4;
      opt.metrics = c.registry.get();
      opt.trace = c.trace.get();
      c.server = std::make_unique<serve::Server>(opt);
      c.server->serve(stream);  // warm-up: populate this server's pool
    }

    // Alternate one timed round per config within each repetition, so any
    // machine drift lands on all three configurations equally; report the
    // per-config median over --runs.
    for (int run = 0; run < ctx.runs; ++run) {
      for (auto& c : configs) {
        Timer round_t;
        const auto responses = c.server->serve(stream);
        c.round_ms.push_back(round_t.milliseconds());
        for (const auto& r : responses) {
          ECLP_CHECK_MSG(r.status == serve::Status::kOk,
                         r.id << ": " << r.error);
        }
      }
    }

    const double off_ms = percentile(configs[0].round_ms, 0.5);
    for (auto& c : configs) {
      const double ms = percentile(c.round_ms, 0.5);
      const double overhead = 100.0 * (ms / off_ms - 1.0);
      t.add_row({c.label, std::to_string(stream.size()), fmt::fixed(ms, 2),
                 fmt::fixed(req_per_sec(stream.size(), ms), 1),
                 c.registry == nullptr ? "baseline"
                                       : fmt::signed_pct(overhead) + "%"});
    }
    harness::emit(ctx, "serve_telemetry_overhead", t);
  }

  return 0;
}
