// Ablation — cost of the counter instrumentation itself.
//
// The paper (§3) notes that counter-based profiling "introduces overhead
// and, hence, affects the execution time". In this reproduction the counters
// are deliberately excluded from the cost model (so speedup tables compare
// algorithm changes, not instrumentation), which this bench verifies; the
// *wall-clock* overhead of the heavyweight recorders (per-iteration metrics,
// per-block series) is measured directly.
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "harness/harness.hpp"
#include "support/timer.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  const auto ctx = harness::parse(
      argc, argv, "Ablation: instrumentation overhead (modeled + wall clock)");

  Table t("Ablation — instrumentation overhead");
  t.set_header({"Code / recorder", "modeled cycles off", "modeled cycles on",
                "wall ms off", "wall ms on", "wall overhead"});

  {  // ECL-MST: per-iteration metrics + conflict tracking.
    const auto g = graph::with_random_weights(
        gen::find_input("amazon0601").make(ctx.scale), 42);
    const auto measure = [&](bool record) {
      auto dev = harness::make_device();
      algos::mst::Options opt;
      opt.record_iteration_metrics = record;
      Timer timer;
      const auto res = algos::mst::run(dev, g, opt);
      return std::pair{res.modeled_cycles, timer.milliseconds()};
    };
    const auto [cyc_off, ms_off] = measure(false);
    const auto [cyc_on, ms_on] = measure(true);
    t.add_row({"ECL-MST iteration metrics", fmt::grouped(cyc_off),
               fmt::grouped(cyc_on), fmt::fixed(ms_off, 1),
               fmt::fixed(ms_on, 1),
               fmt::fixed(100.0 * (ms_on - ms_off) / std::max(ms_off, 0.01),
                          1) +
                   "%"});
    ECLP_CHECK_MSG(cyc_off == cyc_on,
                   "instrumentation leaked into the cost model (MST)");
  }
  {  // ECL-SCC: per-block update series.
    const auto g = gen::find_input("cold-flow").make(ctx.scale);
    const auto measure = [&](bool record) {
      auto dev = harness::make_device();
      algos::scc::Options opt;
      opt.record_series = record;
      Timer timer;
      const auto res = algos::scc::run(dev, g, opt);
      return std::pair{res.modeled_cycles, timer.milliseconds()};
    };
    const auto [cyc_off, ms_off] = measure(false);
    const auto [cyc_on, ms_on] = measure(true);
    t.add_row({"ECL-SCC block series", fmt::grouped(cyc_off),
               fmt::grouped(cyc_on), fmt::fixed(ms_off, 1),
               fmt::fixed(ms_on, 1),
               fmt::fixed(100.0 * (ms_on - ms_off) / std::max(ms_off, 0.01),
                          1) +
                   "%"});
    ECLP_CHECK_MSG(cyc_off == cyc_on,
                   "instrumentation leaked into the cost model (SCC)");
  }
  harness::emit(ctx, "ablation_overhead", t);
  std::printf(
      "modeled cycles are identical with instrumentation on/off by design;\n"
      "wall-clock overhead is what a real counter-instrumented CUDA build\n"
      "would pay (paper §3).\n");
  return 0;
}
