// Shared plumbing for the bench binaries (one per paper table/figure).
//
// Every bench accepts:
//   --scale=tiny|small|default   input size (default: small — the trends of
//                                every table/figure already appear there;
//                                "default" strengthens them at ~10x cost)
//   --out=<dir>                  where CSV copies of each table are written
//                                (default: bench_results)
//   --runs=<k>                   repetitions for median-of-k measurements
// and prints the reproduced table plus, where the paper quotes one, the
// corresponding correlation coefficient.
#pragma once

#include <string>

#include "gen/suite.hpp"
#include "sim/device.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace eclp::harness {

struct BenchContext {
  gen::Scale scale = gen::Scale::kSmall;
  std::string out_dir = "bench_results";
  int runs = 3;
  Cli cli;
};

/// Parse the standard bench flags (plus any extras already added to `cli`).
BenchContext parse(int argc, const char* const* argv,
                   const std::string& description, Cli cli = {});

/// Print the table to stdout and drop a CSV copy in ctx.out_dir.
void emit(const BenchContext& ctx, const std::string& experiment_id,
          const Table& table);

/// Write an arbitrary text artifact (e.g. a full per-block CSV series).
void emit_raw(const BenchContext& ctx, const std::string& file_name,
              const std::string& contents);

/// Print a labelled correlation line (the r values the paper quotes inline).
void report_correlation(const std::string& label,
                        std::span<const double> xs,
                        std::span<const double> ys);

/// A device with the standard cost model; `seed` controls shuffled runs.
sim::Device make_device(u64 seed = 0,
                        sim::ScheduleMode mode =
                            sim::ScheduleMode::kDeterministic);

}  // namespace eclp::harness
