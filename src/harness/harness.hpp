// Shared plumbing for the bench binaries (one per paper table/figure).
//
// Every bench accepts:
//   --scale=tiny|small|default   input size (default: small — the trends of
//                                every table/figure already appear there;
//                                "default" strengthens them at ~10x cost)
//   --out=<dir>                  where CSV copies of each table are written
//                                (default: bench_results)
//   --runs=<k>                   repetitions for median-of-k measurements
//   --json=<path>                machine-readable copy of every emitted
//                                table (one JSON document; numbers parsed
//                                back out of the formatted cells) — the
//                                BENCH_<name>.json perf-trajectory artifacts
//   --build-threads=<n>          ingest parallelism (ECLP_BUILD_THREADS)
//   --graph-cache=<dir>          content-addressed graph cache dir
//                                (ECLP_GRAPH_CACHE) — see docs/INGEST.md
//   --reorder=<spec>             vertex reordering applied to every input
//                                (natural|random[:SEED]|bfs|degree|hub|
//                                hubcluster|gorder[:WINDOW])
//   --llc=<spec>                 modeled last-level cache (off|on|L:W:S) —
//                                see docs/SIMULATOR.md "Modeled LLC"
// and prints the reproduced table plus, where the paper quotes one, the
// corresponding correlation coefficient.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gen/suite.hpp"
#include "graph/reorder.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace eclp::harness {

struct BenchContext {
  gen::Scale scale = gen::Scale::kSmall;
  std::string out_dir = "bench_results";
  int runs = 3;
  std::string bench_name;  ///< argv[0] basename, the JSON "bench" field
  std::string json_path;   ///< --json destination; empty = no JSON artifact
  /// --profile destination (or $ECLP_PROFILE); empty = profiling off.
  /// Consumed by maybe_session().
  std::string profile_path;
  /// --reorder: applied by reorder() to every input the bench obtains.
  graph::ReorderSpec reorder_spec;
  /// --llc: modeled-LLC shape baked into every make_device(ctx, ...) call.
  sim::CacheConfig llc;
  Cli cli;
  /// Tables seen by emit(); the JSON artifact is rewritten from this after
  /// every emit, so it is complete whenever the process exits.
  mutable std::vector<std::pair<std::string, Table>> json_tables;
};

/// Parse the standard bench flags (plus any extras already added to `cli`).
BenchContext parse(int argc, const char* const* argv,
                   const std::string& description, Cli cli = {});

/// Print the table to stdout, drop a CSV copy in ctx.out_dir, and — when
/// --json was given — rewrite the JSON artifact with every table emitted so
/// far.
void emit(const BenchContext& ctx, const std::string& experiment_id,
          const Table& table);

/// Write an arbitrary text artifact (e.g. a full per-block CSV series).
void emit_raw(const BenchContext& ctx, const std::string& file_name,
              const std::string& contents);

/// Print a labelled correlation line (the r values the paper quotes inline).
void report_correlation(const std::string& label,
                        std::span<const double> xs,
                        std::span<const double> ys);

/// A device with the standard cost model; `seed` controls shuffled runs.
sim::Device make_device(u64 seed = 0,
                        sim::ScheduleMode mode =
                            sim::ScheduleMode::kDeterministic);

/// A device honoring the bench's --llc flag (standard cost model
/// otherwise). Benches that sweep orderings use this so modeled hit/miss
/// counters appear without per-bench plumbing.
sim::Device make_device(const BenchContext& ctx, u64 seed = 0,
                        sim::ScheduleMode mode =
                            sim::ScheduleMode::kDeterministic);

/// Apply the bench's --reorder spec to `g` (identity for natural); the
/// relabeled CSR is memoized through the graph cache when one is attached.
graph::Csr reorder(const BenchContext& ctx, const graph::Csr& g);

/// A profiling session attached to `dev` when the bench was invoked with
/// --profile=<path> (or ECLP_PROFILE is set); nullptr otherwise. The
/// session writes its profile + Perfetto artifacts when destroyed, so keep
/// it alive across the run() calls it should cover.
std::unique_ptr<profile::Session> maybe_session(
    const BenchContext& ctx, sim::Device& dev,
    profile::CounterRegistry* registry = nullptr);

}  // namespace eclp::harness
