#include "harness/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "gen/stream.hpp"
#include "graph/cache.hpp"
#include "support/parallel_for.hpp"
#include "support/stats.hpp"

namespace eclp::harness {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a table cell as a JSON value: cells that are numbers under the
/// table formatters (thousands separators stripped) come back out as
/// numbers, everything else as a string.
std::string json_cell(const std::string& cell) {
  std::string stripped;
  for (const char c : cell) {
    if (c != ',') stripped += c;
  }
  if (!stripped.empty()) {
    char* end = nullptr;
    std::strtod(stripped.c_str(), &end);
    if (end != nullptr && *end == '\0') return stripped;
  }
  return '"' + json_escape(cell) + '"';
}

/// Rewrite ctx.json_path from the tables collected so far. The whole
/// document is regenerated on every emit so a bench that exits between
/// tables still leaves a valid artifact behind.
void write_json(const BenchContext& ctx) {
  std::ofstream os(ctx.json_path);
  if (!os) {
    std::cerr << "warning: cannot write " << ctx.json_path << '\n';
    return;
  }
  os << "{\n  \"bench\": \"" << json_escape(ctx.bench_name) << "\",\n"
     << "  \"tables\": [";
  bool first_table = true;
  for (const auto& [id, table] : ctx.json_tables) {
    os << (first_table ? "\n" : ",\n");
    first_table = false;
    os << "    {\n      \"id\": \"" << json_escape(id) << "\",\n"
       << "      \"title\": \"" << json_escape(table.title()) << "\",\n"
       << "      \"rows\": [";
    for (usize r = 0; r < table.rows(); ++r) {
      os << (r == 0 ? "\n" : ",\n") << "        {";
      const auto& row = table.row(r);
      for (usize c = 0; c < table.cols(); ++c) {
        os << (c == 0 ? "" : ", ") << '"' << json_escape(table.header()[c])
           << "\": " << json_cell(row[c]);
      }
      os << '}';
    }
    os << "\n      ]\n    }";
  }
  os << "\n  ]\n}\n";
}

}  // namespace

BenchContext parse(int argc, const char* const* argv,
                   const std::string& description, Cli cli) {
  BenchContext ctx;
  ctx.cli = std::move(cli);
  ctx.bench_name =
      std::filesystem::path(argc > 0 ? argv[0] : "bench").filename().string();
  ctx.cli.add_option("scale",
                     "input scale: tiny|small|default|huge (huge exists "
                     "only for streamed entries, see docs/INGEST.md)",
                     "small");
  ctx.cli.add_option("out", "directory for CSV copies", "bench_results");
  ctx.cli.add_option("runs", "repetitions for median measurements", "3");
  ctx.cli.add_option("json",
                     "write a machine-readable JSON copy of every emitted "
                     "table to this path (e.g. BENCH_<name>.json)",
                     "");
  ctx.cli.add_option("sim-threads",
                     "host worker threads for block-parallel simulation "
                     "(0 = one per hardware thread; overrides "
                     "ECLP_SIM_THREADS)",
                     "");
  ctx.cli.add_option("profile",
                     "write a profiling-session artifact (eclp.profile JSON "
                     "plus a .trace.json Perfetto trace) to this path; "
                     "overrides ECLP_PROFILE",
                     "");
  ctx.cli.add_option("build-threads",
                     "host threads for parallel graph ingest (0 = one per "
                     "hardware thread; overrides ECLP_BUILD_THREADS)",
                     "");
  ctx.cli.add_option("graph-cache",
                     "content-addressed .eclg cache directory — repeat runs "
                     "skip graph generation/parsing/build; overrides "
                     "ECLP_GRAPH_CACHE",
                     "");
  ctx.cli.add_option("gen-chunks",
                     "chunk count for streamed (scale=huge) generation — "
                     "scheduling granularity only, the generated graph is "
                     "chunk-count-invariant (0 = default)",
                     "");
  ctx.cli.add_option("reorder",
                     "vertex reordering applied to every input: natural, "
                     "random[:SEED], bfs, degree, hub, hubcluster, "
                     "gorder[:WINDOW]",
                     "natural");
  ctx.cli.add_option("llc",
                     "modeled last-level cache: off (default), on, or "
                     "LINE:WAYS:SETS (e.g. 64:8:64)",
                     "off");
  ctx.cli.add_flag("help", "show usage");
  ctx.cli.parse(argc, argv);
  if (ctx.cli.get_flag("help")) {
    std::cout << description << "\n\n" << ctx.cli.usage(argv[0]);
    std::exit(0);
  }
  ctx.scale = gen::parse_scale(ctx.cli.get("scale"));
  ctx.out_dir = ctx.cli.get("out");
  ctx.json_path = ctx.cli.get("json");
  ctx.runs = static_cast<int>(ctx.cli.get_int("runs"));
  ECLP_CHECK(ctx.runs >= 1);
  if (!ctx.cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(ctx.cli.get_int("sim-threads")));
  }
  if (!ctx.cli.get("build-threads").empty()) {
    set_build_threads(static_cast<u32>(ctx.cli.get_int("build-threads")));
  }
  if (!ctx.cli.get("graph-cache").empty()) {
    graph::set_cache_dir(ctx.cli.get("graph-cache"));
  }
  if (!ctx.cli.get("gen-chunks").empty()) {
    gen::set_gen_chunks(static_cast<u64>(ctx.cli.get_int("gen-chunks")));
  }
  ctx.reorder_spec = graph::ReorderSpec::parse(ctx.cli.get("reorder"));
  ctx.llc = sim::parse_cache_config(ctx.cli.get("llc"));
  ctx.profile_path = ctx.cli.get("profile");
  if (ctx.profile_path.empty()) {
    // Mirror ECLP_SIM_THREADS: the environment configures what the flag
    // configures, so wrappers (ctest labels, CI scripts) need no argv edits.
    const char* env = std::getenv("ECLP_PROFILE");
    if (env != nullptr) ctx.profile_path = env;
  }
  std::cout << description << "  [scale=" << ctx.cli.get("scale")
            << ", runs=" << ctx.runs << "]\n\n";
  return ctx;
}

void emit(const BenchContext& ctx, const std::string& experiment_id,
          const Table& table) {
  std::cout << table.to_text() << '\n';
  emit_raw(ctx, experiment_id + ".csv", table.to_csv());
  if (!ctx.json_path.empty()) {
    ctx.json_tables.emplace_back(experiment_id, table);
    write_json(ctx);
  }
}

void emit_raw(const BenchContext& ctx, const std::string& file_name,
              const std::string& contents) {
  std::error_code ec;
  std::filesystem::create_directories(ctx.out_dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create " << ctx.out_dir << ": "
              << ec.message() << '\n';
    return;
  }
  const auto path = std::filesystem::path(ctx.out_dir) / file_name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  os << contents;
}

void report_correlation(const std::string& label,
                        std::span<const double> xs,
                        std::span<const double> ys) {
  std::printf("correlation  %-52s r = %+.2f\n", label.c_str(),
              stats::pearson(xs, ys));
}

sim::Device make_device(u64 seed, sim::ScheduleMode mode) {
  return sim::Device(sim::CostModel{}, seed, mode);
}

sim::Device make_device(const BenchContext& ctx, u64 seed,
                        sim::ScheduleMode mode) {
  sim::CostModel cost;
  cost.cache = ctx.llc;
  return sim::Device(cost, seed, mode);
}

graph::Csr reorder(const BenchContext& ctx, const graph::Csr& g) {
  return graph::apply_reorder(g, ctx.reorder_spec);
}

std::unique_ptr<profile::Session> maybe_session(
    const BenchContext& ctx, sim::Device& dev,
    profile::CounterRegistry* registry) {
  if (ctx.profile_path.empty()) return nullptr;
  auto session = std::make_unique<profile::Session>(dev, registry);
  session->set_meta("bench", ctx.bench_name);
  session->set_output(ctx.profile_path);
  return session;
}

}  // namespace eclp::harness
