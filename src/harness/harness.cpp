#include "harness/harness.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "support/stats.hpp"

namespace eclp::harness {

BenchContext parse(int argc, const char* const* argv,
                   const std::string& description, Cli cli) {
  BenchContext ctx;
  ctx.cli = std::move(cli);
  ctx.cli.add_option("scale", "input scale: tiny|small|default", "small");
  ctx.cli.add_option("out", "directory for CSV copies", "bench_results");
  ctx.cli.add_option("runs", "repetitions for median measurements", "3");
  ctx.cli.add_option("sim-threads",
                     "host worker threads for block-parallel simulation "
                     "(0 = one per hardware thread; overrides "
                     "ECLP_SIM_THREADS)",
                     "");
  ctx.cli.add_flag("help", "show usage");
  ctx.cli.parse(argc, argv);
  if (ctx.cli.get_flag("help")) {
    std::cout << description << "\n\n" << ctx.cli.usage(argv[0]);
    std::exit(0);
  }
  ctx.scale = gen::parse_scale(ctx.cli.get("scale"));
  ctx.out_dir = ctx.cli.get("out");
  ctx.runs = static_cast<int>(ctx.cli.get_int("runs"));
  ECLP_CHECK(ctx.runs >= 1);
  if (!ctx.cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(ctx.cli.get_int("sim-threads")));
  }
  std::cout << description << "  [scale=" << ctx.cli.get("scale")
            << ", runs=" << ctx.runs << "]\n\n";
  return ctx;
}

void emit(const BenchContext& ctx, const std::string& experiment_id,
          const Table& table) {
  std::cout << table.to_text() << '\n';
  emit_raw(ctx, experiment_id + ".csv", table.to_csv());
}

void emit_raw(const BenchContext& ctx, const std::string& file_name,
              const std::string& contents) {
  std::error_code ec;
  std::filesystem::create_directories(ctx.out_dir, ec);
  if (ec) {
    std::cerr << "warning: cannot create " << ctx.out_dir << ": "
              << ec.message() << '\n';
    return;
  }
  const auto path = std::filesystem::path(ctx.out_dir) / file_name;
  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  os << contents;
}

void report_correlation(const std::string& label,
                        std::span<const double> xs,
                        std::span<const double> ys) {
  std::printf("correlation  %-52s r = %+.2f\n", label.c_str(),
              stats::pearson(xs, ys));
}

sim::Device make_device(u64 seed, sim::ScheduleMode mode) {
  return sim::Device(sim::CostModel{}, seed, mode);
}

}  // namespace eclp::harness
