#include "graph/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"

namespace eclp::graph {

namespace {

struct Header {
  std::string kind;
  u64 vertices = 0;
  u64 edges = 0;
};

/// Skip "c" comment lines and parse the "p <kind> n m" line.
Header read_header(std::istream& is, const std::string& expected_kind) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    ECLP_CHECK_MSG(line[0] == 'p', "dimacs: expected 'p' line, got: " << line);
    std::istringstream ls(line);
    char p = 0;
    Header h;
    ls >> p >> h.kind >> h.vertices >> h.edges;
    ECLP_CHECK_MSG(static_cast<bool>(ls), "dimacs: malformed 'p' line");
    ECLP_CHECK_MSG(h.kind == expected_kind,
                   "dimacs: expected 'p " << expected_kind << "', got 'p "
                                          << h.kind << "'");
    ECLP_CHECK_MSG(h.vertices < kNoVertex, "dimacs: too many vertices");
    return h;
  }
  ECLP_CHECK_MSG(false, "dimacs: missing 'p' line");
  return {};
}

}  // namespace

Csr read_dimacs_sp(std::istream& is, bool symmetrize) {
  const Header h = read_header(is, "sp");
  Builder b(static_cast<vidx>(h.vertices));
  b.reserve(h.edges);
  std::string line;
  u64 arcs = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    ECLP_CHECK_MSG(line[0] == 'a', "dimacs sp: expected 'a' line: " << line);
    std::istringstream ls(line);
    char a = 0;
    u64 u = 0, v = 0, w = 0;
    ls >> a >> u >> v >> w;
    ECLP_CHECK_MSG(static_cast<bool>(ls), "dimacs sp: malformed arc: " << line);
    ECLP_CHECK_MSG(u >= 1 && u <= h.vertices && v >= 1 && v <= h.vertices,
                   "dimacs sp: arc endpoint out of range: " << line);
    b.add(static_cast<vidx>(u - 1), static_cast<vidx>(v - 1),
          static_cast<weight_t>(w));
    ++arcs;
  }
  ECLP_CHECK_MSG(arcs == h.edges, "dimacs sp: header promised "
                                      << h.edges << " arcs, file had "
                                      << arcs);
  BuildOptions opt;
  opt.directed = !symmetrize;
  opt.weighted = true;
  return b.build(opt);
}

void write_dimacs_sp(const Csr& g, std::ostream& os) {
  ECLP_CHECK_MSG(g.weighted(), "dimacs sp: graph needs weights");
  os << "c written by ecl-profile\n";
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights_of(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      os << "a " << (u + 1) << ' ' << (nbrs[i] + 1) << ' ' << ws[i] << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "dimacs sp: write failed");
}

Csr read_dimacs_col(std::istream& is) {
  const Header h = read_header(is, "edge");
  Builder b(static_cast<vidx>(h.vertices));
  b.reserve(h.edges);
  std::string line;
  u64 edges = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    ECLP_CHECK_MSG(line[0] == 'e', "dimacs col: expected 'e' line: " << line);
    std::istringstream ls(line);
    char e = 0;
    u64 u = 0, v = 0;
    ls >> e >> u >> v;
    ECLP_CHECK_MSG(static_cast<bool>(ls), "dimacs col: malformed edge: "
                                              << line);
    ECLP_CHECK_MSG(u >= 1 && u <= h.vertices && v >= 1 && v <= h.vertices,
                   "dimacs col: endpoint out of range: " << line);
    b.add(static_cast<vidx>(u - 1), static_cast<vidx>(v - 1));
    ++edges;
  }
  ECLP_CHECK_MSG(edges == h.edges, "dimacs col: header promised "
                                       << h.edges << " edges, file had "
                                       << edges);
  return b.build();
}

void write_dimacs_col(const Csr& g, std::ostream& os) {
  ECLP_CHECK_MSG(!g.directed(), "dimacs col: graph must be undirected");
  os << "c written by ecl-profile\n";
  os << "p edge " << g.num_vertices() << ' ' << g.num_edges() / 2 << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (v < u) continue;  // each edge once
      os << "e " << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "dimacs col: write failed");
}

}  // namespace eclp::graph
