#include "graph/dimacs.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/text_parse.hpp"
#include "support/parallel_for.hpp"

namespace eclp::graph {

namespace {

struct Header {
  u64 vertices = 0;
  u64 edges = 0;
};

std::string slurp(std::istream& is) {
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

/// Consume one line off the front of `text` (no '\n', no trailing '\r').
std::string_view next_line(std::string_view& text) {
  const usize nl = text.find('\n');
  std::string_view line = text.substr(0, nl);
  text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

/// Skip "c" comment lines and parse the "p <kind> n m" line; `text` is
/// left pointing at the first body line.
Header read_header(std::string_view& text, const std::string& expected_kind) {
  while (!text.empty()) {
    std::string_view line = next_line(text);
    if (line.empty() || line[0] == 'c') continue;
    ECLP_CHECK_MSG(line[0] == 'p', "dimacs: expected 'p' line, got: " << line);
    std::istringstream ls{std::string(line)};
    char p = 0;
    std::string kind;
    Header h;
    ls >> p >> kind >> h.vertices >> h.edges;
    ECLP_CHECK_MSG(static_cast<bool>(ls), "dimacs: malformed 'p' line");
    ECLP_CHECK_MSG(kind == expected_kind,
                   "dimacs: expected 'p " << expected_kind << "', got 'p "
                                          << kind << "'");
    ECLP_CHECK_MSG(h.vertices < kNoVertex, "dimacs: too many vertices");
    return h;
  }
  ECLP_CHECK_MSG(false, "dimacs: missing 'p' line");
  return {};
}

/// Chunk-parallel sweep over the body lines: every line must be a comment,
/// blank, or start with `tag`; fn parses the payload after the tag into the
/// chunk's private edge buffer. Buffers come back in chunk order, so the
/// concatenation equals a serial sweep (docs/INGEST.md).
template <typename ParseLine>
std::vector<std::vector<Edge>> parse_body(std::string_view body, char tag,
                                          const char* what,
                                          ParseLine&& parse_line) {
  Pool* pool = build_pool();
  const auto chunks =
      detail::chunk_at_lines(body, pool == nullptr ? 1 : pool->size());
  std::vector<std::vector<Edge>> chunk_edges(chunks.size());
  parallel_for_chunks(
      pool, chunks.size(), chunks.size(), [&](u64 c, u64, u64, u32) {
        std::vector<Edge>& out = chunk_edges[c];
        out.reserve(chunks[c].size() / 8 + 1);
        detail::for_each_line(chunks[c], [&](std::string_view line) {
          if (line.empty() || line[0] == 'c') return;
          ECLP_CHECK_MSG(line[0] == tag, "dimacs " << what << ": expected '"
                                                   << tag
                                                   << "' line: " << line);
          parse_line(line.substr(1), line, out);
        });
      });
  return chunk_edges;
}

}  // namespace

Csr parse_dimacs_sp(std::string_view text, bool symmetrize) {
  const Header h = read_header(text, "sp");
  const auto chunk_edges = parse_body(
      text, 'a', "sp",
      [&](std::string_view s, std::string_view line, std::vector<Edge>& out) {
        u64 u = 0, v = 0, w = 0;
        ECLP_CHECK_MSG(detail::parse_u64(s, u) && detail::parse_u64(s, v) &&
                           detail::parse_u64(s, w),
                       "dimacs sp: malformed arc: " << line);
        ECLP_CHECK_MSG(u >= 1 && u <= h.vertices && v >= 1 && v <= h.vertices,
                       "dimacs sp: arc endpoint out of range: " << line);
        out.push_back({static_cast<vidx>(u - 1), static_cast<vidx>(v - 1),
                       static_cast<weight_t>(w)});
      });
  u64 arcs = 0;
  for (const auto& ce : chunk_edges) arcs += ce.size();
  ECLP_CHECK_MSG(arcs == h.edges, "dimacs sp: header promised "
                                      << h.edges << " arcs, file had "
                                      << arcs);
  Builder b(static_cast<vidx>(h.vertices));
  b.reserve_edges(arcs);
  for (const auto& ce : chunk_edges) b.add_edges(ce);
  BuildOptions opt;
  opt.directed = !symmetrize;
  opt.weighted = true;
  return b.build(opt);
}

Csr read_dimacs_sp(std::istream& is, bool symmetrize) {
  return parse_dimacs_sp(slurp(is), symmetrize);
}

void write_dimacs_sp(const Csr& g, std::ostream& os) {
  ECLP_CHECK_MSG(g.weighted(), "dimacs sp: graph needs weights");
  os << "c written by ecl-profile\n";
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights_of(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      os << "a " << (u + 1) << ' ' << (nbrs[i] + 1) << ' ' << ws[i] << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "dimacs sp: write failed");
}

Csr parse_dimacs_col(std::string_view text) {
  const Header h = read_header(text, "edge");
  const auto chunk_edges = parse_body(
      text, 'e', "col",
      [&](std::string_view s, std::string_view line, std::vector<Edge>& out) {
        u64 u = 0, v = 0;
        ECLP_CHECK_MSG(detail::parse_u64(s, u) && detail::parse_u64(s, v),
                       "dimacs col: malformed edge: " << line);
        ECLP_CHECK_MSG(u >= 1 && u <= h.vertices && v >= 1 && v <= h.vertices,
                       "dimacs col: endpoint out of range: " << line);
        out.push_back({static_cast<vidx>(u - 1), static_cast<vidx>(v - 1), 0});
      });
  u64 edges = 0;
  for (const auto& ce : chunk_edges) edges += ce.size();
  ECLP_CHECK_MSG(edges == h.edges, "dimacs col: header promised "
                                       << h.edges << " edges, file had "
                                       << edges);
  Builder b(static_cast<vidx>(h.vertices));
  b.reserve_edges(edges);
  for (const auto& ce : chunk_edges) b.add_edges(ce);
  return b.build();
}

Csr read_dimacs_col(std::istream& is) {
  return parse_dimacs_col(slurp(is));
}

void write_dimacs_col(const Csr& g, std::ostream& os) {
  ECLP_CHECK_MSG(!g.directed(), "dimacs col: graph must be undirected");
  os << "c written by ecl-profile\n";
  os << "p edge " << g.num_vertices() << ' ' << g.num_edges() / 2 << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (v < u) continue;  // each edge once
      os << "e " << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "dimacs col: write failed");
}

}  // namespace eclp::graph
