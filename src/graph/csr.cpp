#include "graph/csr.hpp"

#include <algorithm>

namespace eclp::graph {

Csr Csr::from_parts(vidx num_vertices, std::vector<eidx> row_offsets,
                    std::vector<vidx> col_indices,
                    std::vector<weight_t> weights, bool directed) {
  ECLP_CHECK_MSG(row_offsets.size() == static_cast<usize>(num_vertices) + 1,
                 "row_offsets size " << row_offsets.size() << " != n+1 = "
                                     << num_vertices + 1);
  ECLP_CHECK(row_offsets.front() == 0);
  ECLP_CHECK(row_offsets.back() == col_indices.size());
  ECLP_CHECK(weights.empty() || weights.size() == col_indices.size());
  Csr g;
  g.num_vertices_ = num_vertices;
  g.directed_ = directed;
  g.row_offsets_ = std::move(row_offsets);
  g.col_indices_ = std::move(col_indices);
  g.weights_ = std::move(weights);
  return g;
}

void Csr::validate() const {
  ECLP_CHECK(row_offsets_.size() == static_cast<usize>(num_vertices_) + 1);
  ECLP_CHECK(row_offsets_.front() == 0);
  ECLP_CHECK(row_offsets_.back() == col_indices_.size());
  for (vidx v = 0; v < num_vertices_; ++v) {
    ECLP_CHECK_MSG(row_offsets_[v] <= row_offsets_[v + 1],
                   "offsets not monotone at vertex " << v);
  }
  for (const vidx t : col_indices_) {
    ECLP_CHECK_MSG(t < num_vertices_, "edge target " << t << " out of range");
  }
  if (!directed_) {
    // Symmetry: every arc u->v must have a matching v->u. Count-based check
    // is insufficient (multi-edges), so do a per-arc binary search when
    // adjacency is sorted, else a linear scan.
    for (vidx u = 0; u < num_vertices_; ++u) {
      for (const vidx v : neighbors(u)) {
        const auto nb = neighbors(v);
        const bool found =
            std::is_sorted(nb.begin(), nb.end())
                ? std::binary_search(nb.begin(), nb.end(), u)
                : std::find(nb.begin(), nb.end(), u) != nb.end();
        ECLP_CHECK_MSG(found, "undirected graph missing reverse arc " << v
                                                                      << "->"
                                                                      << u);
      }
    }
  }
}

DegreeStats degree_stats(const Csr& g) {
  DegreeStats s;
  if (g.num_vertices() == 0) return s;
  s.min = g.degree(0);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const vidx d = g.degree(v);
    s.max = std::max(s.max, d);
    s.min = std::min(s.min, d);
  }
  s.avg = static_cast<double>(g.num_edges()) /
          static_cast<double>(g.num_vertices());
  return s;
}

}  // namespace eclp::graph
