#include "graph/cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>

#include <unistd.h>

#include "graph/io.hpp"

namespace eclp::graph {

namespace {

std::mutex g_mutex;
bool g_dir_initialized = false;
std::string g_dir;
CacheStats g_stats;
std::set<std::string> g_warned_paths;

std::string cache_dir_locked() {
  if (!g_dir_initialized) {
    g_dir_initialized = true;
    const char* env = std::getenv("ECLP_GRAPH_CACHE");
    g_dir = env == nullptr ? "" : env;
  }
  return g_dir;
}

/// The cache degrades to a rebuild on any I/O problem; say so exactly once
/// *per path* so a broken entry does not flood stderr on every open of a
/// long-lived process, while trouble with a different entry (or directory)
/// still surfaces.
void warn_once(const std::string& path, const std::string& what) {
  bool fresh;
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    fresh = g_warned_paths.insert(path).second;
  }
  if (fresh) {
    std::fprintf(stderr, "eclp: graph cache: %s (falling back to rebuild)\n",
                 what.c_str());
  }
}

std::filesystem::path entry_path(const std::string& dir, const CacheKey& key) {
  return std::filesystem::path(dir) / (key.hex() + ".eclg");
}

}  // namespace

CacheKey& CacheKey::mix(std::string_view bytes) {
  mix_u64(bytes.size());
  for (const char c : bytes) {
    const u64 b = static_cast<u8>(c);
    lo_ = (lo_ ^ b) * 0x100000001b3ULL;          // FNV-1a
    hi_ = (hi_ ^ (b + 0x9e3779b97f4a7c15ULL));   // xor-multiply lane
    hi_ *= 0xff51afd7ed558ccdULL;
    hi_ ^= hi_ >> 33;
  }
  return *this;
}

CacheKey& CacheKey::mix_u64(u64 v) {
  for (int i = 0; i < 8; ++i) {
    const u64 b = (v >> (8 * i)) & 0xff;
    lo_ = (lo_ ^ b) * 0x100000001b3ULL;
    hi_ = (hi_ ^ (b + 0x9e3779b97f4a7c15ULL));
    hi_ *= 0xff51afd7ed558ccdULL;
    hi_ ^= hi_ >> 33;
  }
  return *this;
}

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(lo_),
                static_cast<unsigned long long>(hi_));
  return buf;
}

std::string cache_dir() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return cache_dir_locked();
}

void set_cache_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_dir_initialized = true;
  g_dir = dir;
}

CacheStats cache_stats() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_stats;
}

void reset_cache_stats() {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_stats = CacheStats{};
}

usize cache_warned_paths() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return g_warned_paths.size();
}

void reset_cache_warnings() {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_warned_paths.clear();
}

std::optional<Csr> cache_load(const CacheKey& key) {
  const std::string dir = cache_dir();
  if (dir.empty()) return std::nullopt;
  const auto path = entry_path(dir, key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lk(g_mutex);
    g_stats.misses++;
    return std::nullopt;
  }
  try {
    Csr g = load_binary(path.string());
    std::lock_guard<std::mutex> lk(g_mutex);
    g_stats.hits++;
    return g;
  } catch (const std::exception& e) {
    warn_once(path.string(), "corrupt entry " + path.string() + ": " + e.what());
    std::filesystem::remove(path, ec);  // drop it so the rebuild re-stores
    std::lock_guard<std::mutex> lk(g_mutex);
    g_stats.corrupt++;
    return std::nullopt;
  }
}

void cache_store(const CacheKey& key, const Csr& g) {
  const std::string dir = cache_dir();
  if (dir.empty()) return;
  const auto path = entry_path(dir, key);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    warn_once(dir, "cannot create " + dir + ": " + ec.message());
    return;
  }
  // Unique temp name per process *and* per store: concurrent writers —
  // other processes sharing the directory, or this process's serving
  // threads racing on the same key — never interleave into one temp file;
  // whoever renames last wins, and both wrote identical bytes for the key.
  static std::atomic<u64> tmp_seq{0};
  const auto tmp = path.string() + ".tmp." +
                   std::to_string(static_cast<unsigned long>(::getpid())) +
                   "." + std::to_string(tmp_seq.fetch_add(1));
  try {
    save_binary(g, tmp);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      warn_once(path.string(), "cannot rename " + tmp + ": " + ec.message());
      std::filesystem::remove(tmp, ec);
      return;
    }
  } catch (const std::exception& e) {
    warn_once(path.string(), std::string("cannot write entry: ") + e.what());
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lk(g_mutex);
  g_stats.stores++;
}

Csr cache_or_build(const CacheKey& key, const std::function<Csr()>& build) {
  if (auto cached = cache_load(key)) return std::move(*cached);
  Csr g = build();
  cache_store(key, g);
  return g;
}

}  // namespace eclp::graph
