// DIMACS graph formats.
//
// Two dialects are supported:
//  * the 9th DIMACS Implementation Challenge shortest-path format (".gr":
//    "p sp n m" header, "a u v w" arc lines, 1-based) — the format the
//    paper's USA-road-d.* inputs ship in;
//  * the DIMACS clique/coloring format (".col": "p edge n m" header,
//    "e u v" edge lines, 1-based), read as an undirected graph.
//
// Reading is chunk-parallel on the build pool (byte ranges split at line
// boundaries, per-chunk edge buffers merged in chunk order — see
// docs/INGEST.md); the parsed graph is identical at any thread count.
#pragma once

#include <iosfwd>
#include <string_view>

#include "graph/csr.hpp"

namespace eclp::graph {

/// Read a ".gr" shortest-path file. Arcs keep their direction unless
/// `symmetrize` is set (road networks list both directions already).
Csr read_dimacs_sp(std::istream& is, bool symmetrize = false);
Csr parse_dimacs_sp(std::string_view text, bool symmetrize = false);
void write_dimacs_sp(const Csr& g, std::ostream& os);

/// Read a ".col" edge-format file (always undirected, unweighted).
Csr read_dimacs_col(std::istream& is);
Csr parse_dimacs_col(std::string_view text);
void write_dimacs_col(const Csr& g, std::ostream& os);

}  // namespace eclp::graph
