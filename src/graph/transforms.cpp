#include "graph/transforms.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace eclp::graph {

Csr transpose(const Csr& g) {
  Builder b(g.num_vertices());
  b.reserve_edges(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const weight_t w = g.weighted() ? g.weights_of(u)[i] : 0;
      b.add(nbrs[i], u, w);
    }
  }
  BuildOptions opt;
  opt.directed = true;
  opt.weighted = g.weighted();
  opt.remove_self_loops = false;
  opt.dedupe = false;
  return b.build(opt);
}

Csr symmetrize(const Csr& g) {
  Builder b(g.num_vertices());
  b.reserve_edges(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const weight_t w = g.weighted() ? g.weights_of(u)[i] : 0;
      b.add(u, nbrs[i], w);
    }
  }
  BuildOptions opt;
  opt.directed = false;
  opt.weighted = g.weighted();
  opt.remove_self_loops = true;
  opt.dedupe = true;
  return b.build(opt);
}

namespace {

/// Rebuild a CSR from one-sided arc copies: the arcs already include both
/// directions for undirected graphs, so the builder must not mirror again;
/// the undirected flag is restored on the assembled parts.
Csr assemble_as_is(Builder& b, const Csr& original) {
  BuildOptions opt;
  opt.directed = true;
  opt.weighted = original.weighted();
  opt.remove_self_loops = false;
  opt.dedupe = false;
  Csr out = b.build(opt);
  return Csr::from_parts(
      out.num_vertices(),
      std::vector<eidx>(out.row_offsets().begin(), out.row_offsets().end()),
      std::vector<vidx>(out.col_indices().begin(), out.col_indices().end()),
      std::vector<weight_t>(out.weights().begin(), out.weights().end()),
      original.directed());
}

}  // namespace

Csr remove_self_loops(const Csr& g) {
  Builder b(g.num_vertices());
  b.reserve_edges(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == u) continue;
      const weight_t w = g.weighted() ? g.weights_of(u)[i] : 0;
      b.add(u, nbrs[i], w);
    }
  }
  return assemble_as_is(b, g);
}

Csr relabel(const Csr& g, std::span<const vidx> perm) {
  ECLP_CHECK(perm.size() == g.num_vertices());
  // Verify it is a permutation.
  std::vector<bool> seen(g.num_vertices(), false);
  for (const vidx p : perm) {
    ECLP_CHECK(p < g.num_vertices());
    ECLP_CHECK_MSG(!seen[p], "relabel: duplicate target id " << p);
    seen[p] = true;
  }
  Builder b(g.num_vertices());
  b.reserve_edges(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const weight_t w = g.weighted() ? g.weights_of(u)[i] : 0;
      b.add(perm[u], perm[nbrs[i]], w);
    }
  }
  return assemble_as_is(b, g);
}

std::vector<vidx> degree_descending_order(const Csr& g) {
  std::vector<vidx> order(g.num_vertices());
  for (vidx v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](vidx a, vidx b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  return order;
}

Csr induced_subgraph(const Csr& g, std::span<const vidx> keep) {
  std::vector<vidx> new_id(g.num_vertices(), kNoVertex);
  for (usize i = 0; i < keep.size(); ++i) {
    ECLP_CHECK(keep[i] < g.num_vertices());
    ECLP_CHECK_MSG(new_id[keep[i]] == kNoVertex,
                   "induced_subgraph: duplicate vertex " << keep[i]);
    new_id[keep[i]] = static_cast<vidx>(i);
  }
  Builder b(static_cast<vidx>(keep.size()));
  for (const vidx u : keep) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const vidx v = nbrs[i];
      if (new_id[v] == kNoVertex) continue;
      const weight_t w = g.weighted() ? g.weights_of(u)[i] : 0;
      b.add(new_id[u], new_id[v], w);
    }
  }
  BuildOptions opt;
  opt.directed = true;  // arcs were copied one-sided; mirrors come along too
  opt.weighted = g.weighted();
  opt.remove_self_loops = false;
  opt.dedupe = false;
  Csr out = b.build(opt);
  // The subgraph of an undirected graph is symmetric by construction; restore
  // the undirected flag by rebuilding the metadata.
  if (!g.directed()) {
    out = Csr::from_parts(
        out.num_vertices(),
        std::vector<eidx>(out.row_offsets().begin(), out.row_offsets().end()),
        std::vector<vidx>(out.col_indices().begin(), out.col_indices().end()),
        std::vector<weight_t>(out.weights().begin(), out.weights().end()),
        /*directed=*/false);
  }
  return out;
}

Csr with_random_weights(const Csr& g, u64 seed, weight_t max_weight) {
  ECLP_CHECK(max_weight >= 1);
  std::vector<weight_t> weights;
  weights.reserve(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      // Hash of the unordered endpoint pair so (u,v) and (v,u) match.
      const u64 lo = std::min(u, v), hi = std::max(u, v);
      const u64 h = splitmix64(splitmix64(seed ^ (lo << 32)) ^ hi);
      weights.push_back(static_cast<weight_t>(h % max_weight) + 1);
    }
  }
  return Csr::from_parts(
      g.num_vertices(),
      std::vector<eidx>(g.row_offsets().begin(), g.row_offsets().end()),
      std::vector<vidx>(g.col_indices().begin(), g.col_indices().end()),
      std::move(weights), g.directed());
}

bool is_symmetric(const Csr& g) {
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      const auto nb = g.neighbors(v);
      const bool found =
          std::is_sorted(nb.begin(), nb.end())
              ? std::binary_search(nb.begin(), nb.end(), u)
              : std::find(nb.begin(), nb.end(), u) != nb.end();
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace eclp::graph
