#include "graph/pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace eclp::graph {

u64 graph_bytes(const Csr& g) {
  return g.row_offsets().size_bytes() + g.col_indices().size_bytes() +
         g.weights().size_bytes();
}

Pool::Pool(u64 byte_budget) : budget_(byte_budget) {}

Pool::~Pool() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& [key, e] : entries_) {
    // A pool must outlive its pins: destruction with live pins would leave
    // them releasing into freed memory.
    ECLP_CHECK_MSG(e->pins == 0, "graph::Pool destroyed with '"
                                     << key << "' still pinned");
  }
}

void Pool::bind_metrics(metrics::Registry& registry) {
  std::lock_guard<std::mutex> lk(mutex_);
  m_hits_ = &registry.counter("pool.hits");
  m_misses_ = &registry.counter("pool.misses");
  m_evictions_ = &registry.counter("pool.evictions");
  m_bytes_ = &registry.gauge("pool.bytes");
  m_entries_ = &registry.gauge("pool.entries");
  m_bytes_->set(static_cast<i64>(bytes_));
  m_entries_->set(static_cast<i64>(entries_.size()));
}

Pool::Pin Pool::acquire(const std::string& key,
                        const std::function<Csr()>& build) {
  std::unique_lock<std::mutex> lk(mutex_);
  // A request is counted when it is classified as a hit or a miss — under
  // the same lock hold — so stats() observers see hits + misses == requests
  // at every instant, including while builds (or failed-build retries) are
  // in flight.
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Entry* e = it->second.get();
      if (e->building) {
        // Another thread is building this key: wait for the build to land
        // (or for the failed placeholder to disappear) and re-evaluate.
        built_cv_.wait(lk, [&] {
          auto again = entries_.find(key);
          return again == entries_.end() || !again->second->building;
        });
        continue;
      }
      e->pins++;
      e->last_use = ++clock_;
      stats_.requests++;
      stats_.hits++;
      if (m_hits_ != nullptr) m_hits_->inc();
      Pin pin;
      pin.pool_ = this;
      pin.entry_ = e;
      pin.graph_ = e->graph;
      pin.hit_ = true;
      return pin;
    }

    // Miss: install a pre-pinned placeholder (un-evictable, and the signal
    // that concurrent acquires of this key must wait), build unlocked.
    auto placeholder = std::make_unique<Entry>();
    placeholder->key = key;
    placeholder->pins = 1;
    Entry* e = entries_.emplace(key, std::move(placeholder))
                   .first->second.get();
    stats_.requests++;
    stats_.misses++;
    if (m_misses_ != nullptr) m_misses_->inc();
    if (m_entries_ != nullptr) m_entries_->set(static_cast<i64>(entries_.size()));
    lk.unlock();
    Csr g;
    try {
      g = build();
    } catch (...) {
      lk.lock();
      entries_.erase(key);
      if (m_entries_ != nullptr) {
        m_entries_->set(static_cast<i64>(entries_.size()));
      }
      built_cv_.notify_all();
      throw;
    }
    auto shared = std::make_shared<const Csr>(std::move(g));
    lk.lock();
    e->graph = shared;
    e->bytes = graph_bytes(*shared);
    e->building = false;
    e->last_use = ++clock_;
    bytes_ += e->bytes;
    if (bytes_ > stats_.peak_bytes) stats_.peak_bytes = bytes_;
    if (m_bytes_ != nullptr) m_bytes_->set(static_cast<i64>(bytes_));
    evict_to_budget_locked();
    built_cv_.notify_all();
    Pin pin;
    pin.pool_ = this;
    pin.entry_ = e;
    pin.graph_ = std::move(shared);
    pin.hit_ = false;
    return pin;
  }
}

void Pool::release(Entry* e) {
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(e->pins > 0, "graph::Pool pin released twice");
  e->pins--;
  e->last_use = ++clock_;
  // Pinned entries block eviction, so budget overshoot can only be paid
  // down when a pin drops.
  if (e->pins == 0) evict_to_budget_locked();
}

void Pool::evict_to_budget_locked() {
  while (bytes_ > budget_) {
    Entry* victim = nullptr;
    for (const auto& [key, e] : entries_) {
      if (e->pins != 0 || e->building) continue;  // never evict pinned
      if (victim == nullptr || e->last_use < victim->last_use) {
        victim = e.get();
      }
    }
    if (victim == nullptr) return;  // everything resident is pinned
    ECLP_CHECK(victim->pins == 0);
    bytes_ -= victim->bytes;
    stats_.evictions++;
    entries_.erase(victim->key);
    if (m_evictions_ != nullptr) m_evictions_->inc();
    if (m_bytes_ != nullptr) m_bytes_->set(static_cast<i64>(bytes_));
    if (m_entries_ != nullptr) m_entries_->set(static_cast<i64>(entries_.size()));
  }
}

PoolStats Pool::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  PoolStats s = stats_;
  s.bytes = bytes_;
  s.entries = 0;
  s.pinned = 0;
  s.pins = 0;
  for (const auto& [key, e] : entries_) {
    s.entries++;
    if (e->pins > 0) s.pinned++;
    s.pins += e->pins;
  }
  return s;
}

bool Pool::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && !it->second->building;
}

}  // namespace eclp::graph
