// Content-addressed graph cache.
//
// Building a CSR is the dominant fixed cost of every bench/harness run:
// generators re-synthesize their edge lists, text readers re-parse their
// files, and Builder::build re-sorts millions of edges — all to arrive at
// the same bytes as the previous run. The cache memoizes the *finished*
// CSR: each graph is keyed by a hash of everything that determines its
// content (generator name + scale + seed for suite inputs; file bytes +
// format + build options for file loads — see docs/INGEST.md for the key
// scheme), and the built graph is stored as a .eclg binary under the cache
// directory. A later request with the same key deserializes the CSR
// directly, skipping generation, parsing, and assembly entirely.
//
// The cache is opt-in: it is enabled by pointing ECLP_GRAPH_CACHE (or the
// --graph-cache flag of the tools/benches) at a directory, and disabled
// when that is empty. Corrupt or truncated cache entries are never fatal —
// the loader warns once, drops the entry, and rebuilds.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "graph/csr.hpp"

namespace eclp::graph {

/// Accumulates a 128-bit content hash from labeled fields. Field lengths
/// are mixed in before the bytes, so adjacent fields cannot alias
/// ("ab"+"c" vs "a"+"bc"). Not cryptographic — the cache is a local
/// memoization directory, not a trust boundary.
class CacheKey {
 public:
  CacheKey& mix(std::string_view bytes);
  CacheKey& mix_u64(u64 v);
  /// 32 lowercase hex characters; the cache file is <hex>.eclg.
  std::string hex() const;

 private:
  u64 lo_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  u64 hi_ = 0x9e3779b97f4a7c15ULL;  // independent lane, different basis
};

/// Directory the cache lives in; empty = caching disabled. The first call
/// reads the ECLP_GRAPH_CACHE environment variable; set_cache_dir
/// overrides it (empty string disables).
std::string cache_dir();
void set_cache_dir(const std::string& dir);

/// Counters for tests and the ingest bench. Process-wide, reset on demand.
struct CacheStats {
  u64 hits = 0;     ///< cache file existed and deserialized cleanly
  u64 misses = 0;   ///< no cache file for the key
  u64 stores = 0;   ///< graphs written into the cache
  u64 corrupt = 0;  ///< unreadable entries dropped (each triggers a rebuild)
};
CacheStats cache_stats();
void reset_cache_stats();

/// Number of distinct paths that have emitted a cache warning so far.
/// Warnings are deduplicated *per path*, not per process: a long-lived
/// serving process that trips over entry A, then entry B, reports both —
/// but repeated trouble with the same entry (e.g. a corrupt store re-read
/// on every open) stays a single line. Tests reset the dedup state with
/// reset_cache_warnings().
usize cache_warned_paths();
void reset_cache_warnings();

/// Load the CSR cached under `key`, or nullopt when caching is disabled,
/// the entry is missing, or it fails to deserialize (corruption warns once
/// per entry path and drops the entry; the caller rebuilds).
std::optional<Csr> cache_load(const CacheKey& key);

/// Store `g` under `key` (no-op when caching is disabled). Writes to a
/// temporary file and renames, so concurrent processes sharing a cache
/// directory never observe a half-written entry. I/O failures warn once
/// and are otherwise ignored — the cache is an accelerator, not a store
/// of record.
void cache_store(const CacheKey& key, const Csr& g);

/// cache_load(key), falling back to build() + cache_store on a miss.
Csr cache_or_build(const CacheKey& key, const std::function<Csr()>& build);

}  // namespace eclp::graph
