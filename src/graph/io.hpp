// Graph serialization.
//
// Three formats:
//  * a compact binary format (".eclg") modeled after the ECL suite's CSR
//    container: header + row offsets + column indices (+ weights),
//  * Matrix Market coordinate format (the common interchange format for the
//    paper's SuiteSparse-derived inputs),
//  * whitespace-separated edge lists ("u v [w]" per line, '#' comments),
//    the format of the SNAP inputs in Table 1.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/csr.hpp"

namespace eclp::graph {

/// Write/read the binary container. Throws CheckFailure on malformed input.
void write_binary(const Csr& g, std::ostream& os);
Csr read_binary(std::istream& is);
void save_binary(const Csr& g, const std::string& path);
Csr load_binary(const std::string& path);

/// Matrix Market coordinate format. Reading accepts `pattern` (unweighted)
/// and `integer`/`real` (weighted, reals truncated) entries, and `general`
/// or `symmetric` symmetry. 1-based indices per the spec. Parsing is
/// chunk-parallel on the build pool (per-chunk edge buffers merged in
/// chunk order — see docs/INGEST.md); the result is identical at any
/// thread count. parse_* are the in-memory entry points the read_*
/// stream wrappers delegate to.
void write_matrix_market(const Csr& g, std::ostream& os);
Csr read_matrix_market(std::istream& is);
Csr parse_matrix_market(std::string_view text);

/// Edge list: one "u v" or "u v w" per line; lines starting with '#' or '%'
/// are comments. Vertex count is 1 + max id unless `num_vertices` forces it.
Csr read_edge_list(std::istream& is, bool directed = false,
                   vidx num_vertices = 0);
Csr parse_edge_list(std::string_view text, bool directed = false,
                    vidx num_vertices = 0);
void write_edge_list(const Csr& g, std::ostream& os);

/// Load/save by file extension: .eclg (binary container), .mtx (Matrix
/// Market), .gr (DIMACS shortest-path), .col (DIMACS coloring), .el/.txt
/// (edge list). `directed` only applies to formats that do not encode
/// directedness themselves (edge lists). Throws on unknown extensions.
/// When the graph cache is enabled (graph/cache.hpp: ECLP_GRAPH_CACHE or
/// --graph-cache), text loads are keyed by (format, directedness, file
/// bytes) and memoized as .eclg, so repeat loads skip parse and build.
Csr load_any(const std::string& path, bool directed = false);
void save_any(const Csr& g, const std::string& path);

}  // namespace eclp::graph
