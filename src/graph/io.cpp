#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/dimacs.hpp"

namespace eclp::graph {

namespace {

constexpr u64 kMagic = 0x45434c5047525048ULL;  // "ECLPGRPH"
constexpr u32 kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  ECLP_CHECK_MSG(is.good(), "binary graph: truncated stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, std::span<const T> v) {
  write_pod<u64>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const u64 n = read_pod<u64>(is);
  ECLP_CHECK_MSG(n < (1ULL << 33), "binary graph: implausible array size");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  ECLP_CHECK_MSG(is.good(), "binary graph: truncated array");
  return v;
}

}  // namespace

void write_binary(const Csr& g, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<u8>(os, g.directed() ? 1 : 0);
  write_pod<u8>(os, g.weighted() ? 1 : 0);
  write_pod<u32>(os, g.num_vertices());
  write_vec(os, g.row_offsets());
  write_vec(os, g.col_indices());
  if (g.weighted()) write_vec(os, g.weights());
  ECLP_CHECK_MSG(os.good(), "binary graph: write failed");
}

Csr read_binary(std::istream& is) {
  ECLP_CHECK_MSG(read_pod<u64>(is) == kMagic, "binary graph: bad magic");
  ECLP_CHECK_MSG(read_pod<u32>(is) == kVersion, "binary graph: bad version");
  const bool directed = read_pod<u8>(is) != 0;
  const bool weighted = read_pod<u8>(is) != 0;
  const u32 n = read_pod<u32>(is);
  auto offsets = read_vec<eidx>(is);
  auto targets = read_vec<vidx>(is);
  std::vector<weight_t> weights;
  if (weighted) weights = read_vec<weight_t>(is);
  return Csr::from_parts(n, std::move(offsets), std::move(targets),
                         std::move(weights), directed);
}

void save_binary(const Csr& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  ECLP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_binary(g, os);
}

Csr load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ECLP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return read_binary(is);
}

void write_matrix_market(const Csr& g, std::ostream& os) {
  const bool sym = !g.directed();
  os << "%%MatrixMarket matrix coordinate "
     << (g.weighted() ? "integer" : "pattern") << ' '
     << (sym ? "symmetric" : "general") << '\n';
  // Count emitted entries first (symmetric stores the lower triangle only).
  u64 entries = 0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (!sym || v <= u) ++entries;
    }
  }
  os << g.num_vertices() << ' ' << g.num_vertices() << ' ' << entries << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const vidx v = nbrs[i];
      if (sym && v > u) continue;
      os << (u + 1) << ' ' << (v + 1);
      if (g.weighted()) os << ' ' << g.weights_of(u)[i];
      os << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "matrix market: write failed");
}

Csr read_matrix_market(std::istream& is) {
  std::string line;
  ECLP_CHECK_MSG(std::getline(is, line), "matrix market: empty stream");
  std::istringstream head(line);
  std::string banner, object, format, field, symmetry;
  head >> banner >> object >> format >> field >> symmetry;
  ECLP_CHECK_MSG(banner == "%%MatrixMarket", "matrix market: bad banner");
  ECLP_CHECK_MSG(object == "matrix" && format == "coordinate",
                 "matrix market: only coordinate matrices supported");
  const bool weighted = field == "integer" || field == "real";
  ECLP_CHECK_MSG(weighted || field == "pattern",
                 "matrix market: unsupported field " << field);
  const bool symmetric = symmetry == "symmetric";
  ECLP_CHECK_MSG(symmetric || symmetry == "general",
                 "matrix market: unsupported symmetry " << symmetry);

  // Skip comments, then read the size line.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  u64 rows = 0, cols = 0, entries = 0;
  size_line >> rows >> cols >> entries;
  ECLP_CHECK_MSG(rows == cols, "matrix market: matrix must be square");
  ECLP_CHECK_MSG(rows < kNoVertex, "matrix market: too many vertices");

  Builder b(static_cast<vidx>(rows));
  b.reserve(entries * (symmetric ? 2 : 1));
  for (u64 k = 0; k < entries; ++k) {
    ECLP_CHECK_MSG(std::getline(is, line), "matrix market: truncated");
    std::istringstream entry(line);
    u64 r = 0, c = 0;
    double w = 0.0;
    entry >> r >> c;
    if (weighted) entry >> w;
    ECLP_CHECK_MSG(r >= 1 && r <= rows && c >= 1 && c <= cols,
                   "matrix market: index out of range at entry " << k);
    b.add(static_cast<vidx>(r - 1), static_cast<vidx>(c - 1),
          static_cast<weight_t>(w));
  }
  BuildOptions opt;
  opt.directed = !symmetric;
  opt.weighted = weighted;
  return b.build(opt);
}

Csr read_edge_list(std::istream& is, bool directed, vidx num_vertices) {
  std::vector<Edge> edges;
  vidx max_id = 0;
  bool weighted = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    u64 u = 0, v = 0, w = 0;
    ECLP_CHECK_MSG(static_cast<bool>(ls >> u >> v),
                   "edge list: malformed line: " << line);
    if (ls >> w) weighted = true;
    ECLP_CHECK_MSG(u < kNoVertex && v < kNoVertex, "edge list: id too large");
    max_id = std::max({max_id, static_cast<vidx>(u), static_cast<vidx>(v)});
    edges.push_back({static_cast<vidx>(u), static_cast<vidx>(v),
                     static_cast<weight_t>(w)});
  }
  const vidx n =
      num_vertices > 0 ? num_vertices : (edges.empty() ? 0 : max_id + 1);
  ECLP_CHECK_MSG(n > max_id || edges.empty(),
                 "edge list: forced vertex count too small");
  BuildOptions opt;
  opt.directed = directed;
  opt.weighted = weighted;
  return from_edges(n, edges, opt);
}

namespace {

std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  ECLP_CHECK_MSG(dot != std::string::npos && dot + 1 < path.size(),
                 "no file extension on '" << path << "'");
  return path.substr(dot + 1);
}

}  // namespace

Csr load_any(const std::string& path, bool directed) {
  const std::string ext = extension_of(path);
  if (ext == "eclg") return load_binary(path);
  std::ifstream is(path);
  ECLP_CHECK_MSG(is.is_open(), "cannot open " << path);
  if (ext == "mtx") return read_matrix_market(is);
  if (ext == "gr") return read_dimacs_sp(is);
  if (ext == "col") return read_dimacs_col(is);
  if (ext == "el" || ext == "txt") return read_edge_list(is, directed);
  ECLP_CHECK_MSG(false, "unknown graph format '." << ext << "' ("
                        << "known: eclg, mtx, gr, col, el, txt)");
  return {};
}

void save_any(const Csr& g, const std::string& path) {
  const std::string ext = extension_of(path);
  if (ext == "eclg") {
    save_binary(g, path);
    return;
  }
  std::ofstream os(path);
  ECLP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  if (ext == "mtx") {
    write_matrix_market(g, os);
  } else if (ext == "gr") {
    write_dimacs_sp(g, os);
  } else if (ext == "col") {
    write_dimacs_col(g, os);
  } else if (ext == "el" || ext == "txt") {
    write_edge_list(g, os);
  } else {
    ECLP_CHECK_MSG(false, "unknown graph format '." << ext << "'");
  }
}

void write_edge_list(const Csr& g, std::ostream& os) {
  os << "# vertices " << g.num_vertices() << " edges " << g.num_edges()
     << (g.directed() ? " directed" : " undirected") << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const vidx v = nbrs[i];
      if (!g.directed() && v < u) continue;  // emit each edge once
      os << u << ' ' << v;
      if (g.weighted()) os << ' ' << g.weights_of(u)[i];
      os << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "edge list: write failed");
}

}  // namespace eclp::graph
