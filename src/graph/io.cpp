#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/dimacs.hpp"
#include "graph/text_parse.hpp"
#include "support/parallel_for.hpp"

namespace eclp::graph {

namespace {

constexpr u64 kMagic = 0x45434c5047525048ULL;  // "ECLPGRPH"
constexpr u32 kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  ECLP_CHECK_MSG(is.good(), "binary graph: truncated stream");
  return v;
}

template <typename T>
void write_vec(std::ostream& os, std::span<const T> v) {
  write_pod<u64>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  const u64 n = read_pod<u64>(is);
  ECLP_CHECK_MSG(n < (1ULL << 33), "binary graph: implausible array size");
  std::vector<T> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  ECLP_CHECK_MSG(is.good(), "binary graph: truncated array");
  return v;
}

std::string slurp(std::istream& is) {
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ECLP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return slurp(is);
}

/// Consume one line off the front of `text` (no '\n' in the result).
std::string_view next_line(std::string_view& text) {
  const usize nl = text.find('\n');
  std::string_view line = text.substr(0, nl);
  text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

void write_binary(const Csr& g, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<u8>(os, g.directed() ? 1 : 0);
  write_pod<u8>(os, g.weighted() ? 1 : 0);
  write_pod<u32>(os, g.num_vertices());
  write_vec(os, g.row_offsets());
  write_vec(os, g.col_indices());
  if (g.weighted()) write_vec(os, g.weights());
  ECLP_CHECK_MSG(os.good(), "binary graph: write failed");
}

Csr read_binary(std::istream& is) {
  ECLP_CHECK_MSG(read_pod<u64>(is) == kMagic, "binary graph: bad magic");
  ECLP_CHECK_MSG(read_pod<u32>(is) == kVersion, "binary graph: bad version");
  const bool directed = read_pod<u8>(is) != 0;
  const bool weighted = read_pod<u8>(is) != 0;
  const u32 n = read_pod<u32>(is);
  auto offsets = read_vec<eidx>(is);
  auto targets = read_vec<vidx>(is);
  std::vector<weight_t> weights;
  if (weighted) weights = read_vec<weight_t>(is);
  return Csr::from_parts(n, std::move(offsets), std::move(targets),
                         std::move(weights), directed);
}

void save_binary(const Csr& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  ECLP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  write_binary(g, os);
}

Csr load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ECLP_CHECK_MSG(is.is_open(), "cannot open " << path);
  return read_binary(is);
}

void write_matrix_market(const Csr& g, std::ostream& os) {
  const bool sym = !g.directed();
  os << "%%MatrixMarket matrix coordinate "
     << (g.weighted() ? "integer" : "pattern") << ' '
     << (sym ? "symmetric" : "general") << '\n';
  // Count emitted entries first (symmetric stores the lower triangle only).
  u64 entries = 0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      if (!sym || v <= u) ++entries;
    }
  }
  os << g.num_vertices() << ' ' << g.num_vertices() << ' ' << entries << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const vidx v = nbrs[i];
      if (sym && v > u) continue;
      os << (u + 1) << ' ' << (v + 1);
      if (g.weighted()) os << ' ' << g.weights_of(u)[i];
      os << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "matrix market: write failed");
}

Csr parse_matrix_market(std::string_view text) {
  using detail::parse_f64;
  using detail::parse_u64;

  std::string_view rest = text;
  ECLP_CHECK_MSG(!rest.empty(), "matrix market: empty stream");
  std::istringstream head{std::string(next_line(rest))};
  std::string banner, object, format, field, symmetry;
  head >> banner >> object >> format >> field >> symmetry;
  ECLP_CHECK_MSG(banner == "%%MatrixMarket", "matrix market: bad banner");
  ECLP_CHECK_MSG(object == "matrix" && format == "coordinate",
                 "matrix market: only coordinate matrices supported");
  const bool weighted = field == "integer" || field == "real";
  ECLP_CHECK_MSG(weighted || field == "pattern",
                 "matrix market: unsupported field " << field);
  const bool symmetric = symmetry == "symmetric";
  ECLP_CHECK_MSG(symmetric || symmetry == "general",
                 "matrix market: unsupported symmetry " << symmetry);

  // Skip comments, then read the size line. Everything after it is the
  // entry body, handed to the chunk-parallel sweep below.
  u64 rows = 0, cols = 0, entries = 0;
  bool saw_size = false;
  while (!rest.empty()) {
    std::string_view line = next_line(rest);
    if (line.empty() || line[0] == '%') continue;
    ECLP_CHECK_MSG(parse_u64(line, rows) && parse_u64(line, cols) &&
                       parse_u64(line, entries),
                   "matrix market: malformed size line");
    saw_size = true;
    break;
  }
  ECLP_CHECK_MSG(saw_size, "matrix market: missing size line");
  ECLP_CHECK_MSG(rows == cols, "matrix market: matrix must be square");
  ECLP_CHECK_MSG(rows < kNoVertex, "matrix market: too many vertices");

  // Chunk-parallel entry parse: byte ranges split at line boundaries, one
  // private edge buffer per chunk, buffers appended in chunk order — the
  // merged sequence equals a serial line-by-line sweep (docs/INGEST.md).
  Pool* pool = build_pool();
  const auto chunks =
      detail::chunk_at_lines(rest, pool == nullptr ? 1 : pool->size());
  std::vector<std::vector<Edge>> chunk_edges(chunks.size());
  parallel_for_chunks(
      pool, chunks.size(), chunks.size(), [&](u64 c, u64, u64, u32) {
        std::vector<Edge>& out = chunk_edges[c];
        out.reserve(chunks[c].size() / 8 + 1);
        detail::for_each_line(chunks[c], [&](std::string_view line) {
          if (line.empty()) return;
          u64 r = 0, cc = 0;
          double w = 0.0;
          std::string_view s = line;
          ECLP_CHECK_MSG(parse_u64(s, r) && parse_u64(s, cc),
                         "matrix market: malformed entry: " << line);
          if (weighted) parse_f64(s, w);
          ECLP_CHECK_MSG(r >= 1 && r <= rows && cc >= 1 && cc <= cols,
                         "matrix market: index out of range: " << line);
          out.push_back({static_cast<vidx>(r - 1), static_cast<vidx>(cc - 1),
                         static_cast<weight_t>(w)});
        });
      });

  u64 total = 0;
  for (const auto& ce : chunk_edges) total += ce.size();
  ECLP_CHECK_MSG(total == entries, "matrix market: header promised "
                                       << entries << " entries, file had "
                                       << total);
  Builder b(static_cast<vidx>(rows));
  b.reserve_edges(total);
  for (const auto& ce : chunk_edges) b.add_edges(ce);
  BuildOptions opt;
  opt.directed = !symmetric;
  opt.weighted = weighted;
  return b.build(opt);
}

Csr read_matrix_market(std::istream& is) {
  return parse_matrix_market(slurp(is));
}

Csr parse_edge_list(std::string_view text, bool directed, vidx num_vertices) {
  using detail::parse_u64;

  Pool* pool = build_pool();
  const auto chunks =
      detail::chunk_at_lines(text, pool == nullptr ? 1 : pool->size());
  struct ChunkResult {
    std::vector<Edge> edges;
    vidx max_id = 0;
    bool weighted = false;
  };
  std::vector<ChunkResult> results(chunks.size());
  parallel_for_chunks(
      pool, chunks.size(), chunks.size(), [&](u64 c, u64, u64, u32) {
        ChunkResult& out = results[c];
        out.edges.reserve(chunks[c].size() / 8 + 1);
        detail::for_each_line(chunks[c], [&](std::string_view line) {
          if (line.empty() || line[0] == '#' || line[0] == '%') return;
          u64 u = 0, v = 0, w = 0;
          std::string_view s = line;
          ECLP_CHECK_MSG(parse_u64(s, u) && parse_u64(s, v),
                         "edge list: malformed line: " << line);
          // A third numeric token is a weight; trailing non-numeric noise
          // is ignored, as the stream-based reader always did.
          if (parse_u64(s, w)) out.weighted = true;
          ECLP_CHECK_MSG(u < kNoVertex && v < kNoVertex,
                         "edge list: id too large");
          out.max_id = std::max({out.max_id, static_cast<vidx>(u),
                                 static_cast<vidx>(v)});
          out.edges.push_back({static_cast<vidx>(u), static_cast<vidx>(v),
                               static_cast<weight_t>(w)});
        });
      });

  vidx max_id = 0;
  bool weighted = false;
  u64 total = 0;
  for (const ChunkResult& r : results) {
    max_id = std::max(max_id, r.max_id);
    weighted = weighted || r.weighted;
    total += r.edges.size();
  }
  const vidx n = num_vertices > 0 ? num_vertices
                                  : (total == 0 ? 0 : max_id + 1);
  ECLP_CHECK_MSG(n > max_id || total == 0,
                 "edge list: forced vertex count too small");
  Builder b(n);
  b.reserve_edges(total);
  for (const ChunkResult& r : results) b.add_edges(r.edges);
  BuildOptions opt;
  opt.directed = directed;
  opt.weighted = weighted;
  return b.build(opt);
}

Csr read_edge_list(std::istream& is, bool directed, vidx num_vertices) {
  return parse_edge_list(slurp(is), directed, num_vertices);
}

namespace {

std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  ECLP_CHECK_MSG(dot != std::string::npos && dot + 1 < path.size(),
                 "no file extension on '" << path << "'");
  return path.substr(dot + 1);
}

Csr parse_by_extension(const std::string& ext, std::string_view text,
                       bool directed) {
  if (ext == "mtx") return parse_matrix_market(text);
  if (ext == "gr") return parse_dimacs_sp(text);
  if (ext == "col") return parse_dimacs_col(text);
  if (ext == "el" || ext == "txt") return parse_edge_list(text, directed);
  ECLP_CHECK_MSG(false, "unknown graph format '." << ext << "' ("
                        << "known: eclg, mtx, gr, col, el, txt)");
  return {};
}

}  // namespace

Csr load_any(const std::string& path, bool directed) {
  const std::string ext = extension_of(path);
  if (ext == "eclg") return load_binary(path);  // already the cached form
  const std::string text = slurp_file(path);
  if (cache_dir().empty()) return parse_by_extension(ext, text, directed);
  // Content-addressed: the key covers the bytes (not the path — renames
  // and copies still hit) plus everything else that shapes the CSR.
  CacheKey key;
  key.mix("eclp-file-v1").mix(ext).mix_u64(directed ? 1 : 0).mix(text);
  return cache_or_build(key,
                        [&] { return parse_by_extension(ext, text, directed); });
}

void save_any(const Csr& g, const std::string& path) {
  const std::string ext = extension_of(path);
  if (ext == "eclg") {
    save_binary(g, path);
    return;
  }
  std::ofstream os(path);
  ECLP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  if (ext == "mtx") {
    write_matrix_market(g, os);
  } else if (ext == "gr") {
    write_dimacs_sp(g, os);
  } else if (ext == "col") {
    write_dimacs_col(g, os);
  } else if (ext == "el" || ext == "txt") {
    write_edge_list(g, os);
  } else {
    ECLP_CHECK_MSG(false, "unknown graph format '." << ext << "'");
  }
}

void write_edge_list(const Csr& g, std::ostream& os) {
  os << "# vertices " << g.num_vertices() << " edges " << g.num_edges()
     << (g.directed() ? " directed" : " undirected") << '\n';
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      const vidx v = nbrs[i];
      if (!g.directed() && v < u) continue;  // emit each edge once
      os << u << ' ' << v;
      if (g.weighted()) os << ' ' << g.weights_of(u)[i];
      os << '\n';
    }
  }
  ECLP_CHECK_MSG(os.good(), "edge list: write failed");
}

}  // namespace eclp::graph
