// Internal helpers for chunk-parallel text-format parsing.
//
// The readers in io.cpp / dimacs.cpp slurp their input into one buffer,
// split it into byte ranges aligned to line boundaries (one chunk per
// build-pool worker), parse each chunk into a private edge buffer, and
// append the buffers in chunk order. Concatenating the chunks in order
// reproduces the input byte-for-byte, so the merged edge sequence equals
// what a serial line-by-line sweep produces — the chunking is invisible in
// the output (see docs/INGEST.md for the determinism argument).
//
// Number scanning uses std::from_chars instead of istringstream: the
// per-line stream construction was itself a measurable slice of ingest.
#pragma once

#include <charconv>
#include <string_view>
#include <vector>

#include "support/types.hpp"

namespace eclp::graph::detail {

/// Split `text` into at most `max_chunks` contiguous ranges whose
/// boundaries fall on line starts. Concatenating the ranges in order
/// reproduces `text` exactly.
inline std::vector<std::string_view> chunk_at_lines(std::string_view text,
                                                    u64 max_chunks) {
  std::vector<std::string_view> chunks;
  if (text.empty()) return chunks;
  if (max_chunks < 1) max_chunks = 1;
  const usize target = (text.size() + max_chunks - 1) / max_chunks;
  usize begin = 0;
  while (begin < text.size()) {
    usize end = begin + target;
    if (end >= text.size()) {
      end = text.size();
    } else {
      const usize nl = text.find('\n', end);
      end = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    chunks.push_back(text.substr(begin, end - begin));
    begin = end;
  }
  return chunks;
}

/// Call fn(line) for every '\n'-terminated line of `chunk` (a final
/// unterminated line included); a trailing '\r' (CRLF input) is stripped.
template <typename Fn>
void for_each_line(std::string_view chunk, Fn&& fn) {
  usize begin = 0;
  while (begin < chunk.size()) {
    const usize nl = chunk.find('\n', begin);
    const usize end = nl == std::string_view::npos ? chunk.size() : nl;
    std::string_view line = chunk.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    fn(line);
    begin = end + 1;
  }
}

inline void skip_spaces(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
}

/// Parse an unsigned integer off the front of `s` (leading blanks
/// skipped). Advances `s` past the number on success.
inline bool parse_u64(std::string_view& s, u64& out) {
  skip_spaces(s);
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<usize>(ptr - s.data()));
  return true;
}

/// Parse a floating-point value off the front of `s` (Matrix Market
/// `real` entries; values are truncated to integer weights by the caller).
inline bool parse_f64(std::string_view& s, double& out) {
  skip_spaces(s);
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<usize>(ptr - s.data()));
  return true;
}

/// True when nothing but blanks remains (used to ignore trailing noise the
/// old istringstream readers also ignored).
inline bool only_blanks(std::string_view s) {
  skip_spaces(s);
  return s.empty();
}

}  // namespace eclp::graph::detail
