#include "graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace eclp::graph {

std::vector<u32> bfs_distances(const Csr& g, vidx source) {
  ECLP_CHECK(source < g.num_vertices());
  std::vector<u32> dist(g.num_vertices(), kUnreachable);
  std::queue<vidx> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const vidx u = frontier.front();
    frontier.pop();
    for (const vidx v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<vidx> connected_component_labels(const Csr& g) {
  std::vector<vidx> label(g.num_vertices(), kNoVertex);
  std::vector<vidx> stack;
  for (vidx s = 0; s < g.num_vertices(); ++s) {
    if (label[s] != kNoVertex) continue;
    label[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      const vidx u = stack.back();
      stack.pop_back();
      for (const vidx v : g.neighbors(u)) {
        if (label[v] == kNoVertex) {
          label[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return label;
}

usize count_components(const Csr& g) {
  const auto labels = connected_component_labels(g);
  usize count = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

u32 estimate_diameter(const Csr& g) {
  if (g.num_vertices() == 0) return 0;
  // First sweep from vertex 0 finds a far vertex; second sweep from there
  // gives a diameter lower bound.
  auto far_vertex = [&](vidx from) {
    const auto dist = bfs_distances(g, from);
    vidx best = from;
    u32 best_d = 0;
    for (vidx v = 0; v < g.num_vertices(); ++v) {
      if (dist[v] != kUnreachable && dist[v] > best_d) {
        best_d = dist[v];
        best = v;
      }
    }
    return std::pair{best, best_d};
  };
  const auto [mid, d1] = far_vertex(0);
  const auto [end, d2] = far_vertex(mid);
  (void)end;
  return std::max(d1, d2);
}

bool is_connected(const Csr& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](u32 d) { return d == kUnreachable; });
}

std::vector<u64> degree_histogram(const Csr& g, vidx max_degree) {
  std::vector<u64> hist(static_cast<usize>(max_degree) + 1, 0);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    hist[std::min(g.degree(v), max_degree)]++;
  }
  return hist;
}

}  // namespace eclp::graph
