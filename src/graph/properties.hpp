// Graph property queries used by generators, verifiers, and Table 1.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace eclp::graph {

/// BFS from `source`; returns the hop distance per vertex (kNoVertex-sized
/// value u32 max for unreachable vertices).
std::vector<u32> bfs_distances(const Csr& g, vidx source);
inline constexpr u32 kUnreachable = static_cast<u32>(-1);

/// Connected-component label per vertex for an undirected graph, via
/// sequential BFS sweeps. Labels are the smallest vertex id in the component.
std::vector<vidx> connected_component_labels(const Csr& g);

/// Number of connected components (undirected).
usize count_components(const Csr& g);

/// Lower-bound diameter estimate by a double BFS sweep from a
/// pseudo-peripheral vertex. Exact on trees; a good classifier of
/// "road-network-like" (high diameter) vs. "power-law" (low diameter) inputs,
/// which is what the paper's MIS analysis keys on.
u32 estimate_diameter(const Csr& g);

/// True if the undirected graph is connected.
bool is_connected(const Csr& g);

/// Degree histogram: hist[d] = number of vertices with degree d
/// (capped at max_degree buckets; larger degrees land in the last bucket).
std::vector<u64> degree_histogram(const Csr& g, vidx max_degree);

}  // namespace eclp::graph
