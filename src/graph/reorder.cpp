#include "graph/reorder.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace eclp::graph {

std::vector<vidx> order_by_degree_desc(const Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<vidx> by_degree(n);
  for (vidx v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](vidx a, vidx b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  std::vector<vidx> perm(n);
  for (vidx rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

std::vector<vidx> order_bfs(const Csr& g, vidx source) {
  const vidx n = g.num_vertices();
  ECLP_CHECK(source < n || n == 0);
  std::vector<vidx> perm(n, kNoVertex);
  vidx next_rank = 0;
  std::queue<vidx> queue;
  std::vector<vidx> nbrs;

  const auto visit_from = [&](vidx start) {
    perm[start] = next_rank++;
    queue.push(start);
    while (!queue.empty()) {
      const vidx u = queue.front();
      queue.pop();
      // Cuthill-McKee: expand neighbors in ascending-degree order.
      const auto adj = g.neighbors(u);
      nbrs.assign(adj.begin(), adj.end());
      std::stable_sort(nbrs.begin(), nbrs.end(), [&](vidx a, vidx b) {
        return g.degree(a) < g.degree(b);
      });
      for (const vidx v : nbrs) {
        if (perm[v] == kNoVertex) {
          perm[v] = next_rank++;
          queue.push(v);
        }
      }
    }
  };

  if (n > 0) visit_from(source);
  for (vidx v = 0; v < n; ++v) {
    if (perm[v] == kNoVertex) visit_from(v);
  }
  return perm;
}

std::vector<vidx> order_random(const Csr& g, u64 seed) {
  Rng rng(seed);
  return rng.permutation(g.num_vertices());
}

std::vector<vidx> order_morton_grid(u32 side) {
  const auto morton = [](u32 x, u32 y) {
    u64 key = 0;
    for (u32 bit = 0; bit < 32; ++bit) {
      key |= (static_cast<u64>((x >> bit) & 1) << (2 * bit)) |
             (static_cast<u64>((y >> bit) & 1) << (2 * bit + 1));
    }
    return key;
  };
  std::vector<std::pair<u64, vidx>> keyed;
  keyed.reserve(static_cast<usize>(side) * side);
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      keyed.push_back({morton(x, y), y * side + x});
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<vidx> perm(static_cast<usize>(side) * side);
  for (vidx rank = 0; rank < keyed.size(); ++rank) {
    perm[keyed[rank].second] = rank;
  }
  return perm;
}

double block_affinity(const Csr& g, vidx block_size) {
  ECLP_CHECK(block_size > 0);
  if (g.num_edges() == 0) return 1.0;
  u64 inside = 0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      inside += (u / block_size == v / block_size);
    }
  }
  return static_cast<double>(inside) / static_cast<double>(g.num_edges());
}

double locality_score(const Csr& g) {
  if (g.num_edges() == 0 || g.num_vertices() == 0) return 0.0;
  double total = 0.0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      total += std::abs(static_cast<double>(u) - static_cast<double>(v));
    }
  }
  return total / static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

}  // namespace eclp::graph
