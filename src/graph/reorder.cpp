#include "graph/reorder.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <limits>
#include <queue>

#include "graph/cache.hpp"
#include "graph/transforms.hpp"

namespace eclp::graph {

std::vector<vidx> order_by_degree_desc(const Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<vidx> by_degree(n);
  for (vidx v = 0; v < n; ++v) by_degree[v] = v;
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](vidx a, vidx b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  std::vector<vidx> perm(n);
  for (vidx rank = 0; rank < n; ++rank) perm[by_degree[rank]] = rank;
  return perm;
}

std::vector<vidx> order_bfs(const Csr& g, vidx source) {
  const vidx n = g.num_vertices();
  ECLP_CHECK(source < n || n == 0);
  std::vector<vidx> perm(n, kNoVertex);
  vidx next_rank = 0;
  std::queue<vidx> queue;
  std::vector<vidx> nbrs;

  const auto visit_from = [&](vidx start) {
    perm[start] = next_rank++;
    queue.push(start);
    while (!queue.empty()) {
      const vidx u = queue.front();
      queue.pop();
      // Cuthill-McKee: expand neighbors in ascending-degree order.
      const auto adj = g.neighbors(u);
      nbrs.assign(adj.begin(), adj.end());
      std::stable_sort(nbrs.begin(), nbrs.end(), [&](vidx a, vidx b) {
        return g.degree(a) < g.degree(b);
      });
      for (const vidx v : nbrs) {
        if (perm[v] == kNoVertex) {
          perm[v] = next_rank++;
          queue.push(v);
        }
      }
    }
  };

  if (n > 0) visit_from(source);
  for (vidx v = 0; v < n; ++v) {
    if (perm[v] == kNoVertex) visit_from(v);
  }
  return perm;
}

std::vector<vidx> order_random(const Csr& g, u64 seed) {
  Rng rng(seed);
  return rng.permutation(g.num_vertices());
}

std::vector<vidx> order_morton_grid(u32 side) {
  // Row-major ids are y*side + x; the vertex count side*side must fit vidx
  // (ranks are counted in vidx too). Without this check a side >= 2^16
  // silently wraps the 32-bit id arithmetic and the "permutation" stops
  // being one.
  ECLP_CHECK_MSG(static_cast<u64>(side) * side <=
                     std::numeric_limits<vidx>::max(),
                 "morton grid side " << side << " needs " << side << "x"
                                     << side
                                     << " vertex ids, which overflows the "
                                        "32-bit vertex index type");
  // Only the bits that can be set in a coordinate < side matter for the
  // interleave; everything above is zero.
  const u32 coord_bits = side <= 1 ? 1 : std::bit_width(side - 1);
  const auto morton = [coord_bits](u32 x, u32 y) {
    u64 key = 0;
    for (u32 bit = 0; bit < coord_bits; ++bit) {
      key |= (static_cast<u64>((x >> bit) & 1) << (2 * bit)) |
             (static_cast<u64>((y >> bit) & 1) << (2 * bit + 1));
    }
    return key;
  };
  std::vector<std::pair<u64, vidx>> keyed;
  keyed.reserve(static_cast<usize>(side) * side);
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      keyed.push_back(
          {morton(x, y), static_cast<vidx>(static_cast<u64>(y) * side + x)});
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<vidx> perm(static_cast<usize>(side) * side);
  for (vidx rank = 0; rank < keyed.size(); ++rank) {
    perm[keyed[rank].second] = rank;
  }
  return perm;
}

std::vector<vidx> order_hub(const Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<vidx> perm(n);
  if (n == 0) return perm;
  // A hub is a vertex whose degree strictly exceeds the mean degree.
  const double mean = static_cast<double>(g.num_edges()) /
                      static_cast<double>(n);
  std::vector<vidx> hubs;
  for (vidx v = 0; v < n; ++v) {
    if (static_cast<double>(g.degree(v)) > mean) hubs.push_back(v);
  }
  std::stable_sort(hubs.begin(), hubs.end(), [&](vidx a, vidx b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  vidx rank = 0;
  for (const vidx v : hubs) perm[v] = rank++;
  // Tail keeps its original relative order (perm stays monotone on it).
  std::vector<bool> is_hub(n, false);
  for (const vidx v : hubs) is_hub[v] = true;
  for (vidx v = 0; v < n; ++v) {
    if (!is_hub[v]) perm[v] = rank++;
  }
  return perm;
}

std::vector<vidx> order_hub_cluster(const Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<vidx> perm(n);
  if (n == 0) return perm;
  // Bucket index = floor(log2(degree + 1)): 0 holds isolated vertices,
  // each higher bucket doubles the degree range. Emit hottest bucket first.
  const auto bucket_of = [&](vidx v) {
    u32 b = 0;
    for (u64 d = static_cast<u64>(g.degree(v)) + 1; d > 1; d >>= 1) ++b;
    return b;
  };
  u32 max_bucket = 0;
  std::vector<u32> bucket(n);
  for (vidx v = 0; v < n; ++v) {
    bucket[v] = bucket_of(v);
    max_bucket = std::max(max_bucket, bucket[v]);
  }
  vidx rank = 0;
  for (u32 b = max_bucket + 1; b-- > 0;) {
    for (vidx v = 0; v < n; ++v) {
      if (bucket[v] == b) perm[v] = rank++;
    }
  }
  return perm;
}

std::vector<vidx> order_gorder(const Csr& g, u32 window) {
  ECLP_CHECK(window >= 1);
  const vidx n = g.num_vertices();
  std::vector<vidx> perm(n, kNoVertex);
  if (n == 0) return perm;
  // Sibling expansion through a high-degree vertex would make the greedy
  // pass quadratic on power-law graphs; skip it there (Gorder §5.3).
  const u64 hub_cap = std::max<u64>(
      64, 8 * (static_cast<u64>(g.num_edges()) / std::max<vidx>(n, 1)));

  std::vector<i64> score(n, 0);
  std::vector<bool> placed(n, false);
  // Lazy max-heap of (score, ~id): highest score first, ties to lowest id.
  // Stale entries (stored score != current) are re-pushed with the current
  // score on pop, so the true maximum is always discoverable.
  std::priority_queue<std::pair<i64, vidx>> heap;
  const auto push = [&](vidx v) { heap.push({score[v], ~v}); };

  // Add (+1) or remove (-1) vertex u's affinity contributions: +delta to
  // every unplaced direct neighbor, and +delta to every unplaced sibling
  // reachable through a non-hub shared neighbor.
  const auto contribute = [&](vidx u, i64 delta) {
    for (const vidx nb : g.neighbors(u)) {
      if (!placed[nb]) {
        score[nb] += delta;
        if (delta > 0) push(nb);
      }
      if (g.degree(nb) > hub_cap) continue;
      for (const vidx sib : g.neighbors(nb)) {
        if (sib == u || placed[sib]) continue;
        score[sib] += delta;
        if (delta > 0) push(sib);
      }
    }
  };

  std::vector<vidx> order;  // placement sequence (order[rank] = old id)
  order.reserve(n);
  vidx next_fallback = 0;  // lowest id not yet known to be placed
  for (vidx rank = 0; rank < n; ++rank) {
    vidx pick = kNoVertex;
    while (!heap.empty()) {
      const auto [s, vkey] = heap.top();
      const vidx v = ~vkey;
      heap.pop();
      if (placed[v]) continue;
      if (s != score[v]) {
        heap.push({score[v], ~v});
        continue;
      }
      if (s <= 0) break;  // nothing with affinity left; fall back to id order
      pick = v;
      break;
    }
    if (pick == kNoVertex) {
      while (placed[next_fallback]) ++next_fallback;
      pick = next_fallback;
    }
    placed[pick] = true;
    perm[pick] = rank;
    order.push_back(pick);
    contribute(pick, +1);
    if (rank >= window) contribute(order[rank - window], -1);
  }
  return perm;
}

namespace {

/// Parse a digit-checked spec argument into an unsigned integer type,
/// reporting overflow as a CheckFailure diagnostic instead of letting
/// std::out_of_range escape (std::stoull on "9999...9" would abort a
/// --reorder=random:<hugeseed> run with an uncaught exception).
template <typename T>
T parse_spec_number(const std::string& spec, const std::string& arg) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(arg.data(), arg.data() + arg.size(), value);
  ECLP_CHECK_MSG(ec != std::errc::result_out_of_range,
                 "reorder spec '" << spec << "' argument '" << arg
                                  << "' does not fit in " << 8 * sizeof(T)
                                  << " bits");
  ECLP_CHECK_MSG(ec == std::errc{} && ptr == arg.data() + arg.size(),
                 "reorder spec '" << spec << "' has a malformed argument '"
                                  << arg << "'");
  return value;
}

}  // namespace

ReorderSpec ReorderSpec::parse(const std::string& spec) {
  ReorderSpec out;
  std::string head = spec;
  std::string arg;
  if (const usize colon = spec.find(':'); colon != std::string::npos) {
    head = spec.substr(0, colon);
    arg = spec.substr(colon + 1);
    ECLP_CHECK_MSG(!arg.empty(), "reorder spec '" << spec
                                                  << "' has an empty argument");
    for (const char c : arg) {
      ECLP_CHECK_MSG(c >= '0' && c <= '9', "reorder spec argument must be "
                                               "numeric, got '"
                                               << arg << "'");
    }
  }
  if (head.empty() || head == "natural" || head == "none") {
    out.kind = Kind::kNatural;
  } else if (head == "random") {
    out.kind = Kind::kRandom;
    if (!arg.empty()) out.seed = parse_spec_number<u64>(spec, arg);
  } else if (head == "bfs") {
    out.kind = Kind::kBfs;
  } else if (head == "degree") {
    out.kind = Kind::kDegree;
  } else if (head == "hub") {
    out.kind = Kind::kHub;
  } else if (head == "hubcluster") {
    out.kind = Kind::kHubCluster;
  } else if (head == "gorder") {
    out.kind = Kind::kGorder;
    if (!arg.empty()) {
      out.window = parse_spec_number<u32>(spec, arg);
      ECLP_CHECK_MSG(out.window >= 1, "gorder window must be >= 1");
    }
  } else {
    ECLP_CHECK_MSG(false, "unknown reorder spec '"
                              << spec
                              << "' (expected natural, random[:SEED], bfs, "
                                 "degree, hub, hubcluster, gorder[:WINDOW])");
  }
  ECLP_CHECK_MSG(arg.empty() || out.kind == Kind::kRandom ||
                     out.kind == Kind::kGorder,
                 "reorder spec '" << spec << "' does not take an argument");
  return out;
}

std::string ReorderSpec::canonical() const {
  switch (kind) {
    case Kind::kNatural: return "natural";
    case Kind::kRandom: return "random:" + std::to_string(seed);
    case Kind::kBfs: return "bfs";
    case Kind::kDegree: return "degree";
    case Kind::kHub: return "hub";
    case Kind::kHubCluster: return "hubcluster";
    case Kind::kGorder: return "gorder:" + std::to_string(window);
  }
  return "natural";
}

std::vector<vidx> make_order(const Csr& g, const ReorderSpec& spec) {
  switch (spec.kind) {
    case ReorderSpec::Kind::kNatural: {
      std::vector<vidx> identity(g.num_vertices());
      for (vidx v = 0; v < g.num_vertices(); ++v) identity[v] = v;
      return identity;
    }
    case ReorderSpec::Kind::kRandom: return order_random(g, spec.seed);
    case ReorderSpec::Kind::kBfs: return order_bfs(g);
    case ReorderSpec::Kind::kDegree: return order_by_degree_desc(g);
    case ReorderSpec::Kind::kHub: return order_hub(g);
    case ReorderSpec::Kind::kHubCluster: return order_hub_cluster(g);
    case ReorderSpec::Kind::kGorder: return order_gorder(g, spec.window);
  }
  ECLP_CHECK_MSG(false, "unhandled reorder kind");
  return {};
}

namespace {

/// Content hash of a CSR for reorder memoization: shape + the raw index
/// and weight arrays. Two graphs with identical content share relabeled
/// cache entries regardless of how they were obtained.
CacheKey csr_content_key(const Csr& g, const ReorderSpec& spec) {
  CacheKey key;
  key.mix("eclp-reorder-v1");
  key.mix_u64(g.num_vertices());
  key.mix_u64(g.num_edges());
  const auto mix_span = [&key](const auto& span) {
    if (span.empty()) {
      key.mix("");
      return;
    }
    key.mix(std::string_view(reinterpret_cast<const char*>(span.data()),
                             span.size_bytes()));
  };
  mix_span(g.row_offsets());
  mix_span(g.col_indices());
  mix_span(g.weights());
  key.mix(spec.canonical());
  return key;
}

}  // namespace

Csr apply_reorder(const Csr& g, const ReorderSpec& spec) {
  if (spec.is_natural()) return g;
  return cache_or_build(csr_content_key(g, spec),
                        [&] { return relabel(g, make_order(g, spec)); });
}

const std::vector<ReorderSpec>& reorder_suite() {
  static const std::vector<ReorderSpec> kSuite = {
      ReorderSpec::parse("natural"), ReorderSpec::parse("random"),
      ReorderSpec::parse("bfs"),     ReorderSpec::parse("degree"),
      ReorderSpec::parse("hub"),     ReorderSpec::parse("gorder"),
  };
  return kSuite;
}

double block_affinity(const Csr& g, vidx block_size) {
  ECLP_CHECK(block_size > 0);
  if (g.num_edges() == 0) return 1.0;
  u64 inside = 0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      inside += (u / block_size == v / block_size);
    }
  }
  return static_cast<double>(inside) / static_cast<double>(g.num_edges());
}

double locality_score(const Csr& g) {
  if (g.num_edges() == 0 || g.num_vertices() == 0) return 0.0;
  double total = 0.0;
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx v : g.neighbors(u)) {
      total += std::abs(static_cast<double>(u) - static_cast<double>(v));
    }
  }
  return total / static_cast<double>(g.num_edges()) /
         static_cast<double>(g.num_vertices());
}

}  // namespace eclp::graph
