// Chunked streaming CSR assembly: build a graph directly from a
// re-emittable chunked edge stream, never materializing the edge list.
//
// The classic Builder path costs ~16 bytes/edge of COO staging on top of
// the CSR itself and forces generation to finish before assembly starts.
// This header replaces that with the KaGen discipline: a *chunk source*
// exposes a fixed number of chunks and can (re)emit any chunk's edges on
// demand, deterministically per chunk id. build_from_chunks() then runs a
// two-pass pipeline —
//
//   pass 1  re-emit every chunk, accumulating per-(slot, row) degree
//           histograms (slots group contiguous chunks so the cursor
//           matrix stays under kParallelHistogramEntryCap);
//   pass 2  re-emit every chunk again and scatter each edge straight into
//           the final CSR adjacency array through per-(slot, row) cursors,
//
// followed by the same per-row sort + keep-first dedupe the materialized
// pipeline runs. Peak memory is the final CSR plus the cursor matrix —
// the edge list never exists.
//
// Determinism contract (docs/INGEST.md "Chunked streaming generation"):
// emission within a chunk is sequential and a pure function of the chunk
// id, so the concatenation of chunks in chunk order is one canonical edge
// sequence. Both passes replay chunks in chunk order within each slot,
// which makes the scatter a stable counting sort by source over that
// canonical sequence — the same argument that makes assemble_parallel
// bit-identical to the serial sort (builder.cpp). The output is therefore
// byte-identical to materializing the canonical sequence and calling
// from_edges(), at any build thread count and any slot grouping.
//
// Streams are unweighted: the sink carries (src, dst) only, and
// build_from_chunks rejects opt.weighted. With all weights equal, equal
// (src, dst) duplicates are indistinguishable, so byte identity survives
// any interleaving of mirrored arcs too.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstring>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "support/parallel_for.hpp"

namespace eclp::graph {

/// A re-emittable chunked edge stream. `emit(chunk, sink)` must call
/// `sink(src, dst)` for every edge of that chunk, in a fixed order that
/// depends only on the chunk id — never on thread count, emission order
/// across chunks, or how often the chunk was emitted before. gen::
/// ChunkSource (gen/chunk_source.hpp) re-exports this concept for the
/// generator layer.
template <typename S>
concept ChunkedEdgeSource =
    requires(const S& s, u64 chunk, void (&sink)(vidx, vidx)) {
      { s.num_vertices() } -> std::convertible_to<vidx>;
      { s.num_chunks() } -> std::convertible_to<u64>;
      { s.estimated_edges() } -> std::convertible_to<u64>;
      s.emit(chunk, sink);
    };

/// Adapter: serve an already-materialized edge list as a chunk source
/// (weights are dropped — chunk streams are unweighted). This is how the
/// equivalence tests drive every suite input, whatever generator built it,
/// through the streamed pipeline. The span must outlive the adapter.
class VectorChunkSource {
 public:
  VectorChunkSource(vidx num_vertices, std::span<const Edge> edges,
                    u64 chunks)
      : num_vertices_(num_vertices),
        edges_(edges),
        chunks_(std::max<u64>(1, std::min<u64>(chunks, std::max<usize>(
                                                   1, edges.size())))) {}

  vidx num_vertices() const { return num_vertices_; }
  u64 num_chunks() const { return chunks_; }
  u64 estimated_edges() const { return edges_.size(); }

  template <typename Sink>
  void emit(u64 chunk, Sink&& sink) const {
    const auto [begin, end] = chunk_range(edges_.size(), chunks_, chunk);
    for (u64 i = begin; i < end; ++i) sink(edges_[i].src, edges_[i].dst);
  }

 private:
  vidx num_vertices_;
  std::span<const Edge> edges_;
  u64 chunks_;
};

namespace detail {

/// Slot count for the streamed pipeline: one slot per pool worker (1 when
/// ingest is sequential), never more than the source has chunks, and
/// capped so the cursor matrix (slots x V entries of eidx) stays inside
/// kParallelHistogramEntryCap — the same footprint bound the materialized
/// pipeline applies (builder.cpp).
inline u64 stream_build_slots(u64 chunks, usize num_vertices) {
  Pool* pool = build_pool();
  u64 slots = pool == nullptr ? 1 : pool->size();
  slots = std::max<u64>(1, std::min(slots, chunks));
  const usize v = std::max<usize>(1, num_vertices);
  while (slots > 1 && slots * v > kParallelHistogramEntryCap) --slots;
  return slots;
}

}  // namespace detail

/// Assemble a CSR straight from a chunk source, byte-identical to
/// materializing the source's canonical edge sequence (chunks
/// concatenated in chunk order) and calling from_edges() with the same
/// options. Unweighted only.
template <ChunkedEdgeSource S>
Csr build_from_chunks(const S& source, const BuildOptions& opt = {}) {
  ECLP_CHECK_MSG(!opt.weighted, "chunk streams are unweighted");
  const vidx num_vertices = source.num_vertices();
  const usize V = num_vertices;
  const u64 chunks = std::max<u64>(1, source.num_chunks());
  const u64 slots = detail::stream_build_slots(chunks, V);
  Pool* pool = build_pool();

  // Pass 1: per-slot degree histograms over the re-emitted stream. Mirror
  // arcs are counted here too, so the mirrored edge list still never
  // materializes. Row `slot * V + src` is written only by the worker
  // draining that slot's chunk range.
  std::vector<eidx> cursors(slots * V, 0);
  parallel_for_chunks(pool, chunks, slots,
                      [&](u64 slot, u64 cbegin, u64 cend, u32) {
                        eidx* mine = cursors.data() + slot * V;
                        const auto count = [&](vidx u, vidx v) {
                          ECLP_CHECK_MSG(
                              u < num_vertices && v < num_vertices,
                              "edge (" << u << "," << v
                                       << ") out of range, n="
                                       << num_vertices);
                          if (u == v) {
                            if (opt.remove_self_loops) return;
                            mine[u] += opt.directed ? 1 : 2;
                          } else {
                            mine[u]++;
                            if (!opt.directed) mine[v]++;
                          }
                        };
                        for (u64 c = cbegin; c < cend; ++c) {
                          source.emit(c, count);
                        }
                      });

  // Row starts (exclusive prefix over per-row totals), then a column-wise
  // exclusive scan turning the histograms into per-(slot, row) scatter
  // cursors — the same two phases as the materialized pipeline.
  std::vector<eidx> row_start(V + 1, 0);
  {
    u64 running = 0;
    for (usize s = 0; s < V; ++s) {
      row_start[s] = static_cast<eidx>(running);
      for (u64 c = 0; c < slots; ++c) running += cursors[c * V + s];
    }
    ECLP_CHECK_MSG(running <= static_cast<u64>(kNoEdge),
                   "streamed graph exceeds 32-bit edge indices ("
                       << running << " arcs)");
    row_start[V] = static_cast<eidx>(running);
  }
  parallel_for_chunks(pool, V, slots, [&](u64, u64 begin, u64 end, u32) {
    for (u64 s = begin; s < end; ++s) {
      eidx cursor = row_start[s];
      for (u64 c = 0; c < slots; ++c) {
        const eidx count = cursors[c * V + s];
        cursors[c * V + s] = cursor;
        cursor += count;
      }
    }
  });

  // Pass 2: re-emit every chunk and scatter arcs (originals and mirrors
  // interleaved) straight into the final adjacency array. Cursor slots
  // are private per (slot, row), so no atomics; within every row, slot
  // order equals chunk order equals canonical order.
  std::vector<vidx> targets(row_start[V]);
  parallel_for_chunks(pool, chunks, slots,
                      [&](u64 slot, u64 cbegin, u64 cend, u32) {
                        eidx* cursor = cursors.data() + slot * V;
                        const auto scatter = [&](vidx u, vidx v) {
                          if (u == v) {
                            if (opt.remove_self_loops) return;
                            targets[cursor[u]++] = u;
                            if (!opt.directed) targets[cursor[u]++] = u;
                          } else {
                            targets[cursor[u]++] = v;
                            if (!opt.directed) targets[cursor[v]++] = u;
                          }
                        };
                        for (u64 c = cbegin; c < cend; ++c) {
                          source.emit(c, scatter);
                        }
                      });
  cursors.clear();
  cursors.shrink_to_fit();

  // Per-row sort + keep-first dedupe, in place. Equal u32 values are
  // interchangeable, so a plain sort yields the same bytes as the
  // materialized pipeline's stable variant. More chunks than workers so
  // stealing can rebalance hub rows.
  std::vector<eidx> kept(V, 0);
  const u64 row_chunks = std::min<u64>(std::max<usize>(1, V), slots * 8);
  parallel_for_chunks(pool, V, row_chunks, [&](u64, u64 bv, u64 ev, u32) {
    for (u64 s = bv; s < ev; ++s) {
      vidx* const begin = targets.data() + row_start[s];
      vidx* const end = targets.data() + row_start[s + 1];
      std::sort(begin, end);
      if (opt.dedupe) {
        kept[s] = static_cast<eidx>(std::unique(begin, end) - begin);
      } else {
        kept[s] = static_cast<eidx>(end - begin);
      }
    }
  });

  std::vector<eidx> offsets(V + 1, 0);
  for (usize s = 0; s < V; ++s) offsets[s + 1] = offsets[s] + kept[s];

  // Compact the surviving prefixes left, in place (a fresh copy would
  // spike peak memory right at the worst moment). Phase A squeezes each
  // segment's rows against the segment's own base — reads and writes stay
  // inside the segment, so segments run in parallel. Phase B then slides
  // each segment's now-contiguous block down to its final offset; that
  // move can cross into the previous segment's old span, so it runs
  // serially, ascending (dest <= src throughout, memmove handles the
  // overlap).
  parallel_for_chunks(pool, V, row_chunks,
                      [&](u64, u64 bv, u64 ev, u32) {
                        eidx w = row_start[bv];
                        for (u64 s = bv; s < ev; ++s) {
                          vidx* const from = targets.data() + row_start[s];
                          if (w != row_start[s] && kept[s] != 0) {
                            std::memmove(targets.data() + w, from,
                                         kept[s] * sizeof(vidx));
                          }
                          w += kept[s];
                        }
                      });
  for (u64 c = 0; c < row_chunks; ++c) {
    const auto [bv, ev] = chunk_range(V, row_chunks, c);
    const eidx dest = offsets[bv];
    const eidx src = row_start[bv];
    const eidx count = offsets[ev] - offsets[bv];
    if (dest != src && count != 0) {
      std::memmove(targets.data() + dest, targets.data() + src,
                   static_cast<usize>(count) * sizeof(vidx));
    }
  }
  // resize() keeps the capacity — a shrink_to_fit here would briefly hold
  // both buffers, defeating the bounded-memory point. The slack is the
  // dedupe loss only.
  targets.resize(offsets[V]);
  return Csr::from_parts(num_vertices, std::move(offsets),
                         std::move(targets), {}, opt.directed);
}

/// Materialize the source's canonical edge sequence (chunks in chunk
/// order). Reference semantics for build_from_chunks; tests and the
/// peak-RSS bench use it as the "materialized" arm.
template <ChunkedEdgeSource S>
std::vector<Edge> materialize_chunks(const S& source) {
  std::vector<Edge> edges;
  edges.reserve(source.estimated_edges());
  for (u64 c = 0; c < std::max<u64>(1, source.num_chunks()); ++c) {
    source.emit(c, [&](vidx u, vidx v) { edges.push_back({u, v, 0}); });
  }
  return edges;
}

/// The legacy path over a chunk source: materialize, then Builder::build.
template <ChunkedEdgeSource S>
Csr build_materialized(const S& source, const BuildOptions& opt = {}) {
  Builder b(source.num_vertices());
  b.reserve_edges(source.estimated_edges());
  for (u64 c = 0; c < std::max<u64>(1, source.num_chunks()); ++c) {
    source.emit(c, [&](vidx u, vidx v) { b.add(u, v); });
  }
  return b.build(opt);
}

}  // namespace eclp::graph
