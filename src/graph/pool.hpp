// In-process, ref-counted graph pool.
//
// The on-disk .eclg cache (graph/cache.hpp) removes the *build* cost of a
// repeated graph; a serving process that handles many concurrent requests
// also wants to remove the *load* cost and the per-request memory: one
// immutable CSR resident in RAM, shared by every request that needs it
// (GraphCage's argument — keep the graph cache-resident, never rebuild per
// request). The Pool is that resident tier: entries are keyed by the same
// content-addressed keys the disk cache uses, acquired through RAII pins
// that ref-count the entry, and evicted LRU-wise under a byte budget —
// but never while pinned, so a request can hold its graph for as long as
// it runs regardless of what the eviction policy would prefer.
//
// Concurrency contract (the serving harness calls acquire from many
// threads at once):
//  * acquire() is single-flight per key: the first requester builds, every
//    concurrent requester for the same key blocks until the build lands
//    and then shares the entry (counted as a hit — the build was amortized
//    onto the miss that triggered it).
//  * A failed build erases the placeholder and rethrows to the builder;
//    blocked waiters retry and become builders themselves.
//  * Eviction only ever considers entries with zero pins. Pinned bytes can
//    therefore exceed the budget transiently; the pool returns under the
//    budget as pins drop (checked again on every release).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "support/metrics.hpp"

namespace eclp::graph {

/// Resident bytes of a CSR (the three payload arrays; the fixed header is
/// noise at graph sizes). The quantity the pool's byte budget meters.
u64 graph_bytes(const Csr& g);

/// Pool observability. hits + misses == requests always holds — even in a
/// snapshot taken while builds (or failed-build retries) are in flight:
/// a request is counted at the instant it is classified, as the miss that
/// builds the entry or as a hit on a resident (or in-flight) one. An
/// acquire whose build throws counts as a miss; a waiter that retries
/// after a failed build is classified once, by its final outcome.
struct PoolStats {
  u64 requests = 0;   ///< classified acquire() calls (== hits + misses)
  u64 hits = 0;       ///< served from a resident or in-flight entry
  u64 misses = 0;     ///< this acquire built (and inserted) the graph
  u64 evictions = 0;  ///< entries dropped by the LRU policy (never pinned)
  u64 bytes = 0;      ///< resident payload bytes right now
  u64 peak_bytes = 0; ///< high-water mark of `bytes`
  u64 entries = 0;    ///< resident entries right now
  u64 pinned = 0;     ///< entries with at least one live pin right now
  u64 pins = 0;       ///< live pins right now (0 when no request is running)
};

class Pool {
 public:
  /// `byte_budget` caps resident payload bytes (graph_bytes sums). 0 means
  /// "no sharing": every acquire still works, but entries are dropped as
  /// soon as the last pin releases.
  explicit Pool(u64 byte_budget);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  class Pin;

  /// Return a pin on the graph stored under `key`, building it with
  /// `build` on a miss. Blocks while another thread builds the same key.
  /// Exceptions from `build` propagate (the pool keeps no trace of the
  /// failed entry).
  Pin acquire(const std::string& key, const std::function<Csr()>& build);

  u64 byte_budget() const { return budget_; }

  /// Mirror the pool's bookkeeping into live metrics instruments:
  /// counters `pool.hits` / `pool.misses` / `pool.evictions` and gauges
  /// `pool.bytes` / `pool.entries`, updated at classification/eviction
  /// time under the pool lock (docs/OBSERVABILITY.md, "Runtime
  /// telemetry"). Call before serving; the registry must outlive the pool.
  void bind_metrics(metrics::Registry& registry);

  PoolStats stats() const;
  /// True when `key` is resident (test/introspection helper; the answer
  /// can be stale the moment the lock drops).
  bool contains(const std::string& key) const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Csr> graph;  ///< set exactly once, at build end
    u64 bytes = 0;
    u64 last_use = 0;  ///< logical LRU clock stamp
    u32 pins = 0;
    bool building = true;
  };

  void release(Entry* e);
  /// Evict zero-pin entries, oldest first, until `bytes_ <= budget_` or
  /// nothing evictable remains. Caller holds mutex_.
  void evict_to_budget_locked();

  // Optional live instruments (all null until bind_metrics). Counters are
  // bumped where PoolStats is, gauges track bytes_/entries_ whenever they
  // move — so a telemetry snapshot sees the same numbers stats() reports.
  metrics::Counter* m_hits_ = nullptr;
  metrics::Counter* m_misses_ = nullptr;
  metrics::Counter* m_evictions_ = nullptr;
  metrics::Gauge* m_bytes_ = nullptr;
  metrics::Gauge* m_entries_ = nullptr;

  const u64 budget_;
  mutable std::mutex mutex_;
  std::condition_variable built_cv_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  u64 clock_ = 0;
  u64 bytes_ = 0;
  PoolStats stats_;

  friend class Pin;
};

/// RAII ref-count on a pooled graph. Movable, not copyable; the pooled CSR
/// stays resident (and is never evicted) while any pin on it lives.
class Pool::Pin {
 public:
  Pin() = default;
  Pin(Pin&& other) noexcept { *this = std::move(other); }
  Pin& operator=(Pin&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      entry_ = other.entry_;
      graph_ = std::move(other.graph_);
      hit_ = other.hit_;
      other.pool_ = nullptr;
      other.entry_ = nullptr;
    }
    return *this;
  }
  ~Pin() { reset(); }

  Pin(const Pin&) = delete;
  Pin& operator=(const Pin&) = delete;

  bool valid() const { return graph_ != nullptr; }
  const Csr& operator*() const { return *graph_; }
  const Csr* operator->() const { return graph_.get(); }
  const Csr* get() const { return graph_.get(); }
  /// True when this acquire shared an existing (or in-flight) entry.
  bool was_hit() const { return hit_; }

  /// Drop the ref-count early (before destruction).
  void reset() {
    if (pool_ != nullptr && entry_ != nullptr) pool_->release(entry_);
    pool_ = nullptr;
    entry_ = nullptr;
    graph_.reset();
  }

 private:
  friend class Pool;
  Pool* pool_ = nullptr;
  Entry* entry_ = nullptr;
  /// Owned alias of the entry's graph: even a (buggy) eviction while
  /// pinned could not invalidate the pointer a request computes over.
  std::shared_ptr<const Csr> graph_;
  bool hit_ = false;
};

}  // namespace eclp::graph
