// Vertex reordering utilities.
//
// Vertex numbering is load-bearing throughout the paper's observations:
// sorted adjacency plus id order drives ECL-CC's init behaviour (Table 4),
// and the spatial locality of mesh numberings is what keeps ECL-SCC's
// signature propagation inside thread blocks (Figure 1). These helpers
// compute standard orders and quantify how local a numbering is.
//
// Each function returns a permutation `perm` with new_id = perm[old_id],
// suitable for graph::relabel().
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/prng.hpp"

namespace eclp::graph {

/// Descending-degree order (LDF-style; hubs get small ids).
std::vector<vidx> order_by_degree_desc(const Csr& g);

/// BFS order from `source`; on multi-component graphs the BFS restarts
/// from the lowest-id unvisited vertex until every vertex is ranked — the
/// Cuthill-McKee-style bandwidth reducer; neighbors are visited in
/// ascending-degree order.
std::vector<vidx> order_bfs(const Csr& g, vidx source = 0);

/// Uniformly random permutation (destroys locality; the numbering of the
/// paper's grid inputs behaves like this).
std::vector<vidx> order_random(const Csr& g, u64 seed);

/// Morton (Z-order) numbering for a side x side grid-embedded graph whose
/// current ids are row-major: consecutive ids cover compact 2D patches.
std::vector<vidx> order_morton_grid(u32 side);

/// Hub sorting: vertices whose degree exceeds the mean get the lowest ids,
/// sorted by descending degree (ties by id); the tail keeps its original
/// relative order. The classic push-based mitigation for power-law graphs —
/// hot hub state packs into few cache lines while the (already cold) tail
/// is left untouched.
std::vector<vidx> order_hub(const Csr& g);

/// Degree-bucketed hub clustering: vertices are grouped into
/// floor(log2(degree+1)) buckets, buckets emitted from hottest (highest
/// degree) to coldest, original id order within each bucket. Coarser than
/// order_hub — same-temperature vertices cluster without fully sorting,
/// preserving more of the input's own locality inside each bucket.
std::vector<vidx> order_hub_cluster(const Csr& g);

/// Gorder-style greedy sliding-window order: repeatedly append the vertex
/// with the most direct-neighbor + shared-neighbor (sibling) affinity to
/// the last `window` placed vertices. Sibling expansion skips hubs (degree
/// > max(64, 8 * mean)) — Gorder's own trick to stay near-linear on
/// power-law inputs. Deterministic: ties break to the lowest vertex id.
std::vector<vidx> order_gorder(const Csr& g, u32 window = 8);

/// A parsed reordering specification (the `--reorder=<spec>` grammar):
///   "natural" (or "")   keep the input numbering
///   "random[:SEED]"     order_random (default seed 1)
///   "bfs"               order_bfs from vertex 0
///   "degree"            order_by_degree_desc
///   "hub"               order_hub
///   "hubcluster"        order_hub_cluster
///   "gorder[:WINDOW]"   order_gorder (default window 8)
struct ReorderSpec {
  enum class Kind : u8 {
    kNatural,
    kRandom,
    kBfs,
    kDegree,
    kHub,
    kHubCluster,
    kGorder,
  };
  Kind kind = Kind::kNatural;
  u64 seed = 1;    ///< random only
  u32 window = 8;  ///< gorder only
  /// Parse a spec string; throws CheckFailure on anything else.
  static ReorderSpec parse(const std::string& spec);
  /// Canonical spec string ("natural", "random:1", "gorder:8", ...);
  /// stable, so it is safe to mix into cache/pool keys.
  std::string canonical() const;
  bool is_natural() const { return kind == Kind::kNatural; }
};

/// Compute the permutation `spec` describes for `g` (identity for natural).
std::vector<vidx> make_order(const Csr& g, const ReorderSpec& spec);

/// Relabel `g` by `spec`, memoized through the content-addressed graph
/// cache (keyed by the CSR's content hash + the canonical spec) so sweeps
/// over many orders of one input pay each ordering once. Natural specs
/// return `g` unchanged.
Csr apply_reorder(const Csr& g, const ReorderSpec& spec);

/// The shared reorder sweep used by bench_reorder and
/// bench_ablation_numbering: natural, random, bfs, degree, hub, gorder —
/// one canonical list so the two benches cannot drift.
const std::vector<ReorderSpec>& reorder_suite();

/// Mean absolute id distance across edges, normalized by vertex count:
/// ~0 for perfectly local numberings, ~1/3 for random ones.
double locality_score(const Csr& g);

/// Fraction of arcs whose endpoints fall into the same aligned id-block of
/// `block_size` vertices — a direct proxy for "does signature propagation
/// stay inside a thread block" (paper §6.1.2). Morton-numbered meshes score
/// high at GPU block sizes; row-major strips and random orders score low.
double block_affinity(const Csr& g, vidx block_size);

}  // namespace eclp::graph
