// Vertex reordering utilities.
//
// Vertex numbering is load-bearing throughout the paper's observations:
// sorted adjacency plus id order drives ECL-CC's init behaviour (Table 4),
// and the spatial locality of mesh numberings is what keeps ECL-SCC's
// signature propagation inside thread blocks (Figure 1). These helpers
// compute standard orders and quantify how local a numbering is.
//
// Each function returns a permutation `perm` with new_id = perm[old_id],
// suitable for graph::relabel().
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/prng.hpp"

namespace eclp::graph {

/// Descending-degree order (LDF-style; hubs get small ids).
std::vector<vidx> order_by_degree_desc(const Csr& g);

/// BFS order from `source` (unvisited vertices follow in id order) — the
/// Cuthill-McKee-style bandwidth reducer; neighbors are visited in
/// ascending-degree order.
std::vector<vidx> order_bfs(const Csr& g, vidx source = 0);

/// Uniformly random permutation (destroys locality; the numbering of the
/// paper's grid inputs behaves like this).
std::vector<vidx> order_random(const Csr& g, u64 seed);

/// Morton (Z-order) numbering for a side x side grid-embedded graph whose
/// current ids are row-major: consecutive ids cover compact 2D patches.
std::vector<vidx> order_morton_grid(u32 side);

/// Mean absolute id distance across edges, normalized by vertex count:
/// ~0 for perfectly local numberings, ~1/3 for random ones.
double locality_score(const Csr& g);

/// Fraction of arcs whose endpoints fall into the same aligned id-block of
/// `block_size` vertices — a direct proxy for "does signature propagation
/// stay inside a thread block" (paper §6.1.2). Morton-numbered meshes score
/// high at GPU block sizes; row-major strips and random orders score low.
double block_affinity(const Csr& g, vidx block_size);

}  // namespace eclp::graph
