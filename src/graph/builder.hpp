// Edge-list (COO) accumulation and conversion to CSR.
//
// All generators and file readers produce edges through this builder, which
// handles symmetrization, deduplication, self-loop removal, and adjacency
// sorting. Sorted adjacency matters to the algorithms: ECL-CC's init
// heuristic relies on the smallest neighbor appearing first (paper §6.1.3).
//
// Assembly is host-parallel: above a size threshold, build() replaces the
// global O(E log E) sort with a three-phase pipeline on the build pool
// (histogram → prefix-sum → stable scatter, then per-adjacency sort; see
// docs/INGEST.md). The output is bit-identical to the serial path at any
// thread count — the sorted adjacency the algorithms rely on is preserved
// exactly, and tests/ingest_test.cpp pins the byte identity for the whole
// input suite. Thread count: ECLP_BUILD_THREADS / eclp::set_build_threads
// (support/parallel_for.hpp).
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace eclp::graph {

struct Edge {
  vidx src = 0;
  vidx dst = 0;
  weight_t w = 0;
  bool operator==(const Edge&) const = default;
};

struct BuildOptions {
  bool directed = false;       ///< keep arcs as given (true) or mirror (false)
  bool weighted = false;       ///< carry edge weights into the CSR
  bool remove_self_loops = true;
  bool dedupe = true;  ///< drop parallel edges (keep first weight)
  // Adjacency lists always come out sorted ascending by id: CSR assembly
  // sorts globally by (src, dst), and the sorted order is load-bearing for
  // ECL-CC's init heuristic (paper §6.1.3).
};

class Builder {
 public:
  explicit Builder(vidx num_vertices) : num_vertices_(num_vertices) {}

  vidx num_vertices() const { return num_vertices_; }
  usize num_pending_edges() const { return edges_.size(); }

  /// Add one arc (or one undirected edge — mirroring happens in build()).
  void add(vidx src, vidx dst, weight_t w = 0);

  /// Bulk append (range-checked). The chunk-parallel readers hand their
  /// per-chunk buffers over in chunk order through this. Capacity grows
  /// geometrically (never by just the batch size), so bursty per-chunk
  /// emission does not reallocate the staging vector once per batch —
  /// pass the total through reserve_edges() up front to skip the growth
  /// entirely.
  void add_edges(std::span<const Edge> edges);

  /// Capacity hint: generators and readers that know (or can estimate)
  /// their edge count call this once before emitting. Deliberately u64 —
  /// huge-scale estimates are computed in 64 bits; the builder clamps to
  /// what the address space can hold.
  void reserve_edges(u64 edges);

  /// Staged-edge capacity, exposed for the growth-policy tests.
  usize capacity_edges() const { return edges_.capacity(); }

  /// Assemble the CSR. The builder is left empty afterwards.
  Csr build(const BuildOptions& opt = {});

 private:
  vidx num_vertices_;
  std::vector<Edge> edges_;
};

/// Convenience: build an undirected unweighted graph from an edge list.
Csr from_edges(vidx num_vertices, const std::vector<Edge>& edges,
               const BuildOptions& opt = {});

/// Footprint cap shared by both parallel assembly paths — the COO
/// pipeline in builder.cpp and the streamed pipeline in stream_build.hpp:
/// at most this many (chunk, row) histogram/cursor entries (256 MiB of
/// eidx). Chunk counts shrink to fit under it on huge vertex sets.
inline constexpr usize kParallelHistogramEntryCap = usize{1} << 26;

/// Minimum post-mirror edge count before build() switches from the serial
/// sort to the parallel pipeline (the pool barriers do not pay for
/// themselves on tiny inputs). 0 restores the default. Exposed so the
/// equivalence tests can force the parallel path onto tiny suite graphs.
void set_parallel_build_min_edges(usize min_edges);
usize parallel_build_min_edges();

}  // namespace eclp::graph
