// Edge-list (COO) accumulation and conversion to CSR.
//
// All generators and file readers produce edges through this builder, which
// handles symmetrization, deduplication, self-loop removal, and adjacency
// sorting. Sorted adjacency matters to the algorithms: ECL-CC's init
// heuristic relies on the smallest neighbor appearing first (paper §6.1.3).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace eclp::graph {

struct Edge {
  vidx src = 0;
  vidx dst = 0;
  weight_t w = 0;
  bool operator==(const Edge&) const = default;
};

struct BuildOptions {
  bool directed = false;       ///< keep arcs as given (true) or mirror (false)
  bool weighted = false;       ///< carry edge weights into the CSR
  bool remove_self_loops = true;
  bool dedupe = true;  ///< drop parallel edges (keep first weight)
  // Adjacency lists always come out sorted ascending by id: CSR assembly
  // sorts globally by (src, dst), and the sorted order is load-bearing for
  // ECL-CC's init heuristic (paper §6.1.3).
};

class Builder {
 public:
  explicit Builder(vidx num_vertices) : num_vertices_(num_vertices) {}

  vidx num_vertices() const { return num_vertices_; }
  usize num_pending_edges() const { return edges_.size(); }

  /// Add one arc (or one undirected edge — mirroring happens in build()).
  void add(vidx src, vidx dst, weight_t w = 0);

  void reserve(usize edges) { edges_.reserve(edges); }

  /// Assemble the CSR. The builder is left empty afterwards.
  Csr build(const BuildOptions& opt = {});

 private:
  vidx num_vertices_;
  std::vector<Edge> edges_;
};

/// Convenience: build an undirected unweighted graph from an edge list.
Csr from_edges(vidx num_vertices, const std::vector<Edge>& edges,
               const BuildOptions& opt = {});

}  // namespace eclp::graph
