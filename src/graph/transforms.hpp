// Structural graph transforms.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/prng.hpp"

namespace eclp::graph {

/// Reverse every arc. The result is directed (transpose of an undirected
/// graph equals the graph itself, so this is mainly for SCC inputs).
Csr transpose(const Csr& g);

/// Make a directed graph undirected by mirroring every arc (dedupes).
Csr symmetrize(const Csr& g);

/// Drop self-loops, keep everything else.
Csr remove_self_loops(const Csr& g);

/// Apply a vertex relabeling: new_id = perm[old_id]. `perm` must be a
/// permutation of [0, n). Adjacency lists are re-sorted.
Csr relabel(const Csr& g, std::span<const vidx> perm);

/// Permutation that sorts vertices by descending degree (ties by id).
/// Used to build LDF-style orderings.
std::vector<vidx> degree_descending_order(const Csr& g);

/// Induced subgraph on `keep` (ids are compacted in `keep` order).
Csr induced_subgraph(const Csr& g, std::span<const vidx> keep);

/// Assign deterministic pseudo-random weights in [1, max_weight] to an
/// unweighted graph; symmetric edges get equal weights (hash of the
/// unordered endpoint pair), as MST requires.
Csr with_random_weights(const Csr& g, u64 seed, weight_t max_weight = 1u << 20);

/// True if every arc u->v has a reverse arc v->u.
bool is_symmetric(const Csr& g);

}  // namespace eclp::graph
