// Compressed-sparse-row graph representation.
//
// This mirrors the representation used by the ECL suite (and the paper's
// Section 5.2): vertices are 0..n-1, `row_offsets` has n+1 entries, and
// `col_indices[row_offsets[v] .. row_offsets[v+1])` are v's neighbors.
// Undirected graphs store each edge twice (u->v and v->u), so num_edges()
// matches the edge counts reported in the paper's Table 1.
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace eclp::graph {

class Csr {
 public:
  Csr() = default;

  /// Assemble a graph from raw CSR arrays.
  /// `weights` may be empty (unweighted) or match `col_indices` in size.
  /// `directed` records the intent; undirected graphs must be symmetric
  /// (validate() checks this).
  static Csr from_parts(vidx num_vertices, std::vector<eidx> row_offsets,
                        std::vector<vidx> col_indices,
                        std::vector<weight_t> weights = {},
                        bool directed = false);

  vidx num_vertices() const { return num_vertices_; }
  /// Number of stored (directed) edge slots. For undirected graphs this is
  /// twice the number of undirected edges, matching Table 1 in the paper.
  eidx num_edges() const { return static_cast<eidx>(col_indices_.size()); }

  bool directed() const { return directed_; }
  bool weighted() const { return !weights_.empty(); }

  vidx degree(vidx v) const {
    ECLP_CHECK(v < num_vertices_);
    return row_offsets_[v + 1] - row_offsets_[v];
  }

  /// Neighbors of v, in adjacency-list order.
  std::span<const vidx> neighbors(vidx v) const {
    ECLP_CHECK(v < num_vertices_);
    return {col_indices_.data() + row_offsets_[v],
            col_indices_.data() + row_offsets_[v + 1]};
  }

  /// Weights parallel to neighbors(v). Only valid when weighted().
  std::span<const weight_t> weights_of(vidx v) const {
    ECLP_CHECK(weighted());
    ECLP_CHECK(v < num_vertices_);
    return {weights_.data() + row_offsets_[v],
            weights_.data() + row_offsets_[v + 1]};
  }

  std::span<const eidx> row_offsets() const { return row_offsets_; }
  std::span<const vidx> col_indices() const { return col_indices_; }
  std::span<const weight_t> weights() const { return weights_; }

  /// First edge slot of v (used by edge-centric kernels).
  eidx edge_begin(vidx v) const { return row_offsets_[v]; }
  eidx edge_end(vidx v) const { return row_offsets_[v + 1]; }
  vidx edge_target(eidx e) const { return col_indices_[e]; }
  weight_t edge_weight(eidx e) const {
    ECLP_CHECK(weighted());
    return weights_[e];
  }

  /// Check structural invariants: monotone offsets, in-range targets,
  /// symmetry when undirected. Throws CheckFailure on violation.
  void validate() const;

  bool operator==(const Csr& other) const = default;

 private:
  vidx num_vertices_ = 0;
  bool directed_ = false;
  std::vector<eidx> row_offsets_ = {0};
  std::vector<vidx> col_indices_;
  std::vector<weight_t> weights_;
};

/// Basic degree statistics as reported in the paper's Table 1.
struct DegreeStats {
  double avg = 0.0;
  vidx max = 0;
  vidx min = 0;
};
DegreeStats degree_stats(const Csr& g);

}  // namespace eclp::graph
