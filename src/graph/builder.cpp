#include "graph/builder.hpp"

#include <algorithm>

namespace eclp::graph {

void Builder::add(vidx src, vidx dst, weight_t w) {
  ECLP_CHECK_MSG(src < num_vertices_ && dst < num_vertices_,
                 "edge (" << src << "," << dst << ") out of range, n="
                          << num_vertices_);
  edges_.push_back({src, dst, w});
}

Csr Builder::build(const BuildOptions& opt) {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();

  if (opt.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (!opt.directed) {
    const usize n = edges.size();
    edges.reserve(n * 2);
    for (usize i = 0; i < n; ++i) {
      edges.push_back({edges[i].dst, edges[i].src, edges[i].w});
    }
  }

  // Sort by (src, dst) so CSR assembly is a linear sweep and adjacency comes
  // out sorted; a stable sort keeps the first-inserted weight for dupes.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });

  if (opt.dedupe) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<eidx> offsets(static_cast<usize>(num_vertices_) + 1, 0);
  for (const Edge& e : edges) offsets[e.src + 1]++;
  for (usize v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  std::vector<vidx> targets(edges.size());
  std::vector<weight_t> weights;
  if (opt.weighted) weights.resize(edges.size());
  // Edges are already grouped and ordered by src, so a direct copy keeps
  // adjacency sorted when requested.
  for (usize i = 0; i < edges.size(); ++i) {
    targets[i] = edges[i].dst;
    if (opt.weighted) weights[i] = edges[i].w;
  }
  return Csr::from_parts(num_vertices_, std::move(offsets),
                         std::move(targets), std::move(weights),
                         opt.directed);
}

Csr from_edges(vidx num_vertices, const std::vector<Edge>& edges,
               const BuildOptions& opt) {
  Builder b(num_vertices);
  b.reserve(edges.size());
  for (const Edge& e : edges) b.add(e.src, e.dst, e.w);
  return b.build(opt);
}

}  // namespace eclp::graph
