#include "graph/builder.hpp"

#include <algorithm>
#include <atomic>

#include "support/parallel_for.hpp"

namespace eclp::graph {

namespace {

// Below this many (post-mirror) edges the pool barriers cost more than the
// sort they replace; the serial path runs instead. Tests lower it to force
// the parallel pipeline onto tiny inputs (set_parallel_build_min_edges).
constexpr usize kDefaultParallelMinEdges = 1 << 12;
std::atomic<usize> g_parallel_min_edges{kDefaultParallelMinEdges};

// One adjacency slot during assembly. Weights ride along even for
// unweighted builds (they are dropped at the end) so there is a single
// scatter/sort path.
struct Adj {
  vidx dst;
  weight_t w;
};

/// The original serial assembly: one global stable sort by (src, dst),
/// dedupe, then a linear sweep into the CSR arrays. The parallel pipeline
/// below must reproduce these bytes exactly; this path remains both the
/// small-input fast path and the reference the equivalence tests compare
/// against (tests/ingest_test.cpp).
Csr assemble_serial(std::vector<Edge>& edges, vidx num_vertices,
                    const BuildOptions& opt) {
  // Sort by (src, dst) so CSR assembly is a linear sweep and adjacency comes
  // out sorted; a stable sort keeps the first-inserted weight for dupes.
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });

  if (opt.dedupe) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<eidx> offsets(static_cast<usize>(num_vertices) + 1, 0);
  for (const Edge& e : edges) offsets[e.src + 1]++;
  for (usize v = 1; v < offsets.size(); ++v) offsets[v] += offsets[v - 1];

  std::vector<vidx> targets(edges.size());
  std::vector<weight_t> weights;
  if (opt.weighted) weights.resize(edges.size());
  // Edges are already grouped and ordered by src, so a direct copy keeps
  // adjacency sorted when requested.
  for (usize i = 0; i < edges.size(); ++i) {
    targets[i] = edges[i].dst;
    if (opt.weighted) weights[i] = edges[i].w;
  }
  return Csr::from_parts(num_vertices, std::move(offsets),
                         std::move(targets), std::move(weights),
                         opt.directed);
}

/// Parallel assembly. Replaces the O(E log E) global sort with
///   1. per-chunk source histograms,
///   2. prefix sums turning the histograms into per-(chunk, source)
///      scatter cursors,
///   3. a stable scatter — chunk c writes its edges, in input order, at
///      its reserved cursor positions,
/// followed by a per-adjacency stable sort by destination and a keep-first
/// dedupe. Phases 1 and 3 reproduce a *stable counting sort by source*
/// for any chunking: within every source, edges stay in input order. A
/// stable per-row sort by dst on top of that equals the serial path's
/// stable sort by (src, dst), so the output is bit-identical to
/// assemble_serial at any thread count (docs/INGEST.md spells the
/// argument out; tests/ingest_test.cpp checks it for the full suite).
Csr assemble_parallel(std::vector<Edge>& edges, vidx num_vertices,
                      const BuildOptions& opt, Pool& pool) {
  const usize V = num_vertices;
  const usize E = edges.size();
  // One chunk per worker, capped so the histogram matrix (chunks x V
  // cursors) stays within a fixed footprint on huge vertex sets.
  u64 chunks = pool.size();
  while (chunks > 1 && chunks * V > kParallelHistogramEntryCap) --chunks;
  if (chunks <= 1) return assemble_serial(edges, num_vertices, opt);

  // Phase 1: per-chunk histogram over edge sources. Row c of `cursors` is
  // written only by the worker draining chunk c.
  std::vector<eidx> cursors(chunks * V, 0);
  parallel_for_chunks(&pool, E, chunks,
                      [&](u64 chunk, u64 begin, u64 end, u32) {
                        eidx* mine = cursors.data() + chunk * V;
                        for (u64 i = begin; i < end; ++i) {
                          mine[edges[i].src]++;
                        }
                      });

  // Phase 2a: row starts — exclusive prefix sum over per-source totals.
  std::vector<eidx> row_start(V + 1, 0);
  {
    u64 running = 0;
    for (usize s = 0; s < V; ++s) {
      row_start[s] = static_cast<eidx>(running);
      for (u64 c = 0; c < chunks; ++c) running += cursors[c * V + s];
    }
    row_start[V] = static_cast<eidx>(running);
  }
  // Phase 2b: turn the histograms into scatter cursors — column-wise
  // exclusive scan over chunks, parallel across disjoint source ranges.
  parallel_for_chunks(&pool, V, chunks, [&](u64, u64 begin, u64 end, u32) {
    for (u64 s = begin; s < end; ++s) {
      eidx cursor = row_start[s];
      for (u64 c = 0; c < chunks; ++c) {
        const eidx count = cursors[c * V + s];
        cursors[c * V + s] = cursor;
        cursor += count;
      }
    }
  });

  // Phase 3: stable scatter. Chunk c's cursor for source s starts exactly
  // where chunk c-1's edges for s end, so concatenation order == input
  // order within every source; (chunk, source) cursor slots are private to
  // one worker, so the increments need no atomics.
  std::vector<Adj> adj(E);
  parallel_for_chunks(&pool, E, chunks,
                      [&](u64 chunk, u64 begin, u64 end, u32) {
                        eidx* cursor = cursors.data() + chunk * V;
                        for (u64 i = begin; i < end; ++i) {
                          const Edge& e = edges[i];
                          adj[cursor[e.src]++] = {e.dst, e.w};
                        }
                      });
  edges.clear();
  edges.shrink_to_fit();
  cursors.clear();
  cursors.shrink_to_fit();

  // Phase 4: per-adjacency stable sort by dst (stable ⇒ the first-inserted
  // weight survives dedupe, matching the serial stable sort) and in-place
  // keep-first dedupe. More chunks than workers so stealing can rebalance
  // skewed degree mass (one hub row can dominate a whole range).
  std::vector<eidx> kept(V, 0);
  const u64 row_chunks = std::min<u64>(V, pool.size() * u64{8});
  parallel_for_chunks(&pool, V, row_chunks, [&](u64, u64 bv, u64 ev, u32) {
    for (u64 s = bv; s < ev; ++s) {
      const auto begin = adj.begin() + row_start[s];
      const auto end = adj.begin() + row_start[s + 1];
      std::stable_sort(begin, end, [](const Adj& a, const Adj& b) {
        return a.dst < b.dst;
      });
      if (opt.dedupe) {
        const auto last = std::unique(begin, end,
                                      [](const Adj& a, const Adj& b) {
                                        return a.dst == b.dst;
                                      });
        kept[s] = static_cast<eidx>(last - begin);
      } else {
        kept[s] = static_cast<eidx>(end - begin);
      }
    }
  });

  // Phase 5: final offsets over the surviving counts, then a parallel
  // compaction of each row's kept prefix into the CSR arrays.
  std::vector<eidx> offsets(V + 1, 0);
  for (usize s = 0; s < V; ++s) offsets[s + 1] = offsets[s] + kept[s];
  std::vector<vidx> targets(offsets[V]);
  std::vector<weight_t> weights;
  if (opt.weighted) weights.resize(offsets[V]);
  parallel_for_chunks(&pool, V, row_chunks, [&](u64, u64 bv, u64 ev, u32) {
    for (u64 s = bv; s < ev; ++s) {
      const Adj* row = adj.data() + row_start[s];
      const eidx out = offsets[s];
      for (eidx i = 0; i < kept[s]; ++i) {
        targets[out + i] = row[i].dst;
        if (opt.weighted) weights[out + i] = row[i].w;
      }
    }
  });
  return Csr::from_parts(num_vertices, std::move(offsets),
                         std::move(targets), std::move(weights),
                         opt.directed);
}

}  // namespace

void set_parallel_build_min_edges(usize min_edges) {
  g_parallel_min_edges.store(min_edges == 0 ? kDefaultParallelMinEdges
                                            : min_edges,
                             std::memory_order_relaxed);
}

usize parallel_build_min_edges() {
  return g_parallel_min_edges.load(std::memory_order_relaxed);
}

void Builder::add(vidx src, vidx dst, weight_t w) {
  ECLP_CHECK_MSG(src < num_vertices_ && dst < num_vertices_,
                 "edge (" << src << "," << dst << ") out of range, n="
                          << num_vertices_);
  edges_.push_back({src, dst, w});
}

void Builder::add_edges(std::span<const Edge> edges) {
  // Geometric growth: size + batch would make a loop of B-edge batches
  // reallocate (and copy the whole staging vector) once per call. Doubling
  // amortizes that to O(total) even when no reserve_edges hint was given.
  const usize needed = edges_.size() + edges.size();
  if (needed > edges_.capacity()) {
    edges_.reserve(std::max(needed, edges_.capacity() * 2));
  }
  for (const Edge& e : edges) {
    ECLP_CHECK_MSG(e.src < num_vertices_ && e.dst < num_vertices_,
                   "edge (" << e.src << "," << e.dst << ") out of range, n="
                            << num_vertices_);
    edges_.push_back(e);
  }
}

void Builder::reserve_edges(u64 edges) {
  edges_.reserve(static_cast<usize>(
      std::min<u64>(edges, edges_.max_size())));
}

Csr Builder::build(const BuildOptions& opt) {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();

  if (opt.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  if (!opt.directed) {
    const usize n = edges.size();
    edges.reserve(n * 2);
    for (usize i = 0; i < n; ++i) {
      edges.push_back({edges[i].dst, edges[i].src, edges[i].w});
    }
  }

  Pool* pool = build_pool();
  if (pool == nullptr ||
      edges.size() < g_parallel_min_edges.load(std::memory_order_relaxed)) {
    return assemble_serial(edges, num_vertices_, opt);
  }
  return assemble_parallel(edges, num_vertices_, opt, *pool);
}

Csr from_edges(vidx num_vertices, const std::vector<Edge>& edges,
               const BuildOptions& opt) {
  Builder b(num_vertices);
  b.reserve_edges(edges.size());
  for (const Edge& e : edges) b.add(e.src, e.dst, e.w);
  return b.build(opt);
}

}  // namespace eclp::graph
