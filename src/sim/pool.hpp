// Simulator attachment of the work-stealing host pool.
//
// The pool itself lives in support/pool.hpp (it also powers the graph
// ingest pipeline via support/parallel_for.hpp); this header re-exports it
// under eclp::sim for the simulator's callers and owns the *simulator's*
// process-wide configuration: how many host threads a Device dispatches
// block-independent launches across. That knob (ECLP_SIM_THREADS /
// --sim-threads) is deliberately separate from the ingest knob
// (ECLP_BUILD_THREADS): simulation thread counts are an experimental
// variable, ingest just wants the hardware.
//
// Determinism is the launch discipline's job (per-block state, per-block
// PRNG streams, shard merges in block-index order), not the scheduler's —
// see support/pool.hpp for the stealing mechanics and the
// lowest-failing-task exception contract.
#pragma once

#include "support/pool.hpp"

namespace eclp::sim {

using ::eclp::Pool;

/// Number of simulator host threads currently configured (>= 1). The first
/// call reads the ECLP_SIM_THREADS environment variable; set_sim_threads
/// overrides it.
u32 sim_threads();

/// Configure the simulator host thread count (0 = one per hardware
/// thread). Takes effect for Devices constructed afterwards: the shared
/// pool is rebuilt, and Devices capture it at construction.
void set_sim_threads(u32 n);

/// The process-wide pool Devices attach to by default: nullptr when
/// sim_threads() == 1 (sequential execution), a live Pool otherwise.
Pool* shared_pool();

}  // namespace eclp::sim
