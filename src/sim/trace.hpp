// Kernel launch timeline.
//
// Complements the counter framework with the one thing general-purpose
// profilers *do* provide — a per-launch timeline — so instrumented runs can
// relate their application-specific counts to where modeled time goes.
// Attach with Device::set_trace(); every launch appends one event.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "support/table.hpp"
#include "support/types.hpp"

namespace eclp::sim {

struct TraceEvent {
  u64 sequence = 0;        ///< launch order
  std::string kernel;
  u32 blocks = 0;
  u32 threads_per_block = 0;
  u64 modeled_cycles = 0;
  u64 cumulative_cycles = 0;  ///< device total after this launch
  u64 atomics_delta = 0;      ///< atomic ops issued by this launch
  // The paper's §3.1 general metrics of this launch:
  u32 active_threads = 0;
  u32 idle_threads = 0;
  /// Load imbalance: max thread work / mean active thread work. An all-idle
  /// launch (active_threads == 0) is trivially balanced and reports exactly
  /// 1.0 — never a division by zero (KernelCost::imbalance guards it).
  double imbalance = 1.0;
  /// Modeled-LLC outcome of this launch; 0/0 while the cache is disabled
  /// (the default), in which case downstream consumers (profile sessions,
  /// Perfetto export) omit the fields entirely so existing artifacts stay
  /// byte-identical.
  u64 llc_hits = 0;
  u64 llc_misses = 0;
  /// Real simulator wall-clock of the launch, in nanoseconds. Only measured
  /// while a trace or launch observer is attached (0 otherwise), and
  /// deliberately excluded from to_csv() so timeline CSVs stay byte-stable
  /// across machines and sim-thread counts.
  u64 wall_ns = 0;
  /// Modeled time of each block (block_overhead + compute + sync). Only
  /// collected while an observer/trace is attached — profile sessions use
  /// it to draw per-block Perfetto tracks. Excluded from to_csv().
  std::vector<u64> block_cycles;
};

class Trace {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  std::span<const TraceEvent> events() const { return events_; }
  usize size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Aggregate by kernel name: launches, total/share of cycles, atomics.
  Table summary(const std::string& title = "kernel timeline summary") const;
  /// Aggregate the §3.1 general metrics by kernel name: average active
  /// thread fraction (vs. idle, §3.1.3-3.1.4) and load imbalance (§3.1.1).
  Table load_balance(const std::string& title = "load balance by kernel") const;
  /// One CSV line per launch for external timeline tools.
  std::string to_csv() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace eclp::sim
