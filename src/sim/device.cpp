#include "sim/device.hpp"

#include <algorithm>

namespace eclp::sim {

namespace {

u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace

Device::Device(CostModel cost, u64 seed, ScheduleMode mode)
    : cost_(cost),
      seed_(seed),
      mode_(mode),
      rng_(splitmix64(seed)),
      pool_(shared_pool()) {
  ECLP_CHECK(cost_.lanes_per_sm > 0);
  ECLP_CHECK(cost_.sm_count > 0);
}

void Device::record_block_atomic(u32 block, AtomicOutcome outcome) {
  if (block_stats_ != nullptr) {
    (*block_stats_)[block].stats.record(outcome);
  } else {
    atomics_.record(outcome);
  }
}

KernelCost Device::finalize_cost(const LaunchConfig& cfg,
                                 std::span<const u64> thread_work,
                                 std::span<const u64> block_sync) {
  KernelCost kc;
  const bool keep_block_times = observing();
  block_cycles_.clear();
  if (keep_block_times) block_cycles_.reserve(cfg.blocks);
  u64 block_time_total = 0;
  u64 max_block_time = 0;
  for (u32 b = 0; b < cfg.blocks; ++b) {
    u64 block_work = 0;
    u64 block_max_thread = 0;
    for (u32 t = 0; t < cfg.threads_per_block; ++t) {
      const u64 w = thread_work[b * cfg.threads_per_block + t];
      block_work += w;
      block_max_thread = std::max(block_max_thread, w);
      if (w > 0) {
        kc.active_threads++;
      } else {
        kc.idle_threads++;
      }
    }
    kc.thread_work += block_work;
    kc.max_thread_work = std::max(kc.max_thread_work, block_max_thread);
    const u64 sync = block_sync.empty() ? 0 : block_sync[b];
    kc.sync_cost += sync;
    // A block is bounded by its lane throughput AND by its longest single
    // thread — one thread's serial instruction stream cannot spread across
    // lanes, which is why per-thread load balance (paper §3.1.1) matters.
    const u64 block_time =
        cost_.block_overhead +
        std::max(ceil_div(block_work, cost_.lanes_per_sm), block_max_thread) +
        sync;
    block_time_total += block_time;
    max_block_time = std::max(max_block_time, block_time);
    if (keep_block_times) block_cycles_.push_back(block_time);
  }
  kc.block_time = block_time_total;
  kc.max_block_time = max_block_time;
  // Fold the per-block LLC slices in block-index order — same deterministic
  // merge discipline as the atomic-outcome shards.
  if (cost_.cache.enabled) {
    for (u32 b = 0; b < cfg.blocks; ++b) {
      kc.llc_hits += block_caches_[b].hits();
      kc.llc_misses += block_caches_[b].misses();
    }
    llc_hits_ += kc.llc_hits;
    llc_misses_ += kc.llc_misses;
  }
  // Throughput bound vs. critical path (see KernelCost).
  kc.modeled_cycles =
      cost_.launch_overhead +
      std::max(ceil_div(block_time_total, cost_.sm_count), max_block_time);
  total_cycles_ += kc.modeled_cycles;
  ++launches_;
  return kc;
}

void Device::record_trace(const KernelStats& stats, u64 atomics_before) {
  if (!observing()) return;
  TraceEvent event;
  event.sequence = launches_;
  event.kernel = stats.name;
  event.blocks = stats.config.blocks;
  event.threads_per_block = stats.config.threads_per_block;
  event.modeled_cycles = stats.cost.modeled_cycles;
  event.cumulative_cycles = total_cycles_;
  event.atomics_delta = atomics_.total() - atomics_before;
  event.active_threads = stats.cost.active_threads;
  event.idle_threads = stats.cost.idle_threads;
  event.imbalance = stats.cost.imbalance();
  event.llc_hits = stats.cost.llc_hits;
  event.llc_misses = stats.cost.llc_misses;
  event.wall_ns = monotonic_ns() - launch_wall_start_;
  event.block_cycles = block_cycles_;
  if (observer_ != nullptr) observer_->on_launch(stats, event);
  if (trace_ != nullptr) trace_->record(std::move(event));
}

void Device::host_op(u64 count) { total_cycles_ += cost_.host_op * count; }

}  // namespace eclp::sim
