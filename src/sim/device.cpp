#include "sim/device.hpp"

#include <algorithm>
#include <numeric>

namespace eclp::sim {

namespace {

u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace

Device::Device(CostModel cost, u64 seed, ScheduleMode mode)
    : cost_(cost),
      seed_(seed),
      mode_(mode),
      rng_(splitmix64(seed)),
      pool_(shared_pool()) {
  ECLP_CHECK(cost_.lanes_per_sm > 0);
  ECLP_CHECK(cost_.sm_count > 0);
}

void Device::charge(u32 global_thread, u64 cycles) {
  work_[global_thread] += cycles;
}

ThreadCtx Device::make_ctx(const LaunchConfig& cfg, u32 block, u32 thread,
                           AtomicStats* stats) {
  ThreadCtx ctx;
  ctx.device_ = this;
  ctx.stats_ = stats == nullptr ? &atomics_ : stats;
  ctx.block_ = block;
  ctx.thread_ = thread;
  ctx.global_ = block * cfg.threads_per_block + thread;
  ctx.block_dim_ = cfg.threads_per_block;
  ctx.grid_dim_ = cfg.blocks;
  return ctx;
}

void Device::run_blocks(
    const LaunchConfig& cfg,
    const std::function<void(u32, AtomicStats&)>& block_body) {
  std::vector<BlockStats> shards(cfg.blocks);
  block_stats_ = &shards;
  try {
    if (pool_ != nullptr && pool_->size() > 1 && cfg.blocks > 1) {
      pool_->run(cfg.blocks, [&](u64 b, u32 /*worker*/) {
        block_body(static_cast<u32>(b), shards[b].stats);
      });
    } else {
      for (u32 b = 0; b < cfg.blocks; ++b) block_body(b, shards[b].stats);
    }
  } catch (...) {
    block_stats_ = nullptr;
    throw;
  }
  block_stats_ = nullptr;
  // Deterministic merge: block-index order, independent of which worker ran
  // which block (and of whether a pool was attached at all).
  for (u32 b = 0; b < cfg.blocks; ++b) atomics_.merge(shards[b].stats);
}

void Device::record_block_atomic(u32 block, AtomicOutcome outcome) {
  if (block_stats_ != nullptr) {
    (*block_stats_)[block].stats.record(outcome);
  } else {
    atomics_.record(outcome);
  }
}

KernelCost Device::finalize_cost(const LaunchConfig& cfg,
                                 std::span<const u64> thread_work,
                                 std::span<const u64> block_sync) {
  KernelCost kc;
  u64 block_time_total = 0;
  u64 max_block_time = 0;
  for (u32 b = 0; b < cfg.blocks; ++b) {
    u64 block_work = 0;
    u64 block_max_thread = 0;
    for (u32 t = 0; t < cfg.threads_per_block; ++t) {
      const u64 w = thread_work[b * cfg.threads_per_block + t];
      block_work += w;
      block_max_thread = std::max(block_max_thread, w);
      if (w > 0) {
        kc.active_threads++;
      } else {
        kc.idle_threads++;
      }
    }
    kc.thread_work += block_work;
    kc.max_thread_work = std::max(kc.max_thread_work, block_max_thread);
    const u64 sync = block_sync.empty() ? 0 : block_sync[b];
    kc.sync_cost += sync;
    // A block is bounded by its lane throughput AND by its longest single
    // thread — one thread's serial instruction stream cannot spread across
    // lanes, which is why per-thread load balance (paper §3.1.1) matters.
    const u64 block_time =
        cost_.block_overhead +
        std::max(ceil_div(block_work, cost_.lanes_per_sm), block_max_thread) +
        sync;
    block_time_total += block_time;
    max_block_time = std::max(max_block_time, block_time);
  }
  kc.block_time = block_time_total;
  kc.max_block_time = max_block_time;
  // Throughput bound vs. critical path (see KernelCost).
  kc.modeled_cycles =
      cost_.launch_overhead +
      std::max(ceil_div(block_time_total, cost_.sm_count), max_block_time);
  total_cycles_ += kc.modeled_cycles;
  ++launches_;
  return kc;
}

KernelStats Device::launch(const std::string& name, LaunchConfig cfg,
                           const std::function<void(ThreadCtx&)>& body) {
  ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
  const u64 atomics_before = atomics_.total();
  const u64 launch_index = launches_;
  work_.assign(cfg.total_threads(), 0);

  if (cfg.block_independent) {
    // Block-parallel path: each block runs to completion independently.
    // Thread order within a block is id order, or a per-block shuffled
    // stream — never a draw from the device-wide rng_, so the execution is
    // a pure function of (seed, launch index, block) and bit-identical for
    // any worker count.
    run_blocks(cfg, [&](u32 b, AtomicStats& shard) {
      if (mode_ == ScheduleMode::kDeterministic) {
        for (u32 t = 0; t < cfg.threads_per_block; ++t) {
          ThreadCtx ctx = make_ctx(cfg, b, t, &shard);
          body(ctx);
        }
      } else {
        Rng block_rng(block_stream_seed(launch_index, b));
        for (const u32 t : block_rng.permutation(cfg.threads_per_block)) {
          ThreadCtx ctx = make_ctx(cfg, b, t, &shard);
          body(ctx);
        }
      }
    });
  } else if (mode_ == ScheduleMode::kDeterministic) {
    for (u32 b = 0; b < cfg.blocks; ++b) {
      for (u32 t = 0; t < cfg.threads_per_block; ++t) {
        ThreadCtx ctx = make_ctx(cfg, b, t);
        body(ctx);
      }
    }
  } else {
    // Shuffled run-to-completion: a seeded permutation of global thread ids.
    auto order = rng_.permutation(cfg.total_threads());
    for (const u32 gid : order) {
      ThreadCtx ctx = make_ctx(cfg, gid / cfg.threads_per_block,
                               gid % cfg.threads_per_block);
      body(ctx);
    }
  }

  KernelStats ks;
  ks.name = name;
  ks.config = cfg;
  ks.cost = finalize_cost(cfg, work_, {});
  record_trace(ks, atomics_before);
  return ks;
}

KernelStats Device::launch_cooperative(
    const std::string& name, LaunchConfig cfg,
    const std::function<bool(ThreadCtx&)>& step,
    const std::function<void(u64)>& on_round_end, u64 max_rounds) {
  ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
  const u64 atomics_before = atomics_.total();
  work_.assign(cfg.total_threads(), 0);

  std::vector<u32> alive(cfg.total_threads());
  std::iota(alive.begin(), alive.end(), 0);

  u64 rounds = 0;
  while (!alive.empty()) {
    ECLP_CHECK_MSG(rounds < max_rounds,
                   "cooperative kernel '" << name << "' exceeded "
                                          << max_rounds << " rounds");
    ++rounds;
    if (mode_ == ScheduleMode::kShuffled) rng_.shuffle(alive);
    std::vector<u32> next;
    next.reserve(alive.size());
    for (const u32 gid : alive) {
      ThreadCtx ctx = make_ctx(cfg, gid / cfg.threads_per_block,
                               gid % cfg.threads_per_block);
      if (!step(ctx)) next.push_back(gid);
    }
    alive = std::move(next);
    if (on_round_end) on_round_end(rounds);
  }

  KernelStats ks;
  ks.name = name;
  ks.config = cfg;
  ks.cooperative_rounds = rounds;
  ks.cost = finalize_cost(cfg, work_, {});
  record_trace(ks, atomics_before);
  return ks;
}

KernelStats Device::launch_block_iterative(
    const std::string& name, LaunchConfig cfg,
    const std::function<bool(ThreadCtx&, u64)>& step, u64 max_inner) {
  ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
  const u64 atomics_before = atomics_.total();
  work_.assign(cfg.total_threads(), 0);

  std::vector<u64> block_iters(cfg.blocks, 0);
  std::vector<u64> block_sync(cfg.blocks, 0);
  const auto run_block = [&](u32 b, AtomicStats* shard) {
    bool block_updated = true;
    u64 inner = 0;
    while (block_updated) {
      ECLP_CHECK_MSG(inner < max_inner,
                     "block-iterative kernel '" << name << "' block " << b
                                                << " exceeded " << max_inner
                                                << " inner iterations");
      ++inner;
      block_updated = false;
      for (u32 t = 0; t < cfg.threads_per_block; ++t) {
        ThreadCtx ctx = make_ctx(cfg, b, t, shard);
        block_updated |= step(ctx, inner);
      }
      // Block-wide synchronization: every resident thread participates,
      // active or not — this is the overhead the paper's §6.2.1 tunes away.
      block_sync[b] +=
          static_cast<u64>(cfg.threads_per_block) * cost_.sync_per_thread;
    }
    block_iters[b] = inner;
  };
  if (cfg.block_independent) {
    run_blocks(cfg, [&](u32 b, AtomicStats& shard) { run_block(b, &shard); });
  } else {
    for (u32 b = 0; b < cfg.blocks; ++b) run_block(b, nullptr);
  }

  KernelStats ks;
  ks.name = name;
  ks.config = cfg;
  ks.block_inner_iterations = std::move(block_iters);
  ks.cost = finalize_cost(cfg, work_, block_sync);
  record_trace(ks, atomics_before);
  return ks;
}

KernelStats Device::launch_block_jacobi(
    const std::string& name, LaunchConfig cfg,
    const std::function<void(ThreadCtx&, u64)>& step,
    const std::function<bool(u32, u64)>& commit, u64 max_inner) {
  ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
  const u64 atomics_before = atomics_.total();
  work_.assign(cfg.total_threads(), 0);

  std::vector<u64> block_iters(cfg.blocks, 0);
  std::vector<u64> block_sync(cfg.blocks, 0);
  const auto run_block = [&](u32 b, AtomicStats* shard) {
    bool block_updated = true;
    u64 inner = 0;
    while (block_updated) {
      ECLP_CHECK_MSG(inner < max_inner,
                     "block-jacobi kernel '" << name << "' block " << b
                                             << " exceeded " << max_inner
                                             << " inner iterations");
      ++inner;
      for (u32 t = 0; t < cfg.threads_per_block; ++t) {
        ThreadCtx ctx = make_ctx(cfg, b, t, shard);
        step(ctx, inner);
      }
      block_sync[b] +=
          static_cast<u64>(cfg.threads_per_block) * cost_.sync_per_thread;
      // The commit callback records its resolved-intent outcomes through
      // record_block_atomic(b, ...), which lands in this block's shard
      // during a block-independent launch.
      block_updated = commit(b, inner);
    }
    block_iters[b] = inner;
  };
  if (cfg.block_independent) {
    run_blocks(cfg, [&](u32 b, AtomicStats& shard) { run_block(b, &shard); });
  } else {
    for (u32 b = 0; b < cfg.blocks; ++b) run_block(b, nullptr);
  }

  KernelStats ks;
  ks.name = name;
  ks.config = cfg;
  ks.block_inner_iterations = std::move(block_iters);
  ks.cost = finalize_cost(cfg, work_, block_sync);
  record_trace(ks, atomics_before);
  return ks;
}

void Device::record_trace(const KernelStats& stats, u64 atomics_before) {
  if (trace_ == nullptr) return;
  TraceEvent event;
  event.sequence = launches_;
  event.kernel = stats.name;
  event.blocks = stats.config.blocks;
  event.threads_per_block = stats.config.threads_per_block;
  event.modeled_cycles = stats.cost.modeled_cycles;
  event.cumulative_cycles = total_cycles_;
  event.atomics_delta = atomics_.total() - atomics_before;
  event.active_threads = stats.cost.active_threads;
  event.idle_threads = stats.cost.idle_threads;
  event.imbalance = stats.cost.imbalance();
  trace_->record(std::move(event));
}

void Device::host_op(u64 count) { total_cycles_ += cost_.host_op * count; }

// --- ThreadCtx ---------------------------------------------------------------

void ThreadCtx::charge_alu(u64 n) { device_->charge(global_, n * device_->cost_.alu); }

void ThreadCtx::charge_reads(u64 n) {
  device_->charge(global_, n * device_->cost_.global_read);
}

void ThreadCtx::charge_writes(u64 n) {
  device_->charge(global_, n * device_->cost_.global_write);
}

void ThreadCtx::charge_coalesced_reads(u64 n) {
  device_->charge(global_, n * device_->cost_.coalesced_read);
}

void ThreadCtx::charge_coalesced_writes(u64 n) {
  device_->charge(global_, n * device_->cost_.coalesced_write);
}

void ThreadCtx::charge_atomics(u64 n) {
  device_->charge(global_, n * device_->cost_.atomic);
}

u32 ThreadCtx::atomic_cas(u32& loc, u32 expected, u32 desired) {
  device_->charge(global_, device_->cost_.atomic);
  const u32 old = loc;
  if (old == expected) {
    loc = desired;
    stats_->record(AtomicOutcome::kCasSuccess);
  } else {
    stats_->record(AtomicOutcome::kCasFailure);
  }
  return old;
}

u64 ThreadCtx::atomic_cas(u64& loc, u64 expected, u64 desired) {
  device_->charge(global_, device_->cost_.atomic);
  const u64 old = loc;
  if (old == expected) {
    loc = desired;
    stats_->record(AtomicOutcome::kCasSuccess);
  } else {
    stats_->record(AtomicOutcome::kCasFailure);
  }
  return old;
}

bool ThreadCtx::atomic_min(u32& loc, u32 value) {
  device_->charge(global_, device_->cost_.atomic);
  if (value < loc) {
    loc = value;
    stats_->record(AtomicOutcome::kMinEffective);
    return true;
  }
  stats_->record(AtomicOutcome::kMinIneffective);
  return false;
}

bool ThreadCtx::atomic_max(u32& loc, u32 value) {
  device_->charge(global_, device_->cost_.atomic);
  if (value > loc) {
    loc = value;
    stats_->record(AtomicOutcome::kMaxEffective);
    return true;
  }
  stats_->record(AtomicOutcome::kMaxIneffective);
  return false;
}

bool ThreadCtx::atomic_min(u64& loc, u64 value) {
  device_->charge(global_, device_->cost_.atomic);
  if (value < loc) {
    loc = value;
    stats_->record(AtomicOutcome::kMinEffective);
    return true;
  }
  stats_->record(AtomicOutcome::kMinIneffective);
  return false;
}

bool ThreadCtx::atomic_max(u64& loc, u64 value) {
  device_->charge(global_, device_->cost_.atomic);
  if (value > loc) {
    loc = value;
    stats_->record(AtomicOutcome::kMaxEffective);
    return true;
  }
  stats_->record(AtomicOutcome::kMaxIneffective);
  return false;
}

u32 ThreadCtx::atomic_add(u32& loc, u32 value) {
  device_->charge(global_, device_->cost_.atomic);
  stats_->record(AtomicOutcome::kAdd);
  const u32 old = loc;
  loc = old + value;
  return old;
}

u64 ThreadCtx::atomic_add(u64& loc, u64 value) {
  device_->charge(global_, device_->cost_.atomic);
  stats_->record(AtomicOutcome::kAdd);
  const u64 old = loc;
  loc = old + value;
  return old;
}

u8 ThreadCtx::atomic_exch(u8& loc, u8 value) {
  device_->charge(global_, device_->cost_.atomic);
  stats_->record(AtomicOutcome::kAdd);
  const u8 old = loc;
  loc = value;
  return old;
}

}  // namespace eclp::sim
