// Gunrock-style operator substrate over the simulated device.
//
// The five ECL ports each hand-roll the same handful of launch shapes over
// device.hpp: a grid-stride per-vertex map, a frontier expansion where
// `width` cooperating lanes stripe one vertex's adjacency list, a worklist
// compaction, and a host- or device-driven convergence loop. This header
// names those shapes — compute / advance / filter / iterate_until — so a
// new workload (ROADMAP: BFS, PageRank, triangle counting) is a composition
// of operators instead of ~300 lines of bespoke launch loops, and so the
// profiling story attaches once, here, instead of per algorithm.
//
// Design constraints, in order:
//
//  * Zero-erasure dispatch. Every operator is a template over its functor
//    types and forwards straight into the Device::launch* templates — the
//    body is invoked directly, inlinable, exactly as a hand-rolled lambda
//    would be (bench_substrate_dispatch has the operator-vs-hand-rolled
//    numbers; the acceptance bar is within 5%).
//
//  * Bit-identical cost charging. An operator charges the same cost-model
//    classes, in the same order, as the loop it replaces: AdvanceShape
//    pins the per-visit coalesced row-offset charge and the per-edge
//    charge class, and the enter/edge/leave hooks run at the same points
//    the hand-rolled bodies performed their classified loads and stores.
//    Porting an algorithm onto the operators must leave every modeled
//    cycle, counter, atomic outcome, and LLC hit/miss count unchanged
//    (modeled_invariance_test and llc_invariance_test gate this with
//    goldens that are NOT regenerated on a port).
//
//  * Inherited observability. Each operator invocation opens a
//    SpanKind::kOperator span ("advance cc_compute_mid") under the current
//    profile session, so every composed algorithm gets operator-level
//    phase structure for free. No session attached -> one thread-local
//    load, nothing else.
//
// State arrays: algorithms keep registering their state arrays with
// Device::register_buffer — in the same deterministic code order as before
// the port, because the modeled LLC normalizes addresses by registration
// order (see BufferMap). register_state() below is the operator-layer
// spelling of that duty. Frontier/worklist vectors that are only indexed by
// the host-side loop machinery (never through ThreadCtx::load/store) are
// deliberately NOT registered: they model launch parameters, not device
// state, and registering them would shift the normalized line grouping of
// every later buffer.
//
// Empty frontiers: operators always launch (a launch is observable in
// kernel counts and spans). Algorithms that skip a launch when its bin or
// worklist is empty — as the ECL ports do — keep that guard at the call
// site, where it is part of the algorithm's launch discipline.
//
// This header is header-only on purpose: it composes the sim, graph, and
// profile layers without adding a link edge from eclp_sim to either
// (consumers — algorithms, tests, benches — already link all three).
#pragma once

#include <bit>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"
#include "support/types.hpp"

namespace eclp::sim::ops {

/// RAII operator-level span: "<op> <kernel>" with SpanKind::kOperator,
/// attached to the thread-local current session; a no-op (one thread-local
/// load) when no session is active. The name string is only built when a
/// session is live, mirroring profile::ScopedSpan's iteration form.
class OpSpan {
 public:
  OpSpan(const char* op, const std::string& kernel)
      : session_(profile::Session::current()) {
    if (session_ != nullptr) {
      id_ = session_->open_span(std::string(op) + ' ' + kernel,
                                profile::SpanKind::kOperator);
    }
  }
  ~OpSpan() {
    if (session_ != nullptr) session_->close_span(id_);
  }
  OpSpan(const OpSpan&) = delete;
  OpSpan& operator=(const OpSpan&) = delete;

 private:
  profile::Session* session_;
  u32 id_ = 0;
};

/// Identity frontier: advance/filter over every vertex of an n-vertex
/// graph without materializing a worklist (frontier[i] == i).
struct AllVertices {
  u64 n = 0;
  u64 size() const { return n; }
  vidx operator[](u64 i) const { return static_cast<vidx>(i); }
};
inline AllVertices all_vertices(u64 n) { return AllVertices{n}; }

/// Memory-traffic shape of an advance, matching what the hand-rolled ECL
/// kernels charge. `width` cooperating lanes process one frontier vertex;
/// lane L handles adjacency entries L, L+width, L+2*width, ...
/// (width=1: thread-per-vertex; kWarpSize: warp-per-vertex; the block
/// size: block-per-vertex).
struct AdvanceShape {
  /// How the per-edge adjacency read is charged before each edge visit.
  /// kCoalesced models lanes streaming the list together (ECL-CC's
  /// compute kernels); kReads models a serial scan charged flat (ECL-GC's
  /// init kernels); kNone leaves all charging to the edge functor.
  enum class EdgeCharge : u8 { kNone, kReads, kCoalesced };

  u32 width = 1;
  /// Coalesced row-offset reads charged once per (vertex, lane) visit
  /// before `enter` runs — 2 for kernels that stream both CSR row bounds,
  /// 0 for kernels whose hand-rolled bodies never charged them.
  u32 row_offset_reads = 2;
  EdgeCharge edge_charge = EdgeCharge::kCoalesced;
};

/// Default no-op leave hook for advance().
struct NoLeave {
  template <typename State>
  void operator()(ThreadCtx&, vidx, State&) const {}
};

namespace detail {

/// Grid-stride over `items` work indices, decomposing each into
/// (frontier slot, lane) without a per-item hardware division: width 1
/// indexes directly, power-of-two widths (warp- and block-per-vertex, the
/// shapes every ECL kernel uses) shift and mask, anything else falls back
/// to div/mod. `visit(slot, lane, unit)` receives std::true_type for the
/// width-1 instantiation so callers can fold lane and stride to literals in
/// their inner loops (thread-per-vertex is the dominant advance shape). The
/// visit order and charge sequence are identical on every path — this is
/// wall-clock strength reduction only (the operator-overhead table in
/// bench_substrate_dispatch is the receipt).
template <typename Visit>
void for_each_lane(ThreadCtx& ctx, u64 items, u32 width, Visit&& visit) {
  if (width == 1) {
    for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
      visit(i, 0u, std::true_type{});
    }
  } else if (std::has_single_bit(width)) {
    const u32 shift = static_cast<u32>(std::countr_zero(width));
    const u64 mask = width - 1;
    for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
      visit(i >> shift, static_cast<u32>(i & mask), std::false_type{});
    }
  } else {
    for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
      visit(i / width, static_cast<u32>(i % width), std::false_type{});
    }
  }
}

/// advance() body for one compile-time edge-charge class: the per-edge
/// charge is `if constexpr`, so each instantiation's adjacency walk is the
/// tight loop the hand-rolled kernels contained — no per-edge (or even
/// per-visit) dispatch on the shape. advance() switches on shape.edge_charge
/// exactly once per call to pick the instantiation.
template <AdvanceShape::EdgeCharge kCharge, typename Frontier, typename Enter,
          typename Edge, typename Leave>
KernelStats advance_with(Device& dev, const std::string& kernel,
                         LaunchConfig cfg, const graph::Csr& g,
                         const Frontier& frontier, AdvanceShape shape,
                         Enter&& enter, Edge&& edge, Leave&& leave) {
  const u64 items = static_cast<u64>(frontier.size()) * shape.width;
  const u32 width = shape.width;
  const u32 row_reads = shape.row_offset_reads;
  constexpr auto charge_edge = [](ThreadCtx& ctx) {
    if constexpr (kCharge == AdvanceShape::EdgeCharge::kReads) {
      ctx.charge_reads(1);
    } else if constexpr (kCharge == AdvanceShape::EdgeCharge::kCoalesced) {
      ctx.charge_coalesced_reads(1);
    }
  };
  if (width == 1) {
    // Thread-per-vertex, the dominant advance shape, gets its own launch
    // instantiation whose body is the literal loop a hand-rolled kernel
    // contains. Dispatching *outside* the kernel body matters: if both
    // shapes shared one body, the wide path's machinery would coexist in
    // the same function and degrade this loop's register allocation.
    return dev.launch(kernel, cfg, [&](ThreadCtx& ctx) {
      for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
        const vidx v = frontier[i];
        const auto nbrs = g.neighbors(v);
        // No zero-guard: charging 0 coalesced reads adds 0 cycles, so the
        // branch would only cost time on the hot path.
        ctx.charge_coalesced_reads(row_reads);
        auto state = enter(ctx, v, 0u);
        for (const vidx u : nbrs) {
          charge_edge(ctx);
          edge(ctx, state, v, u);
        }
        leave(ctx, v, state);
      }
    });
  }
  return dev.launch(kernel, cfg, [&](ThreadCtx& ctx) {
    for_each_lane(ctx, items, width, [&](u64 slot, u32 lane, auto) {
      const vidx v = frontier[slot];
      const auto nbrs = g.neighbors(v);
      ctx.charge_coalesced_reads(row_reads);
      auto state = enter(ctx, v, lane);
      const usize deg = nbrs.size();
      for (usize e = lane; e < deg; e += width) {
        charge_edge(ctx);
        edge(ctx, state, v, nbrs[e]);
      }
      leave(ctx, v, state);
    });
  });
}

}  // namespace detail

/// compute: per-item map. Runs `body(ctx, i)` for every i in [0, items)
/// with the canonical grid-stride loop. The body owns all cost charging —
/// compute() adds no charges of its own, so a ported per-vertex kernel's
/// modeled cycles are bit-identical to its hand-rolled form.
template <typename Body>
KernelStats compute(Device& dev, const std::string& kernel, LaunchConfig cfg,
                    u64 items, Body&& body) {
  OpSpan span("compute", kernel);
  return dev.launch(kernel, cfg, [&](ThreadCtx& ctx) {
    for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
      body(ctx, static_cast<vidx>(i));
    }
  });
}

/// advance: per-edge expansion from a frontier (or all_vertices(n)). For
/// each frontier vertex v, `width` lanes cooperate: every lane charges the
/// shape's row-offset reads and runs `enter(ctx, v, lane)` once — its
/// return value is the lane's per-visit state (resolve a representative,
/// open an output cursor; return 0 if unused) — then strides the adjacency
/// list, charging one edge read per the shape's class before each
/// `edge(ctx, state, v, u)`, and finishes with `leave(ctx, v, state)`.
///
/// The grid covers frontier.size() * width work items; callers pass the
/// same LaunchConfig (blocks_for(items, tpb)) their hand-rolled loop used.
template <typename Frontier, typename Enter, typename Edge,
          typename Leave = NoLeave>
KernelStats advance(Device& dev, const std::string& kernel, LaunchConfig cfg,
                    const graph::Csr& g, const Frontier& frontier,
                    AdvanceShape shape, Enter&& enter, Edge&& edge,
                    Leave&& leave = Leave{}) {
  OpSpan span("advance", kernel);
  using EC = AdvanceShape::EdgeCharge;
  switch (shape.edge_charge) {
    case EC::kNone:
      return detail::advance_with<EC::kNone>(
          dev, kernel, cfg, g, frontier, shape, std::forward<Enter>(enter),
          std::forward<Edge>(edge), std::forward<Leave>(leave));
    case EC::kReads:
      return detail::advance_with<EC::kReads>(
          dev, kernel, cfg, g, frontier, shape, std::forward<Enter>(enter),
          std::forward<Edge>(edge), std::forward<Leave>(leave));
    case EC::kCoalesced: break;
  }
  return detail::advance_with<EC::kCoalesced>(
      dev, kernel, cfg, g, frontier, shape, std::forward<Enter>(enter),
      std::forward<Edge>(edge), std::forward<Leave>(leave));
}

/// filter: predicate compaction of a worklist. `width` lanes visit each
/// input vertex (cost sharing mirrors advance); `pred(ctx, v, lane)` runs
/// on every lane and owns all charging, but only lane 0's verdict decides
/// whether v is appended to `out` — the warp-cooperative "lane 0 executes,
/// every lane carries its share" pattern of ECL-GC's runLarge. The caller
/// clears/swaps `out`, exactly as the hand-rolled worklist loops do.
template <typename Frontier, typename Pred>
KernelStats filter(Device& dev, const std::string& kernel, LaunchConfig cfg,
                   const Frontier& in, u32 width, std::vector<vidx>& out,
                   Pred&& pred) {
  const u64 items = static_cast<u64>(in.size()) * width;
  OpSpan span("filter", kernel);
  return dev.launch(kernel, cfg, [&](ThreadCtx& ctx) {
    detail::for_each_lane(ctx, items, width, [&](u64 slot, u32 lane, auto) {
      const vidx v = in[slot];
      const bool keep = pred(ctx, v, lane);
      if (lane == 0 && keep) out.push_back(v);
    });
  });
}

/// Host-side convergence options for iterate_until().
struct ConvergeOptions {
  /// Each round opens a SpanKind::kIteration span "<round_base> <i>".
  const char* round_base = "round";
  /// Progress guard: the round count may not exceed this.
  u64 max_rounds = ~u64{0};
  /// Diagnostic when the guard trips.
  const char* on_exceeded = "iterate_until failed to make progress";
};

/// iterate_until (host-driven): repeat `round(iteration)` until `done()`
/// is true, numbering iterations from 1, wrapping each in an iteration
/// span and the whole loop in an operator span. Returns the number of
/// rounds executed — the "host iterations" the ECL worklist algorithms
/// report. The progress guard fires *after* a round runs, matching the
/// hand-rolled do-check-at-bottom loops it replaces.
template <typename Done, typename Round>
u64 iterate_until(const std::string& name, Done&& done, Round&& round,
                  ConvergeOptions opt = {}) {
  OpSpan span("iterate_until", name);
  u64 iterations = 0;
  while (!done()) {
    ++iterations;
    profile::ScopedSpan round_span(profile::SpanKind::kIteration,
                                   opt.round_base, iterations);
    round(iterations);
    ECLP_CHECK_MSG(iterations <= opt.max_rounds, opt.on_exceeded);
  }
  return iterations;
}

/// iterate_until (device-driven): the persistent-threads convergence shape.
/// Thin operator spelling of Device::launch_cooperative — `step(ctx)` is
/// one outer-loop iteration of a thread and returns true when that thread
/// is done; `on_round(round)` publishes round snapshots (see algos/mis) —
/// wrapped in an operator span so cooperative kernels appear in the same
/// operator vocabulary as the host-driven loops.
template <typename Step, typename OnRound = NoRoundHook>
KernelStats iterate_until(Device& dev, const std::string& kernel,
                          LaunchConfig cfg, Step&& step,
                          OnRound&& on_round = OnRound{},
                          u64 max_rounds = 1u << 22) {
  OpSpan span("iterate_until", kernel);
  return dev.launch_cooperative(kernel, cfg, std::forward<Step>(step),
                                std::forward<OnRound>(on_round), max_rounds);
}

/// Register an algorithm's state arrays with the modeled LLC's address
/// normalization. Call once per buffer, in a deterministic code order,
/// after the final resize — identical rules to Device::register_buffer,
/// which this forwards to. Ports must keep the registration set and order
/// of the code they replace: the normalized line grouping (and so every
/// LLC hit/miss golden) depends on both.
template <typename... Buffers>
void register_state(Device& dev, const Buffers&... buffers) {
  (dev.register_buffer(buffers), ...);
}

}  // namespace eclp::sim::ops
