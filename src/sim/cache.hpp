// Modeled last-level cache, simulated per thread block.
//
// The cost model (cost_model.hpp) distinguishes coalesced from scattered
// traffic, but a flat scattered cost cannot *measure* locality: reordering
// the vertices of a graph changes which scattered accesses land on the
// same cache line, and that is exactly the effect the paper's numbering
// observations (ECL-CC init, ECL-SCC in-block propagation) ride on. The
// CacheSim is a set-associative tag array with LRU replacement; each
// thread block of a launch owns a private, cold-at-launch slice, and
// ThreadCtx consults it for every classified access (load/store/atomic).
//
// Determinism. Three properties make the modeled hit/miss counts a pure
// function of the program, not of the machine:
//  * per-block simulation: a block's access stream is already required to
//    be worker-count-invariant (the block-independent launch contract), so
//    its private cache sees the same accesses in the same order no matter
//    how many host workers execute the launch;
//  * buffer normalization (BufferMap): device buffers are host std::vectors
//    whose base addresses — and therefore how their elements group into
//    cache lines — depend on allocator history. Algorithms register their
//    state arrays with Device::register_buffer, which maps each one to a
//    page-aligned base in a synthetic address space in registration order
//    (mirroring how cudaMalloc returns aligned allocations on real GPUs).
//    Classified accesses are translated before they reach the tag array,
//    so line grouping is a function of element indices alone;
//  * first-touch line renaming: normalized addresses are grouped into
//    lines by `line_bytes`, then each distinct line is renamed to a dense
//    id in first-touch order *within the block*. Set indexing and tag
//    matching use only the dense id, so even unregistered (fallback)
//    addresses never leak absolute bits into the set mapping.
//
// See docs/SIMULATOR.md ("Modeled LLC") for the full argument and the
// model's deliberate simplifications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "support/types.hpp"

namespace eclp::sim {

/// One block's private LLC slice. alignas(64): slices live in a flat
/// per-launch vector and are updated concurrently by different blocks.
class alignas(64) CacheSim {
 public:
  /// Shape the tag array for `cfg` and reset to cold. `line_bytes` and
  /// `sets` must be powers of two, `ways >= 1`.
  void configure(const CacheConfig& cfg);
  /// Back to cold (tags invalid, counters zero); keeps the shape.
  void reset();

  /// Classify one access; returns true on hit. Counters always accumulate.
  bool access(std::uintptr_t addr);

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }

 private:
  /// Dense first-touch id of the raw line (open-addressed map).
  u64 rename(u64 raw_line);

  u32 line_shift_ = 6;
  u32 ways_ = 8;
  u32 set_mask_ = 63;
  u64 tick_ = 0;
  u64 next_dense_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
  std::vector<u64> tags_;    ///< sets*ways entries; dense id + 1, 0 = empty
  std::vector<u64> stamps_;  ///< LRU stamp per entry
  // First-touch rename table: open addressing, key = raw line + 1 (0 means
  // empty), grown at 70% load.
  std::vector<std::pair<u64, u64>> rename_;
  usize rename_count_ = 0;
};

/// Translates registered device-buffer addresses into a stable synthetic
/// address space so the modeled cache sees the same line grouping no
/// matter where the host allocator placed the vectors. Bases are assigned
/// in registration order, page-aligned, with a guard page between buffers
/// (so consecutive buffers never share a modeled line — the analogue of
/// cudaMalloc's alignment guarantee). Unregistered addresses pass through
/// untranslated: a single scalar (host-side counter, stack flag) occupies
/// one line wherever it lives, so raw addresses are harmless for them.
class BufferMap {
 public:
  /// Register [base, base+bytes); overlapping earlier spans are replaced
  /// (a device reused across runs sees fresh vectors at recycled
  /// addresses). Zero-length spans are ignored.
  void add(const void* base, usize bytes);
  void clear();

  /// Synthetic address for classified accesses; identity for addresses
  /// outside every registered span.
  std::uintptr_t normalize(std::uintptr_t addr) const;

  usize size() const { return spans_.size(); }

 private:
  struct Span {
    std::uintptr_t begin = 0;
    std::uintptr_t end = 0;
    std::uintptr_t norm = 0;  ///< synthetic base for `begin`
  };
  std::vector<Span> spans_;  ///< sorted by begin, non-overlapping
  // Synthetic bases grow from a high non-canonical-looking base so they
  // can never collide with real fallback addresses.
  std::uintptr_t cursor_ = kNormBase;
  static constexpr std::uintptr_t kNormBase = std::uintptr_t{1} << 62;
  static constexpr std::uintptr_t kPage = 4096;
};

/// Parse a --llc / request "llc" spec:
///   ""            -> disabled (the default model)
///   "off"         -> disabled
///   "on"          -> enabled with the CacheConfig defaults
///   "L:W:S"       -> enabled with line_bytes L, ways W, sets S
/// Throws CheckFailure on anything else.
CacheConfig parse_cache_config(const std::string& spec);

/// Canonical spec string ("off" or "64:8:64") — stable across field
/// reordering, used for cache/pool keys and bench labels.
std::string cache_config_label(const CacheConfig& cfg);

}  // namespace eclp::sim
