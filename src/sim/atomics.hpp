// Instrumented atomic operations of the simulated device.
//
// The simulator executes one thread step at a time, so atomics are trivially
// linearizable; what matters for profiling is their *outcome*, which real
// profilers do not expose (paper §3.1.5):
//  * atomicCAS either succeeds (old == expected) or fails and must be
//    retried;
//  * atomicMin/atomicMax always complete but may be *ineffective* (the
//    stored value already was the min/max).
// Every operation reports its outcome so kernels can maintain the paper's
// "useless atomics" counters, and an AtomicStats aggregate tallies outcomes
// device-wide.
#pragma once

#include <array>

#include "support/types.hpp"

namespace eclp::sim {

enum class AtomicOutcome : u8 {
  kCasSuccess = 0,
  kCasFailure,
  kMinEffective,
  kMinIneffective,
  kMaxEffective,
  kMaxIneffective,
  kAdd,
  kCount_,
};

/// Device-wide tally of atomic outcomes (resettable between measurement
/// windows). Cheap: one array increment per atomic.
class AtomicStats {
 public:
  void record(AtomicOutcome o) { counts_[static_cast<usize>(o)]++; }
  u64 count(AtomicOutcome o) const { return counts_[static_cast<usize>(o)]; }
  void reset() { counts_.fill(0); }
  /// Fold another tally into this one (per-block shard merges).
  void merge(const AtomicStats& other) {
    for (usize i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  u64 cas_total() const {
    return count(AtomicOutcome::kCasSuccess) +
           count(AtomicOutcome::kCasFailure);
  }
  /// Fraction of atomicCAS calls that failed and needed a retry.
  double cas_failure_rate() const {
    const u64 total = cas_total();
    return total == 0
               ? 0.0
               : static_cast<double>(count(AtomicOutcome::kCasFailure)) /
                     static_cast<double>(total);
  }
  u64 min_total() const {
    return count(AtomicOutcome::kMinEffective) +
           count(AtomicOutcome::kMinIneffective);
  }
  /// Fraction of atomicMin calls that did not change the target.
  double min_ineffective_rate() const {
    const u64 total = min_total();
    return total == 0
               ? 0.0
               : static_cast<double>(count(AtomicOutcome::kMinIneffective)) /
                     static_cast<double>(total);
  }
  u64 total() const {
    u64 t = 0;
    for (const u64 c : counts_) t += c;
    return t;
  }

 private:
  std::array<u64, static_cast<usize>(AtomicOutcome::kCount_)> counts_{};
};

}  // namespace eclp::sim
