#include "sim/pool.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>

namespace eclp::sim {

namespace {

std::mutex g_config_mutex;
u32 g_sim_threads = 0;  // 0 = not yet initialized from the environment
std::unique_ptr<Pool> g_shared_pool;

u32 threads_from_env() {
  const char* s = std::getenv("ECLP_SIM_THREADS");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return 1;
  return clamp_worker_count(static_cast<u32>(v));
}

u32 sim_threads_locked() {
  if (g_sim_threads == 0) g_sim_threads = threads_from_env();
  return g_sim_threads;
}

}  // namespace

u32 sim_threads() {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  return sim_threads_locked();
}

void set_sim_threads(u32 n) {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  g_sim_threads = clamp_worker_count(n);
  if (g_shared_pool != nullptr && g_shared_pool->size() != g_sim_threads) {
    g_shared_pool.reset();
  }
}

Pool* shared_pool() {
  std::lock_guard<std::mutex> lk(g_config_mutex);
  const u32 threads = sim_threads_locked();
  if (threads <= 1) return nullptr;
  if (g_shared_pool == nullptr) g_shared_pool = std::make_unique<Pool>(threads);
  return g_shared_pool.get();
}

}  // namespace eclp::sim
