// CUDA-like execution model, simulated.
//
// This is the substitution for the paper's RTX 4090 (see DESIGN.md §2). It
// reproduces the parts of the CUDA execution model that the five ECL
// algorithms and their counters depend on:
//
//  * a grid of `blocks` x `threads_per_block` threads with global ids,
//  * instrumented atomics with outcome classification (atomics.hpp),
//  * three launch disciplines:
//      - launch():             every thread's body runs once to completion
//                              (the common ECL kernel shape);
//      - launch_cooperative(): threads repeatedly take *steps* until each
//                              reports done; the scheduler interleaves steps
//                              round-robin, optionally in a seeded shuffled
//                              order. This models the asynchronous,
//                              timing-dependent execution of ECL-MIS whose
//                              run-to-run variation the paper's Table 3
//                              studies;
//      - launch_block_iterative(): each block repeats a thread-step sweep
//                              followed by a block-wide vote until no thread
//                              in the block updated — the __syncthreads
//                              do-while structure of ECL-SCC's propagation
//                              kernel (paper Figure 1);
//  * a cycle cost model charged as threads execute (cost_model.hpp).
//
// Determinism: with ScheduleMode::kDeterministic every run is bit-identical.
// With kShuffled, step order is a pure function of the device seed, so
// "nondeterminism" is reproducible too — rerunning with the same seed gives
// the same interleaving (the paper's Table 3 corresponds to three seeds).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/atomics.hpp"
#include "sim/cost_model.hpp"
#include "sim/pool.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/types.hpp"

namespace eclp::sim {

struct LaunchConfig {
  u32 blocks = 1;
  u32 threads_per_block = 256;
  /// Opt-in declaration that the kernel follows the *launch-snapshot
  /// discipline* (DESIGN.md §2): no thread reads state written by another
  /// block during this launch, and no two blocks write the same location.
  /// Such launches execute their blocks independently — across the host
  /// thread pool when one is attached — with per-block atomic-outcome
  /// shards merged in block-index order and, under ScheduleMode::kShuffled,
  /// a per-block PRNG stream derived from the device seed and launch index
  /// (instead of a draw from the device-wide stream), so every counter and
  /// modeled cycle is bit-identical for any worker count.
  bool block_independent = false;
  u32 total_threads() const { return blocks * threads_per_block; }
};

/// Per-launch result: identification plus modeled cost and, for
/// block-iterative kernels, per-block inner iteration counts.
struct KernelStats {
  std::string name;
  LaunchConfig config;
  KernelCost cost;
  u64 cooperative_rounds = 0;             ///< launch_cooperative only
  std::vector<u64> block_inner_iterations;  ///< launch_block_iterative only
};

enum class ScheduleMode : u8 {
  kDeterministic,  ///< threads step in id order
  kShuffled,       ///< step order reshuffled every round from the device seed
};

class Device;

/// Handle passed to kernel bodies; identifies the thread and provides
/// instrumented operations that charge the cost model.
class ThreadCtx {
 public:
  u32 block_idx() const { return block_; }
  u32 thread_idx() const { return thread_; }
  u32 global_id() const { return global_; }
  u32 block_dim() const { return block_dim_; }
  u32 grid_dim() const { return grid_dim_; }
  /// Total threads in the grid (for grid-stride loops).
  u32 grid_size() const { return block_dim_ * grid_dim_; }

  // --- instrumented memory operations -------------------------------------
  /// Global-memory load of `loc` (charges cost, returns the value).
  template <typename T>
  T load(const T& loc);
  /// Global-memory store (charges cost).
  template <typename T>
  void store(T& loc, T value);
  /// Charge `n` ALU steps (loop control, comparisons, hashing...).
  void charge_alu(u64 n = 1);
  /// Charge `n` plain global reads without going through load() — for bulk
  /// scans where the value flow is clearer with direct indexing.
  void charge_reads(u64 n);
  void charge_writes(u64 n);
  /// Coalesced (streaming) accesses: consecutive threads touch consecutive
  /// addresses — row offsets, a thread's own output slot. Much cheaper than
  /// the scattered accesses of adjacency chasing.
  void charge_coalesced_reads(u64 n);
  void charge_coalesced_writes(u64 n);
  /// Charge the cost of `n` atomic operations whose effect is applied
  /// elsewhere (the buffered-intent pattern of launch_block_jacobi).
  void charge_atomics(u64 n);

  // --- instrumented atomics ------------------------------------------------
  /// atomicCAS: returns the old value; outcome recorded.
  u32 atomic_cas(u32& loc, u32 expected, u32 desired);
  u64 atomic_cas(u64& loc, u64 expected, u64 desired);
  /// atomicMin/Max: returns true when the operation changed the target.
  bool atomic_min(u32& loc, u32 value);
  bool atomic_max(u32& loc, u32 value);
  bool atomic_min(u64& loc, u64 value);
  bool atomic_max(u64& loc, u64 value);
  /// atomicAdd: returns the previous value.
  u32 atomic_add(u32& loc, u32 value);
  u64 atomic_add(u64& loc, u64 value);
  /// atomicExch on a byte (ECL-MIS status updates are single-byte stores).
  u8 atomic_exch(u8& loc, u8 value);

 private:
  friend class Device;
  Device* device_ = nullptr;
  /// Where atomic outcomes are tallied: the device-wide AtomicStats for
  /// sequential launches, this block's private shard for block-independent
  /// ones (merged in block-index order at launch end).
  AtomicStats* stats_ = nullptr;
  u32 block_ = 0;
  u32 thread_ = 0;
  u32 global_ = 0;
  u32 block_dim_ = 0;
  u32 grid_dim_ = 0;
};

class Device {
 public:
  explicit Device(CostModel cost = {}, u64 seed = 0,
                  ScheduleMode mode = ScheduleMode::kDeterministic);

  // --- launch disciplines --------------------------------------------------
  /// Run `body(ctx)` once for every thread of the grid.
  KernelStats launch(const std::string& name, LaunchConfig cfg,
                     const std::function<void(ThreadCtx&)>& body);

  /// Asynchronous kernel: `step(ctx)` is one outer-loop iteration of a
  /// thread; it returns true when the thread has finished. The scheduler
  /// advances every unfinished thread once per round until all finish.
  /// `on_round_end`, if given, runs after every round — kernels use it to
  /// publish a round snapshot when they model the bounded staleness of
  /// massively parallel execution (see algos/mis). `max_rounds` guards
  /// against non-terminating kernels under test.
  KernelStats launch_cooperative(
      const std::string& name, LaunchConfig cfg,
      const std::function<bool(ThreadCtx&)>& step,
      const std::function<void(u64)>& on_round_end = {},
      u64 max_rounds = 1u << 22);

  /// Block-synchronous do-while kernel (ECL-SCC's propagation): each block
  /// repeats { every thread runs `step`; block-wide sync } while any thread
  /// in the block reported an update. Returns per-block inner iteration
  /// counts. `step(ctx, inner_iter)` returns "did this thread update".
  /// Updates become visible immediately (Gauss-Seidel within the sweep).
  KernelStats launch_block_iterative(
      const std::string& name, LaunchConfig cfg,
      const std::function<bool(ThreadCtx&, u64)>& step,
      u64 max_inner = 1u << 22);

  /// Like launch_block_iterative, but with *sweep-snapshot* visibility: the
  /// kernel's `step` only reads committed state and buffers its writes;
  /// `commit(block, inner_iter)` applies them after the block-wide sync and
  /// returns whether anything changed (false ends the block's loop). This
  /// models warp-parallel execution, where a value chain advances about one
  /// hop per sweep regardless of thread ids — a serialized sweep would let
  /// chains aligned with the serialization order collapse in one sweep and
  /// chains against it crawl, an artifact of the simulator, not the machine.
  KernelStats launch_block_jacobi(
      const std::string& name, LaunchConfig cfg,
      const std::function<void(ThreadCtx&, u64)>& step,
      const std::function<bool(u32, u64)>& commit, u64 max_inner = 1u << 22);

  // --- host-side modeling ---------------------------------------------------
  /// Charge one host-side bookkeeping operation (e.g. recomputing a launch
  /// configuration before a kernel launch, paper §6.2.3).
  void host_op(u64 count = 1);

  // --- host parallelism ------------------------------------------------------
  /// Attach a host thread pool (not owned; nullptr = sequential). Devices
  /// attach the process-wide shared_pool() at construction; tests inject
  /// local pools to pin a worker count. Only launches flagged
  /// block_independent use it — results are bit-identical either way.
  void set_pool(Pool* pool) { pool_ = pool; }
  Pool* pool() const { return pool_; }
  /// Worker threads block-independent launches fan out over (>= 1).
  u32 workers() const { return pool_ == nullptr ? 1 : pool_->size(); }

  /// Record an atomic outcome on behalf of `block` from host-resolved
  /// buffered intents (the launch_block_jacobi commit callback). During a
  /// block-independent launch this routes to the block's private shard so
  /// concurrently executing blocks never contend; otherwise it lands in the
  /// device-wide tally directly.
  void record_block_atomic(u32 block, AtomicOutcome outcome);

  // --- accounting ------------------------------------------------------------
  const CostModel& cost_model() const { return cost_; }
  AtomicStats& atomic_stats() { return atomics_; }
  const AtomicStats& atomic_stats() const { return atomics_; }
  /// Modeled cycles accumulated since construction or reset_cycles().
  u64 total_cycles() const { return total_cycles_; }
  void reset_cycles() { total_cycles_ = 0; }
  u64 kernel_launches() const { return launches_; }

  ScheduleMode schedule_mode() const { return mode_; }
  u64 seed() const { return seed_; }

  /// Attach a launch timeline (sim/trace.hpp). Not owned; pass nullptr to
  /// detach. Every subsequent launch appends one TraceEvent.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Number of threads the paper's per-thread tables are averaged over
  /// (196,608 on the RTX 4090 = sm_count * resident threads); for us it is
  /// whatever the launch used — exposed for symmetric reporting.
  static constexpr u32 kWarpSize = 32;

 private:
  friend class ThreadCtx;

  void charge(u32 global_thread, u64 cycles);
  KernelCost finalize_cost(const LaunchConfig& cfg,
                           std::span<const u64> thread_work,
                           std::span<const u64> block_sync);
  ThreadCtx make_ctx(const LaunchConfig& cfg, u32 block, u32 thread,
                     AtomicStats* stats = nullptr);
  void record_trace(const KernelStats& stats, u64 atomics_before);

  /// Execute `block_body(block, stats_shard)` for every block of a
  /// block-independent launch — across the pool when attached, in block
  /// order otherwise — then fold the per-block atomic-outcome shards into
  /// the device tally in block-index order. Identical results either way.
  void run_blocks(const LaunchConfig& cfg,
                  const std::function<void(u32, AtomicStats&)>& block_body);

  /// Seed of the per-block PRNG stream for block `b` of the launch with
  /// index `launch_index` — a pure function of the device seed, so shuffled
  /// interleavings of block-independent launches do not depend on the
  /// worker count or on other launches' draws.
  u64 block_stream_seed(u64 launch_index, u32 block) const {
    return splitmix64(splitmix64(seed_ ^ (launch_index + 1)) ^
                      (0x9e3779b97f4a7c15ULL * (block + 1)));
  }

  CostModel cost_;
  AtomicStats atomics_;
  u64 seed_;
  ScheduleMode mode_;
  Rng rng_;
  u64 total_cycles_ = 0;
  u64 launches_ = 0;
  Trace* trace_ = nullptr;
  Pool* pool_ = nullptr;
  // Work accumulator of the launch currently executing.
  std::vector<u64> work_;
  // Per-block atomic-outcome shards of the block-independent launch
  // currently executing (null outside one).
  struct alignas(64) BlockStats {
    AtomicStats stats;
  };
  std::vector<BlockStats>* block_stats_ = nullptr;
};

// --- ThreadCtx inline implementations ---------------------------------------

template <typename T>
T ThreadCtx::load(const T& loc) {
  charge_reads(1);
  return loc;
}

template <typename T>
void ThreadCtx::store(T& loc, T value) {
  charge_writes(1);
  loc = value;
}

}  // namespace eclp::sim
