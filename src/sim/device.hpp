// CUDA-like execution model, simulated.
//
// This is the substitution for the paper's RTX 4090 (see DESIGN.md §2). It
// reproduces the parts of the CUDA execution model that the five ECL
// algorithms and their counters depend on:
//
//  * a grid of `blocks` x `threads_per_block` threads with global ids,
//  * instrumented atomics with outcome classification (atomics.hpp),
//  * three launch disciplines:
//      - launch():             every thread's body runs once to completion
//                              (the common ECL kernel shape);
//      - launch_cooperative(): threads repeatedly take *steps* until each
//                              reports done; the scheduler interleaves steps
//                              round-robin, optionally in a seeded shuffled
//                              order. This models the asynchronous,
//                              timing-dependent execution of ECL-MIS whose
//                              run-to-run variation the paper's Table 3
//                              studies;
//      - launch_block_iterative(): each block repeats a thread-step sweep
//                              followed by a block-wide vote until no thread
//                              in the block updated — the __syncthreads
//                              do-while structure of ECL-SCC's propagation
//                              kernel (paper Figure 1);
//  * a cycle cost model charged as threads execute (cost_model.hpp).
//
// Dispatch: the launch entry points are templates on the kernel body type,
// so the body is invoked directly — inlinable, no heap allocation, no
// indirect call per simulated thread. The only type erasure left is the
// one the host thread pool genuinely requires: a block-independent launch
// hands the pool one std::function per *launch* (called once per block),
// never one per thread or per step. See docs/SIMULATOR.md ("Dispatch &
// cost-charging internals").
//
// Cost charging is batched: a ThreadCtx accumulates its cycle tally in a
// local register and flushes it into the per-thread work table once per
// body/step invocation, instead of touching shared state on every memory
// op. The flushed sums are identical to per-op charging (addition is
// associative; see DESIGN.md §2), so every modeled number is unchanged.
//
// Determinism: with ScheduleMode::kDeterministic every run is bit-identical.
// With kShuffled, step order is a pure function of the device seed, so
// "nondeterminism" is reproducible too — rerunning with the same seed gives
// the same interleaving (the paper's Table 3 corresponds to three seeds).
#pragma once

#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/atomics.hpp"
#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/pool.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace eclp::sim {

struct LaunchConfig {
  u32 blocks = 1;
  u32 threads_per_block = 256;
  /// Opt-in declaration that the kernel follows the *launch-snapshot
  /// discipline* (DESIGN.md §2): no thread reads state written by another
  /// block during this launch, and no two blocks write the same location.
  /// Such launches execute their blocks independently — across the host
  /// thread pool when one is attached — with per-block atomic-outcome
  /// shards merged in block-index order and, under ScheduleMode::kShuffled,
  /// a per-block PRNG stream derived from the device seed and launch index
  /// (instead of a draw from the device-wide stream), so every counter and
  /// modeled cycle is bit-identical for any worker count.
  bool block_independent = false;
  u32 total_threads() const { return blocks * threads_per_block; }
};

/// Per-launch result: identification plus modeled cost and, for
/// block-iterative kernels, per-block inner iteration counts.
struct KernelStats {
  std::string name;
  LaunchConfig config;
  KernelCost cost;
  u64 cooperative_rounds = 0;             ///< launch_cooperative only
  std::vector<u64> block_inner_iterations;  ///< launch_block_iterative only
};

enum class ScheduleMode : u8 {
  kDeterministic,  ///< threads step in id order
  kShuffled,       ///< step order reshuffled every round from the device seed
};

/// Default (no-op) round hook for launch_cooperative.
struct NoRoundHook {
  void operator()(u64 /*round*/) const {}
};

class Device;

/// Receives one callback per completed kernel launch, on the host thread,
/// after all blocks have joined. This is how profile::Session turns
/// launches into kernel spans without the Device depending on the profiling
/// library. The TraceEvent carries the same payload a Trace would record,
/// plus wall_ns and per-block modeled times (collected only while a trace
/// or observer is attached, so detached runs pay nothing).
class LaunchObserver {
 public:
  virtual ~LaunchObserver() = default;
  virtual void on_launch(const KernelStats& stats, const TraceEvent& event) = 0;
};

/// Handle passed to kernel bodies; identifies the thread and provides
/// instrumented operations that charge the cost model.
///
/// Charges accumulate in `pending_` (a local/register tally) and are
/// flushed into the device's per-thread work table once per body/step
/// invocation by the launch loop — never per operation.
class ThreadCtx {
 public:
  u32 block_idx() const { return block_; }
  u32 thread_idx() const { return thread_; }
  u32 global_id() const { return global_; }
  u32 block_dim() const { return block_dim_; }
  u32 grid_dim() const { return grid_dim_; }
  /// Total threads in the grid (for grid-stride loops).
  u32 grid_size() const { return block_dim_ * grid_dim_; }

  // --- instrumented memory operations -------------------------------------
  /// Global-memory load of `loc` (charges cost, returns the value). This is
  /// a *classified* access: when the modeled LLC is enabled, the address is
  /// mapped to a cache line and charged llc_hit/llc_miss instead of the
  /// flat scattered cost.
  template <typename T>
  T load(const T& loc) {
    if (cache_ != nullptr) {
      classify(reinterpret_cast<std::uintptr_t>(&loc));
    } else {
      charge_reads(1);
    }
    return loc;
  }
  /// Global-memory store (charges cost). Classified like load().
  template <typename T>
  void store(T& loc, T value) {
    if (cache_ != nullptr) {
      classify(reinterpret_cast<std::uintptr_t>(&loc));
    } else {
      charge_writes(1);
    }
    loc = value;
  }
  /// Charge `n` ALU steps (loop control, comparisons, hashing...).
  void charge_alu(u64 n = 1) { pending_ += n * cost_->alu; }
  /// Charge `n` plain global reads without going through load() — for bulk
  /// scans where the value flow is clearer with direct indexing.
  void charge_reads(u64 n) { pending_ += n * cost_->global_read; }
  void charge_writes(u64 n) { pending_ += n * cost_->global_write; }
  /// Coalesced (streaming) accesses: consecutive threads touch consecutive
  /// addresses — row offsets, a thread's own output slot. Much cheaper than
  /// the scattered accesses of adjacency chasing.
  void charge_coalesced_reads(u64 n) { pending_ += n * cost_->coalesced_read; }
  void charge_coalesced_writes(u64 n) {
    pending_ += n * cost_->coalesced_write;
  }
  /// Charge the cost of `n` atomic operations whose effect is applied
  /// elsewhere (the buffered-intent pattern of launch_block_jacobi).
  void charge_atomics(u64 n) { pending_ += n * cost_->atomic; }

  // --- instrumented atomics ------------------------------------------------
  /// atomicCAS: returns the old value; outcome recorded.
  u32 atomic_cas(u32& loc, u32 expected, u32 desired) {
    return atomic_cas_impl(loc, expected, desired);
  }
  u64 atomic_cas(u64& loc, u64 expected, u64 desired) {
    return atomic_cas_impl(loc, expected, desired);
  }
  /// atomicMin/Max: returns true when the operation changed the target.
  bool atomic_min(u32& loc, u32 value) { return atomic_min_impl(loc, value); }
  bool atomic_min(u64& loc, u64 value) { return atomic_min_impl(loc, value); }
  bool atomic_max(u32& loc, u32 value) { return atomic_max_impl(loc, value); }
  bool atomic_max(u64& loc, u64 value) { return atomic_max_impl(loc, value); }
  /// atomicAdd: returns the previous value.
  u32 atomic_add(u32& loc, u32 value) { return atomic_add_impl(loc, value); }
  u64 atomic_add(u64& loc, u64 value) { return atomic_add_impl(loc, value); }
  /// atomicExch on a byte (ECL-MIS status updates are single-byte stores).
  u8 atomic_exch(u8& loc, u8 value) {
    charge_atomic_access(loc);
    stats_->record(AtomicOutcome::kAdd);
    const u8 old = loc;
    loc = value;
    return old;
  }

 private:
  friend class Device;

  /// Consult this block's LLC slice for a classified access and charge
  /// hit or miss.
  void classify(std::uintptr_t addr) {
    pending_ += cache_->access(buffers_->normalize(addr)) ? cost_->llc_hit
                                                          : cost_->llc_miss;
  }
  /// Atomics always charge `atomic`; with the LLC enabled they *also*
  /// touch the line (GPU atomics resolve at the L2, so the RMW pulls the
  /// line regardless) and charge hit/miss on top.
  template <typename T>
  void charge_atomic_access(const T& loc) {
    pending_ += cost_->atomic;
    if (cache_ != nullptr) classify(reinterpret_cast<std::uintptr_t>(&loc));
  }

  template <typename T>
  T atomic_cas_impl(T& loc, T expected, T desired) {
    charge_atomic_access(loc);
    const T old = loc;
    if (old == expected) {
      loc = desired;
      stats_->record(AtomicOutcome::kCasSuccess);
    } else {
      stats_->record(AtomicOutcome::kCasFailure);
    }
    return old;
  }
  template <typename T>
  bool atomic_min_impl(T& loc, T value) {
    charge_atomic_access(loc);
    if (value < loc) {
      loc = value;
      stats_->record(AtomicOutcome::kMinEffective);
      return true;
    }
    stats_->record(AtomicOutcome::kMinIneffective);
    return false;
  }
  template <typename T>
  bool atomic_max_impl(T& loc, T value) {
    charge_atomic_access(loc);
    if (value > loc) {
      loc = value;
      stats_->record(AtomicOutcome::kMaxEffective);
      return true;
    }
    stats_->record(AtomicOutcome::kMaxIneffective);
    return false;
  }
  template <typename T>
  T atomic_add_impl(T& loc, T value) {
    charge_atomic_access(loc);
    stats_->record(AtomicOutcome::kAdd);
    const T old = loc;
    loc = old + value;
    return old;
  }

  /// Commit the accumulated tally into this thread's work-table slot.
  /// Called by the launch loop after every body/step invocation.
  void flush_cost() {
    *work_slot_ += pending_;
    pending_ = 0;
  }

  const CostModel* cost_ = nullptr;
  /// This thread's slot in the device's per-launch work table.
  u64* work_slot_ = nullptr;
  /// Where atomic outcomes are tallied: the device-wide AtomicStats for
  /// sequential launches, this block's private shard for block-independent
  /// ones (merged in block-index order at launch end).
  AtomicStats* stats_ = nullptr;
  /// This block's modeled-LLC slice, or nullptr when the cache is disabled
  /// (the default): classified accesses then keep their flat costs.
  CacheSim* cache_ = nullptr;
  /// The device's buffer-normalization table (set whenever cache_ is).
  const BufferMap* buffers_ = nullptr;
  u64 pending_ = 0;  ///< cycles charged since the last flush
  u32 block_ = 0;
  u32 thread_ = 0;
  u32 global_ = 0;
  u32 block_dim_ = 0;
  u32 grid_dim_ = 0;
};

class Device {
 public:
  explicit Device(CostModel cost = {}, u64 seed = 0,
                  ScheduleMode mode = ScheduleMode::kDeterministic);

  // --- launch disciplines --------------------------------------------------
  // All launch entry points are templates on the callable type: the body is
  // invoked directly (and inlined where the compiler sees fit), with no
  // std::function construction and no per-thread indirect call.

  /// Run `body(ctx)` once for every thread of the grid.
  template <typename Body>
  KernelStats launch(const std::string& name, LaunchConfig cfg, Body&& body) {
    static_assert(std::is_invocable_v<Body&, ThreadCtx&>,
                  "kernel body must be callable as body(ThreadCtx&)");
    ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
    begin_observation();
    const u64 atomics_before = atomics_.total();
    const u64 launch_index = launches_;
    work_.assign(cfg.total_threads(), 0);
    prepare_caches(cfg.blocks);

    if (cfg.block_independent) {
      // Block-parallel path: each block runs to completion independently.
      // Thread order within a block is id order, or a per-block shuffled
      // stream — never a draw from the device-wide rng_, so the execution
      // is a pure function of (seed, launch index, block) and bit-identical
      // for any worker count.
      run_blocks(cfg, [&](u32 b, AtomicStats& shard) {
        if (mode_ == ScheduleMode::kDeterministic) {
          for (u32 t = 0; t < cfg.threads_per_block; ++t) {
            run_thread(cfg, b, t, &shard, body);
          }
        } else {
          Rng block_rng(block_stream_seed(launch_index, b));
          for (const u32 t : block_rng.permutation(cfg.threads_per_block)) {
            run_thread(cfg, b, t, &shard, body);
          }
        }
      });
    } else if (mode_ == ScheduleMode::kDeterministic) {
      for (u32 b = 0; b < cfg.blocks; ++b) {
        for (u32 t = 0; t < cfg.threads_per_block; ++t) {
          run_thread(cfg, b, t, nullptr, body);
        }
      }
    } else {
      // Shuffled run-to-completion: a seeded permutation of global ids.
      const auto order = rng_.permutation(cfg.total_threads());
      for (const u32 gid : order) {
        run_thread(cfg, gid / cfg.threads_per_block,
                   gid % cfg.threads_per_block, nullptr, body);
      }
    }

    KernelStats ks;
    ks.name = name;
    ks.config = cfg;
    ks.cost = finalize_cost(cfg, work_, {});
    record_trace(ks, atomics_before);
    return ks;
  }

  /// Asynchronous kernel: `step(ctx)` is one outer-loop iteration of a
  /// thread; it returns true when the thread has finished. The scheduler
  /// advances every unfinished thread once per round until all finish.
  /// `on_round_end`, if given, runs after every round — kernels use it to
  /// publish a round snapshot when they model the bounded staleness of
  /// massively parallel execution (see algos/mis). `max_rounds` guards
  /// against non-terminating kernels under test.
  template <typename Step, typename OnRoundEnd = NoRoundHook>
  KernelStats launch_cooperative(const std::string& name, LaunchConfig cfg,
                                 Step&& step,
                                 OnRoundEnd&& on_round_end = OnRoundEnd{},
                                 u64 max_rounds = 1u << 22) {
    static_assert(std::is_invocable_r_v<bool, Step&, ThreadCtx&>,
                  "cooperative step must be callable as bool step(ThreadCtx&)");
    static_assert(std::is_invocable_v<OnRoundEnd&, u64>,
                  "round hook must be callable as on_round_end(u64 round)");
    ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
    begin_observation();
    const u64 atomics_before = atomics_.total();
    work_.assign(cfg.total_threads(), 0);
    prepare_caches(cfg.blocks);

    std::vector<u32> alive(cfg.total_threads());
    for (u32 i = 0; i < cfg.total_threads(); ++i) alive[i] = i;

    u64 rounds = 0;
    while (!alive.empty()) {
      ECLP_CHECK_MSG(rounds < max_rounds,
                     "cooperative kernel '" << name << "' exceeded "
                                            << max_rounds << " rounds");
      ++rounds;
      if (mode_ == ScheduleMode::kShuffled) rng_.shuffle(alive);
      // Survivors compact in place (reads stay ahead of writes), keeping
      // the same order the old copy-into-next loop produced.
      usize out = 0;
      for (usize i = 0; i < alive.size(); ++i) {
        const u32 gid = alive[i];
        ThreadCtx ctx = make_ctx(cfg, gid / cfg.threads_per_block,
                                 gid % cfg.threads_per_block);
        const bool done = step(ctx);
        ctx.flush_cost();
        if (!done) alive[out++] = gid;
      }
      alive.resize(out);
      on_round_end(rounds);
    }

    KernelStats ks;
    ks.name = name;
    ks.config = cfg;
    ks.cooperative_rounds = rounds;
    ks.cost = finalize_cost(cfg, work_, {});
    record_trace(ks, atomics_before);
    return ks;
  }

  /// Block-synchronous do-while kernel (ECL-SCC's propagation): each block
  /// repeats { every thread runs `step`; block-wide sync } while any thread
  /// in the block reported an update. Returns per-block inner iteration
  /// counts. `step(ctx, inner_iter)` returns "did this thread update".
  /// Updates become visible immediately (Gauss-Seidel within the sweep).
  template <typename Step>
  KernelStats launch_block_iterative(const std::string& name, LaunchConfig cfg,
                                     Step&& step, u64 max_inner = 1u << 22) {
    static_assert(
        std::is_invocable_r_v<bool, Step&, ThreadCtx&, u64>,
        "block-iterative step must be callable as bool step(ThreadCtx&, u64)");
    ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
    begin_observation();
    const u64 atomics_before = atomics_.total();
    work_.assign(cfg.total_threads(), 0);
    prepare_caches(cfg.blocks);

    std::vector<u64> block_iters(cfg.blocks, 0);
    std::vector<u64> block_sync(cfg.blocks, 0);
    const auto run_block = [&](u32 b, AtomicStats* shard) {
      bool block_updated = true;
      u64 inner = 0;
      while (block_updated) {
        ECLP_CHECK_MSG(inner < max_inner,
                       "block-iterative kernel '" << name << "' block " << b
                                                  << " exceeded " << max_inner
                                                  << " inner iterations");
        ++inner;
        block_updated = false;
        for (u32 t = 0; t < cfg.threads_per_block; ++t) {
          ThreadCtx ctx = make_ctx(cfg, b, t, shard);
          block_updated |= step(ctx, inner);
          ctx.flush_cost();
        }
        // Block-wide synchronization: every resident thread participates,
        // active or not — this is the overhead the paper's §6.2.1 tunes
        // away.
        block_sync[b] +=
            static_cast<u64>(cfg.threads_per_block) * cost_.sync_per_thread;
      }
      block_iters[b] = inner;
    };
    if (cfg.block_independent) {
      run_blocks(cfg, [&](u32 b, AtomicStats& shard) { run_block(b, &shard); });
    } else {
      for (u32 b = 0; b < cfg.blocks; ++b) run_block(b, nullptr);
    }

    KernelStats ks;
    ks.name = name;
    ks.config = cfg;
    ks.block_inner_iterations = std::move(block_iters);
    ks.cost = finalize_cost(cfg, work_, block_sync);
    record_trace(ks, atomics_before);
    return ks;
  }

  /// Like launch_block_iterative, but with *sweep-snapshot* visibility: the
  /// kernel's `step` only reads committed state and buffers its writes;
  /// `commit(block, inner_iter)` applies them after the block-wide sync and
  /// returns whether anything changed (false ends the block's loop). This
  /// models warp-parallel execution, where a value chain advances about one
  /// hop per sweep regardless of thread ids — a serialized sweep would let
  /// chains aligned with the serialization order collapse in one sweep and
  /// chains against it crawl, an artifact of the simulator, not the machine.
  template <typename Step, typename Commit>
  KernelStats launch_block_jacobi(const std::string& name, LaunchConfig cfg,
                                  Step&& step, Commit&& commit,
                                  u64 max_inner = 1u << 22) {
    static_assert(
        std::is_invocable_v<Step&, ThreadCtx&, u64>,
        "block-jacobi step must be callable as step(ThreadCtx&, u64)");
    static_assert(
        std::is_invocable_r_v<bool, Commit&, u32, u64>,
        "block-jacobi commit must be callable as bool commit(u32 block, u64)");
    ECLP_CHECK(cfg.blocks > 0 && cfg.threads_per_block > 0);
    begin_observation();
    const u64 atomics_before = atomics_.total();
    work_.assign(cfg.total_threads(), 0);
    prepare_caches(cfg.blocks);

    std::vector<u64> block_iters(cfg.blocks, 0);
    std::vector<u64> block_sync(cfg.blocks, 0);
    const auto run_block = [&](u32 b, AtomicStats* shard) {
      bool block_updated = true;
      u64 inner = 0;
      while (block_updated) {
        ECLP_CHECK_MSG(inner < max_inner,
                       "block-jacobi kernel '" << name << "' block " << b
                                               << " exceeded " << max_inner
                                               << " inner iterations");
        ++inner;
        for (u32 t = 0; t < cfg.threads_per_block; ++t) {
          ThreadCtx ctx = make_ctx(cfg, b, t, shard);
          step(ctx, inner);
          ctx.flush_cost();
        }
        block_sync[b] +=
            static_cast<u64>(cfg.threads_per_block) * cost_.sync_per_thread;
        // The commit callback records its resolved-intent outcomes through
        // record_block_atomic(b, ...), which lands in this block's shard
        // during a block-independent launch.
        block_updated = commit(b, inner);
      }
      block_iters[b] = inner;
    };
    if (cfg.block_independent) {
      run_blocks(cfg, [&](u32 b, AtomicStats& shard) { run_block(b, &shard); });
    } else {
      for (u32 b = 0; b < cfg.blocks; ++b) run_block(b, nullptr);
    }

    KernelStats ks;
    ks.name = name;
    ks.config = cfg;
    ks.block_inner_iterations = std::move(block_iters);
    ks.cost = finalize_cost(cfg, work_, block_sync);
    record_trace(ks, atomics_before);
    return ks;
  }

  // --- host-side modeling ---------------------------------------------------
  /// Charge one host-side bookkeeping operation (e.g. recomputing a launch
  /// configuration before a kernel launch, paper §6.2.3).
  void host_op(u64 count = 1);

  // --- host parallelism ------------------------------------------------------
  /// Attach a host thread pool (not owned; nullptr = sequential). Devices
  /// attach the process-wide shared_pool() at construction; tests inject
  /// local pools to pin a worker count. Only launches flagged
  /// block_independent use it — results are bit-identical either way.
  void set_pool(Pool* pool) { pool_ = pool; }
  Pool* pool() const { return pool_; }
  /// Worker threads block-independent launches fan out over (>= 1).
  u32 workers() const { return pool_ == nullptr ? 1 : pool_->size(); }

  /// Record an atomic outcome on behalf of `block` from host-resolved
  /// buffered intents (the launch_block_jacobi commit callback). During a
  /// block-independent launch this routes to the block's private shard so
  /// concurrently executing blocks never contend; otherwise it lands in the
  /// device-wide tally directly.
  void record_block_atomic(u32 block, AtomicOutcome outcome);

  // --- accounting ------------------------------------------------------------
  const CostModel& cost_model() const { return cost_; }
  AtomicStats& atomic_stats() { return atomics_; }
  const AtomicStats& atomic_stats() const { return atomics_; }
  /// Modeled cycles accumulated since construction or reset_cycles().
  u64 total_cycles() const { return total_cycles_; }
  void reset_cycles() { total_cycles_ = 0; }
  u64 kernel_launches() const { return launches_; }

  ScheduleMode schedule_mode() const { return mode_; }
  u64 seed() const { return seed_; }

  /// Cumulative modeled-LLC outcomes since construction (0/0 while the
  /// cache is disabled). Profile sessions read deltas of these to tag
  /// spans, mirroring total_cycles().
  u64 llc_hits() const { return llc_hits_; }
  u64 llc_misses() const { return llc_misses_; }

  /// Register an algorithm state array with the modeled LLC's buffer
  /// normalization (the cudaMalloc analogue — see BufferMap). Call once
  /// per buffer, in a deterministic code order, after the final resize:
  /// classified accesses into registered buffers see a stable line
  /// grouping no matter where the host allocator placed the vector.
  /// No-op while the cache is disabled.
  void register_buffer(const void* base, usize bytes) {
    if (cost_.cache.enabled) buffers_.add(base, bytes);
  }
  template <typename T>
  void register_buffer(const std::vector<T>& v) {
    register_buffer(v.data(), v.size() * sizeof(T));
  }

  /// Attach a launch timeline (sim/trace.hpp). Not owned; pass nullptr to
  /// detach. Every subsequent launch appends one TraceEvent.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Attach a launch observer (profile sessions). Not owned; pass nullptr
  /// to detach. Called once per launch, on the host thread, after all
  /// blocks have joined. Wall-clock and per-block times are only measured
  /// while a trace or observer is attached.
  void set_launch_observer(LaunchObserver* observer) { observer_ = observer; }
  LaunchObserver* launch_observer() const { return observer_; }

  /// Number of threads the paper's per-thread tables are averaged over
  /// (196,608 on the RTX 4090 = sm_count * resident threads); for us it is
  /// whatever the launch used — exposed for symmetric reporting.
  static constexpr u32 kWarpSize = 32;

 private:
  KernelCost finalize_cost(const LaunchConfig& cfg,
                           std::span<const u64> thread_work,
                           std::span<const u64> block_sync);
  void record_trace(const KernelStats& stats, u64 atomics_before);

  /// True when some launch consumer (trace or observer) is attached —
  /// gates every observability-only cost (wall clocks, per-block times).
  bool observing() const { return trace_ != nullptr || observer_ != nullptr; }
  /// Stamp the launch's wall-clock start when observed; free otherwise.
  void begin_observation() {
    if (observing()) launch_wall_start_ = monotonic_ns();
  }

  /// Size and cold-reset the per-block LLC slices for the next launch
  /// (no-op while the cache is disabled). Capacity is reused; each slice
  /// starts cold so a launch's hit/miss counts never depend on what ran
  /// before it or on the grid-to-worker assignment.
  void prepare_caches(u32 blocks) {
    if (!cost_.cache.enabled) return;
    while (block_caches_.size() < blocks) {
      block_caches_.emplace_back();
      block_caches_.back().configure(cost_.cache);
    }
    for (u32 b = 0; b < blocks; ++b) block_caches_[b].reset();
  }

  ThreadCtx make_ctx(const LaunchConfig& cfg, u32 block, u32 thread,
                     AtomicStats* stats = nullptr) {
    ThreadCtx ctx;
    ctx.cost_ = &cost_;
    ctx.stats_ = stats == nullptr ? &atomics_ : stats;
    ctx.cache_ = cost_.cache.enabled ? &block_caches_[block] : nullptr;
    ctx.buffers_ = &buffers_;
    ctx.block_ = block;
    ctx.thread_ = thread;
    ctx.global_ = block * cfg.threads_per_block + thread;
    ctx.work_slot_ = &work_[ctx.global_];
    ctx.block_dim_ = cfg.threads_per_block;
    ctx.grid_dim_ = cfg.blocks;
    return ctx;
  }

  /// Run one thread's body and flush its batched cost tally.
  template <typename Body>
  void run_thread(const LaunchConfig& cfg, u32 block, u32 thread,
                  AtomicStats* stats, Body& body) {
    ThreadCtx ctx = make_ctx(cfg, block, thread, stats);
    body(ctx);
    ctx.flush_cost();
  }

  /// Execute `block_body(block, stats_shard)` for every block of a
  /// block-independent launch — across the pool when attached, in block
  /// order otherwise — then fold the per-block atomic-outcome shards into
  /// the device tally in block-index order. Identical results either way.
  /// The pool hand-off is the one remaining type-erasure boundary: one
  /// std::function per launch, invoked once per block.
  template <typename BlockBody>
  void run_blocks(const LaunchConfig& cfg, BlockBody&& block_body) {
    std::vector<BlockStats> shards(cfg.blocks);
    block_stats_ = &shards;
    try {
      if (pool_ != nullptr && pool_->size() > 1 && cfg.blocks > 1) {
        pool_->run(cfg.blocks, [&](u64 b, u32 /*worker*/) {
          block_body(static_cast<u32>(b), shards[b].stats);
        });
      } else {
        for (u32 b = 0; b < cfg.blocks; ++b) block_body(b, shards[b].stats);
      }
    } catch (...) {
      block_stats_ = nullptr;
      throw;
    }
    block_stats_ = nullptr;
    // Deterministic merge: block-index order, independent of which worker
    // ran which block (and of whether a pool was attached at all).
    for (u32 b = 0; b < cfg.blocks; ++b) atomics_.merge(shards[b].stats);
  }

  /// Seed of the per-block PRNG stream for block `b` of the launch with
  /// index `launch_index` — a pure function of the device seed, so shuffled
  /// interleavings of block-independent launches do not depend on the
  /// worker count or on other launches' draws.
  u64 block_stream_seed(u64 launch_index, u32 block) const {
    return splitmix64(splitmix64(seed_ ^ (launch_index + 1)) ^
                      (0x9e3779b97f4a7c15ULL * (block + 1)));
  }

  CostModel cost_;
  AtomicStats atomics_;
  u64 seed_;
  ScheduleMode mode_;
  Rng rng_;
  u64 total_cycles_ = 0;
  u64 launches_ = 0;
  u64 llc_hits_ = 0;    ///< cumulative modeled-LLC hits (cache enabled only)
  u64 llc_misses_ = 0;  ///< cumulative modeled-LLC misses
  Trace* trace_ = nullptr;
  LaunchObserver* observer_ = nullptr;
  u64 launch_wall_start_ = 0;
  // Per-block modeled times of the launch currently finalizing; collected
  // only while observing. Capacity reused across launches.
  std::vector<u64> block_cycles_;
  Pool* pool_ = nullptr;
  // Work accumulator of the launch currently executing; capacity is reused
  // across launches (assign, not reconstruct).
  std::vector<u64> work_;
  // Per-block modeled-LLC slices (empty while the cache is disabled).
  // Each block of a launch touches only its own slice (alignas(64) keeps
  // them on distinct cache lines), so block-parallel execution is race-free
  // and the block-order fold in finalize_cost is deterministic.
  std::vector<CacheSim> block_caches_;
  // Buffer-normalization table for classified addresses (see BufferMap in
  // sim/cache.hpp); populated by register_buffer, shared read-only by all
  // blocks of a launch.
  BufferMap buffers_;
  // Per-block atomic-outcome shards of the block-independent launch
  // currently executing (null outside one).
  struct alignas(64) BlockStats {
    AtomicStats stats;
  };
  std::vector<BlockStats>* block_stats_ = nullptr;
};

}  // namespace eclp::sim
