#include "sim/cache.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"

namespace eclp::sim {
namespace {

bool is_pow2(u32 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void CacheSim::configure(const CacheConfig& cfg) {
  ECLP_CHECK_MSG(is_pow2(cfg.line_bytes),
                 "llc line_bytes must be a power of two, got "
                     << cfg.line_bytes);
  ECLP_CHECK_MSG(is_pow2(cfg.sets),
                 "llc sets must be a power of two, got " << cfg.sets);
  ECLP_CHECK_MSG(cfg.ways >= 1, "llc needs at least one way");
  line_shift_ = static_cast<u32>(std::countr_zero(cfg.line_bytes));
  ways_ = cfg.ways;
  set_mask_ = cfg.sets - 1;
  tags_.assign(static_cast<usize>(cfg.sets) * cfg.ways, 0);
  stamps_.assign(tags_.size(), 0);
  reset();
}

void CacheSim::reset() {
  tick_ = 0;
  next_dense_ = 0;
  hits_ = 0;
  misses_ = 0;
  std::fill(tags_.begin(), tags_.end(), u64{0});
  std::fill(stamps_.begin(), stamps_.end(), u64{0});
  std::fill(rename_.begin(), rename_.end(), std::pair<u64, u64>{0, 0});
  rename_count_ = 0;
}

u64 CacheSim::rename(u64 raw_line) {
  const u64 key = raw_line + 1;  // 0 marks an empty table slot
  if (rename_.empty()) rename_.assign(64, {0, 0});
  // Grow at 70% load, rehashing in slot order (rebuild is order-independent:
  // the stored dense ids are the lookup result, not the insertion order).
  if (rename_count_ * 10 >= rename_.size() * 7) {
    std::vector<std::pair<u64, u64>> old;
    old.swap(rename_);
    rename_.assign(old.size() * 2, {0, 0});
    for (const auto& [k, v] : old) {
      if (k == 0) continue;
      usize slot = static_cast<usize>(k * 0x9E3779B97F4A7C15ull) &
                   (rename_.size() - 1);
      while (rename_[slot].first != 0) slot = (slot + 1) & (rename_.size() - 1);
      rename_[slot] = {k, v};
    }
  }
  usize slot =
      static_cast<usize>(key * 0x9E3779B97F4A7C15ull) & (rename_.size() - 1);
  while (rename_[slot].first != 0) {
    if (rename_[slot].first == key) return rename_[slot].second;
    slot = (slot + 1) & (rename_.size() - 1);
  }
  rename_[slot] = {key, next_dense_};
  ++rename_count_;
  return next_dense_++;
}

bool CacheSim::access(std::uintptr_t addr) {
  // First-touch renaming: set index and tag depend only on the order in
  // which this block first touches distinct lines, never on absolute
  // addresses — see the header's determinism argument.
  const u64 dense = rename(static_cast<u64>(addr) >> line_shift_);
  const u64 tag = dense + 1;  // 0 = empty way
  const usize base = static_cast<usize>(dense & set_mask_) * ways_;
  ++tick_;
  usize victim = base;
  for (usize w = base; w < base + ways_; ++w) {
    if (tags_[w] == tag) {
      stamps_[w] = tick_;
      ++hits_;
      return true;
    }
    // Prefer an empty way; otherwise the stalest stamp, ties to lowest way.
    if (tags_[victim] != 0 && (tags_[w] == 0 || stamps_[w] < stamps_[victim]))
      victim = w;
  }
  tags_[victim] = tag;
  stamps_[victim] = tick_;
  ++misses_;
  return false;
}

void BufferMap::add(const void* base, usize bytes) {
  if (bytes == 0) return;
  const auto begin = reinterpret_cast<std::uintptr_t>(base);
  const std::uintptr_t end = begin + bytes;
  // Replace anything the new span overlaps: a reused device can see a
  // fresh vector recycled onto an old allocation's address range.
  std::erase_if(spans_, [&](const Span& s) {
    return s.begin < end && begin < s.end;
  });
  Span span;
  span.begin = begin;
  span.end = end;
  span.norm = cursor_;
  cursor_ += (bytes + kPage - 1) / kPage * kPage + kPage;  // + guard page
  spans_.insert(std::upper_bound(spans_.begin(), spans_.end(), span,
                                 [](const Span& a, const Span& b) {
                                   return a.begin < b.begin;
                                 }),
                span);
}

void BufferMap::clear() {
  spans_.clear();
  cursor_ = kNormBase;
}

std::uintptr_t BufferMap::normalize(std::uintptr_t addr) const {
  // Last span with begin <= addr (spans are sorted and disjoint).
  auto it = std::upper_bound(spans_.begin(), spans_.end(), addr,
                             [](std::uintptr_t a, const Span& s) {
                               return a < s.begin;
                             });
  if (it == spans_.begin()) return addr;
  --it;
  if (addr >= it->end) return addr;
  return it->norm + (addr - it->begin);
}

CacheConfig parse_cache_config(const std::string& spec) {
  CacheConfig cfg;
  if (spec.empty() || spec == "off") return cfg;
  cfg.enabled = true;
  if (spec == "on" || spec == "default") return cfg;
  u32 vals[3] = {0, 0, 0};
  usize pos = 0;
  for (int i = 0; i < 3; ++i) {
    usize end = spec.find(':', pos);
    const std::string part =
        spec.substr(pos, end == std::string::npos ? end : end - pos);
    ECLP_CHECK_MSG(!part.empty() && ((i < 2) == (end != std::string::npos)),
                   "llc spec must be off, on, or LINE:WAYS:SETS, got '"
                       << spec << "'");
    for (char c : part)
      ECLP_CHECK_MSG(c >= '0' && c <= '9',
                     "llc spec field must be numeric, got '" << part << "'");
    vals[i] = static_cast<u32>(std::stoul(part));
    pos = end == std::string::npos ? spec.size() : end + 1;
  }
  cfg.line_bytes = vals[0];
  cfg.ways = vals[1];
  cfg.sets = vals[2];
  ECLP_CHECK_MSG(is_pow2(cfg.line_bytes) && is_pow2(cfg.sets) && cfg.ways >= 1,
                 "llc spec needs power-of-two line/sets and ways >= 1, got '"
                     << spec << "'");
  return cfg;
}

std::string cache_config_label(const CacheConfig& cfg) {
  if (!cfg.enabled) return "off";
  return std::to_string(cfg.line_bytes) + ":" + std::to_string(cfg.ways) +
         ":" + std::to_string(cfg.sets);
}

}  // namespace eclp::sim
