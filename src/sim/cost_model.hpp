// Cycle-cost model for the simulated GPU.
//
// The paper measures wall-clock speedups on an RTX 4090. Without a GPU we
// replace time with a deterministic cycle model accumulated while kernels
// execute on the simulator. Speedup tables (paper Tables 6-8) are ratios of
// modeled cycles.
//
// The model is deliberately simple and fully documented so its assumptions
// can be audited:
//  * every thread op (ALU step, global load/store, atomic) charges a fixed
//    cost to its thread;
//  * threads of a block execute in parallel across `lanes_per_sm` lanes, so
//    a block's compute time is ceil(block_work / lanes_per_sm);
//  * block-wide synchronization (the __syncthreads-style inner loop used by
//    ECL-SCC) charges every resident thread per round;
//  * blocks are spread across `sm_count` SMs; a kernel's time is the fixed
//    launch overhead plus the per-SM share of total block time;
//  * host-side work (e.g. recomputing a launch configuration, paper §6.2.3)
//    charges `host_op` per occurrence.
//
// These are the exact quantities the paper's three optimizations trade:
// wasted traversal work (CC), idle threads kept alive by block sync (SCC),
// and surplus blocks vs. host recomputation (MST).
#pragma once

#include "support/types.hpp"

namespace eclp::sim {

/// Opt-in modeled last-level cache (LLC). When enabled, every *classified*
/// global access — ctx.load/ctx.store and the instrumented atomics, i.e.
/// exactly the scattered traffic whose cost depends on the vertex
/// numbering — is mapped to a cache line and charged `llc_hit` or
/// `llc_miss` instead of the flat scattered cost. Streaming accesses
/// (charge_coalesced_*) and bulk charges (charge_reads/charge_writes)
/// carry no address and keep their flat costs: on the real GPU they are
/// prefetch-friendly and layout-insensitive, which is the contrast the
/// model exists to expose.
///
/// The cache is simulated *per thread block* (each block owns a private
/// slice of the LLC, cold at launch start), so block-independent launches
/// stay bit-identical for any host worker count — see docs/SIMULATOR.md
/// ("Modeled LLC") for the determinism argument and why it is off by
/// default.
struct CacheConfig {
  u32 line_bytes = 64;  ///< cache-line size (power of two)
  u32 ways = 8;         ///< associativity
  u32 sets = 64;        ///< sets per block slice (power of two)
  bool enabled = false; ///< off by default: modeled costs are unchanged
};

struct CostModel {
  // Per-thread operation costs (abstract cycles).
  u64 alu = 1;            ///< one arithmetic/control step
  u64 global_read = 4;    ///< scattered global-memory load
  u64 global_write = 4;   ///< scattered global-memory store
  u64 coalesced_read = 1;   ///< streaming load (offsets, own slot)
  u64 coalesced_write = 1;  ///< streaming store (own slot)
  u64 atomic = 12;        ///< any atomic RMW (success or not)
  // Modeled LLC (only consulted when cache.enabled). A classified access
  // replaces its flat scattered cost with one of these; atomics charge the
  // hit/miss on top of `atomic` (GPU atomics resolve at the L2, so the RMW
  // always touches the line).
  u64 llc_hit = 2;        ///< classified access that hits the modeled LLC
  u64 llc_miss = 16;      ///< classified access that misses (DRAM fetch)
  CacheConfig cache;      ///< modeled-LLC shape; disabled by default
  // Synchronization and launch costs.
  u64 sync_per_thread = 2;   ///< per resident thread, per block-wide sync
  u64 block_overhead = 32;   ///< fixed cost of scheduling one block
  u64 launch_overhead = 1500;  ///< fixed cost of one kernel launch
  u64 host_op = 800;         ///< one host-side bookkeeping operation
  // Machine shape. The ratios are chosen so that, at the suite's scaled
  // input sizes, per-thread work dominates launch overhead roughly the way
  // multi-million-vertex inputs dominate microsecond launches on the RTX
  // 4090 — otherwise every experiment would just measure launch counts.
  u32 lanes_per_sm = 32;
  u32 sm_count = 8;
};

/// Modeled execution time of one kernel launch, given per-block totals.
/// The kernel time is the launch overhead plus the larger of
///  * the throughput bound: total block time spread across the SMs, and
///  * the critical path: the single slowest block — on the real GPU the
///    grid is (nearly) fully resident, so one block grinding through many
///    block-wide synchronization rounds holds the whole launch hostage.
///    This term is what makes oversized thread blocks lose in the paper's
///    Table 6.
struct KernelCost {
  u64 thread_work = 0;   ///< sum of all per-thread charged cycles
  u64 sync_cost = 0;     ///< block synchronization charges
  u64 block_time = 0;    ///< sum over blocks of per-block time
  u64 max_block_time = 0;  ///< slowest single block (critical path)
  u64 modeled_cycles = 0;  ///< final modeled kernel time
  // The paper's §3.1 general metrics, collected automatically from the
  // per-thread work accounting of every launch:
  u32 active_threads = 0;  ///< threads that charged any work (§3.1.4)
  u32 idle_threads = 0;    ///< threads that charged none (§3.1.3)
  u64 max_thread_work = 0;  ///< heaviest thread (load balance, §3.1.1)
  // Modeled-LLC outcome of this launch (0/0 while the cache is disabled).
  // Summed over the per-block cache slices in block-index order.
  u64 llc_hits = 0;
  u64 llc_misses = 0;

  /// Load imbalance: heaviest thread over the mean of active threads
  /// (1.0 = perfectly balanced).
  double imbalance() const {
    if (active_threads == 0 || thread_work == 0) return 1.0;
    const double mean = static_cast<double>(thread_work) /
                        static_cast<double>(active_threads);
    return static_cast<double>(max_thread_work) / mean;
  }
  double active_fraction() const {
    const u32 total = active_threads + idle_threads;
    return total == 0 ? 0.0
                      : static_cast<double>(active_threads) /
                            static_cast<double>(total);
  }
  /// Fraction of classified accesses that hit the modeled LLC (1.0 when
  /// nothing was classified — an unclassified launch is trivially "warm").
  double llc_hit_rate() const {
    const u64 total = llc_hits + llc_misses;
    return total == 0 ? 1.0
                      : static_cast<double>(llc_hits) /
                            static_cast<double>(total);
  }
};

}  // namespace eclp::sim
