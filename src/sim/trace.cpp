#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace eclp::sim {

Table Trace::summary(const std::string& title) const {
  struct Agg {
    u64 launches = 0;
    u64 cycles = 0;
    u64 atomics = 0;
  };
  std::map<std::string, Agg> by_kernel;
  u64 total_cycles = 0;
  for (const auto& e : events_) {
    auto& agg = by_kernel[e.kernel];
    agg.launches++;
    agg.cycles += e.modeled_cycles;
    agg.atomics += e.atomics_delta;
    total_cycles += e.modeled_cycles;
  }
  // Sort by descending cycle share.
  std::vector<std::pair<std::string, Agg>> rows(by_kernel.begin(),
                                                by_kernel.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.cycles > b.second.cycles;
  });
  Table t(title);
  t.set_header({"kernel", "launches", "cycles", "share", "atomics"});
  for (const auto& [name, agg] : rows) {
    const double share =
        total_cycles ? 100.0 * static_cast<double>(agg.cycles) /
                           static_cast<double>(total_cycles)
                     : 0.0;
    t.add_row({name, fmt::grouped(agg.launches), fmt::grouped(agg.cycles),
               fmt::fixed(share, 1) + "%", fmt::grouped(agg.atomics)});
  }
  return t;
}

Table Trace::load_balance(const std::string& title) const {
  struct Agg {
    u64 launches = 0;
    double active_sum = 0.0;
    double imbalance_sum = 0.0;
    double imbalance_max = 1.0;
  };
  std::map<std::string, Agg> by_kernel;
  for (const auto& e : events_) {
    auto& agg = by_kernel[e.kernel];
    agg.launches++;
    // Defined values for degenerate launches: an all-idle launch counts as
    // 0% active and imbalance 1.0 (trivially balanced), and a manually
    // recorded event with no thread accounting at all (active == idle == 0)
    // contributes 0% rather than dividing by zero.
    const u32 total = e.active_threads + e.idle_threads;
    agg.active_sum += total ? static_cast<double>(e.active_threads) /
                                  static_cast<double>(total)
                            : 0.0;
    agg.imbalance_sum += e.imbalance;
    agg.imbalance_max = std::max(agg.imbalance_max, e.imbalance);
  }
  Table t(title);
  t.set_header({"kernel", "launches", "avg active %", "avg imbalance",
                "worst imbalance"});
  for (const auto& [name, agg] : by_kernel) {
    const double n = static_cast<double>(agg.launches);
    t.add_row({name, fmt::grouped(agg.launches),
               fmt::fixed(100.0 * agg.active_sum / n, 1),
               fmt::fixed(agg.imbalance_sum / n, 2),
               fmt::fixed(agg.imbalance_max, 2)});
  }
  return t;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "sequence,kernel,blocks,threads_per_block,modeled_cycles,"
        "cumulative_cycles,atomics_delta,active_threads,idle_threads,"
        "imbalance\n";
  for (const auto& e : events_) {
    os << e.sequence << ',' << e.kernel << ',' << e.blocks << ','
       << e.threads_per_block << ',' << e.modeled_cycles << ','
       << e.cumulative_cycles << ',' << e.atomics_delta << ','
       << e.active_threads << ',' << e.idle_threads << ',' << e.imbalance
       << '\n';
  }
  return os.str();
}

}  // namespace eclp::sim
