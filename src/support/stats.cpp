#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace eclp::stats {

namespace {

template <typename T>
Summary summarize_impl(std::span<const T> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  double mean = 0.0, m2 = 0.0, total = 0.0;
  double mn = static_cast<double>(xs[0]);
  double mx = mn;
  usize n = 0;
  for (const T& v : xs) {
    const double x = static_cast<double>(v);
    total += x;
    mn = std::min(mn, x);
    mx = std::max(mx, x);
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  s.total = total;
  s.min = mn;
  s.max = mx;
  s.mean = mean;
  s.stddev = std::sqrt(m2 / static_cast<double>(n));
  return s;
}

std::vector<double> sorted_copy(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

Summary summarize(std::span<const u64> xs) { return summarize_impl(xs); }
Summary summarize(std::span<const double> xs) { return summarize_impl(xs); }

double median(std::span<const double> xs) {
  ECLP_CHECK(!xs.empty());
  auto v = sorted_copy(xs);
  const usize n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double median(std::span<const u64> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  return median(std::span<const double>(v));
}

double percentile(std::span<const double> xs, double p) {
  ECLP_CHECK(!xs.empty());
  ECLP_CHECK(p >= 0.0 && p <= 100.0);
  auto v = sorted_copy(xs);
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const usize lo = static_cast<usize>(rank);
  const usize hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  ECLP_CHECK(xs.size() == ys.size());
  ECLP_CHECK(!xs.empty());
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (usize i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double cov = 0, vx = 0, vy = 0;
  for (usize i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx == 0.0 || vy == 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

Interval median_ci95(std::span<const double> xs) {
  ECLP_CHECK(!xs.empty());
  auto v = sorted_copy(xs);
  const usize n = v.size();
  if (n < 6) {
    // Too few samples for a nonparametric interval: report the range.
    return {v.front(), v.back()};
  }
  // Order-statistic CI: ranks ~ n/2 ± 1.96*sqrt(n)/2.
  const double half = 1.96 * std::sqrt(static_cast<double>(n)) / 2.0;
  const double center = static_cast<double>(n) / 2.0;
  const auto clamp_rank = [&](double r) {
    return static_cast<usize>(
        std::clamp(r, 0.0, static_cast<double>(n - 1)));
  };
  const usize lo = clamp_rank(std::floor(center - half));
  const usize hi = clamp_rank(std::ceil(center + half) - 1.0);
  return {v[lo], v[std::max(lo, hi)]};
}

void Online::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  total_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Online::stddev() const { return std::sqrt(variance()); }

}  // namespace eclp::stats
