#include "support/rss.hpp"

#include <cstdio>
#include <cstring>

namespace eclp {

namespace {

// Parse "<Field>:   <kB> kB" out of /proc/self/status. Returns 0 when the
// file or the field is missing (non-Linux, masked procfs).
u64 status_field_bytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const usize field_len = std::strlen(field);
  char line[256];
  u64 bytes = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 ||
        line[field_len] != ':') {
      continue;
    }
    unsigned long long kb = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
      bytes = static_cast<u64>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

u64 peak_rss_bytes() { return status_field_bytes("VmHWM"); }

u64 current_rss_bytes() { return status_field_bytes("VmRSS"); }

bool reset_peak_rss() {
  // Writing "5" to clear_refs resets the peak-RSS watermark (see
  // proc(5)). Needs a writable procfs; fails cleanly without one.
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace eclp
