// Fixed-width integer aliases used throughout the library.
//
// Graph vertex/edge indices are 32-bit (the ECL suite also uses 32-bit
// indices); counters are 64-bit so they cannot overflow on any input this
// library can hold in memory.
#pragma once

#include <cstdint>
#include <cstddef>

namespace eclp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Vertex index type. 32-bit, matching the ECL suite's CSR representation.
using vidx = u32;
/// Edge index type (offset into the CSR adjacency array).
using eidx = u32;
/// Edge weight type for weighted graphs (MST).
using weight_t = u32;

/// Sentinel "no vertex" value.
inline constexpr vidx kNoVertex = static_cast<vidx>(-1);
/// Sentinel "no edge" value.
inline constexpr eidx kNoEdge = static_cast<eidx>(-1);

}  // namespace eclp
