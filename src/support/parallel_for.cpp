#include "support/parallel_for.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>

namespace eclp {

namespace {

std::mutex g_mutex;
u32 g_build_threads = 0;  // 0 = not yet initialized from the environment
std::unique_ptr<Pool> g_build_pool;

u32 threads_from_env() {
  const char* s = std::getenv("ECLP_BUILD_THREADS");
  if (s == nullptr || *s == '\0') return clamp_worker_count(0);
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return clamp_worker_count(0);
  return clamp_worker_count(static_cast<u32>(v));
}

u32 build_threads_locked() {
  if (g_build_threads == 0) g_build_threads = threads_from_env();
  return g_build_threads;
}

}  // namespace

u32 build_threads() {
  std::lock_guard<std::mutex> lk(g_mutex);
  return build_threads_locked();
}

void set_build_threads(u32 n) {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_build_threads = clamp_worker_count(n);
  if (g_build_pool != nullptr && g_build_pool->size() != g_build_threads) {
    g_build_pool.reset();
  }
}

Pool* build_pool() {
  std::lock_guard<std::mutex> lk(g_mutex);
  const u32 threads = build_threads_locked();
  if (threads <= 1) return nullptr;
  if (g_build_pool == nullptr) {
    g_build_pool = std::make_unique<Pool>(threads);
  }
  return g_build_pool.get();
}

}  // namespace eclp
