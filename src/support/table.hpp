// Text and CSV table emitters.
//
// Every bench binary regenerates one of the paper's tables/figures; these
// helpers render them as aligned text (for the console) and CSV (for
// downstream plotting), mirroring the row/column layout of the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace eclp {

/// A simple row/column table with a title and column headers.
/// Cells are strings; use the fmt:: helpers to format numbers consistently.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the column headers. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  usize rows() const { return rows_.size(); }
  usize cols() const { return header_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(usize i) const { return rows_.at(i); }

  /// Render as an aligned, boxed text table.
  std::string to_text() const;
  /// Render as RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

  /// Write text rendering to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

namespace fmt {

/// Fixed-point with `digits` decimals, e.g. fixed(2.345, 2) == "2.35"
std::string fixed(double v, int digits);
/// Scientific in the paper's Table 4 style, e.g. "1.05e+06".
std::string sci(double v, int digits = 2);
/// Integer with thousands separators, e.g. "4,190,208".
std::string grouped(u64 v);
/// Percentage with sign, e.g. "+3.33" / "-0.52".
std::string signed_pct(double v, int digits = 2);

}  // namespace fmt

}  // namespace eclp
