// Minimal command-line option parser for the bench/example binaries.
//
// Supported syntax: --key=value, --key value, --flag, and positional
// arguments. Unknown options are an error so typos do not silently run the
// default configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace eclp {

class Cli {
 public:
  /// Declare an option before parsing. `help` is shown by usage().
  void add_option(std::string name, std::string help,
                  std::string default_value = "");
  void add_flag(std::string name, std::string help);

  /// Parse argv. Throws CheckFailure on unknown/malformed options.
  void parse(int argc, const char* const* argv);

  /// Typed accessors (fall back to the declared default).
  std::string get(const std::string& name) const;
  i64 get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable usage text.
  std::string usage(const std::string& program) const;

 private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };
  std::map<std::string, Opt> opts_;
  std::vector<std::string> positional_;
};

}  // namespace eclp
