// Low-overhead runtime metrics registry for the serving layer.
//
// The profiling sessions (profile/session.hpp) explain *one run* in depth;
// a serving process needs the complementary view: cheap, always-on counters
// over *all* runs, readable while the server is live. Three instrument
// kinds, in the classic counter/gauge/histogram taxonomy:
//
//  * Counter   — monotonically increasing u64 (requests, hits, rejects).
//                Sharded: kShards cache-line-sized slots, each thread
//                increments the slot its thread-local index hashes to, so
//                the hot path is one relaxed atomic add with no sharing
//                between workers. Merged (summed) on snapshot.
//  * Gauge     — a current value that moves both ways (queue depth,
//                in-flight requests, resident pool bytes). One relaxed
//                atomic: gauges move at request rate, not per-element rate,
//                so sharding would buy nothing.
//  * Histogram — log2-bucketed value distribution (request latency, wave
//                dispatch time), reusing profile::Log2Histogram's bucket
//                arithmetic (header-only — support must not link profile).
//                Sharded like counters: observe() is two relaxed adds into
//                the caller's shard (bucket + sum); shards merge on
//                snapshot, and p50/p90/p99 come from the merged buckets.
//
// Snapshot() returns every instrument name-sorted, so exports are
// deterministic regardless of registration or execution order. Instruments
// have stable addresses for the life of the registry: register once, keep
// the pointer, increment forever without touching the registry mutex.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "profile/histogram.hpp"
#include "support/types.hpp"

namespace eclp::metrics {

/// Shard fan-out of counters/histograms. A power of two, sized for "a few
/// more slots than serving workers" — collisions cost contention, not
/// correctness.
constexpr usize kShards = 16;

/// This thread's shard slot: assigned round-robin on first use, so up to
/// kShards concurrent threads touch disjoint cache lines.
u32 shard_index();

class Counter {
 public:
  void inc(u64 delta = 1) {
    shards_[shard_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  u64 value() const {
    u64 sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<u64> v{0};
  };
  std::array<Shard, kShards> shards_;
};

class Gauge {
 public:
  void add(i64 delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(i64 delta) { add(-delta); }
  void set(i64 value) { v_.store(value, std::memory_order_relaxed); }
  i64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<i64> v_{0};
};

class Histogram {
 public:
  static constexpr usize kBuckets = profile::Log2Histogram::kBuckets;

  void observe(u64 value) {
    Shard& s = shards_[shard_index()];
    s.buckets[profile::Log2Histogram::bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Merged view of all shards (count/sum plus the full bucket array).
  struct Merged {
    u64 count = 0;
    u64 sum = 0;
    std::array<u64, kBuckets> buckets{};
    /// Lower bound of the bucket holding the given quantile (the same
    /// coarse-quantile semantics as Log2Histogram::quantile_bucket).
    u64 quantile_floor(double fraction) const;
  };
  Merged merged() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<u64>, kBuckets> buckets{};
    std::atomic<u64> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

/// One instrument's merged state at snapshot time.
struct HistogramSnapshot {
  std::string name;
  Histogram::Merged data;
};

/// A point-in-time, name-sorted view of every registered instrument.
struct Snapshot {
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, i64>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. The returned reference stays valid (and its
  /// address stable) for the registry's lifetime; registering the same
  /// name twice returns the same instrument. A name registered as one kind
  /// cannot be re-registered as another (throws CheckFailure).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace eclp::metrics
