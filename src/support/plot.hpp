// Minimal ASCII plotting for the bench binaries.
//
// The paper's evaluation contains two figures; the benches regenerate their
// data as tables and CSV, and these helpers render a terminal-friendly
// approximation of the plots themselves (grouped horizontal bars for
// Figure 2, a block scatter for Figure 1's panels).
#pragma once

#include <string>
#include <vector>

#include "support/types.hpp"

namespace eclp::plot {

/// Grouped horizontal bar chart: one group per row label, one bar per
/// series. Values are scaled to `width` columns against the global maximum.
///
///   Regular 1 | work      ######################### 99.6
///             | conflicts ############ 48.3
struct BarChart {
  std::string title;
  std::vector<std::string> series;        ///< bar names within each group
  std::vector<std::string> row_labels;    ///< one per group
  std::vector<std::vector<double>> rows;  ///< rows x series values
  usize width = 50;

  std::string render() const;
};

/// Scatter of (x, y) points on a character grid, e.g. per-block update
/// counts (x = block id, y = updates) for one Figure 1 panel.
struct Scatter {
  std::string title;
  std::vector<double> xs;
  std::vector<double> ys;
  usize width = 72;
  usize height = 16;

  std::string render() const;
};

}  // namespace eclp::plot
