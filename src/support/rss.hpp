// Process-memory sampling for the bounded-memory benches and smokes.
//
// Linux accounts a process's resident-set high-water mark as VmHWM in
// /proc/self/status; the kernel lets us reset it through
// /proc/self/clear_refs, which turns VmHWM into a windowed peak meter:
//
//   reset_peak_rss();
//   auto g = build_huge_graph();
//   u64 peak = peak_rss_bytes();   // peak DURING the build, not since exec
//
// bench_graph_build's build_peak_rss table and tests/gen_smoke.cmake's RSS
// ceiling assertion are built on exactly this pattern. On kernels or
// platforms where either file is unavailable the samplers degrade to 0 /
// false and callers skip their memory assertions.
#pragma once

#include "support/types.hpp"

namespace eclp {

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable.
u64 peak_rss_bytes();

/// Current resident set size (VmRSS) in bytes; 0 when unavailable.
u64 current_rss_bytes();

/// Reset the peak-RSS watermark to the current RSS, so the next
/// peak_rss_bytes() reads the high-water mark of the work in between.
/// Returns false when the kernel interface is unavailable (the watermark
/// then still covers process lifetime, and callers should skip
/// delta-based assertions).
bool reset_peak_rss();

}  // namespace eclp
