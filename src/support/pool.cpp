#include "support/pool.hpp"

#include <algorithm>

#include "support/timer.hpp"

namespace eclp {

namespace {

thread_local bool tl_inside_run = false;

u32 hardware_workers() {
  const u32 hw = std::thread::hardware_concurrency();
  return std::clamp<u32>(hw == 0 ? 1 : hw, 1, kMaxWorkerSlots);
}

}  // namespace

u32 clamp_worker_count(u32 n) {
  if (n == 0) return hardware_workers();
  return std::clamp<u32>(n, 1, kMaxWorkerSlots);
}

Pool::Pool(u32 workers)
    : workers_(clamp_worker_count(workers)),
      chunks_(workers_),
      samples_(workers_) {
  threads_.reserve(workers_ - 1);
  for (u32 slot = 1; slot < workers_; ++slot) {
    threads_.emplace_back([this, slot] { worker_main(slot); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::run(u64 tasks, const std::function<void(u64, u32)>& fn) {
  if (tasks == 0) return;
  if (workers_ == 1 || tl_inside_run) {
    // Inline sequential execution: a pool of one, or a reentrant call from
    // inside a task (a simulated kernel launching from a worker).
    const u32 slot = current_worker_slot();
    for (u64 t = 0; t < tasks; ++t) fn(t, slot);
    return;
  }

  // Split [0, tasks) into one contiguous chunk per worker; the front
  // workers absorb the remainder.
  const u64 per = tasks / workers_;
  const u64 extra = tasks % workers_;
  u64 begin = 0;
  for (u32 w = 0; w < workers_; ++w) {
    const u64 len = per + (w < extra ? 1 : 0);
    chunks_[w].next.store(begin, std::memory_order_relaxed);
    chunks_[w].end.store(begin + len, std::memory_order_relaxed);
    begin += len;
  }
  failed_task_ = ~u64{0};
  failure_ = nullptr;

  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    job_ = &fn;
    active_ = workers_;
    ++generation_;
  }
  job_cv_.notify_all();

  tl_inside_run = true;
  drain(0, fn);
  tl_inside_run = false;

  {
    std::unique_lock<std::mutex> lk(job_mutex_);
    --active_;
    done_cv_.wait(lk, [this] { return active_ == 0; });
    job_ = nullptr;
  }

  if (failure_ != nullptr) {
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    failed_task_ = ~u64{0};
    std::rethrow_exception(e);
  }
}

void Pool::worker_main(u32 slot) {
  set_current_worker_slot(slot);
  tl_inside_run = true;  // everything a worker runs is inside some run()
  u64 seen = 0;
  std::unique_lock<std::mutex> lk(job_mutex_);
  while (true) {
    job_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const std::function<void(u64, u32)>* fn = job_;
    lk.unlock();
    drain(slot, *fn);
    lk.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

void Pool::drain(u32 slot, const std::function<void(u64, u32)>& fn) {
  const bool sample = sampling_.load(std::memory_order_relaxed);
  const u64 t0 = sample ? monotonic_ns() : 0;
  u64 executed = 0;
  u64 task;
  while (claim(slot, task)) {
    try {
      fn(task, slot);
    } catch (...) {
      record_failure(task);
    }
    ++executed;
  }
  if (sample) {
    SampleSlot& s = samples_[slot];
    s.busy_ns += monotonic_ns() - t0;
    s.drains += 1;
    s.tasks += executed;
  }
}

bool Pool::claim(u32 slot, u64& task) {
  // Note: a recorded failure does NOT stop claiming. Every task runs even
  // when some fail, so the rethrown exception is always the one of the
  // globally lowest failing index — the same task a sequential sweep would
  // have reported first — independent of scheduling.
  Chunk& mine = chunks_[slot];
  {
    std::lock_guard<std::mutex> lk(mine.m);
    const u64 n = mine.next.load(std::memory_order_relaxed);
    if (n < mine.end.load(std::memory_order_relaxed)) {
      mine.next.store(n + 1, std::memory_order_relaxed);
      task = n;
      return true;
    }
  }
  // Own chunk is dry: steal the upper half of the largest remaining chunk.
  while (true) {
    u32 victim = workers_;
    u64 best_remaining = 0;
    for (u32 w = 0; w < workers_; ++w) {
      if (w == slot) continue;
      const u64 n = chunks_[w].next.load(std::memory_order_relaxed);
      const u64 e = chunks_[w].end.load(std::memory_order_relaxed);
      const u64 remaining = e > n ? e - n : 0;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        victim = w;
      }
    }
    if (victim == workers_) return false;  // nothing anywhere: job is done
    Chunk& v = chunks_[victim];
    u64 mid, e;
    {
      // Never hold the victim's lock while taking our own: two thieves
      // stealing from each other would deadlock.
      std::lock_guard<std::mutex> vlk(v.m);
      const u64 n = v.next.load(std::memory_order_relaxed);
      e = v.end.load(std::memory_order_relaxed);
      if (n >= e) continue;  // lost the race; rescan
      if (e - n == 1) {
        // A single task: take it directly rather than re-splitting.
        v.next.store(n + 1, std::memory_order_relaxed);
        task = n;
        return true;
      }
      mid = n + (e - n) / 2;
      v.end.store(mid, std::memory_order_relaxed);
    }
    // The range [mid, e) is now ours alone: execute `mid`, install the rest.
    std::lock_guard<std::mutex> mlk(mine.m);
    mine.next.store(mid + 1, std::memory_order_relaxed);
    mine.end.store(e, std::memory_order_relaxed);
    task = mid;
    return true;
  }
}

std::vector<Pool::WorkerSample> Pool::worker_samples() const {
  std::vector<WorkerSample> out(workers_);
  for (u32 w = 0; w < workers_; ++w) {
    out[w].worker = w;
    out[w].busy_ns = samples_[w].busy_ns;
    out[w].drains = samples_[w].drains;
    out[w].tasks = samples_[w].tasks;
  }
  return out;
}

void Pool::reset_worker_samples() {
  for (SampleSlot& s : samples_) s = SampleSlot{};
}

void Pool::record_failure(u64 task) {
  std::lock_guard<std::mutex> lk(failure_mutex_);
  if (task < failed_task_) {
    failed_task_ = task;
    failure_ = std::current_exception();
  }
}

}  // namespace eclp
