// Work-stealing host thread pool.
//
// Originally built for block-parallel simulation (sim/device.hpp dispatches
// the blocks of a *block-independent* launch across a Pool's workers), the
// pool is deliberately generic: the graph-ingest pipeline (graph/builder.hpp,
// support/parallel_for.hpp) runs on the same substrate. The scheduling is
// classic range-splitting work stealing: the task range is split into one
// contiguous chunk per worker, each worker drains its own chunk from the
// front, and a worker that runs dry steals the upper half of the largest
// remaining chunk. Stealing only moves *which worker* executes a task, never
// what the task computes — determinism is the caller's discipline (per-task
// state, shard merges in task-index order), not the scheduler's.
//
// Exceptions thrown by task bodies are captured per task; after every
// worker has drained, the exception of the *lowest* failing task index is
// rethrown, so a failing parallel run reports the same task a sequential
// sweep would have reported first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/types.hpp"
#include "support/worker.hpp"

namespace eclp {

class Pool {
 public:
  /// Create a pool of `workers` worker slots (clamped to
  /// [1, kMaxWorkerSlots]). `workers == 0` means one slot per hardware
  /// thread. A pool of size 1 runs everything inline on the caller.
  explicit Pool(u32 workers);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  u32 size() const { return workers_; }

  /// Run `fn(task, worker)` once for every task in [0, tasks). The calling
  /// thread participates as worker 0. Returns when every task has finished;
  /// rethrows the captured exception of the lowest failing task index, if
  /// any. Reentrant calls (from inside a task) degrade to inline sequential
  /// execution on the calling worker.
  void run(u64 tasks, const std::function<void(u64 task, u32 worker)>& fn);

  // --- worker sampling -------------------------------------------------------
  /// Per-worker participation accounting, accumulated across run() calls
  /// while sampling is enabled. busy_ns is the wall-clock a worker spent
  /// draining (claiming, stealing, executing); utilization is busy_ns over
  /// the sampling window measured by the consumer (profile::Session).
  struct WorkerSample {
    u32 worker = 0;
    u64 busy_ns = 0;  ///< wall-clock spent inside drain()
    u64 drains = 0;   ///< runs this worker participated in
    u64 tasks = 0;    ///< tasks this worker executed
  };

  /// Enable/disable per-drain wall-clock sampling. Off by default: an
  /// unobserved run() takes zero clock reads. Toggled by profile sessions
  /// around their measurement window.
  void set_sampling(bool on) {
    sampling_.store(on, std::memory_order_relaxed);
  }
  bool sampling() const { return sampling_.load(std::memory_order_relaxed); }
  /// Snapshot of every worker's accumulated sample. Call only while no
  /// run() is in flight (every run() joins before returning, so any point
  /// between runs is safe).
  std::vector<WorkerSample> worker_samples() const;
  void reset_worker_samples();

 private:
  struct alignas(64) Chunk {
    // Owned range [next, end). `next` advances from the front (owner and
    // thieves both claim one task at a time via the mutex); a steal moves
    // the upper half of the range to the thief's chunk. The atomics allow
    // lock-free *scanning* for the largest victim; mutations happen under
    // the chunk mutex.
    std::atomic<u64> next{0};
    std::atomic<u64> end{0};
    std::mutex m;
  };

  void worker_main(u32 slot);
  void drain(u32 slot, const std::function<void(u64, u32)>& fn);
  /// Claim one task for `slot`, stealing if its own chunk is empty.
  /// Returns false when no work is left anywhere.
  bool claim(u32 slot, u64& task);
  void record_failure(u64 task);

  u32 workers_ = 1;
  std::vector<std::thread> threads_;
  std::vector<Chunk> chunks_;

  // Each slot is written only by its own worker inside drain(); reads
  // happen from the host between runs, so plain fields suffice (same
  // discipline as the sharded profiling counters).
  struct alignas(64) SampleSlot {
    u64 busy_ns = 0;
    u64 drains = 0;
    u64 tasks = 0;
  };
  std::vector<SampleSlot> samples_;
  std::atomic<bool> sampling_{false};

  // Job hand-off: generation bumps wake the workers; `active_` counts
  // workers still draining the current job.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  u64 generation_ = 0;
  u32 active_ = 0;
  bool shutdown_ = false;
  const std::function<void(u64, u32)>* job_ = nullptr;

  std::mutex failure_mutex_;
  u64 failed_task_ = ~u64{0};
  std::exception_ptr failure_;
};

/// Clamp a requested worker count to [1, kMaxWorkerSlots]; 0 maps to one
/// worker per hardware thread (what Pool's constructor does internally).
u32 clamp_worker_count(u32 n);

}  // namespace eclp
