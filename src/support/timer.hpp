// Wall-clock timer. Real runtimes appear in our reports only as a sanity
// complement; the reproduction's speedups come from the deterministic cycle
// model in sim/cost_model.hpp.
#pragma once

#include <chrono>

#include "support/types.hpp"

namespace eclp {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic nanoseconds since an arbitrary epoch — the raw reading behind
/// Timer, exposed for components that need to difference timestamps taken
/// at different call sites (launch observers, pool worker sampling).
inline u64 monotonic_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace eclp
