#include "support/cli.hpp"

#include <sstream>

#include "support/check.hpp"

namespace eclp {

void Cli::add_option(std::string name, std::string help,
                     std::string default_value) {
  ECLP_CHECK(!name.empty());
  Opt o;
  o.help = std::move(help);
  o.value = std::move(default_value);
  opts_.emplace(std::move(name), std::move(o));
}

void Cli::add_flag(std::string name, std::string help) {
  Opt o;
  o.help = std::move(help);
  o.is_flag = true;
  opts_.emplace(std::move(name), std::move(o));
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    auto it = opts_.find(name);
    ECLP_CHECK_MSG(it != opts_.end(), "unknown option --" << name);
    Opt& opt = it->second;
    if (opt.is_flag) {
      ECLP_CHECK_MSG(!value.has_value(), "flag --" << name
                                                   << " takes no value");
      opt.value = "1";
    } else {
      if (!value.has_value()) {
        ECLP_CHECK_MSG(i + 1 < argc, "option --" << name << " needs a value");
        value = argv[++i];
      }
      opt.value = *value;
    }
    opt.set = true;
  }
}

std::string Cli::get(const std::string& name) const {
  auto it = opts_.find(name);
  ECLP_CHECK_MSG(it != opts_.end(), "undeclared option --" << name);
  return it->second.value;
}

i64 Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  usize pos = 0;
  const i64 out = std::stoll(v, &pos);
  ECLP_CHECK_MSG(pos == v.size(), "--" << name << "=" << v
                                       << " is not an integer");
  return out;
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  usize pos = 0;
  const double out = std::stod(v, &pos);
  ECLP_CHECK_MSG(pos == v.size(), "--" << name << "=" << v
                                       << " is not a number");
  return out;
}

bool Cli::get_flag(const std::string& name) const {
  return get(name) == "1";
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, opt] : opts_) {
    os << "  --" << name;
    if (!opt.is_flag) os << "=<value>";
    os << "  " << opt.help;
    if (!opt.is_flag && !opt.value.empty()) os << " (default: " << opt.value
                                              << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace eclp
