// Descriptive statistics used by the profiling reports.
//
// The paper reports per-thread/per-vertex averages and maxima (Tables 2-5),
// medians of nine runs (Section 5.2), Pearson correlations between metrics
// and graph properties (Sections 6.1.1/6.1.5), and 95% confidence intervals
// around medians (Figure 2). Everything needed for those is here.
#pragma once

#include <span>
#include <vector>

#include "support/types.hpp"

namespace eclp::stats {

/// Five-number summary of a sample.
struct Summary {
  usize count = 0;
  double total = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
};

/// Summarize an integer or floating-point sample.
Summary summarize(std::span<const u64> xs);
Summary summarize(std::span<const double> xs);

/// Median of a sample (interpolated for even sizes). Copies and sorts.
double median(std::span<const double> xs);
double median(std::span<const u64> xs);

/// p-th percentile in [0,100] via linear interpolation. Copies and sorts.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient r between two equally-sized samples.
/// Returns 0 when either sample has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Nonparametric 95% confidence interval around the median via the
/// binomial order-statistic method (the error bars in the paper's Figure 2).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval median_ci95(std::span<const double> xs);

/// Streaming accumulator: mean/min/max/stddev without storing the sample.
class Online {
 public:
  void add(double x);
  usize count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double total() const { return total_; }
  /// Population variance (Welford).
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  usize n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

}  // namespace eclp::stats
