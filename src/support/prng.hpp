// Deterministic pseudo-random number generation.
//
// All randomness in the library (graph generation, scheduler interleavings)
// flows through these generators so every experiment is reproducible from a
// single seed. SplitMix64 is used for seeding/hashing; Xoshiro256** is the
// workhorse stream generator (fast, passes BigCrush, trivially copyable).
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace eclp {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used to derive independent seeds and as a stateless integer hash.
constexpr u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-seed the full 256-bit state from one 64-bit seed via SplitMix64.
  void reseed(u64 seed) {
    u64 x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
    // Xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~u64{0}; }

  result_type operator()() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// with rejection to avoid modulo bias. Hot path (one call per shuffled
  /// element): the precondition is an ECLP_ASSERT, stripped in bench builds.
  u64 below(u64 bound) {
    ECLP_ASSERT(bound > 0);
    // 128-bit multiply-high reduction.
    u64 x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    u64 lo = static_cast<u64>(m);
    if (lo < bound) {
      const u64 threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi) {
    ECLP_ASSERT(lo <= hi);
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return unit() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (usize i = v.size(); i > 1; --i) {
      const usize j = static_cast<usize>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<u32> permutation(u32 n) {
    std::vector<u32> p(n);
    for (u32 i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace eclp
