// Lightweight runtime checking.
//
// ECLP_CHECK is always on (release included): the library's invariants are
// cheap relative to graph processing and violations indicate programmer
// error, so we fail fast with a descriptive exception instead of undefined
// behaviour (C++ Core Guidelines I.6/E.12).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace eclp {

/// Exception thrown when a runtime check fails.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace eclp

/// Check a condition; throws eclp::CheckFailure with location info on failure.
#define ECLP_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::eclp::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
    }                                                                     \
  } while (false)

/// Check with a streamed message: ECLP_CHECK_MSG(x < n, "x=" << x).
#define ECLP_CHECK_MSG(cond, stream_expr)                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::std::ostringstream eclp_check_os_;                                \
      eclp_check_os_ << stream_expr;                                      \
      ::eclp::detail::check_failed(#cond, __FILE__, __LINE__,             \
                                   eclp_check_os_.str());                 \
    }                                                                     \
  } while (false)

// Hot-path checks: bounds checks executed once per simulated memory op or
// counter increment, where the check itself is a measurable fraction of the
// work. ECLP_ASSERT* behaves exactly like ECLP_CHECK* when ECLP_HARDENED is
// nonzero (the default, and what every test build uses); bench builds
// compile with ECLP_HARDENED=0 (see bench/CMakeLists.txt) and the condition
// is not evaluated — only syntax-checked — mirroring the NDEBUG/assert
// convention. Use ECLP_CHECK* for everything that is not per-element hot.
#ifndef ECLP_HARDENED
#define ECLP_HARDENED 1
#endif

#if ECLP_HARDENED
#define ECLP_ASSERT(cond) ECLP_CHECK(cond)
#define ECLP_ASSERT_MSG(cond, stream_expr) ECLP_CHECK_MSG(cond, stream_expr)
#else
#define ECLP_ASSERT(cond) ((void)sizeof(!(cond)))
#define ECLP_ASSERT_MSG(cond, stream_expr) ((void)sizeof(!(cond)))
#endif
