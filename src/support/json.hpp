// Minimal JSON document model: parse, navigate, serialize.
//
// The observability layer both *writes* JSON (profile artifacts, Perfetto
// traces) and *reads* it back (eclp_profile_diff compares two profile
// files; tests validate emitted artifacts), so the repo needs a real
// parser, not just the write-only escaping the bench harness uses. This is
// a deliberately small recursive-descent implementation of RFC 8259:
//  * numbers are stored as double (53-bit integer precision — far beyond
//    any modeled-cycle count the suite produces) and serialized without a
//    decimal point when integral, so u64 counters round-trip textually;
//  * objects preserve insertion order and serialization is fully
//    deterministic, which is what makes golden-file tests of emitted
//    artifacts byte-stable;
//  * errors throw CheckFailure with an offset-annotated message.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace eclp::json {

class Value;

/// Object member list. Insertion-ordered (vector of pairs, not a map): the
/// writer controls field order, and dumps are reproducible.
using Members = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), num_(d) {}
  Value(int v) : Value(static_cast<double>(v)) {}
  Value(u32 v) : Value(static_cast<double>(v)) {}
  Value(u64 v) : Value(static_cast<double>(v)) {}
  Value(i64 v) : Value(static_cast<double>(v)) {}
  Value(const char* s) : kind_(Kind::kString), str_(s) {}
  Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const {
    require(Kind::kBool);
    return bool_;
  }
  double as_number() const {
    require(Kind::kNumber);
    return num_;
  }
  /// Number as u64 (checked: must be integral and non-negative).
  u64 as_u64() const;
  const std::string& as_string() const {
    require(Kind::kString);
    return str_;
  }
  const std::vector<Value>& items() const {
    require(Kind::kArray);
    return items_;
  }
  const Members& members() const {
    require(Kind::kObject);
    return members_;
  }

  // --- building --------------------------------------------------------------
  /// Append to an array (value must already be an array).
  Value& push_back(Value v) {
    require(Kind::kArray);
    items_.push_back(std::move(v));
    return items_.back();
  }
  /// Set (or overwrite) an object member, preserving first-set order.
  Value& set(const std::string& key, Value v);

  // --- navigation ------------------------------------------------------------
  /// Object member by key; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  /// Object member by key; throws CheckFailure when absent.
  const Value& at(const std::string& key) const;

  // --- serialization ---------------------------------------------------------
  /// Compact when indent < 0, pretty-printed otherwise.
  std::string dump(int indent = -1) const;
  /// Parse a complete JSON document; throws CheckFailure on malformed input
  /// or trailing garbage.
  static Value parse(const std::string& text);

 private:
  void require(Kind k) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  Members members_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& s);

/// Format a double the way the writer does: integral values without a
/// decimal point, everything else with up to 17 significant digits.
std::string format_number(double d);

}  // namespace eclp::json
