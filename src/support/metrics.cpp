#include "support/metrics.hpp"

#include "support/check.hpp"

namespace eclp::metrics {

u32 shard_index() {
  static std::atomic<u32> next{0};
  thread_local const u32 idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

u64 Histogram::Merged::quantile_floor(double fraction) const {
  ECLP_CHECK(fraction >= 0.0 && fraction <= 1.0);
  if (count == 0) return 0;
  const double target = fraction * static_cast<double>(count);
  u64 running = 0;
  for (usize b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    running += buckets[b];
    if (static_cast<double>(running) >= target) {
      return profile::Log2Histogram::bucket_floor(b);
    }
  }
  return profile::Log2Histogram::bucket_floor(kBuckets - 1);
}

Histogram::Merged Histogram::merged() const {
  Merged m;
  for (const Shard& s : shards_) {
    for (usize b = 0; b < kBuckets; ++b) {
      m.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    m.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (const u64 b : m.buckets) m.count += b;
  return m;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(gauges_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '" << name << "' already registered as another kind");
  auto [it, inserted] = counters_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(counters_.count(name) == 0 && histograms_.count(name) == 0,
                 "metric '" << name << "' already registered as another kind");
  auto [it, inserted] = gauges_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(counters_.count(name) == 0 && gauges_.count(name) == 0,
                 "metric '" << name << "' already registered as another kind");
  auto [it, inserted] = histograms_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Histogram>();
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mutex_);
  Snapshot s;
  // std::map iteration is already name-sorted — the property that makes
  // every export deterministic regardless of registration order.
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->merged()});
  }
  return s;
}

}  // namespace eclp::metrics
