#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eclp::json {

namespace {

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

/// Recursive-descent parser over the whole input string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    ECLP_CHECK_MSG(pos_ == text_.size(),
                   "JSON: trailing characters at offset " << pos_);
    return v;
  }

 private:
  Value parse_value() {
    skip_ws();
    ECLP_CHECK_MSG(pos_ < text_.size(), "JSON: unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    consume('{');
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      ECLP_CHECK_MSG(peek() == '"',
                     "JSON: expected object key at offset " << pos_);
      std::string key = parse_string();
      skip_ws();
      consume(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume('}');
      return obj;
    }
  }

  Value parse_array() {
    consume('[');
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      consume(']');
      return arr;
    }
  }

  std::string parse_string() {
    consume('"');
    std::string out;
    while (true) {
      ECLP_CHECK_MSG(pos_ < text_.size(),
                     "JSON: unterminated string at offset " << pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      ECLP_CHECK_MSG(pos_ < text_.size(),
                     "JSON: unterminated escape at offset " << pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          ECLP_CHECK_MSG(pos_ + 4 <= text_.size(),
                         "JSON: truncated \\u escape at offset " << pos_);
          u32 code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<u32>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<u32>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<u32>(h - 'A' + 10);
            } else {
              ECLP_CHECK_MSG(false,
                             "JSON: bad \\u escape at offset " << pos_);
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them as-is if encountered).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          ECLP_CHECK_MSG(false, "JSON: bad escape '\\" << e << "' at offset "
                                                       << (pos_ - 1));
      }
    }
  }

  Value parse_number() {
    const usize start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    ECLP_CHECK_MSG(end != token.c_str() && *end == '\0',
                   "JSON: bad number '" << token << "' at offset " << start);
    return Value(d);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void consume(char c) {
    skip_ws();
    ECLP_CHECK_MSG(peek() == c, "JSON: expected '" << c << "' at offset "
                                                   << pos_);
    ++pos_;
  }
  void expect_word(const char* w) {
    for (const char* p = w; *p != '\0'; ++p) {
      ECLP_CHECK_MSG(pos_ < text_.size() && text_[pos_] == *p,
                     "JSON: bad literal at offset " << pos_);
      ++pos_;
    }
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  usize pos_ = 0;
};

}  // namespace

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double d) {
  // Integral magnitudes render exactly, without a decimal point, so u64
  // counters survive a write/parse/write round trip unchanged.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  if (!std::isfinite(d)) return "0";  // JSON has no Inf/NaN
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

u64 Value::as_u64() const {
  const double d = as_number();
  ECLP_CHECK_MSG(d >= 0.0 && d == std::floor(d),
                 "JSON: number " << d << " is not a non-negative integer");
  return static_cast<u64>(d);
}

void Value::require(Kind k) const {
  ECLP_CHECK_MSG(kind_ == k, "JSON: expected " << kind_name(k) << ", got "
                                               << kind_name(kind_));
}

Value& Value::set(const std::string& key, Value v) {
  require(Kind::kObject);
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  ECLP_CHECK_MSG(v != nullptr, "JSON: missing member '" << key << "'");
  return *v;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<usize>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(num_); break;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (usize i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (usize i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += "\":";
        if (indent >= 0) out += ' ';
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace eclp::json
