// Worker-slot identification for host-parallel execution.
//
// The work-stealing thread pool (support/pool.hpp) assigns every OS thread
// that executes tasks — simulated blocks, ingest chunks — a small dense
// *worker slot*. Components that must be writable from concurrently
// executing tasks — the sharded profiling counters in profile/counters.hpp
// — key their shards on this slot. Keeping the accessor here lets the
// profiling library stay independent of both the simulator and the pool.
//
// Slot 0 is the host thread (and the thread that calls Pool::run, which
// participates in the work); pool workers occupy slots 1..kMaxWorkerSlots-1.
#pragma once

#include "support/types.hpp"

namespace eclp {

/// Upper bound on concurrently executing worker threads. Shard arrays are
/// sized by this, so it is deliberately small.
inline constexpr u32 kMaxWorkerSlots = 64;

namespace detail {
inline thread_local u32 tl_worker_slot = 0;
}  // namespace detail

/// Worker slot of the calling thread: 0 for the host thread, the pool
/// worker index otherwise. Always < kMaxWorkerSlots.
inline u32 current_worker_slot() { return detail::tl_worker_slot; }

/// Bind the calling thread to a worker slot (pool internals only).
inline void set_current_worker_slot(u32 slot) {
  detail::tl_worker_slot = slot < kMaxWorkerSlots ? slot : 0;
}

}  // namespace eclp
