#include "support/plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace eclp::plot {

std::string BarChart::render() const {
  ECLP_CHECK(rows.size() == row_labels.size());
  double peak = 0.0;
  for (const auto& r : rows) {
    ECLP_CHECK(r.size() == series.size());
    for (const double v : r) peak = std::max(peak, v);
  }
  usize label_w = 0, series_w = 0;
  for (const auto& l : row_labels) label_w = std::max(label_w, l.size());
  for (const auto& s : series) series_w = std::max(series_w, s.size());

  std::ostringstream os;
  os << "-- " << title << " --\n";
  for (usize r = 0; r < rows.size(); ++r) {
    for (usize s = 0; s < series.size(); ++s) {
      const std::string& label = s == 0 ? row_labels[r] : std::string();
      const double v = rows[r][s];
      const usize len =
          peak > 0
              ? static_cast<usize>(std::lround(v / peak *
                                               static_cast<double>(width)))
              : 0;
      char value[32];
      std::snprintf(value, sizeof value, "%.1f", v);
      os << "  " << label << std::string(label_w - label.size(), ' ')
         << " | " << series[s] << std::string(series_w - series[s].size(), ' ')
         << ' ' << std::string(len, '#') << ' ' << value << '\n';
    }
    if (series.size() > 1) os << '\n';
  }
  return os.str();
}

std::string Scatter::render() const {
  ECLP_CHECK(xs.size() == ys.size());
  std::ostringstream os;
  os << "-- " << title << " --\n";
  if (xs.empty()) {
    os << "  (no points)\n";
    return os.str();
  }
  const auto [xmin_it, xmax_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(ys.begin(), ys.end());
  const double xmin = *xmin_it, xmax = *xmax_it;
  const double ymin = std::min(0.0, *ymin_it), ymax = *ymax_it;
  const double xspan = xmax > xmin ? xmax - xmin : 1.0;
  const double yspan = ymax > ymin ? ymax - ymin : 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (usize i = 0; i < xs.size(); ++i) {
    const usize col = static_cast<usize>(
        (xs[i] - xmin) / xspan * static_cast<double>(width - 1));
    const usize row = static_cast<usize>(
        (ys[i] - ymin) / yspan * static_cast<double>(height - 1));
    grid[height - 1 - row][col] = '*';
  }
  char ylab[32];
  std::snprintf(ylab, sizeof ylab, "%.0f", ymax);
  os << "  y max = " << ylab << '\n';
  for (const auto& line : grid) {
    os << "  |" << line << '\n';
  }
  os << "  +" << std::string(width, '-') << '\n';
  char xl[32], xr[32];
  std::snprintf(xl, sizeof xl, "%.0f", xmin);
  std::snprintf(xr, sizeof xr, "%.0f", xmax);
  os << "   " << xl
     << std::string(width > std::string(xl).size() + std::string(xr).size()
                        ? width - std::string(xl).size() -
                              std::string(xr).size()
                        : 1,
                    ' ')
     << xr << '\n';
  return os.str();
}

}  // namespace eclp::plot
