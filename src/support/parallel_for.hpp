// Reusable host-side data parallelism on the work-stealing Pool.
//
// parallel_for_chunks() splits an index range [0, total) into a fixed
// number of contiguous chunks and runs one callback per chunk on a Pool
// (inline on the caller when the pool is null or a single chunk suffices).
// Chunk boundaries are a pure function of (total, chunk count), so a
// caller that needs reproducible *chunking* — as opposed to reproducible
// results, which the ingest pipeline guarantees for any chunking — can
// simply pin the chunk count.
//
// The ingest pipeline (graph/builder.hpp and the text readers in
// graph/io.hpp) runs on a process-wide "build pool" configured separately
// from the simulator's sim_threads(): graph construction wants all the
// hardware parallelism it can get, while simulation thread counts are an
// experimental variable.
#pragma once

#include <utility>

#include "support/pool.hpp"
#include "support/types.hpp"

namespace eclp {

/// Host threads used for parallel graph ingest (CSR assembly and chunked
/// text parsing). The first call reads the ECLP_BUILD_THREADS environment
/// variable (0 or unset = one per hardware thread); set_build_threads
/// overrides it. Always >= 1.
u32 build_threads();

/// Configure the ingest thread count (0 = one per hardware thread). The
/// process-wide build pool is rebuilt on the next build_pool() call.
void set_build_threads(u32 n);

/// The process-wide pool ingest runs on: nullptr when build_threads() == 1
/// (sequential ingest), a live Pool otherwise. Created lazily.
Pool* build_pool();

/// The contiguous subrange of [0, total) owned by `chunk` of `chunks`
/// (remainder spread over the leading chunks, same split Pool::run uses).
inline std::pair<u64, u64> chunk_range(u64 total, u64 chunks, u64 chunk) {
  const u64 per = total / chunks;
  const u64 extra = total % chunks;
  const u64 begin = chunk * per + (chunk < extra ? chunk : extra);
  return {begin, begin + per + (chunk < extra ? 1 : 0)};
}

/// The chunk count parallel_for_chunks() actually runs for (total,
/// chunks): at least 1, never more than `total` (0 when total is 0 — no
/// chunks run at all). Callers that size per-chunk state (histogram rows,
/// shard buffers) use this so their arrays line up with the loop's chunk
/// ids exactly.
inline u64 clamped_chunks(u64 total, u64 chunks) {
  if (total == 0) return 0;
  const u64 c = chunks < 1 ? 1 : chunks;
  return c > total ? total : c;
}

/// Run fn(chunk, begin, end, worker) for every chunk of [0, total) split
/// into clamped_chunks(total, chunks) contiguous ranges. Executes inline,
/// in chunk order, when `pool` is null or one chunk suffices; otherwise
/// the chunks are distributed over the pool's workers and this call
/// returns only once all of them finished (rethrowing the lowest failing
/// chunk's exception, per Pool::run).
template <typename Fn>
void parallel_for_chunks(Pool* pool, u64 total, u64 chunks, Fn&& fn) {
  const u64 c = clamped_chunks(total, chunks);
  if (c == 0) return;
  if (pool == nullptr || c == 1) {
    const u32 worker = current_worker_slot();
    for (u64 chunk = 0; chunk < c; ++chunk) {
      const auto [begin, end] = chunk_range(total, c, chunk);
      fn(chunk, begin, end, worker);
    }
    return;
  }
  pool->run(c, [&](u64 chunk, u32 worker) {
    const auto [begin, end] = chunk_range(total, c, chunk);
    fn(chunk, begin, end, worker);
  });
}

}  // namespace eclp
