#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace eclp {

void Table::set_header(std::vector<std::string> header) {
  ECLP_CHECK_MSG(rows_.empty(), "set_header after rows were added");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  ECLP_CHECK_MSG(row.size() == header_.size(),
                 "row arity " << row.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<usize> width(header_.size(), 0);
  for (usize c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (usize c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  const auto emit_row = [&](const std::vector<std::string>& r) {
    for (usize c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      // Left-align first column (names), right-align the rest (numbers).
      if (c == 0) {
        os << r[c] << std::string(width[c] - r[c].size(), ' ');
      } else {
        os << std::string(width[c] - r[c].size(), ' ') << r[c];
      }
    }
    os << " |\n";
  };
  const auto rule = [&] {
    for (usize c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(width[c], '-');
    }
    os << "-+\n";
  };
  rule();
  emit_row(header_);
  rule();
  for (const auto& r : rows_) emit_row(r);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& r) {
    for (usize c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << escape(r[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_text();
}

namespace fmt {

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string grouped(u64 v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  usize count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string signed_pct(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f", digits, v);
  return buf;
}

}  // namespace fmt

}  // namespace eclp
