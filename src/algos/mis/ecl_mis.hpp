// ECL-MIS: maximal independent set (Burtscher et al., TOPC'18), ported to
// the simulated device.
//
// Structure follows the paper's §2.3:
//  * initialization — each vertex gets a compact one-byte value encoding
//    status and priority; the priority favors low-degree vertices and uses a
//    hash of the vertex id to break ties, forming a deterministic partial
//    permutation;
//  * selection — a fixed grid of persistent threads owns vertices
//    round-robin; each thread repeatedly processes its undecided vertices:
//    a vertex whose priority beats all undecided neighbors goes "in" and its
//    neighbors go "out". Updates are monotonic (undecided -> decided), so no
//    synchronization is needed; threads run until all their vertices are
//    decided.
//
// The kernel runs under the simulator's *cooperative* launch: each step is
// one iteration of a thread's outer loop, and the scheduler interleaves
// steps across threads — in shuffled mode, in a seed-dependent order, which
// reproduces the internal nondeterminism the paper studies in Table 3.
//
// Per-thread counters (paper Table 2): vertices assigned, iterations
// executed, vertices finalized.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "profile/counters.hpp"
#include "sim/device.hpp"

namespace eclp::algos::mis {

/// Status byte values (the one-byte packing of paper §2.3). Undecided
/// vertices carry their priority band in [kUndecidedBase, kUndecidedTop].
inline constexpr u8 kOut = 0;
inline constexpr u8 kIn = 255;
inline constexpr u8 kUndecidedBase = 2;
inline constexpr u8 kUndecidedTop = 250;

/// How quickly one thread's status updates become visible to others.
enum class Visibility : u8 {
  /// Updates visible immediately (sequential Gauss-Seidel sweep). Converges
  /// unrealistically fast compared to a GPU, where 200k concurrent threads
  /// mostly observe state from before their scheduling quantum.
  kImmediate,
  /// Updates published at round boundaries (Jacobi). Models the bounded
  /// staleness of massively parallel execution; safe for MIS because the
  /// priority order is total, so two adjacent vertices can never both win a
  /// round against stale views of each other. This is the default and the
  /// mode used to reproduce the paper's Tables 2-3.
  kRoundSnapshot,
};

/// What drives a vertex's selection priority (all are total orders).
enum class Priority : u8 {
  /// ECL-MIS: favor low degree, hash tie-break (grows the MIS; default).
  kDegreeAware,
  /// Luby-style static uniform randomness (hash of the id).
  kUniformHash,
  /// Plain vertex id (the naive order; biased and usually smaller sets).
  kVertexId,
};

struct Options {
  /// Fixed persistent grid (the paper's kernel launches one fixed-size grid
  /// and assigns vertices round-robin).
  u32 blocks = 64;
  u32 threads_per_block = 256;
  Visibility visibility = Visibility::kRoundSnapshot;
  Priority priority = Priority::kDegreeAware;
  /// Work-quantum pacing of the asynchronous threads: every scheduler round
  /// models one fixed wall-clock quantum of `quantum` work units (status
  /// reads), and a thread executes as many outer-loop iterations as fit.
  /// Threads with little work per iteration therefore re-check their
  /// conditions "over and over" exactly as the paper observes on its
  /// smallest inputs (§6.1.1: high max iteration counts on `internet`).
  /// The quantum is an absolute constant — hardware speed does not scale
  /// with the input. 0 disables pacing (one iteration per round).
  u64 quantum = 48;
  /// In round-snapshot mode, how many times per round the published
  /// snapshot refreshes. Real GPU threads observe updates with bounded —
  /// not full-round — staleness; one refresh per quarter round keeps
  /// convergence between the Jacobi and Gauss-Seidel extremes.
  u32 snapshot_refreshes_per_round = 12;
};

/// Per-thread metrics matching the columns of the paper's Table 2.
struct ThreadMetrics {
  stats::Summary iterations;         ///< Avg / Max iterations
  stats::Summary vertices_assigned;  ///< Avg (same for all threads +-1)
  stats::Summary vertices_finalized; ///< Avg / Max
};

struct Result {
  std::vector<u8> status;  ///< kIn / kOut per vertex
  usize set_size = 0;
  ThreadMetrics metrics;
  u64 modeled_cycles = 0;
};

/// Compute the priority byte of a vertex: low degree => high priority, ties
/// broken by a hash of the id (exposed for tests).
u8 priority_byte(vidx v, vidx degree);

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt = {});

/// Sequential greedy reference MIS (for size comparison in tests).
std::vector<u8> reference_greedy(const graph::Csr& g);

/// True when `status` marks a maximal independent set of g.
bool verify(const graph::Csr& g, std::span<const u8> status);

}  // namespace eclp::algos::mis
