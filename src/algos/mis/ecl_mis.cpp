#include "algos/mis/ecl_mis.hpp"

#include <algorithm>

#include "algos/common.hpp"
#include "profile/session.hpp"
#include "sim/operators.hpp"
#include "support/prng.hpp"

namespace eclp::algos::mis {

namespace {

bool undecided(u8 s) { return s >= kUndecidedBase && s <= kUndecidedTop; }

u64 tie_hash(vidx v) { return splitmix64(0x6d69735f68617368ULL ^ v); }

/// Strict total order on undecided vertices: priority byte, then hash, then
/// id. Returns true when a beats b.
bool beats(u8 stat_a, vidx a, u8 stat_b, vidx b) {
  if (stat_a != stat_b) return stat_a > stat_b;
  const u64 ha = tie_hash(a), hb = tie_hash(b);
  if (ha != hb) return ha > hb;
  return a > b;
}

}  // namespace

u8 priority_byte(vidx v, vidx degree) {
  // Number of bits of (degree): doubling the degree drops one band. Low
  // degree => high priority, the bias the paper describes ("favors
  // low-degree vertices"), which is known to grow the MIS.
  u32 band = 0;
  for (vidx d = degree; d != 0; d >>= 1) ++band;
  band = std::min<u32>(band, 14);
  const u32 base = (14 - band) * 16 + 16;  // 16 .. 240
  const u32 tie = static_cast<u32>(tie_hash(v) % 13);  // jitter within band
  const u32 value = std::clamp<u32>(base + tie - 6, kUndecidedBase,
                                    kUndecidedTop);
  return static_cast<u8>(value);
}

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt) {
  ECLP_CHECK_MSG(!g.directed(), "ECL-MIS expects an undirected graph");
  profile::ScopedSpan algo_span("ecl-mis", profile::SpanKind::kAlgorithm);
  const vidx n = g.num_vertices();
  sim::LaunchConfig cfg;
  cfg.blocks = opt.blocks;
  cfg.threads_per_block = opt.threads_per_block;
  const u32 total_threads = cfg.total_threads();

  Result res;
  std::vector<u8> stat(n);
  dev.register_buffer(stat);
  const u64 cycles_before = dev.total_cycles();

  // --- initialization: one-byte status+priority per vertex -------------------
  const auto byte_of = [&](vidx v) -> u8 {
    switch (opt.priority) {
      case Priority::kDegreeAware:
        return priority_byte(v, g.degree(v));
      case Priority::kUniformHash:
        return static_cast<u8>(kUndecidedBase +
                               tie_hash(v) % (kUndecidedTop - kUndecidedBase));
      case Priority::kVertexId:
        return kUndecidedBase;  // all ties; the id breaks them
    }
    return kUndecidedBase;
  };
  // Pure per-vertex map (each thread writes only its own vertices' bytes):
  // safe to fan blocks across the host pool. The selection kernel below is
  // not — its mid-round snapshot refreshes are order-dependent by design.
  sim::LaunchConfig init_cfg = cfg;
  init_cfg.block_independent = true;
  profile::ScopedSpan init_span("init");
  sim::ops::compute(dev, "mis_init", init_cfg, n,
                    [&](sim::ThreadCtx& ctx, vidx v) {
                      ctx.charge_reads(2);  // degree from row offsets
                      ctx.store(stat[v], byte_of(v));
                    });
  init_span.end();
  // Strict total order on undecided vertices under the chosen priority.
  const auto wins = [&](u8 stat_a, vidx a, u8 stat_b, vidx b) {
    if (opt.priority == Priority::kVertexId) return a > b;
    return beats(stat_a, a, stat_b, b);
  };

  // --- selection: persistent threads, vertices round-robin -------------------
  profile::PerThreadCounter iterations(total_threads);
  profile::PerThreadCounter assigned(total_threads);
  profile::PerThreadCounter finalized(total_threads);
  for (vidx v = 0; v < n; ++v) assigned.inc(v % total_threads);

  // In round-snapshot mode, neighbor statuses are read from `snap`, the
  // state published at the previous round boundary (see Options::Visibility).
  const bool jacobi = opt.visibility == Visibility::kRoundSnapshot;
  std::vector<u8> snap = stat;
  dev.register_buffer(snap);
  const std::vector<u8>& view = jacobi ? snap : stat;

  const u64 quantum = opt.quantum;
  // Mid-round snapshot refresh cadence: after this many processed vertices
  // (across all threads), the published view catches up with live state.
  const u64 refresh_every =
      opt.snapshot_refreshes_per_round == 0
          ? ~u64{0}
          : std::max<u64>(1, n / opt.snapshot_refreshes_per_round);
  u64 processed_since_refresh = 0;

  profile::ScopedSpan select_span("selection");
  // Persistent-threads convergence: each thread's step processes its owned
  // vertices once; the device-driven iterate_until advances every
  // unfinished thread round-robin until all report done.
  sim::ops::iterate_until(
      dev, "mis_select", cfg,
      [&](sim::ThreadCtx& ctx) {
        const u32 tid = ctx.global_id();
        u64 spent = 0;
        bool all_decided;
        do {
          // One outer-loop iteration: process every still-undecided owned
          // vertex (this is the iteration the paper's Table 2 counts).
          iterations.inc(tid);
          ctx.charge_alu(1);
          spent += 1;
          all_decided = true;
          for (vidx v = tid; v < n; v += total_threads) {
            if (jacobi && ++processed_since_refresh >= refresh_every) {
              processed_since_refresh = 0;
              snap = stat;  // bounded staleness: publish mid-round
            }
            const u8 sv = ctx.load(stat[v]);
            spent += 1;
            if (!undecided(sv)) continue;
            // Short-circuit scan of the neighborhood (paper §2.3): stop as
            // soon as an 'in' neighbor or a stronger undecided neighbor is
            // found.
            bool lost = false;
            bool neighbor_in = false;
            for (const vidx u : g.neighbors(v)) {
              const u8 su = ctx.load(view[u]);
              spent += 1;
              if (su == kIn) {
                neighbor_in = true;
                break;
              }
              if (undecided(su) && wins(su, u, sv, v)) {
                lost = true;
                break;
              }
            }
            if (neighbor_in) {
              ctx.store(stat[v], kOut);
            } else if (!lost) {
              // Finalize: v joins the MIS and its neighbors drop out. The
              // updates are monotonic, so no synchronization is required.
              ctx.store(stat[v], kIn);
              finalized.inc(tid);
              for (const vidx u : g.neighbors(v)) {
                if (undecided(ctx.load(stat[u]))) ctx.store(stat[u], kOut);
                spent += 1;
              }
            } else {
              all_decided = false;
            }
          }
          // Keep iterating inside this wall-clock quantum; with a frozen
          // snapshot view nothing can change mid-round, so spinning is pure
          // (counted) re-checking, as on the real GPU.
        } while (!all_decided && jacobi && spent < quantum);
        return all_decided;
      },
      [&](u64 /*round*/) {
        if (jacobi) snap = stat;
      });

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  res.metrics.iterations = iterations.summary();
  res.metrics.vertices_assigned = assigned.summary();
  res.metrics.vertices_finalized = finalized.summary();
  res.set_size = static_cast<usize>(
      std::count(stat.begin(), stat.end(), kIn));
  res.status = std::move(stat);
  return res;
}

std::vector<u8> reference_greedy(const graph::Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<u8> status(n, kUndecidedBase);
  for (vidx v = 0; v < n; ++v) {
    if (status[v] != kUndecidedBase) continue;
    status[v] = kIn;
    for (const vidx u : g.neighbors(v)) status[u] = kOut;
  }
  return status;
}

bool verify(const graph::Csr& g, std::span<const u8> status) {
  if (status.size() != g.num_vertices()) return false;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (status[v] != kIn && status[v] != kOut) return false;  // undecided
    if (status[v] == kIn) {
      // Independence: no two adjacent 'in' vertices.
      for (const vidx u : g.neighbors(v)) {
        if (u != v && status[u] == kIn) return false;
      }
    } else {
      // Maximality: every 'out' vertex must be blocked by an 'in' neighbor.
      bool blocked = false;
      for (const vidx u : g.neighbors(v)) {
        if (status[u] == kIn) {
          blocked = true;
          break;
        }
      }
      if (!blocked) return false;
    }
  }
  return true;
}

}  // namespace eclp::algos::mis
