#include "algos/baselines/luby_mis.hpp"

#include <algorithm>

#include "algos/common.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "support/prng.hpp"

namespace eclp::algos::baselines {

namespace {

constexpr u8 kUndecided = 1;

u64 draw(u64 seed, vidx v, u32 round) {
  return splitmix64(splitmix64(seed ^ (static_cast<u64>(round) << 32)) ^ v);
}

}  // namespace

LubyResult luby_mis(sim::Device& dev, const graph::Csr& g, u64 seed,
                    u32 threads_per_block) {
  ECLP_CHECK_MSG(!g.directed(), "luby_mis expects an undirected graph");
  const vidx n = g.num_vertices();
  LubyResult res;
  std::vector<u8> stat(n, kUndecided);
  const u64 cycles_before = dev.total_cycles();

  usize undecided = n;
  while (undecided > 0) {
    ++res.rounds;
    ECLP_CHECK_MSG(res.rounds <= 10 * 64 + n, "Luby diverged");
    const u32 round = res.rounds;
    usize decided_this_round = 0;
    // Selection: strict local maxima of this round's random draw join.
    dev.launch("luby_select",
               blocks_for(std::max<u64>(n, 1), threads_per_block),
               [&](sim::ThreadCtx& ctx) {
                 for (vidx v = ctx.global_id(); v < n;
                      v += ctx.grid_size()) {
                   ctx.charge_coalesced_reads(1);
                   if (stat[v] != kUndecided) continue;
                   ctx.charge_alu(2);  // the random draw
                   const u64 rv = draw(seed, v, round);
                   bool best = true;
                   for (const vidx u : g.neighbors(v)) {
                     ctx.charge_reads(1);
                     if (stat[u] == mis::kIn) {
                       best = false;  // a neighbor won already this round
                       break;
                     }
                     if (stat[u] != kUndecided) continue;
                     const u64 ru = draw(seed, u, round);
                     if (ru > rv || (ru == rv && u > v)) {
                       best = false;
                       break;
                     }
                   }
                   if (best) {
                     ctx.charge_writes(1);
                     stat[v] = mis::kIn;
                   }
                 }
               });
    // Knock-out: neighbors of fresh winners leave (round barrier between
    // the two kernels keeps this race-free — Luby's synchronous structure).
    dev.launch("luby_knockout",
               blocks_for(std::max<u64>(n, 1), threads_per_block),
               [&](sim::ThreadCtx& ctx) {
                 for (vidx v = ctx.global_id(); v < n;
                      v += ctx.grid_size()) {
                   ctx.charge_coalesced_reads(1);
                   if (stat[v] != kUndecided) continue;
                   for (const vidx u : g.neighbors(v)) {
                     ctx.charge_reads(1);
                     if (stat[u] == mis::kIn) {
                       ctx.charge_writes(1);
                       stat[v] = mis::kOut;
                       break;
                     }
                   }
                 }
               });
    usize remaining = 0;
    for (vidx v = 0; v < n; ++v) remaining += (stat[v] == kUndecided);
    decided_this_round = undecided - remaining;
    ECLP_CHECK_MSG(decided_this_round > 0, "Luby round made no progress");
    undecided = remaining;
    dev.host_op();  // the round barrier / termination check readback
  }

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  res.set_size =
      static_cast<usize>(std::count(stat.begin(), stat.end(), mis::kIn));
  // Map to the shared status convention.
  for (auto& s : stat) {
    if (s == kUndecided) s = mis::kOut;  // unreachable; defensive
  }
  res.status = std::move(stat);
  return res;
}

}  // namespace eclp::algos::baselines
