// Baseline maximal independent set: Luby's round-synchronous random-
// selection algorithm. Every round, undecided vertices draw fresh random
// values; local maxima join the set and knock their neighbors out. ECL-MIS
// replaces the per-round randomness with one static degree-aware priority
// and drops the round barrier — this baseline quantifies what that buys
// (fewer kernel rounds, larger sets).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"

namespace eclp::algos::baselines {

struct LubyResult {
  std::vector<u8> status;  ///< mis::kIn / mis::kOut
  usize set_size = 0;
  u32 rounds = 0;
  u64 modeled_cycles = 0;
};

LubyResult luby_mis(sim::Device& dev, const graph::Csr& g, u64 seed = 0,
                    u32 threads_per_block = 256);

}  // namespace eclp::algos::baselines
