// Baseline strongly connected components: the forward-backward (FW-BW)
// algorithm with trimming — the classic GPU SCC approach that ECL-SCC's
// all-pivots signature propagation improves on.
//
// Each phase processes one active region: trim degree-0 vertices (singleton
// SCCs), pick a pivot, compute its forward and backward reachable sets with
// level-synchronous BFS kernels, emit F ∩ B as an SCC, and split the region
// into the three remainders (F\B, B\F, rest), which are processed later.
// One pivot per phase — the serialization ECL-SCC's concurrent pivots avoid.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"

namespace eclp::algos::baselines {

struct FwBwResult {
  std::vector<vidx> scc_id;
  usize num_sccs = 0;
  u32 pivots = 0;       ///< pivot phases executed (serialized work)
  u32 trim_rounds = 0;  ///< trimming sweeps across all phases
  u32 bfs_launches = 0; ///< frontier kernel launches across all phases
  u64 modeled_cycles = 0;
};

FwBwResult fw_bw_scc(sim::Device& dev, const graph::Csr& g,
                     u32 threads_per_block = 256);

}  // namespace eclp::algos::baselines
