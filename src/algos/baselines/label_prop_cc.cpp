#include "algos/baselines/label_prop_cc.hpp"

#include "algos/common.hpp"

namespace eclp::algos::baselines {

LabelPropResult label_prop_cc(sim::Device& dev, const graph::Csr& g,
                              u32 threads_per_block) {
  ECLP_CHECK_MSG(!g.directed(), "label_prop_cc expects an undirected graph");
  const vidx n = g.num_vertices();
  LabelPropResult res;
  std::vector<vidx> label(n);
  const u64 cycles_before = dev.total_cycles();

  dev.launch("lp_init", blocks_for(std::max<u64>(n, 1), threads_per_block),
             [&](sim::ThreadCtx& ctx) {
               for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
                 ctx.charge_coalesced_writes(1);
                 label[v] = v;
               }
             });

  bool changed = true;
  while (changed) {
    ++res.rounds;
    ECLP_CHECK_MSG(res.rounds <= n + 2, "label propagation diverged");
    changed = false;
    // Hook: every arc pulls the target's label toward the source's.
    dev.launch("lp_hook", blocks_for(std::max<u64>(n, 1), threads_per_block),
               [&](sim::ThreadCtx& ctx) {
                 for (vidx v = ctx.global_id(); v < n;
                      v += ctx.grid_size()) {
                   ctx.charge_coalesced_reads(2);
                   const vidx lv = label[v];
                   for (const vidx u : g.neighbors(v)) {
                     ctx.charge_coalesced_reads(1);
                     ctx.charge_reads(1);  // label[u], scattered
                     if (label[u] < lv) {
                       if (ctx.atomic_min(label[v], label[u])) {
                         res.label_updates++;
                         changed = true;
                       }
                     }
                   }
                 }
               });
    // Jump: one hop of pointer shortening accelerates convergence.
    dev.launch("lp_jump", blocks_for(std::max<u64>(n, 1), threads_per_block),
               [&](sim::ThreadCtx& ctx) {
                 for (vidx v = ctx.global_id(); v < n;
                      v += ctx.grid_size()) {
                   ctx.charge_reads(2);
                   const vidx l = label[v];
                   if (label[l] < l) {
                     ctx.charge_writes(1);
                     label[v] = label[l];
                     changed = true;
                   }
                 }
               });
  }

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  res.labels = std::move(label);
  return res;
}

}  // namespace eclp::algos::baselines
