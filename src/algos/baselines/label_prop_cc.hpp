// Baseline connected components: min-label propagation with per-round
// pointer jumping (the classic Shiloach-Vishkin-style GPU CC that ECL-CC
// improves on). Each round, every edge tries to pull its endpoint's label
// down via atomicMin, then every vertex shortcuts its label one hop.
// Converges in O(log n) rounds on most graphs but touches every edge every
// round — the work ECL-CC's asynchronous union-find avoids.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"

namespace eclp::algos::baselines {

struct LabelPropResult {
  std::vector<vidx> labels;
  u32 rounds = 0;
  u64 modeled_cycles = 0;
  u64 label_updates = 0;  ///< effective atomicMin operations
};

LabelPropResult label_prop_cc(sim::Device& dev, const graph::Csr& g,
                              u32 threads_per_block = 256);

}  // namespace eclp::algos::baselines
