#include "algos/baselines/fw_bw_scc.hpp"

#include <vector>

#include "algos/common.hpp"
#include "graph/transforms.hpp"

namespace eclp::algos::baselines {

namespace {

constexpr vidx kNoRegion = kNoVertex;

}  // namespace

FwBwResult fw_bw_scc(sim::Device& dev, const graph::Csr& g,
                     u32 threads_per_block) {
  ECLP_CHECK_MSG(g.directed(), "fw_bw_scc expects a directed graph");
  const vidx n = g.num_vertices();
  const auto gt = graph::transpose(g);

  FwBwResult res;
  res.scc_id.assign(n, kNoVertex);
  const u64 cycles_before = dev.total_cycles();

  // region[v]: which pending partition v belongs to; kNoRegion once settled.
  std::vector<vidx> region(n, 0);
  std::vector<vidx> pending = {0};  // region ids awaiting processing
  vidx next_region = 1;
  const auto vertex_cfg = blocks_for(std::max<u64>(n, 1), threads_per_block);

  // Reachability marks, reused across phases.
  std::vector<u8> fwd(n, 0), bwd(n, 0);

  // Level-synchronous BFS restricted to `r`, marking `mark`. Frontier-based
  // so each level costs only its frontier, not the whole vertex set.
  std::vector<vidx> frontier, next_frontier;
  const auto bfs = [&](const graph::Csr& adj, vidx source, vidx r,
                       std::vector<u8>& mark) {
    mark[source] = 1;
    frontier.assign(1, source);
    while (!frontier.empty()) {
      ++res.bfs_launches;
      next_frontier.clear();
      dev.launch("fwbw_bfs",
                 blocks_for(frontier.size(), threads_per_block),
                 [&](sim::ThreadCtx& ctx) {
                   for (u64 i = ctx.global_id(); i < frontier.size();
                        i += ctx.grid_size()) {
                     const vidx v = frontier[i];
                     ctx.charge_coalesced_reads(1);
                     for (const vidx w : adj.neighbors(v)) {
                       ctx.charge_reads(2);
                       if (region[w] == r && !mark[w]) {
                         ctx.charge_writes(1);
                         mark[w] = 1;
                         next_frontier.push_back(w);
                       }
                     }
                   }
                 });
      frontier.swap(next_frontier);
      dev.host_op();  // frontier-size readback for the next launch
    }
  };

  while (!pending.empty()) {
    const vidx r = pending.back();
    pending.pop_back();

    // --- trim: vertices with no live in- or out-neighbor are singletons ---
    bool trimmed = true;
    while (trimmed) {
      ++res.trim_rounds;
      trimmed = false;
      dev.launch("fwbw_trim", vertex_cfg, [&](sim::ThreadCtx& ctx) {
        for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
          ctx.charge_coalesced_reads(1);
          if (region[v] != r) continue;
          bool has_in = false, has_out = false;
          for (const vidx w : g.neighbors(v)) {
            ctx.charge_reads(1);
            if (region[w] == r) {
              has_out = true;
              break;
            }
          }
          for (const vidx w : gt.neighbors(v)) {
            ctx.charge_reads(1);
            if (region[w] == r) {
              has_in = true;
              break;
            }
          }
          if (!has_in || !has_out) {
            ctx.charge_writes(2);
            res.scc_id[v] = v;  // singleton SCC
            region[v] = kNoRegion;
            trimmed = true;
          }
        }
      });
      dev.host_op();
    }

    // --- pivot selection: first live vertex of the region -----------------
    vidx pivot = kNoVertex;
    for (vidx v = 0; v < n; ++v) {
      if (region[v] == r) {
        pivot = v;
        break;
      }
    }
    dev.host_op();  // pivot readback
    if (pivot == kNoVertex) continue;  // region fully trimmed
    ++res.pivots;

    // --- forward and backward reachability ---------------------------------
    bfs(g, pivot, r, fwd);
    bfs(gt, pivot, r, bwd);

    // --- partition: F∩B is the pivot's SCC; three remainders recurse ------
    const vidx r_fwd = next_region++;
    const vidx r_bwd = next_region++;
    const vidx r_rest = next_region++;
    u64 fwd_count = 0, bwd_count = 0, rest_count = 0;
    dev.launch("fwbw_partition", vertex_cfg, [&](sim::ThreadCtx& ctx) {
      for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        ctx.charge_coalesced_reads(1);
        if (region[v] != r) continue;
        ctx.charge_reads(2);
        ctx.charge_writes(1);
        if (fwd[v] && bwd[v]) {
          res.scc_id[v] = pivot;
          region[v] = kNoRegion;
        } else if (fwd[v]) {
          region[v] = r_fwd;
          fwd_count++;
        } else if (bwd[v]) {
          region[v] = r_bwd;
          bwd_count++;
        } else {
          region[v] = r_rest;
          rest_count++;
        }
        fwd[v] = 0;
        bwd[v] = 0;
      }
    });
    dev.host_op();
    if (fwd_count > 0) pending.push_back(r_fwd);
    if (bwd_count > 0) pending.push_back(r_bwd);
    if (rest_count > 0) pending.push_back(r_rest);
  }

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  std::vector<u8> seen(n, 0);
  for (vidx v = 0; v < n; ++v) {
    ECLP_CHECK_MSG(res.scc_id[v] != kNoVertex, "FW-BW left vertex " << v
                                                                    << " open");
    if (!seen[res.scc_id[v]]) {
      seen[res.scc_id[v]] = 1;
      res.num_sccs++;
    }
  }
  return res;
}

}  // namespace eclp::algos::baselines
