// ECL-SCC: strongly connected components (Alabandi, Sands, Biros &
// Burtscher, SC'23), ported to the simulated device.
//
// Structure follows the paper's §2.5 — every iteration of the outer loop
// (counter m) runs three stages on the not-yet-settled subgraph:
//  * signature initialization — every live vertex sets both signatures,
//    v_in and v_out, to its own id (all vertices act as pivots at once);
//  * maximum-value propagation — for every live edge (u -> w),
//    v_out[u] <- max(v_out[u], v_out[w]) and v_in[w] <- max(v_in[w],
//    v_in[u]), repeated to a fixed point. Propagation is block-level: each
//    thread block loops over its slice of the edge array until no thread in
//    the block updates anything (a __syncthreads do-while); the grid
//    relaunches (counter n) until a whole launch makes no update;
//  * edge removal / matching — vertices with v_in == v_out belong to the
//    SCC identified by that value and are settled; edges whose endpoint
//    signature pairs differ cannot be intra-SCC and are removed.
//
// Figure 1 instrumentation: the number of signature updates performed by
// each thread block during every propagation iteration (m, n), captured in
// a profile::BlockSeries when Options::record_series is set.
//
// Table 6 reproduces by sweeping Options::threads_per_block: small blocks
// under-propagate (more grid relaunches), large blocks keep idle threads in
// block-wide synchronization (more inner-loop overhead) — both costs fall
// out of the simulator's cost model.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "profile/series.hpp"
#include "sim/device.hpp"

namespace eclp::algos::scc {

struct Options {
  u32 threads_per_block = 512;  ///< the original's default (paper Table 6)
  /// Record per-block update counts for every (m, n) (Figure 1).
  bool record_series = false;
  /// Edges per thread in the propagation kernel.
  u32 edges_per_thread = 1;
  /// Trimming: before each propagation round, settle live vertices with no
  /// live in-arc or no live out-arc as singleton SCCs (they cannot be on
  /// any cycle). A standard FW-BW-era optimization that composes with the
  /// signature scheme; off by default to match the paper's base code.
  bool trim = false;
};

struct Result {
  std::vector<vidx> scc_id;  ///< SCC identifier per vertex (a member's id)
  usize num_sccs = 0;
  u32 outer_iterations = 0;             ///< final m
  std::vector<u32> inner_per_outer;     ///< propagation launches (n) per m
  profile::BlockSeries series;          ///< per-block updates (Figure 1)
  u64 modeled_cycles = 0;
  u64 trimmed_vertices = 0;  ///< singletons settled by trimming (if enabled)
};

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt = {});

/// Tarjan's algorithm (iterative), as the sequential reference.
std::vector<vidx> reference_scc(const graph::Csr& g);

/// True when `scc_id` induces the same partition as Tarjan's.
bool verify(const graph::Csr& g, std::span<const vidx> scc_id);

}  // namespace eclp::algos::scc
