#include "algos/scc/ecl_scc.hpp"

#include <algorithm>

#include "algos/common.hpp"
#include "profile/session.hpp"

namespace eclp::algos::scc {

namespace {

struct Arc {
  vidx src;
  vidx dst;
};

std::vector<Arc> flatten_arcs(const graph::Csr& g) {
  std::vector<Arc> arcs;
  arcs.reserve(g.num_edges());
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    for (const vidx w : g.neighbors(u)) arcs.push_back({u, w});
  }
  return arcs;
}

}  // namespace

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt) {
  ECLP_CHECK_MSG(g.directed(), "ECL-SCC expects a directed graph");
  ECLP_CHECK(opt.edges_per_thread >= 1);
  profile::ScopedSpan algo_span("ecl-scc", profile::SpanKind::kAlgorithm);
  const vidx n = g.num_vertices();
  const auto arcs = flatten_arcs(g);
  const u64 num_arcs = arcs.size();

  Result res;
  res.scc_id.assign(n, kNoVertex);
  const u64 cycles_before = dev.total_cycles();

  std::vector<vidx> vin(n), vout(n);
  std::vector<u8> settled(n, 0);
  std::vector<u8> alive(num_arcs, 1);
  dev.register_buffer(res.scc_id);
  dev.register_buffer(vin);
  dev.register_buffer(vout);
  dev.register_buffer(settled);
  dev.register_buffer(alive);

  const u64 prop_threads =
      std::max<u64>(1, (num_arcs + opt.edges_per_thread - 1) /
                           opt.edges_per_thread);
  const sim::LaunchConfig prop_cfg =
      blocks_for(prop_threads, opt.threads_per_block);
  const sim::LaunchConfig vertex_cfg =
      blocks_for(std::max<u64>(n, 1), opt.threads_per_block);
  // The vertex-parallel kernels below touch only their own vertices' slots
  // (grid-stride partition), and scc_propagate follows the launch-snapshot
  // discipline by construction — all are safe to run block-parallel.
  sim::LaunchConfig prop_par_cfg = prop_cfg;
  prop_par_cfg.block_independent = true;
  sim::LaunchConfig vertex_par_cfg = vertex_cfg;
  vertex_par_cfg.block_independent = true;

  // Live in/out arc counts, maintained as edges die (used by trimming).
  std::vector<u32> alive_out(n, 0), alive_in(n, 0);
  for (const Arc& arc : arcs) {
    alive_out[arc.src]++;
    alive_in[arc.dst]++;
  }

  usize remaining = n;
  u32 m = 0;
  while (remaining > 0) {
    ++m;
    ECLP_CHECK_MSG(m <= n + 1, "ECL-SCC failed to converge");
    profile::ScopedSpan round_span(profile::SpanKind::kIteration, "round", m);

    // --- stage 0 (optional): trimming ----------------------------------------
    // A live vertex with no live in-arc or no live out-arc is on no cycle:
    // settle it as a singleton and let its arcs die, repeating to a fixed
    // point (chains peel completely without any propagation).
    profile::ScopedSpan trim_span("trim");
    while (opt.trim) {
      // Per-block partial counts, summed in block order after the launch so
      // the total never depends on block execution order.
      std::vector<u64> trimmed_per_block(vertex_cfg.blocks, 0);
      dev.launch("scc_trim", vertex_par_cfg, [&](sim::ThreadCtx& ctx) {
        for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
          ctx.charge_coalesced_reads(3);
          if (settled[v]) continue;
          if (alive_out[v] == 0 || alive_in[v] == 0) {
            ctx.charge_writes(2);
            res.scc_id[v] = v;
            settled[v] = 1;
            ++trimmed_per_block[ctx.block_idx()];
          }
        }
      });
      u64 trimmed = 0;
      for (const u64 t : trimmed_per_block) trimmed += t;
      if (trimmed == 0) break;
      res.trimmed_vertices += trimmed;
      remaining -= trimmed;
      // Retire the arcs of freshly settled vertices so the counts drop.
      dev.launch("scc_trim_edges", prop_cfg, [&](sim::ThreadCtx& ctx) {
        const u64 begin =
            static_cast<u64>(ctx.global_id()) * opt.edges_per_thread;
        const u64 end = std::min<u64>(begin + opt.edges_per_thread, num_arcs);
        for (u64 e = begin; e < end; ++e) {
          ctx.charge_coalesced_reads(1);
          if (!alive[e]) continue;
          const vidx u = arcs[e].src, w = arcs[e].dst;
          if (settled[u] || settled[w]) {
            ctx.charge_writes(1);
            alive[e] = 0;
            alive_out[u]--;
            alive_in[w]--;
          }
        }
      });
      dev.host_op();  // trimmed-count readback drives the repeat decision
    }
    trim_span.end();
    if (remaining == 0) break;

    // --- stage 1: signature initialization ----------------------------------
    profile::ScopedSpan prop_span("propagation");
    dev.launch("scc_init_signatures", vertex_par_cfg, [&](sim::ThreadCtx& ctx) {
      for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        ctx.charge_reads(1);
        if (settled[v]) continue;
        ctx.store(vin[v], v);
        ctx.store(vout[v], v);
      }
    });

    // --- stage 2: maximum-value propagation to a fixed point ----------------
    // Visibility model (the simulator runs blocks one after another, the
    // GPU runs them concurrently — both facts matter for the cost shapes of
    // Table 6):
    //  * within a block, sweeps have snapshot semantics
    //    (launch_block_jacobi): a sweep's atomicMax intents are buffered and
    //    committed at the block-wide sync, so value chains advance one hop
    //    per sweep in both directions, as under warp parallelism;
    //  * across blocks, a launch has snapshot semantics: values of vertices
    //    "homed" in other blocks are read from the launch-start snapshot,
    //    and updates targeting them apply after the launch — concurrent
    //    blocks cannot observe each other mid-launch, so cross-block
    //    propagation costs one grid relaunch per block boundary.
    std::vector<vidx> home_block(n);
    {
      const u64 span = static_cast<u64>(prop_cfg.threads_per_block) *
                       opt.edges_per_thread;
      for (vidx v = 0; v < n; ++v) {
        home_block[v] = static_cast<vidx>(g.edge_begin(v) / span);
      }
    }
    std::vector<vidx> vin_snap(n), vout_snap(n);
    u32 inner_n = 0;
    struct Intent {
      vidx* slot;
      vidx value;
    };
    // Per-block intent buffers and update tallies: block b only ever touches
    // index b, which is what makes this launch block-independent. Remote
    // intents are applied host-side in block-index order after the launch,
    // and the tallies are summed the same way, so the numbers match a
    // sequential block sweep exactly.
    std::vector<std::vector<Intent>> local_intents(prop_cfg.blocks);
    std::vector<std::vector<Intent>> remote_intents(prop_cfg.blocks);
    while (true) {
      ++inner_n;
      vin_snap = vin;  // launch-start snapshot (a device-side copy)
      vout_snap = vout;
      std::vector<u64> block_updates(prop_cfg.blocks, 0);
      std::vector<u64> local_updates(prop_cfg.blocks, 0);
      dev.launch_block_jacobi(
          "scc_propagate", prop_par_cfg,
          [&](sim::ThreadCtx& ctx, u64 /*inner_iter*/) {
            const u32 b = ctx.block_idx();
            const u64 begin =
                static_cast<u64>(ctx.global_id()) * opt.edges_per_thread;
            const u64 end = std::min<u64>(begin + opt.edges_per_thread,
                                          num_arcs);
            for (u64 e = begin; e < end; ++e) {
              ctx.charge_coalesced_reads(1);  // alive flag, streaming
              if (!alive[e]) continue;
              const vidx u = arcs[e].src, w = arcs[e].dst;
              ctx.charge_reads(2);  // the two signature loads
              // v_out flows backwards (source learns what the destination
              // can reach); v_in flows forwards. Every read of a vertex
              // homed in another block comes from the launch-start snapshot
              // — guards included, or the guard itself would peek at
              // another block's in-flight writes.
              const vidx vout_w = home_block[w] == b ? vout[w] : vout_snap[w];
              const vidx vout_u = home_block[u] == b ? vout[u] : vout_snap[u];
              if (vout_w > vout_u) {
                ctx.charge_atomics(1);
                (home_block[u] == b ? local_intents : remote_intents)[b]
                    .push_back({&vout[u], vout_w});
              }
              const vidx vin_u = home_block[u] == b ? vin[u] : vin_snap[u];
              const vidx vin_w = home_block[w] == b ? vin[w] : vin_snap[w];
              if (vin_u > vin_w) {
                ctx.charge_atomics(1);
                (home_block[w] == b ? local_intents : remote_intents)[b]
                    .push_back({&vin[w], vin_u});
              }
            }
          },
          [&](u32 block, u64 /*inner_iter*/) {
            bool any = false;
            for (const Intent& intent : local_intents[block]) {
              // Resolve the buffered atomicMax; classify its outcome for
              // the device-wide atomic statistics (paper §3.1.5). Local
              // intents only target vertices homed in this block, so the
              // live compare races with nobody.
              if (intent.value > *intent.slot) {
                *intent.slot = intent.value;
                any = true;
                block_updates[block]++;
                local_updates[block]++;
                dev.record_block_atomic(block,
                                        sim::AtomicOutcome::kMaxEffective);
              } else {
                dev.record_block_atomic(block,
                                        sim::AtomicOutcome::kMaxIneffective);
              }
            }
            local_intents[block].clear();
            return any;
          });
      // Cross-block updates become visible only now, at launch end; applying
      // them block by block reproduces the order a sequential sweep with one
      // shared buffer would have produced.
      u64 launch_updates = 0;
      for (const u64 u : local_updates) launch_updates += u;
      for (u32 b = 0; b < prop_cfg.blocks; ++b) {
        for (const Intent& intent : remote_intents[b]) {
          if (intent.value > *intent.slot) {
            *intent.slot = intent.value;
            launch_updates++;
            dev.atomic_stats().record(sim::AtomicOutcome::kMaxEffective);
          } else {
            dev.atomic_stats().record(sim::AtomicOutcome::kMaxIneffective);
          }
        }
        remote_intents[b].clear();
      }
      if (opt.record_series) {
        res.series.record(m, inner_n, std::move(block_updates));
      }
      if (launch_updates == 0) break;  // grid-wide fixed point
    }
    res.inner_per_outer.push_back(inner_n);
    prop_span.end();

    // --- stage 3: matching + edge removal ------------------------------------
    profile::ScopedSpan match_span("match");
    std::vector<u64> settled_per_block(vertex_cfg.blocks, 0);
    dev.launch("scc_match", vertex_par_cfg, [&](sim::ThreadCtx& ctx) {
      for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        ctx.charge_reads(1);
        if (settled[v]) continue;
        if (ctx.load(vin[v]) == ctx.load(vout[v])) {
          ctx.store(res.scc_id[v], vin[v]);
          ctx.store(settled[v], u8{1});
          ++settled_per_block[ctx.block_idx()];
        }
      }
    });
    u64 newly_settled = 0;
    for (const u64 s : settled_per_block) newly_settled += s;
    dev.launch("scc_remove_edges", prop_cfg, [&](sim::ThreadCtx& ctx) {
      const u64 begin =
          static_cast<u64>(ctx.global_id()) * opt.edges_per_thread;
      const u64 end = std::min<u64>(begin + opt.edges_per_thread, num_arcs);
      for (u64 e = begin; e < end; ++e) {
        ctx.charge_reads(1);
        if (!alive[e]) continue;
        const vidx u = arcs[e].src, w = arcs[e].dst;
        const bool drop = settled[u] || settled[w] || vin[u] != vin[w] ||
                          vout[u] != vout[w];
        if (drop) {
          ctx.store(alive[e], u8{0});
          alive_out[u]--;
          alive_in[w]--;
        }
      }
    });
    ECLP_CHECK_MSG(newly_settled > 0, "ECL-SCC round settled nothing");
    remaining -= newly_settled;
  }

  res.outer_iterations = m;
  res.modeled_cycles = dev.total_cycles() - cycles_before;
  std::vector<u8> seen(n, 0);
  for (vidx v = 0; v < n; ++v) {
    const vidx id = res.scc_id[v];
    if (!seen[id]) {
      seen[id] = 1;
      res.num_sccs++;
    }
  }
  return res;
}

std::vector<vidx> reference_scc(const graph::Csr& g) {
  // Iterative Tarjan with an explicit DFS stack.
  const vidx n = g.num_vertices();
  constexpr u32 kUnvisited = ~u32{0};
  std::vector<u32> index(n, kUnvisited), lowlink(n, 0);
  std::vector<u8> on_stack(n, 0);
  std::vector<vidx> stack, scc_of(n, kNoVertex);
  u32 next_index = 0;

  struct Frame {
    vidx v;
    usize edge;
  };
  std::vector<Frame> dfs;

  for (vidx start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    dfs.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto nbrs = g.neighbors(f.v);
      if (f.edge < nbrs.size()) {
        const vidx w = nbrs[f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const vidx v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().v] = std::min(lowlink[dfs.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v roots an SCC: pop the stack down to v.
          vidx w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            scc_of[w] = v;
          } while (w != v);
        }
      }
    }
  }
  return scc_of;
}

bool verify(const graph::Csr& g, std::span<const vidx> scc_id) {
  if (scc_id.size() != g.num_vertices()) return false;
  for (const vidx id : scc_id) {
    if (id >= g.num_vertices()) return false;
  }
  const auto ref = normalize_labels(reference_scc(g));
  const auto got = normalize_labels(scc_id);
  return std::equal(ref.begin(), ref.end(), got.begin());
}

}  // namespace eclp::algos::scc
