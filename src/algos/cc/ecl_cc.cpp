#include "algos/cc/ecl_cc.hpp"

#include <algorithm>

#include "algos/common.hpp"
#include "graph/properties.hpp"
#include "profile/session.hpp"
#include "sim/operators.hpp"

namespace eclp::algos::cc {

namespace {

/// representative() from ECL-CC: walk the parent chain, shortcutting visited
/// links to their grandparent (intermediate pointer jumping).
vidx representative(sim::ThreadCtx& ctx, std::vector<vidx>& nstat, vidx v,
                    Profile& prof) {
  prof.representative_calls++;
  const vidx start = ctx.load(nstat[v]);
  vidx curr = start;
  if (curr != v) {
    vidx prev = v;
    vidx next;
    while (curr > (next = ctx.load(nstat[curr]))) {
      ctx.store(nstat[prev], next);
      prev = curr;
      curr = next;
    }
    prof.representative_moved += (curr != start) ? 1 : 0;
  }
  return curr;
}

/// Hook the components of v and neighbor u (u < v). Both reps walk down via
/// atomicCAS until the two chains meet (ECL-CC's lock-free union).
void hook(sim::ThreadCtx& ctx, std::vector<vidx>& nstat, vidx vstat,
          vidx ostat, Profile& prof) {
  bool repeat;
  do {
    repeat = false;
    if (vstat != ostat) {
      prof.hook_attempts++;
      if (vstat < ostat) {
        const vidx ret = ctx.atomic_cas(nstat[ostat], ostat, vstat);
        if (ret != ostat) {
          prof.hook_cas_failure++;
          ostat = ret;
          repeat = true;
        } else {
          prof.hook_cas_success++;
        }
      } else {
        const vidx ret = ctx.atomic_cas(nstat[vstat], vstat, ostat);
        if (ret != vstat) {
          prof.hook_cas_failure++;
          vstat = ret;
          repeat = true;
        } else {
          prof.hook_cas_success++;
        }
      }
    }
  } while (repeat);
}

/// Walk to the representative without charging: used by the non-leader
/// lanes of a warp/block-per-vertex kernel, which receive the value lane 0
/// computed via a register broadcast instead of redoing the chase.
vidx representative_uncharged(const std::vector<vidx>& nstat, vidx v) {
  vidx curr = nstat[v];
  while (curr != nstat[curr]) curr = nstat[curr];
  return curr;
}

}  // namespace

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt) {
  ECLP_CHECK_MSG(!g.directed(), "ECL-CC expects an undirected graph");
  profile::ScopedSpan algo_span("ecl-cc", profile::SpanKind::kAlgorithm);
  const vidx n = g.num_vertices();
  Result res;
  res.profile = Profile{};
  Profile& prof = res.profile;
  std::vector<vidx> nstat(n);
  dev.register_buffer(nstat);

  const u64 cycles_before = dev.total_cycles();
  if (opt.record_per_vertex_traversals) {
    res.init_traversal_per_vertex.assign(n, 0);
  }

  // --- init kernel ----------------------------------------------------------
  // Original: scan the adjacency list for the first smaller neighbor.
  // Optimized (§6.2.2): adjacency is sorted, so only the first entry can be
  // the first smaller neighbor.
  //
  // Every thread writes only its own vertices' slots, so the launch is
  // block-independent; the profile tallies go through per-block partials
  // summed in block order. (The compute and finalize kernels below are NOT
  // block-independent: hook() CAS outcomes and finalize chain lengths depend
  // on cross-block write visibility, so they stay sequential.)
  sim::LaunchConfig init_cfg = blocks_for(n, opt.threads_per_block);
  init_cfg.block_independent = true;
  std::vector<u64> initialized_pb(init_cfg.blocks, 0);
  std::vector<u64> traversed_pb(init_cfg.blocks, 0);
  profile::ScopedSpan init_span("init");
  // The init scan's neighbor traversal short-circuits (first smaller
  // neighbor wins), so it is a compute over vertices rather than an
  // advance over edges.
  sim::ops::compute(
      dev, "cc_init", init_cfg, n, [&](sim::ThreadCtx& ctx, vidx v) {
        initialized_pb[ctx.block_idx()]++;
        const auto nbrs = g.neighbors(v);
        ctx.charge_coalesced_reads(2);  // row offsets, streaming
        vidx label = v;
        u64 traversed = 0;
        if (opt.init_mode == InitMode::kOwnId) {
          // Baseline: no neighbor scan, all merging left to the
          // compute kernels.
        } else if (opt.optimized_init) {
          if (!nbrs.empty()) {
            ++traversed;
            ctx.charge_reads(1);
            if (nbrs[0] < v) label = nbrs[0];
          }
        } else {
          for (const vidx u : nbrs) {
            ++traversed;
            ctx.charge_reads(1);
            if (u < v) {
              label = u;
              break;
            }
          }
        }
        traversed_pb[ctx.block_idx()] += traversed;
        if (opt.record_per_vertex_traversals) {
          res.init_traversal_per_vertex[v] = traversed;
        }
        nstat[v] = label;
        ctx.charge_coalesced_writes(1);  // own slot, streaming
      });
  for (const u64 c : initialized_pb) prof.vertices_initialized += c;
  for (const u64 c : traversed_pb) prof.init_neighbors_traversed += c;
  res.init_cycles = dev.total_cycles() - cycles_before;
  init_span.end();

  // --- degree binning --------------------------------------------------------
  profile::ScopedSpan binning_span("degree binning");
  std::vector<vidx> low_bin, mid_bin, high_bin;
  for (vidx v = 0; v < n; ++v) {
    const vidx d = g.degree(v);
    if (d < opt.low_degree_limit) {
      low_bin.push_back(v);
    } else if (d < opt.high_degree_limit) {
      mid_bin.push_back(v);
    } else {
      high_bin.push_back(v);
    }
  }
  prof.low_bin_vertices = low_bin.size();
  prof.mid_bin_vertices = mid_bin.size();
  prof.high_bin_vertices = high_bin.size();
  binning_span.end();

  // --- compute kernels (3, customized per degree bin; paper §2.1) -----------
  // All three are one advance shape at different cooperative widths
  // (thread/warp/block per vertex): lane 0 resolves the vertex's
  // representative and the other lanes receive it by broadcast (one ALU
  // step), as the warp-cooperative original does; every lane then stripes
  // the adjacency list. Adjacency scans coalesce across the cooperating
  // lanes — the scattered traffic of this stage is the union-find pointer
  // chasing inside representative()/hook().
  profile::ScopedSpan compute_span("compute");
  const auto enter = [&](sim::ThreadCtx& ctx, vidx v, u32 lane) -> vidx {
    if (lane == 0) return representative(ctx, nstat, v, prof);
    ctx.charge_alu(1);
    return representative_uncharged(nstat, v);
  };
  const auto edge = [&](sim::ThreadCtx& ctx, vidx& vstat0, vidx v, vidx u) {
    if (u < v) {  // each undirected edge handled once, from the larger side
      const vidx ostat = representative(ctx, nstat, u, prof);
      hook(ctx, nstat, vstat0, ostat, prof);
    }
  };
  using Shape = sim::ops::AdvanceShape;
  constexpr u32 kWarp = sim::Device::kWarpSize;
  if (!low_bin.empty()) {
    sim::ops::advance(dev, "cc_compute_low",
                      blocks_for(low_bin.size(), opt.threads_per_block), g,
                      low_bin, Shape{.width = 1}, enter, edge);
  }
  if (!mid_bin.empty()) {
    const u64 items = static_cast<u64>(mid_bin.size()) * kWarp;
    sim::ops::advance(dev, "cc_compute_mid",
                      blocks_for(items, opt.threads_per_block), g, mid_bin,
                      Shape{.width = kWarp}, enter, edge);
  }
  if (!high_bin.empty()) {
    const u32 width = opt.threads_per_block;
    const u64 items = static_cast<u64>(high_bin.size()) * width;
    sim::ops::advance(dev, "cc_compute_high",
                      blocks_for(items, opt.threads_per_block), g, high_bin,
                      Shape{.width = width}, enter, edge);
  }

  compute_span.end();

  // --- finalize: full pointer jumping ----------------------------------------
  profile::ScopedSpan finalize_span("finalize");
  sim::ops::compute(dev, "cc_finalize",
                    blocks_for(n, opt.threads_per_block), n,
                    [&](sim::ThreadCtx& ctx, vidx v) {
                      vidx curr = ctx.load(nstat[v]);
                      while (curr != nstat[curr]) {
                        curr = ctx.load(nstat[curr]);
                      }
                      ctx.store(nstat[v], curr);
                    });

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  res.labels = std::move(nstat);
  return res;
}

std::vector<vidx> reference_labels(const graph::Csr& g) {
  return graph::connected_component_labels(g);
}

bool verify(const graph::Csr& g, std::span<const vidx> labels) {
  if (labels.size() != g.num_vertices()) return false;
  const auto ref = reference_labels(g);
  const auto norm = normalize_labels(labels);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (norm[v] != ref[v]) return false;
  }
  return true;
}

}  // namespace eclp::algos::cc
