// ECL-CC: connected components via union-find with intermediate pointer
// jumping (Jaiganesh & Burtscher, HPDC'18), ported to the simulated device.
//
// Structure follows the paper's §2.1:
//  * init kernel — label each vertex with the id of the first neighbor in
//    its (sorted) adjacency list that has a smaller id, else its own id;
//  * three compute kernels binned by degree (low / medium / high) that hook
//    components together with atomicCAS and shorten parent chains by
//    intermediate pointer jumping;
//  * finalize kernel — full pointer jumping so every vertex points at its
//    representative.
//
// Profiling counters (paper §3.2 and Table 4):
//  * vertices initialized / adjacency entries traversed in init,
//  * representative() calls and whether the return value moved down/up,
//  * hooking atomicCAS successes/failures.
//
// The optimized variant implements the paper's §6.2.2 fix: because
// adjacency lists are sorted, the first neighbor is the smallest, so init
// never needs to scan past it.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"

namespace eclp::algos::cc {

/// What the init kernel writes into each vertex's label.
enum class InitMode : u8 {
  /// The id of the first smaller neighbor (the ECL-CC heuristic; §2.1).
  kFirstSmallerNeighbor,
  /// The vertex's own id — the naive baseline the heuristic improves on
  /// ("less work in the next phase compared to just using the vertex ID").
  kOwnId,
};

struct Options {
  u32 threads_per_block = 256;
  /// Degree bins for the three compute kernels.
  vidx low_degree_limit = 16;    ///< degree < limit  -> thread per vertex
  vidx high_degree_limit = 512;  ///< degree >= limit -> block per vertex
  /// Paper §6.2.2: init touches only the first neighbor.
  bool optimized_init = false;
  InitMode init_mode = InitMode::kFirstSmallerNeighbor;
  /// Also record the init traversal count of every vertex (the per-vertex
  /// data behind the paper's §6.1.3 claim that traversals are "either 1 or
  /// equal to the vertex's degree").
  bool record_per_vertex_traversals = false;
};

/// Counters collected when running instrumented (always collected; the
/// profiling framework's counters do not charge the cost model, so they are
/// free in modeled cycles — see profile/counters.hpp).
struct Profile {
  u64 vertices_initialized = 0;
  u64 init_neighbors_traversed = 0;  ///< Table 4 "vertices traversed"
  u64 representative_calls = 0;
  u64 representative_moved = 0;  ///< return value differed from the label
  u64 hook_attempts = 0;
  u64 hook_cas_success = 0;
  u64 hook_cas_failure = 0;
  u64 low_bin_vertices = 0;
  u64 mid_bin_vertices = 0;
  u64 high_bin_vertices = 0;
};

struct Result {
  std::vector<vidx> labels;  ///< component representative per vertex
  Profile profile;
  u64 modeled_cycles = 0;
  u64 init_cycles = 0;  ///< init kernel's share (paper: 10-20% of runtime)
  /// Filled when Options::record_per_vertex_traversals is set.
  std::vector<u64> init_traversal_per_vertex;
};

/// Run ECL-CC on an undirected graph.
Result run(sim::Device& dev, const graph::Csr& g, const Options& opt = {});

/// Sequential reference labeling (BFS), normalized to smallest-member ids.
std::vector<vidx> reference_labels(const graph::Csr& g);

/// True when `labels` is a correct CC labeling of g.
bool verify(const graph::Csr& g, std::span<const vidx> labels);

}  // namespace eclp::algos::cc
