#include "algos/gc/ecl_gc.hpp"

#include <algorithm>
#include <bit>

#include "algos/common.hpp"
#include "profile/session.hpp"
#include "sim/operators.hpp"

namespace eclp::algos::gc {

namespace {

/// LDF priority: higher degree wins, ties go to the smaller id.
bool higher_priority(const graph::Csr& g, vidx u, vidx v) {
  const vidx du = g.degree(u), dv = g.degree(v);
  return du != dv ? du > dv : u < v;
}

/// Flat per-vertex bitmaps. Vertex v owns words_[offset_[v] ..
/// offset_[v+1]) covering colors 0 .. width(v)-1.
class Bitmaps {
 public:
  Bitmaps(std::span<const u32> widths) {
    offsets_.resize(widths.size() + 1, 0);
    for (usize v = 0; v < widths.size(); ++v) {
      offsets_[v + 1] = offsets_[v] + (widths[v] + 63) / 64;
    }
    words_.assign(offsets_.back(), 0);
    widths_.assign(widths.begin(), widths.end());
    // Initialize: all candidate colors possible.
    for (usize v = 0; v < widths.size(); ++v) {
      set_all(v);
    }
  }

  u32 width(usize v) const { return widths_[v]; }
  u32 num_words(usize v) const {
    return static_cast<u32>(offsets_[v + 1] - offsets_[v]);
  }

  void set_all(usize v) {
    u32 remaining = widths_[v];
    for (u64 w = offsets_[v]; w < offsets_[v + 1]; ++w) {
      words_[w] = remaining >= 64 ? ~u64{0} : ((u64{1} << remaining) - 1);
      remaining = remaining >= 64 ? remaining - 64 : 0;
    }
  }

  bool test(usize v, u32 color) const {
    if (color >= widths_[v]) return false;
    return (words_[offsets_[v] + color / 64] >> (color % 64)) & 1;
  }

  /// Clear; returns true if the bit was previously set.
  bool clear(usize v, u32 color) {
    if (color >= widths_[v]) return false;
    u64& w = words_[offsets_[v] + color / 64];
    const u64 mask = u64{1} << (color % 64);
    const bool was = (w & mask) != 0;
    w &= ~mask;
    return was;
  }

  /// Lowest set bit (the vertex's "best possible color"); kNoColor if empty.
  u32 best(usize v) const {
    for (u64 w = offsets_[v]; w < offsets_[v + 1]; ++w) {
      if (words_[w] != 0) {
        return static_cast<u32>((w - offsets_[v]) * 64 +
                                std::countr_zero(words_[w]));
      }
    }
    return kNoColor;
  }

  /// True when the candidate sets of a and b share no color.
  bool disjoint(usize a, usize b) const {
    const u32 words = std::min(num_words(a), num_words(b));
    for (u32 w = 0; w < words; ++w) {
      if ((words_[offsets_[a] + w] & words_[offsets_[b] + w]) != 0) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<u64> offsets_;
  std::vector<u64> words_;
  std::vector<u32> widths_;
};

}  // namespace

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt) {
  ECLP_CHECK_MSG(!g.directed(), "ECL-GC expects an undirected graph");
  profile::ScopedSpan algo_span("ecl-gc", profile::SpanKind::kAlgorithm);
  const vidx n = g.num_vertices();
  Result res;
  const u64 cycles_before = dev.total_cycles();

  // --- initialization: LDF DAG + possible-color bitmaps ----------------------
  // DAG in-neighbors (higher-priority endpoints) per vertex, flattened.
  std::vector<u32> indeg(n, 0);
  dev.register_buffer(indeg);
  std::vector<eidx> dag_off(static_cast<usize>(n) + 1, 0);
  // Both init kernels are pure per-vertex maps (each thread fills only its
  // own vertices' slots), so they run block-parallel; the coloring rounds
  // below depend on cross-block color visibility and stay sequential.
  sim::LaunchConfig init_cfg = blocks_for(n, opt.threads_per_block);
  init_cfg.block_independent = true;
  profile::ScopedSpan init_span("init");
  // Both init kernels are advances over the full vertex set: a serial
  // per-thread adjacency scan (width 1, reads charged flat, no row-offset
  // charge — the hand-rolled bodies never modeled one), accumulating
  // per-vertex state between enter and leave.
  using Shape = sim::ops::AdvanceShape;
  constexpr Shape init_shape{.width = 1,
                             .row_offset_reads = 0,
                             .edge_charge = Shape::EdgeCharge::kReads};
  sim::ops::advance(
      dev, "gc_init_degree", init_cfg, g, sim::ops::all_vertices(n),
      init_shape,
      [](sim::ThreadCtx&, vidx, u32) -> u32 { return 0; },  // in-degree
      [&](sim::ThreadCtx&, u32& d, vidx v, vidx u) {
        if (higher_priority(g, u, v)) ++d;
      },
      [&](sim::ThreadCtx& ctx, vidx v, u32& d) { ctx.store(indeg[v], d); });
  for (vidx v = 0; v < n; ++v) dag_off[v + 1] = dag_off[v] + indeg[v];
  std::vector<vidx> dag_in(dag_off[n]);
  dev.register_buffer(dag_in);
  std::vector<u8> dep_removed(dag_off[n], 0);  // Shortcut 2 edge removal
  sim::ops::advance(
      dev, "gc_init_dag", init_cfg, g, sim::ops::all_vertices(n), init_shape,
      [&](sim::ThreadCtx&, vidx v, u32) { return dag_off[v]; },  // out cursor
      [&](sim::ThreadCtx& ctx, eidx& pos, vidx v, vidx u) {
        if (higher_priority(g, u, v)) {
          ctx.store(dag_in[pos], u);
          ++pos;
        }
      });

  // A vertex with k higher-priority neighbors needs at most k+1 colors.
  std::vector<u32> widths(n);
  for (vidx v = 0; v < n; ++v) widths[v] = indeg[v] + 1;
  Bitmaps maps(widths);

  std::vector<u32> color(n, kNoColor);
  profile::PerVertexCounter best_changed(n);
  profile::PerVertexCounter not_yet_possible(n);

  // Worklist of uncolored vertices, split by the runSmall/runLarge degree
  // threshold (the original runs one warp per large vertex).
  std::vector<vidx> small_list, large_list;
  for (vidx v = 0; v < n; ++v) {
    (g.degree(v) > kLargeDegree ? large_list : small_list).push_back(v);
  }
  res.run_large.large_vertices = large_list.size();
  init_span.end();

  // --- coloring rounds --------------------------------------------------------
  // One processing pass over a vertex. Memory charges are *counted* rather
  // than charged directly so the caller can split them across cooperating
  // lanes (runLarge is one warp per vertex in the original).
  struct PassCost {
    u64 reads = 0;
    u64 writes = 0;
  };
  const auto coloring_pass = [&](vidx v, bool is_large,
                                 PassCost& cost) -> bool {
    // Prune candidates by colors claimed by colored higher-priority
    // neighbors; detect invalidation of the current best.
    const u32 old_best = maps.best(v);
    for (eidx e = dag_off[v]; e < dag_off[v + 1]; ++e) {
      if (dep_removed[e]) continue;
      const vidx u = dag_in[e];
      cost.reads++;
      if (color[u] != kNoColor) {
        maps.clear(v, color[u]);
        cost.writes++;
      }
    }
    const u32 best = maps.best(v);
    ECLP_CHECK_MSG(best != kNoColor, "GC bitmap exhausted at vertex " << v);
    if (is_large && best != old_best) best_changed.inc(v);

    // Shortcut 1: v may take `best` once no live higher-priority dependency
    // still considers it. Shortcut 2: drop dependencies with disjoint sets.
    // Without shortcuts (strict JP): any uncolored dependency blocks v.
    bool blocked = false;
    for (eidx e = dag_off[v]; e < dag_off[v + 1]; ++e) {
      if (dep_removed[e]) continue;
      const vidx u = dag_in[e];
      cost.reads++;
      if (color[u] != kNoColor) continue;  // colored: already pruned above
      if (!opt.use_shortcuts) {
        blocked = true;
        break;
      }
      cost.reads++;  // the neighbor's bitmap words
      if (maps.disjoint(v, u)) {
        dep_removed[e] = 1;
        res.shortcut2_removals++;
        continue;
      }
      if (maps.test(u, best)) {
        blocked = true;
        break;  // u might still take our best color
      }
    }
    if (blocked) {
      if (is_large) not_yet_possible.inc(v);
      return false;
    }
    // Count shortcut-1 colorings: some live dependency is still uncolored.
    for (eidx e = dag_off[v]; e < dag_off[v + 1]; ++e) {
      cost.reads++;
      if (!dep_removed[e] && color[dag_in[e]] == kNoColor) {
        res.shortcut1_colorings++;
        break;
      }
    }
    color[v] = best;
    cost.writes++;
    return true;
  };

  constexpr u32 kWarp = sim::Device::kWarpSize;
  std::vector<vidx> next;
  // Host-driven convergence: each round filters the two worklists down to
  // the vertices still uncolored. Strict JP (shortcuts off) can need as
  // many rounds as the longest monotone-priority path, hence the n+2
  // progress guard; shortcutted runs converge in far fewer.
  res.host_iterations = sim::ops::iterate_until(
      "gc_rounds",
      [&] { return small_list.empty() && large_list.empty(); },
      [&](u64 /*round*/) {
        if (!small_list.empty()) {
          next.clear();
          sim::ops::filter(
              dev, "gc_run_small",
              blocks_for(small_list.size(), opt.threads_per_block),
              small_list, 1, next,
              [&](sim::ThreadCtx& ctx, vidx v, u32 /*lane*/) {
                PassCost cost;
                const bool colored = coloring_pass(v, /*is_large=*/false,
                                                   cost);
                ctx.charge_reads(cost.reads);
                ctx.charge_writes(cost.writes);
                return !colored;
              });
          small_list.swap(next);
        }
        if (!large_list.empty()) {
          // One warp per large vertex: lane 0 executes the pass, every lane
          // carries its 1/32 share of the memory traffic — a hub's scan is
          // spread across the warp, not serialized on one thread.
          next.clear();
          PassCost warp_cost;  // cost of the pass lane 0 just executed
          sim::ops::filter(
              dev, "gc_run_large",
              blocks_for(static_cast<u64>(large_list.size()) * kWarp,
                         opt.threads_per_block),
              large_list, kWarp, next,
              [&](sim::ThreadCtx& ctx, vidx v, u32 lane) {
                bool keep = false;
                if (lane == 0) {
                  warp_cost = PassCost{};
                  keep = !coloring_pass(v, /*is_large=*/true, warp_cost);
                }
                ctx.charge_reads((warp_cost.reads + kWarp - 1) / kWarp);
                ctx.charge_writes((warp_cost.writes + kWarp - 1) / kWarp);
                return keep;
              });
          large_list.swap(next);
        }
      },
      {.round_base = "round",
       .max_rounds = static_cast<u64>(n) + 2,
       .on_exceeded = "ECL-GC failed to make progress"});

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  res.num_colors = count_colors(color);

  // Summaries restricted to the runLarge vertices (Table 5 is per-vertex
  // over the vertices the runLarge kernel handles).
  std::vector<u64> bc, nyp;
  for (vidx v = 0; v < n; ++v) {
    if (g.degree(v) > kLargeDegree) {
      bc.push_back(best_changed.at(v));
      nyp.push_back(not_yet_possible.at(v));
    }
  }
  if (!bc.empty()) {
    res.run_large.best_color_changed =
        stats::summarize(std::span<const u64>(bc));
    res.run_large.not_yet_possible =
        stats::summarize(std::span<const u64>(nyp));
  }
  res.colors = std::move(color);
  return res;
}

std::vector<u32> reference_greedy(const graph::Csr& g) {
  const vidx n = g.num_vertices();
  std::vector<vidx> order(n);
  for (vidx v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](vidx a, vidx b) {
    return higher_priority(g, a, b);
  });
  std::vector<u32> color(n, kNoColor);
  std::vector<u32> used;
  for (const vidx v : order) {
    used.assign(g.degree(v) + 1, 0);
    for (const vidx u : g.neighbors(v)) {
      const u32 cu = color[u];
      if (cu != kNoColor && cu < used.size()) used[cu] = 1;
    }
    u32 c = 0;
    while (used[c]) ++c;
    color[v] = c;
  }
  return color;
}

bool verify(const graph::Csr& g, std::span<const u32> colors) {
  if (colors.size() != g.num_vertices()) return false;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] == kNoColor) return false;
    for (const vidx u : g.neighbors(v)) {
      if (u != v && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

u32 count_colors(std::span<const u32> colors) {
  u32 max_color = 0;
  for (const u32 c : colors) {
    if (c != kNoColor) max_color = std::max(max_color, c + 1);
  }
  return max_color;
}

}  // namespace eclp::algos::gc
