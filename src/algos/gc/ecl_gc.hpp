// ECL-GC: graph coloring via shortcutted Jones-Plassmann (Alabandi, Powers &
// Burtscher, PPoPP'20), ported to the simulated device.
//
// Structure follows the paper's §2.2:
//  * initialization — impose a Largest-Degree-First (LDF) priority order,
//    turning the graph into a DAG whose edges point from higher- to
//    lower-priority vertices; give each vertex a bitmap of its possible
//    colors, sized by its DAG in-degree (a vertex with k higher-priority
//    neighbors never needs a color > k);
//  * coloring — repeat in parallel until every vertex is colored:
//      - prune the bitmap by the colors claimed by colored higher-priority
//        neighbors;
//      - Shortcut 1: color a vertex with its best (lowest) available color
//        as soon as no uncolored higher-priority neighbor still has that
//        color under consideration — strict JP would wait for them all;
//      - Shortcut 2: permanently drop the dependency on a higher-priority
//        neighbor whose possible-color set no longer overlaps ours.
//
// The runLarge kernel handles vertices with degree > 31 (one warp per vertex
// in the original; a separate launch here) and carries the two per-vertex
// counters of the paper's Table 5: "best available color changed" and
// "color assignment not yet possible".
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "profile/counters.hpp"
#include "sim/device.hpp"
#include "support/stats.hpp"

namespace eclp::algos::gc {

inline constexpr u32 kNoColor = static_cast<u32>(-1);
/// Degree threshold above which a vertex is processed by runLarge.
inline constexpr vidx kLargeDegree = 31;

struct Options {
  u32 threads_per_block = 256;
  /// Disable both shortcuts: strict Jones-Plassmann, where a vertex waits
  /// until every higher-priority neighbor is colored. Exists to measure the
  /// parallelism the shortcuts buy (the contribution of the ECL-GC paper
  /// this code ports) — the coloring stays proper either way.
  bool use_shortcuts = true;
};

/// Per-vertex counters of the runLarge kernel (paper Table 5), summarized
/// over the vertices runLarge processed (degree > 31).
struct RunLargeMetrics {
  usize large_vertices = 0;
  stats::Summary best_color_changed;
  stats::Summary not_yet_possible;
};

struct Result {
  std::vector<u32> colors;
  u32 num_colors = 0;
  u64 host_iterations = 0;      ///< coloring rounds until done
  u64 shortcut1_colorings = 0;  ///< colored before all deps resolved
  u64 shortcut2_removals = 0;   ///< dependency edges dropped
  RunLargeMetrics run_large;
  u64 modeled_cycles = 0;
};

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt = {});

/// Sequential greedy coloring in LDF order (quality reference).
std::vector<u32> reference_greedy(const graph::Csr& g);

/// True when `colors` is a proper coloring (adjacent vertices differ, all
/// vertices colored).
bool verify(const graph::Csr& g, std::span<const u32> colors);

/// Number of distinct colors used.
u32 count_colors(std::span<const u32> colors);

}  // namespace eclp::algos::gc
