#include "algos/mst/ecl_mst.hpp"

#include <algorithm>
#include <numeric>

#include "algos/common.hpp"
#include "profile/conflict.hpp"
#include "profile/session.hpp"
#include "support/stats.hpp"

namespace eclp::algos::mst {

namespace {

constexpr u64 kNoBest = ~u64{0};

u64 pack(weight_t w, u32 edge_id) {
  return (static_cast<u64>(w) << 32) | edge_id;
}
u32 packed_edge(u64 p) { return static_cast<u32>(p & 0xffffffffu); }

/// Union-find root with intermediate pointer jumping (as in ECL-CC/MST).
vidx find_root(sim::ThreadCtx& ctx, std::vector<vidx>& parent, vidx v) {
  vidx curr = ctx.load(parent[v]);
  if (curr != v) {
    vidx prev = v;
    vidx next;
    // Parents always point to smaller ids (unite hooks the larger root under
    // the smaller), so this strictly descends and stops at the root.
    while (curr > (next = ctx.load(parent[curr]))) {
      ctx.store(parent[prev], next);
      prev = curr;
      curr = next;
    }
  }
  return curr;
}

/// Lock-free union via CAS hooking toward smaller ids; returns true if the
/// two vertices were in different sets.
bool unite(sim::ThreadCtx& ctx, std::vector<vidx>& parent, vidx a, vidx b) {
  vidx ra = find_root(ctx, parent, a);
  vidx rb = find_root(ctx, parent, b);
  while (ra != rb) {
    if (ra > rb) std::swap(ra, rb);  // hook larger root under smaller
    const vidx ret = ctx.atomic_cas(parent[rb], rb, ra);
    if (ret == rb) return true;
    rb = find_root(ctx, parent, ret);
  }
  return false;
}

}  // namespace

std::vector<UniqueEdge> unique_edges(const graph::Csr& g) {
  if (g.num_edges() == 0) return {};
  ECLP_CHECK_MSG(g.weighted(), "ECL-MST needs edge weights");
  std::vector<UniqueEdge> edges;
  edges.reserve(g.num_edges() / 2);
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights_of(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) edges.push_back({u, nbrs[i], ws[i]});
    }
  }
  return edges;
}

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt) {
  ECLP_CHECK_MSG(!g.directed(), "ECL-MST expects an undirected graph");
  profile::ScopedSpan algo_span("ecl-mst", profile::SpanKind::kAlgorithm);
  const vidx n = g.num_vertices();
  const auto edges = unique_edges(g);
  const u32 num_edges = static_cast<u32>(edges.size());

  Result res;
  res.in_mst.assign(num_edges, 0);
  dev.register_buffer(res.in_mst);
  const u64 cycles_before = dev.total_cycles();

  // --- initialization ---------------------------------------------------------
  std::vector<vidx> parent(n);
  std::vector<u64> best(n, kNoBest);
  dev.register_buffer(parent);
  dev.register_buffer(best);
  // Pure per-vertex map — block-independent, unlike the K1-K3 rounds below,
  // whose atomicMin winners depend on cross-block visibility.
  sim::LaunchConfig init_cfg =
      blocks_for(std::max<u64>(n, 1), opt.threads_per_block);
  init_cfg.block_independent = true;
  profile::ScopedSpan init_span("init");
  dev.launch("mst_init", init_cfg, [&](sim::ThreadCtx& ctx) {
    for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      ctx.store(parent[v], v);
    }
  });

  // Light/heavy split (the filter step for denser graphs, paper §2.4).
  weight_t threshold = ~weight_t{0};
  if (opt.filter_percentile > 0.0 && num_edges > 0) {
    std::vector<double> ws;
    ws.reserve(num_edges);
    for (const auto& e : edges) ws.push_back(static_cast<double>(e.w));
    threshold = static_cast<weight_t>(
        stats::percentile(ws, opt.filter_percentile));
    dev.host_op();  // computing the split threshold
  }
  std::vector<u32> worklist, heavy;
  for (u32 e = 0; e < num_edges; ++e) {
    (edges[e].w <= threshold ? worklist : heavy).push_back(e);
  }
  init_span.end();

  // The original computes the launch geometry once, from the initial
  // worklist, and reuses it every iteration (paper §6.1.4: "the launch
  // configuration ... is not updated correctly").
  const sim::LaunchConfig initial_cfg =
      blocks_for(std::max<usize>(worklist.size(), 1), opt.threads_per_block);

  profile::ConflictTracker conflicts;
  u32 regular_index = 0, filter_index = 0;
  bool filtering = false;

  while (!worklist.empty() || !heavy.empty()) {
    if (worklist.empty()) {
      // Light edges exhausted: filter in the deferred heavy edges.
      worklist.swap(heavy);
      filtering = true;
      dev.host_op();  // swapping in the deferred worklist
    }

    const sim::LaunchConfig cfg =
        opt.corrected_launch
            ? blocks_for(std::max<usize>(worklist.size(), 1),
                         opt.threads_per_block)
            : initial_cfg;
    if (opt.corrected_launch) {
      dev.host_op();  // device-to-host readback of the live worklist size
    }

    IterationMetrics metrics;
    metrics.kind = filtering ? "Filter" : "Regular";
    metrics.index = filtering ? ++filter_index : ++regular_index;
    metrics.launched_threads = cfg.total_threads();
    conflicts.reset();
    profile::ScopedSpan iter_span(profile::SpanKind::kIteration,
                                  filtering ? "filter" : "regular",
                                  metrics.index);

    // --- K1: lightest-edge competition ---------------------------------------
    // Threads of one block race: their non-atomic pre-checks read the state
    // left by *previous* blocks, and their atomics resolve together at the
    // end of the block (the simulator runs threads sequentially, so without
    // this batching every pre-checked atomicMin would succeed and the
    // useless-atomic behaviour of the paper's Figure 2 could never appear).
    struct Intent {
      vidx root;
      u64 packed;
      u32 thread;
    };
    std::vector<Intent> in_flight;
    const auto flush_in_flight = [&](sim::ThreadCtx& ctx) {
      for (const Intent& intent : in_flight) {
        if (opt.record_iteration_metrics) {
          conflicts.record(intent.root, intent.thread);
        }
        metrics.atomic_attempts++;
        if (!ctx.atomic_min(best[intent.root], intent.packed)) {
          metrics.useless_atomics++;
        }
      }
      in_flight.clear();
    };
    dev.launch("mst_k1_lightest", cfg, [&](sim::ThreadCtx& ctx) {
      // Every launched thread — including the surplus ones of the stale
      // launch configuration (paper §6.1.4) — pays its bounds check.
      ctx.charge_alu(2);
      // One block's worth of threads race: their atomics resolve together
      // (count-based, so the batching is schedule-order independent).
      if (in_flight.size() >= cfg.threads_per_block) {
        flush_in_flight(ctx);
      }
      for (u64 i = ctx.global_id(); i < worklist.size();
           i += ctx.grid_size()) {
        const u32 e = worklist[i];
        ctx.charge_coalesced_reads(1);  // worklist slot, streaming
        const vidx ru = find_root(ctx, parent, edges[e].u);
        const vidx rv = find_root(ctx, parent, edges[e].v);
        if (ru == rv) continue;
        metrics.threads_with_work++;
        const u64 packed = pack(edges[e].w, e);
        for (const vidx r : {ru, rv}) {
          // Non-atomic pre-check against the last published state (the
          // behaviour behind Figure 2's trends): attempt the atomic only
          // when the edge currently beats the best.
          ctx.charge_reads(1);
          if (packed < best[r]) {
            in_flight.push_back({r, packed, ctx.global_id()});
          }
        }
      }
      if (ctx.global_id() + 1 == cfg.total_threads()) {
        flush_in_flight(ctx);  // final block publishes too
      }
    });
    // Under a shuffled schedule the final thread may not run last; drain any
    // remaining in-flight atomics so no candidate edge is lost.
    for (const Intent& intent : in_flight) {
      metrics.atomic_attempts++;
      if (intent.packed < best[intent.root]) {
        best[intent.root] = intent.packed;
      } else {
        metrics.useless_atomics++;
      }
    }
    in_flight.clear();

    // --- K2: adopt winners and merge sets (fixed per-vertex geometry) --------
    dev.launch("mst_k2_merge", blocks_for(n, opt.threads_per_block),
               [&](sim::ThreadCtx& ctx) {
                 for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
                   const u64 b = ctx.load(best[v]);
                   if (b == kNoBest) continue;
                   if (ctx.load(parent[v]) == v) {
                     const u32 e = packed_edge(b);
                     ctx.store(res.in_mst[e], u8{1});
                     unite(ctx, parent, edges[e].u, edges[e].v);
                   }
                   ctx.store(best[v], kNoBest);
                 }
               });

    // --- K3: worklist compaction ----------------------------------------------
    std::vector<u32> next;
    next.reserve(worklist.size());
    u64 write_pos = 0;
    dev.launch("mst_k3_compact", cfg, [&](sim::ThreadCtx& ctx) {
      ctx.charge_alu(2);  // bounds check, paid by surplus threads too
      for (u64 i = ctx.global_id(); i < worklist.size();
           i += ctx.grid_size()) {
        const u32 e = worklist[i];
        ctx.charge_coalesced_reads(1);  // worklist slot, streaming
        const vidx ru = find_root(ctx, parent, edges[e].u);
        const vidx rv = find_root(ctx, parent, edges[e].v);
        if (ru != rv) {
          ctx.atomic_add(write_pos, 1);
          next.push_back(e);
        }
      }
    });
    const bool merged_any = next.size() < worklist.size();
    worklist.swap(next);

    if (opt.record_iteration_metrics) {
      metrics.conflicting_threads = conflicts.conflicting_threads();
      res.iterations.push_back(metrics);
    }
    ECLP_CHECK_MSG(merged_any || worklist.empty() || !heavy.empty() ||
                       filtering,
                   "ECL-MST made no progress");
    if (!merged_any && worklist.empty()) break;
  }

  res.modeled_cycles = dev.total_cycles() - cycles_before;
  for (u32 e = 0; e < num_edges; ++e) {
    if (res.in_mst[e]) {
      res.total_weight += edges[e].w;
      res.mst_edges++;
    }
  }
  return res;
}

u64 reference_total_weight(const graph::Csr& g) {
  auto edges = unique_edges(g);
  std::sort(edges.begin(), edges.end(),
            [](const UniqueEdge& a, const UniqueEdge& b) {
              return a.w < b.w;
            });
  DisjointSets dsu(g.num_vertices());
  u64 total = 0;
  for (const auto& e : edges) {
    if (dsu.unite(e.u, e.v)) total += e.w;
  }
  return total;
}

bool verify(const graph::Csr& g, const Result& result) {
  const auto edges = unique_edges(g);
  if (result.in_mst.size() != edges.size()) return false;
  // The flagged edges must form a forest spanning each component.
  DisjointSets dsu(g.num_vertices());
  u64 weight = 0;
  usize count = 0;
  for (usize e = 0; e < edges.size(); ++e) {
    if (!result.in_mst[e]) continue;
    if (!dsu.unite(edges[e].u, edges[e].v)) return false;  // cycle
    weight += edges[e].w;
    ++count;
  }
  if (weight != result.total_weight || count != result.mst_edges) {
    return false;
  }
  // Spanning: same number of components as the graph itself.
  DisjointSets graph_dsu(g.num_vertices());
  for (const auto& e : edges) graph_dsu.unite(e.u, e.v);
  if (dsu.num_sets() != graph_dsu.num_sets()) return false;
  // Minimal: matches Kruskal's total weight.
  return weight == reference_total_weight(g);
}

}  // namespace eclp::algos::mst
