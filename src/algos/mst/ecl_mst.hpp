// ECL-MST: minimum spanning tree/forest (Fallin, Gonzalez, Seo & Burtscher,
// SC'23), ported to the simulated device.
//
// Structure follows the paper's §2.4 — Borůvka-style, edge-centric:
//  * initialization — every vertex is its own set (union-find), the worklist
//    holds all unique edges; for denser graphs, edges heavier than a
//    threshold are deferred ("Filter" handling);
//  * iterative construction — each round,
//      K1: every worklist edge whose endpoints are in different sets
//          competes, via atomicMin, to be the lightest edge of each
//          endpoint's set. A non-atomic pre-check skips the atomic when the
//          edge is already heavier than the current minimum — the cause of
//          the conflict/useless-atomic trends in the paper's Figure 2;
//      K2: each set's winning edge joins the MST and the sets are united
//          (atomicCAS hooking with path compression);
//      K3: the worklist is compacted, dropping intra-set edges; when the
//          light worklist is exhausted but multiple sets remain, the
//          deferred heavy edges are filtered in ("Filter" iterations).
//
// Launch configuration: the original launches K1/K3 with a block count
// computed from the *initial* worklist size — the paper's §6.1.4 finding.
// Options::corrected_launch recomputes the block count from the current
// worklist each round, charging one host operation (the device-to-host size
// readback) per recomputation, reproducing the trade-off of Table 8.
#pragma once

#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "sim/device.hpp"

namespace eclp::algos::mst {

struct Options {
  u32 threads_per_block = 256;
  /// Recompute the launch geometry from the live worklist size each
  /// iteration (paper §6.2.3). Costs one host_op per recomputation.
  bool corrected_launch = false;
  /// Light/heavy split percentile for the filter step (0 disables).
  double filter_percentile = 50.0;
  /// Record per-iteration metrics (Figure 2). Off by default: tracking
  /// conflicts stores one event per atomic.
  bool record_iteration_metrics = false;
};

/// One bar group of the paper's Figure 2.
struct IterationMetrics {
  std::string kind;  ///< "Regular" or "Filter"
  u32 index = 0;     ///< iteration number within its kind
  u64 launched_threads = 0;
  u64 threads_with_work = 0;   ///< edge spans two sets
  u64 conflicting_threads = 0; ///< atomics contended with another thread
  u64 atomic_attempts = 0;
  u64 useless_atomics = 0;     ///< ineffective atomicMin + failed CAS

  double pct_with_work() const {
    return launched_threads
               ? 100.0 * static_cast<double>(threads_with_work) /
                     static_cast<double>(launched_threads)
               : 0.0;
  }
  double pct_conflicting() const {
    return launched_threads
               ? 100.0 * static_cast<double>(conflicting_threads) /
                     static_cast<double>(launched_threads)
               : 0.0;
  }
  double pct_useless_atomics() const {
    return atomic_attempts
               ? 100.0 * static_cast<double>(useless_atomics) /
                     static_cast<double>(atomic_attempts)
               : 0.0;
  }
};

struct Result {
  std::vector<u8> in_mst;  ///< flag per unique edge (see unique_edges())
  u64 total_weight = 0;
  usize mst_edges = 0;
  std::vector<IterationMetrics> iterations;
  u64 modeled_cycles = 0;
};

/// A unique undirected edge (u < v) with its weight and stable id.
struct UniqueEdge {
  vidx u, v;
  weight_t w;
};

/// Extract the unique-edge list (u < v) of a weighted undirected graph in a
/// deterministic order; the Result::in_mst flags index into this.
std::vector<UniqueEdge> unique_edges(const graph::Csr& g);

Result run(sim::Device& dev, const graph::Csr& g, const Options& opt = {});

/// Kruskal reference: total weight of a minimum spanning forest.
u64 reference_total_weight(const graph::Csr& g);

/// Full verification: the flagged edges form a spanning forest of minimum
/// total weight (weight compared against Kruskal).
bool verify(const graph::Csr& g, const Result& result);

}  // namespace eclp::algos::mst
