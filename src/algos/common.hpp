// Shared helpers for the five ECL algorithm ports.
#pragma once

#include <numeric>
#include <vector>

#include "sim/device.hpp"
#include "support/types.hpp"

namespace eclp::algos {

/// CUDA-style launch geometry: enough blocks of `tpb` threads to cover
/// `items` work items (the last block may be partially idle, which the
/// paper's "idle threads" metric tracks, §3.1.3).
inline sim::LaunchConfig blocks_for(u64 items, u32 tpb) {
  sim::LaunchConfig cfg;
  cfg.threads_per_block = tpb;
  cfg.blocks = static_cast<u32>(std::max<u64>(1, (items + tpb - 1) / tpb));
  return cfg;
}

/// Sequential disjoint-set union for the reference implementations
/// (path halving + union by size).
class DisjointSets {
 public:
  explicit DisjointSets(usize n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), vidx{0});
  }

  vidx find(vidx x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the two elements were in different sets (now merged).
  bool unite(vidx a, vidx b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  usize num_sets() const {
    usize count = 0;
    for (vidx v = 0; v < parent_.size(); ++v) {
      if (parent_[v] == v) ++count;
    }
    return count;
  }

 private:
  std::vector<vidx> parent_;
  std::vector<u32> size_;
};

/// Normalize a component labeling so each component is named by its smallest
/// member — makes labelings from different algorithms comparable.
std::vector<vidx> normalize_labels(std::span<const vidx> labels);

}  // namespace eclp::algos
