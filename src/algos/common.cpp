#include "algos/common.hpp"

#include "support/check.hpp"

namespace eclp::algos {

std::vector<vidx> normalize_labels(std::span<const vidx> labels) {
  const usize n = labels.size();
  // smallest[l] = smallest vertex carrying label l.
  std::vector<vidx> smallest(n, kNoVertex);
  for (usize v = 0; v < n; ++v) {
    const vidx l = labels[v];
    ECLP_CHECK(l < n);
    if (smallest[l] == kNoVertex || v < smallest[l]) {
      smallest[l] = static_cast<vidx>(v);
    }
  }
  std::vector<vidx> out(n);
  for (usize v = 0; v < n; ++v) out[v] = smallest[labels[v]];
  return out;
}

}  // namespace eclp::algos
