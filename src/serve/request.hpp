// Serving request/response schema.
//
// A request is everything that determines one analytics run: the
// algorithm, the graph (a Table-1 suite input at a scale, or a graph
// file), the device seed, and the per-algorithm knobs the one-shot CLI
// exposes. Requests arrive as JSONL (one JSON object per line; blank
// lines and '#' comments skipped) so request files are diffable, seekable,
// and trivially generated — see docs/SERVING.md for the full schema.
//
// Responses come in two renderings:
//  * deterministic (the default): only modeled quantities — result
//    summary, modeled cycles, a content checksum of the solution vector.
//    Byte-identical across serving thread counts and across serve-vs-CLI,
//    which is what the serve goldens pin.
//  * timing: adds wall-clock latency and the pool hit/miss outcome, which
//    depend on scheduling and are therefore kept out of golden output.
#pragma once

#include <string>
#include <vector>

#include "gen/suite.hpp"
#include "support/json.hpp"
#include "support/types.hpp"

namespace eclp::serve {

enum class Algo : u8 { kCc, kGc, kMis, kMst, kScc };
const char* algo_name(Algo a);
/// Parse "cc" | "gc" | "mis" | "mst" | "scc"; throws CheckFailure.
Algo parse_algo(const std::string& s);

struct Request {
  std::string id;          ///< defaults to "r<line index>" when absent
  Algo algo = Algo::kCc;
  std::string input;       ///< suite input name (exclusive with `file`)
  std::string file;        ///< graph file path (.eclg/.mtx/.gr/.col/.el)
  gen::Scale scale = gen::Scale::kTiny;  ///< with `input`
  u64 seed = 0;            ///< device seed (shuffled schedule if nonzero)
  u64 weights_seed = 42;   ///< MST random-weight seed for unweighted graphs
  bool directed = false;   ///< for edge-list files without inherent direction
  bool verify = false;     ///< check against the sequential reference
  /// Vertex reordering spec ("" = natural): natural, random[:SEED], bfs,
  /// degree, hub, hubcluster, gorder[:WINDOW]. Part of the graph pool key —
  /// reordered graphs never alias natural-order entries.
  std::string reorder;
  /// Modeled-LLC spec ("" = off): off, on, or LINE:WAYS:SETS. Changes
  /// modeled results when enabled, so it is part of the pool key too.
  std::string llc;

  /// Parse one JSONL object. `index` names anonymous requests.
  static Request from_json(const json::Value& v, usize index);
  json::Value to_json() const;

  /// "rmat16.sym" / the file path — the label responses echo back.
  const std::string& graph_label() const { return input.empty() ? file : input; }
};

/// Parse a JSONL request file body. Blank lines and lines starting with
/// '#' are skipped; anything else must be a JSON object.
std::vector<Request> parse_requests_jsonl(const std::string& text);

enum class Status : u8 { kOk, kRejected, kError };
const char* status_name(Status s);

struct Response {
  std::string id;
  Algo algo = Algo::kCc;
  std::string graph;       ///< the request's graph label
  Status status = Status::kOk;
  std::string error;       ///< reject/error detail (empty when ok)
  std::string summary;     ///< deterministic one-line result (CLI-shaped)
  u64 modeled_cycles = 0;
  u64 llc_hits = 0;        ///< modeled-LLC split; zero when the cache is off
  u64 llc_misses = 0;
  std::string checksum;    ///< 32-hex fingerprint of the solution vector
  bool pool_hit = false;   ///< graph served from the in-process pool
  double wall_ms = 0.0;    ///< request latency (admission to completion)

  /// `timing` adds the scheduling-dependent fields (wall_ms, pool hit);
  /// without it the rendering is byte-stable across thread counts.
  json::Value to_json(bool timing) const;
};

/// Render responses as JSONL, one compact object per line, in the order
/// given (the server already returns request order).
std::string responses_to_jsonl(const std::vector<Response>& responses,
                               bool timing);

}  // namespace eclp::serve
