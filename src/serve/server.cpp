#include "serve/server.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/cache.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "sim/cache.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"
#include "support/timer.hpp"

namespace eclp::serve {

namespace {

/// 32-hex content fingerprint of a solution vector (same 128-bit mix the
/// graph cache keys use) — the cheap stand-in for shipping whole label
/// arrays through response files.
template <typename T>
std::string checksum_of(const std::vector<T>& v) {
  graph::CacheKey key;
  key.mix(std::string_view(reinterpret_cast<const char*>(v.data()),
                           v.size() * sizeof(T)));
  return key.hex();
}

std::string summary_line(const char* fmt, auto... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

/// Request ids become artifact file names; keep them path-safe.
std::string sanitize_for_filename(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_' && c != '.') {
      c = '_';
    }
  }
  return out.empty() ? std::string("request") : out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      exec_pool_(options.threads),
      graphs_(options.graph_pool_bytes) {
  if (!options_.profile_dir.empty()) {
    std::filesystem::create_directories(options_.profile_dir);
  }
  if (!options_.manual_start) start();
}

Server::~Server() {
  start();  // a never-started manual server still drains its queue
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  dispatcher_.join();
}

void Server::start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (started_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

std::future<Response> Server::submit(Request req) {
  std::unique_lock<std::mutex> lk(mutex_);
  stats_.submitted++;
  if (pending_.size() >= options_.max_queue) {
    stats_.rejected++;
    Response r;
    r.id = req.id;
    r.algo = req.algo;
    r.graph = req.graph_label();
    r.status = Status::kRejected;
    r.error = "queue full (" + std::to_string(pending_.size()) +
              " pending, bound " + std::to_string(options_.max_queue) + ")";
    std::promise<Response> p;
    p.set_value(std::move(r));
    return p.get_future();
  }
  stats_.accepted++;
  Job job;
  job.request = std::move(req);
  job.submit_ns = monotonic_ns();
  std::future<Response> f = job.promise.get_future();
  pending_.push_back(std::move(job));
  lk.unlock();
  pending_cv_.notify_one();
  return f;
}

std::future<Response> Server::enqueue(Request req) {
  std::unique_lock<std::mutex> lk(mutex_);
  space_cv_.wait(lk, [&] { return pending_.size() < options_.max_queue; });
  stats_.submitted++;
  stats_.accepted++;
  Job job;
  job.request = std::move(req);
  job.submit_ns = monotonic_ns();
  std::future<Response> f = job.promise.get_future();
  pending_.push_back(std::move(job));
  lk.unlock();
  pending_cv_.notify_one();
  return f;
}

std::vector<Response> Server::serve(std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& req : requests) futures.push_back(enqueue(std::move(req)));
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (std::future<Response>& f : futures) responses.push_back(f.get());
  return responses;
}

void Server::dispatcher_main() {
  for (;;) {
    std::vector<Job> wave;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      pending_cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // only reachable when stopping
      wave.reserve(pending_.size());
      while (!pending_.empty()) {
        wave.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
    }
    space_cv_.notify_all();
    // One task per request on the shared work-stealing pool; the
    // dispatcher participates as worker 0, so `threads` is the
    // concurrency bound. execute() never throws (errors become
    // Status::kError responses), so no task can poison the wave.
    exec_pool_.run(wave.size(), [&](u64 i, u32) {
      wave[i].promise.set_value(
          execute(wave[i].request, wave[i].submit_ns));
    });
  }
}

std::string Server::graph_key(const Request& req) {
  const bool want_directed = req.algo == Algo::kScc;
  graph::CacheKey key;
  key.mix("eclp-serve-graph-v1");
  if (!req.input.empty()) {
    key.mix("input").mix(req.input).mix_u64(static_cast<u64>(req.scale));
  } else {
    // Keyed by path (not bytes): the pool lives inside one process and
    // maps a *request spec* to a resident graph. The on-disk cache below
    // it stays content-addressed by file bytes.
    key.mix("file").mix(req.file).mix_u64(req.directed ? 1 : 0);
  }
  key.mix_u64(want_directed ? 1 : 0);
  key.mix_u64(req.algo == Algo::kMst ? req.weights_seed : 0);
  // A reordered graph must never alias a natural-order pool entry; canonical
  // form so "random" and "random:1" share one entry. The LLC spec does not
  // change the graph bytes, but it changes every modeled result computed on
  // the pooled graph — keying it keeps "same key => same response" true.
  key.mix(graph::ReorderSpec::parse(req.reorder).canonical());
  key.mix(sim::cache_config_label(sim::parse_cache_config(req.llc)));
  return key.hex();
}

graph::Csr Server::build_graph(const Request& req) const {
  const bool want_directed = req.algo == Algo::kScc;
  graph::Csr g;
  if (!req.input.empty()) {
    g = gen::find_input(req.input).make(req.scale);
  } else {
    g = graph::load_any(req.file, want_directed || req.directed);
  }
  // Plain CheckFailure (no source location): this message reaches response
  // files pinned by goldens, so it must not shift with code edits.
  if (want_directed && !g.directed()) {
    throw CheckFailure("request " + req.id +
                       ": scc needs a directed graph, " + req.graph_label() +
                       " is undirected");
  }
  if (!want_directed && g.directed()) g = graph::symmetrize(g);
  // Weights before reordering: with_random_weights hashes endpoint ids, so
  // the weights are permuted with the graph and every reorder of one input
  // solves an isomorphic weighted problem.
  if (req.algo == Algo::kMst && !g.weighted()) {
    g = graph::with_random_weights(g, req.weights_seed);
  }
  g = graph::apply_reorder(g, graph::ReorderSpec::parse(req.reorder));
  return g;
}

Response Server::execute(const Request& req, u64 submit_ns) {
  Response r;
  r.id = req.id;
  r.algo = req.algo;
  r.graph = req.graph_label();
  try {
    graph::Pool::Pin pin =
        graphs_.acquire(graph_key(req), [&] { return build_graph(req); });
    r.pool_hit = pin.was_hit();
    const graph::Csr& g = *pin;

    sim::CostModel cost;
    cost.cache = sim::parse_cache_config(req.llc);
    sim::Device dev(cost, req.seed,
                    req.seed == 0 ? sim::ScheduleMode::kDeterministic
                                  : sim::ScheduleMode::kShuffled);
    std::unique_ptr<profile::Session> session;
    if (!options_.profile_dir.empty()) {
      session = std::make_unique<profile::Session>(dev);
      session->set_meta("tool", "eclp-serve");
      session->set_meta("request", req.id);
      session->set_meta("algo", algo_name(req.algo));
      session->set_meta("graph", req.graph_label());
      session->set_meta("seed", std::to_string(req.seed));
      if (!req.reorder.empty()) session->set_meta("reorder", req.reorder);
      if (cost.cache.enabled) {
        session->set_meta("llc", sim::cache_config_label(cost.cache));
      }
      session->set_output(options_.profile_dir + "/" +
                          sanitize_for_filename(req.id) + ".json");
    }

    bool verified = true;
    switch (req.algo) {
      case Algo::kCc: {
        const auto res = algos::cc::run(dev, g);
        usize components = 0;
        for (vidx v = 0; v < g.num_vertices(); ++v) {
          components += (res.labels[v] == v);
        }
        r.summary = summary_line("CC: %zu components", components);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.labels);
        if (req.verify) verified = algos::cc::verify(g, res.labels);
        break;
      }
      case Algo::kGc: {
        const auto res = algos::gc::run(dev, g);
        r.summary = summary_line(
            "GC: %u colors in %llu rounds", res.num_colors,
            static_cast<unsigned long long>(res.host_iterations));
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.colors);
        if (req.verify) verified = algos::gc::verify(g, res.colors);
        break;
      }
      case Algo::kMis: {
        const auto res = algos::mis::run(dev, g);
        r.summary = summary_line("MIS: |S| = %zu", res.set_size);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.status);
        if (req.verify) verified = algos::mis::verify(g, res.status);
        break;
      }
      case Algo::kMst: {
        const auto res = algos::mst::run(dev, g);
        r.summary = summary_line(
            "MST: weight %llu over %zu edges",
            static_cast<unsigned long long>(res.total_weight), res.mst_edges);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.in_mst);
        if (req.verify) verified = algos::mst::verify(g, res);
        break;
      }
      case Algo::kScc: {
        const auto res = algos::scc::run(dev, g);
        r.summary = summary_line("SCC: %zu components in m = %u rounds",
                                 res.num_sccs, res.outer_iterations);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.scc_id);
        if (req.verify) verified = algos::scc::verify(g, res.scc_id);
        break;
      }
    }
    r.llc_hits = dev.llc_hits();
    r.llc_misses = dev.llc_misses();
    session.reset();  // write the per-request artifacts before responding
    ECLP_CHECK_MSG(verified, "request " << req.id
                                        << ": verification FAILED");
    r.status = Status::kOk;
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.error = e.what();
  }
  r.wall_ms = static_cast<double>(monotonic_ns() - submit_ns) / 1e6;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (r.status == Status::kOk) {
      stats_.completed++;
    } else {
      stats_.failed++;
    }
  }
  return r;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    s = stats_;
  }
  s.graphs = graphs_.stats();
  return s;
}

}  // namespace eclp::serve
