#include "serve/server.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/cache.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "sim/cache.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"
#include "support/timer.hpp"

namespace eclp::serve {

namespace {

/// 32-hex content fingerprint of a solution vector (same 128-bit mix the
/// graph cache keys use) — the cheap stand-in for shipping whole label
/// arrays through response files.
template <typename T>
std::string checksum_of(const std::vector<T>& v) {
  graph::CacheKey key;
  key.mix(std::string_view(reinterpret_cast<const char*>(v.data()),
                           v.size() * sizeof(T)));
  return key.hex();
}

std::string summary_line(const char* fmt, auto... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  return buf;
}

/// Request ids become artifact file names; keep them path-safe.
std::string sanitize_for_filename(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '_' && c != '.') {
      c = '_';
    }
  }
  return out.empty() ? std::string("request") : out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      clock_(options_.clock_ns ? options_.clock_ns
                               : ClockFn([] { return monotonic_ns(); })),
      exec_pool_(options_.threads),
      graphs_(options_.graph_pool_bytes) {
  if (!options_.profile_dir.empty()) {
    std::filesystem::create_directories(options_.profile_dir);
  }
  if (options_.slow_ms >= 0.0) {
    if (options_.slow_dir.empty()) options_.slow_dir = options_.profile_dir;
    ECLP_CHECK_MSG(!options_.slow_dir.empty(),
                   "slow_ms needs slow_dir (or profile_dir) for artifacts");
    std::filesystem::create_directories(options_.slow_dir);
  }
  if (options_.metrics != nullptr) {
    metrics::Registry& m = *options_.metrics;
    inst_.submitted = &m.counter("serve.submitted");
    inst_.accepted = &m.counter("serve.accepted");
    inst_.rejected = &m.counter("serve.rejected");
    inst_.completed = &m.counter("serve.completed");
    inst_.failed = &m.counter("serve.failed");
    inst_.waves = &m.counter("serve.waves");
    inst_.slow = &m.counter("serve.slow");
    inst_.queue_depth = &m.gauge("serve.queue.depth");
    inst_.queue_peak = &m.gauge("serve.queue.peak");
    inst_.inflight = &m.gauge("serve.inflight");
    inst_.wave_us = &m.histogram("serve.wave_us");
    for (const Algo a :
         {Algo::kCc, Algo::kGc, Algo::kMis, Algo::kMst, Algo::kScc}) {
      inst_.latency_us[static_cast<usize>(a)] =
          &m.histogram(std::string("serve.latency_us.") + algo_name(a));
    }
    graphs_.bind_metrics(m);
  }
  if (!options_.manual_start) start();
}

Server::~Server() {
  start();  // a never-started manual server still drains its queue
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  dispatcher_.join();
}

void Server::start() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (started_) return;
  started_ = true;
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

std::future<Response> Server::submit(Request req) {
  std::unique_lock<std::mutex> lk(mutex_);
  stats_.submitted++;
  if (inst_.submitted != nullptr) inst_.submitted->inc();
  if (pending_.size() >= options_.max_queue) {
    stats_.rejected++;
    if (inst_.rejected != nullptr) inst_.rejected->inc();
    Response r;
    r.id = req.id;
    r.algo = req.algo;
    r.graph = req.graph_label();
    r.status = Status::kRejected;
    r.error = "queue full (" + std::to_string(pending_.size()) +
              " pending, bound " + std::to_string(options_.max_queue) + ")";
    if (options_.trace != nullptr) {
      const u64 trace = options_.trace->open(req.id);
      json::Value fields = json::Value::object();
      fields.set("cause", r.error);
      options_.trace->emit(trace, "rejected", std::move(fields));
      options_.trace->close(trace);
    }
    std::promise<Response> p;
    p.set_value(std::move(r));
    return p.get_future();
  }
  stats_.accepted++;
  if (inst_.accepted != nullptr) inst_.accepted->inc();
  Job job;
  job.request = std::move(req);
  job.submit_ns = now_ns();
  admit_locked(job);
  std::future<Response> f = job.promise.get_future();
  pending_.push_back(std::move(job));
  lk.unlock();
  pending_cv_.notify_one();
  return f;
}

std::future<Response> Server::enqueue(Request req) {
  std::unique_lock<std::mutex> lk(mutex_);
  space_cv_.wait(lk, [&] { return pending_.size() < options_.max_queue; });
  stats_.submitted++;
  stats_.accepted++;
  if (inst_.submitted != nullptr) inst_.submitted->inc();
  if (inst_.accepted != nullptr) inst_.accepted->inc();
  Job job;
  job.request = std::move(req);
  job.submit_ns = now_ns();
  admit_locked(job);
  std::future<Response> f = job.promise.get_future();
  pending_.push_back(std::move(job));
  lk.unlock();
  pending_cv_.notify_one();
  return f;
}

/// Shared admission bookkeeping (caller holds mutex_, job not yet queued):
/// queue depth/high-water accounting and the "admitted" trace event.
void Server::admit_locked(Job& job) {
  stats_.queue_depth = pending_.size() + 1;
  if (stats_.queue_depth > stats_.queue_peak) {
    stats_.queue_peak = stats_.queue_depth;
  }
  if (inst_.queue_depth != nullptr) {
    inst_.queue_depth->set(static_cast<i64>(stats_.queue_depth));
  }
  if (inst_.queue_peak != nullptr) {
    inst_.queue_peak->set(static_cast<i64>(stats_.queue_peak));
  }
  if (options_.trace != nullptr) {
    job.traced = true;
    job.trace = options_.trace->open(job.request.id);
    json::Value fields = json::Value::object();
    fields.set("algo", algo_name(job.request.algo));
    fields.set("graph", job.request.graph_label());
    options_.trace->emit(job.trace, "admitted", std::move(fields));
  }
}

std::vector<Response> Server::serve(std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& req : requests) futures.push_back(enqueue(std::move(req)));
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (std::future<Response>& f : futures) responses.push_back(f.get());
  return responses;
}

void Server::dispatcher_main() {
  for (;;) {
    std::vector<Job> wave;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      pending_cv_.wait(lk, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // only reachable when stopping
      wave.reserve(pending_.size());
      while (!pending_.empty()) {
        wave.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      stats_.queue_depth = 0;
      if (inst_.queue_depth != nullptr) inst_.queue_depth->set(0);
    }
    space_cv_.notify_all();
    // One task per request on the shared work-stealing pool; the
    // dispatcher participates as worker 0, so `threads` is the
    // concurrency bound. execute() never throws (errors become
    // Status::kError responses), so no task can poison the wave.
    const u64 wave_start = now_ns();
    exec_pool_.run(wave.size(), [&](u64 i, u32) {
      wave[i].promise.set_value(execute(wave[i]));
    });
    if (inst_.waves != nullptr) inst_.waves->inc();
    if (inst_.wave_us != nullptr) {
      inst_.wave_us->observe((now_ns() - wave_start) / 1000);
    }
  }
}

std::string Server::graph_key(const Request& req) {
  const bool want_directed = req.algo == Algo::kScc;
  graph::CacheKey key;
  key.mix("eclp-serve-graph-v1");
  if (!req.input.empty()) {
    key.mix("input").mix(req.input).mix_u64(static_cast<u64>(req.scale));
  } else {
    // Keyed by path (not bytes): the pool lives inside one process and
    // maps a *request spec* to a resident graph. The on-disk cache below
    // it stays content-addressed by file bytes.
    key.mix("file").mix(req.file).mix_u64(req.directed ? 1 : 0);
  }
  key.mix_u64(want_directed ? 1 : 0);
  key.mix_u64(req.algo == Algo::kMst ? req.weights_seed : 0);
  // A reordered graph must never alias a natural-order pool entry; canonical
  // form so "random" and "random:1" share one entry. The LLC spec does not
  // change the graph bytes, but it changes every modeled result computed on
  // the pooled graph — keying it keeps "same key => same response" true.
  key.mix(graph::ReorderSpec::parse(req.reorder).canonical());
  key.mix(sim::cache_config_label(sim::parse_cache_config(req.llc)));
  return key.hex();
}

graph::Csr Server::build_graph(const Request& req) const {
  const bool want_directed = req.algo == Algo::kScc;
  graph::Csr g;
  if (!req.input.empty()) {
    g = gen::find_input(req.input).make(req.scale);
  } else {
    g = graph::load_any(req.file, want_directed || req.directed);
  }
  // Plain CheckFailure (no source location): this message reaches response
  // files pinned by goldens, so it must not shift with code edits.
  if (want_directed && !g.directed()) {
    throw CheckFailure("request " + req.id +
                       ": scc needs a directed graph, " + req.graph_label() +
                       " is undirected");
  }
  if (!want_directed && g.directed()) g = graph::symmetrize(g);
  // Weights before reordering: with_random_weights hashes endpoint ids, so
  // the weights are permuted with the graph and every reorder of one input
  // solves an isomorphic weighted problem.
  if (req.algo == Algo::kMst && !g.weighted()) {
    g = graph::with_random_weights(g, req.weights_seed);
  }
  g = graph::apply_reorder(g, graph::ReorderSpec::parse(req.reorder));
  return g;
}

Response Server::execute(const Job& job) {
  const Request& req = job.request;
  Response r;
  r.id = req.id;
  r.algo = req.algo;
  r.graph = req.graph_label();
  if (inst_.inflight != nullptr) inst_.inflight->add(1);
  if (job.traced) options_.trace->emit(job.trace, "started");
  try {
    graph::Pool::Pin pin =
        graphs_.acquire(graph_key(req), [&] { return build_graph(req); });
    r.pool_hit = pin.was_hit();
    if (job.traced) {
      json::Value fields = json::Value::object();
      fields.set("outcome", pin.was_hit() ? "hit" : "miss");
      options_.trace->emit(job.trace, "pool", std::move(fields));
    }
    const graph::Csr& g = *pin;

    sim::CostModel cost;
    cost.cache = sim::parse_cache_config(req.llc);
    sim::Device dev(cost, req.seed,
                    req.seed == 0 ? sim::ScheduleMode::kDeterministic
                                  : sim::ScheduleMode::kShuffled);
    // A session records when explicitly profiling (profile_dir) — with its
    // output path set up front — or speculatively when the slow-request
    // hook is armed (slow_ms >= 0), where the output path is attached only
    // if this request turns out slow (otherwise the session is dropped
    // without writing anything).
    std::unique_ptr<profile::Session> session;
    const bool profiled = !options_.profile_dir.empty();
    if (profiled || options_.slow_ms >= 0.0) {
      session = std::make_unique<profile::Session>(dev);
      session->set_meta("tool", "eclp-serve");
      session->set_meta("request", req.id);
      session->set_meta("algo", algo_name(req.algo));
      session->set_meta("graph", req.graph_label());
      session->set_meta("seed", std::to_string(req.seed));
      if (!req.reorder.empty()) session->set_meta("reorder", req.reorder);
      if (cost.cache.enabled) {
        session->set_meta("llc", sim::cache_config_label(cost.cache));
      }
      if (job.traced) {
        session->set_meta("trace", TraceLog::id_string(job.trace));
      }
      if (profiled) {
        session->set_output(options_.profile_dir + "/" +
                            sanitize_for_filename(req.id) + ".json");
      }
    }

    bool verified = true;
    switch (req.algo) {
      case Algo::kCc: {
        const auto res = algos::cc::run(dev, g);
        usize components = 0;
        for (vidx v = 0; v < g.num_vertices(); ++v) {
          components += (res.labels[v] == v);
        }
        r.summary = summary_line("CC: %zu components", components);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.labels);
        if (req.verify) verified = algos::cc::verify(g, res.labels);
        break;
      }
      case Algo::kGc: {
        const auto res = algos::gc::run(dev, g);
        r.summary = summary_line(
            "GC: %u colors in %llu rounds", res.num_colors,
            static_cast<unsigned long long>(res.host_iterations));
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.colors);
        if (req.verify) verified = algos::gc::verify(g, res.colors);
        break;
      }
      case Algo::kMis: {
        const auto res = algos::mis::run(dev, g);
        r.summary = summary_line("MIS: |S| = %zu", res.set_size);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.status);
        if (req.verify) verified = algos::mis::verify(g, res.status);
        break;
      }
      case Algo::kMst: {
        const auto res = algos::mst::run(dev, g);
        r.summary = summary_line(
            "MST: weight %llu over %zu edges",
            static_cast<unsigned long long>(res.total_weight), res.mst_edges);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.in_mst);
        if (req.verify) verified = algos::mst::verify(g, res);
        break;
      }
      case Algo::kScc: {
        const auto res = algos::scc::run(dev, g);
        r.summary = summary_line("SCC: %zu components in m = %u rounds",
                                 res.num_sccs, res.outer_iterations);
        r.modeled_cycles = res.modeled_cycles;
        r.checksum = checksum_of(res.scc_id);
        if (req.verify) verified = algos::scc::verify(g, res.scc_id);
        break;
      }
    }
    r.llc_hits = dev.llc_hits();
    r.llc_misses = dev.llc_misses();
    // The slow-request hook decides *before* the session is torn down:
    // exceeding the threshold attaches the artifact path, so the span
    // tree is written for exactly the slow requests.
    if (options_.slow_ms >= 0.0 &&
        static_cast<double>(now_ns() - job.submit_ns) / 1e6 >
            options_.slow_ms) {
      if (inst_.slow != nullptr) inst_.slow->inc();
      if (session != nullptr && !profiled) {
        session->set_output(options_.slow_dir + "/" +
                            sanitize_for_filename(req.id) + ".json");
      }
    }
    session.reset();  // write the per-request artifacts before responding
    ECLP_CHECK_MSG(verified, "request " << req.id
                                        << ": verification FAILED");
    r.status = Status::kOk;
  } catch (const std::exception& e) {
    r.status = Status::kError;
    r.error = e.what();
  }
  r.wall_ms = static_cast<double>(now_ns() - job.submit_ns) / 1e6;
  if (inst_.latency_us[static_cast<usize>(req.algo)] != nullptr) {
    inst_.latency_us[static_cast<usize>(req.algo)]->observe(
        static_cast<u64>(r.wall_ms * 1e3));
  }
  if (inst_.inflight != nullptr) inst_.inflight->sub(1);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (r.status == Status::kOk) {
      stats_.completed++;
      if (inst_.completed != nullptr) inst_.completed->inc();
    } else {
      stats_.failed++;
      if (inst_.failed != nullptr) inst_.failed->inc();
    }
  }
  if (job.traced) {
    json::Value fields = json::Value::object();
    fields.set("status", status_name(r.status));
    fields.set("wall_us", static_cast<u64>(r.wall_ms * 1e3));
    if (!r.error.empty()) fields.set("cause", r.error);
    options_.trace->emit(job.trace, "finished", std::move(fields));
    options_.trace->close(job.trace);
  }
  return r;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    s = stats_;
  }
  s.graphs = graphs_.stats();
  return s;
}

json::Value stats_to_json(const ServerStats& s) {
  json::Value v = json::Value::object();
  v.set("submitted", s.submitted);
  v.set("accepted", s.accepted);
  v.set("rejected", s.rejected);
  v.set("completed", s.completed);
  v.set("failed", s.failed);
  v.set("queue_depth", s.queue_depth);
  v.set("queue_peak", s.queue_peak);
  json::Value g = json::Value::object();
  g.set("requests", s.graphs.requests);
  g.set("hits", s.graphs.hits);
  g.set("misses", s.graphs.misses);
  g.set("evictions", s.graphs.evictions);
  g.set("bytes", s.graphs.bytes);
  g.set("peak_bytes", s.graphs.peak_bytes);
  g.set("entries", s.graphs.entries);
  g.set("pins", s.graphs.pins);
  v.set("graph_pool", std::move(g));
  return v;
}

}  // namespace eclp::serve
