// Concurrent serving of analytics requests over shared graphs.
//
// The one-shot CLI (tools/eclp_run.cpp) pays graph acquisition and process
// startup per run; the Server executes many requests inside one process:
//
//   submit/serve            bounded pending queue (admission control)
//     └─ dispatcher thread  swaps the queue into a wave
//         └─ Pool::run      work-stealing execution, one task per request
//             └─ execute()  per-request Device + optional profile::Session
//                           over a graph::Pool::Pin on the shared CSR
//
// Isolation model: every request gets its own sim::Device (own PRNG
// stream, cycle counter, atomic tallies) and, when profiling, its own
// Session — the only state shared between in-flight requests is the
// immutable pooled CSR and the mutex-guarded pool/cache bookkeeping.
// Modeled results are therefore bit-identical to the same run issued
// through the one-shot CLI, independent of serving thread count or of
// which requests happen to run concurrently (pinned by the serve goldens
// and tests/serve_test.cpp).
//
// Admission control: the pending queue is bounded by max_queue. submit()
// rejects above the bound with a typed Status::kRejected response;
// enqueue()/serve() apply backpressure instead (block until space). The
// in-flight wave is bounded by the same constant, so a flooded server
// degrades by rejecting, not by queue growth.
#pragma once

#include <array>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/pool.hpp"
#include "serve/request.hpp"
#include "serve/telemetry.hpp"
#include "support/metrics.hpp"
#include "support/pool.hpp"

namespace eclp::serve {

struct ServerOptions {
  /// Worker slots of the shared execution pool (0 = one per hardware
  /// thread). The dispatcher participates as worker 0 while a wave runs,
  /// so this is the concurrency bound on in-flight requests.
  u32 threads = 0;
  /// Pending-queue bound: submit() rejects once this many requests wait.
  usize max_queue = 256;
  /// Byte budget of the in-process graph pool (LRU above it).
  u64 graph_pool_bytes = u64{512} << 20;
  /// When non-empty, every request records a profile::Session written to
  /// <profile_dir>/<id>.json (+ the Perfetto twin). See docs/SERVING.md.
  std::string profile_dir;
  /// Do not start the dispatcher in the constructor; callers fill the
  /// queue first and call start(). Deterministic admission for tests.
  bool manual_start = false;
  /// When set, the server registers its instruments here (and binds the
  /// graph pool's): counters serve.{submitted,accepted,rejected,completed,
  /// failed,waves,slow} and pool.{hits,misses,evictions}, gauges
  /// serve.queue.{depth,peak} / serve.inflight / pool.{bytes,entries},
  /// histograms serve.wave_us and serve.latency_us.<algo>. Must outlive
  /// the server. Wave metrics are recorded by the dispatcher *after* the
  /// wave's responses resolve — take a final snapshot only after the
  /// server is destroyed (its destructor joins the dispatcher).
  /// See docs/OBSERVABILITY.md, "Runtime telemetry".
  metrics::Registry* metrics = nullptr;
  /// When set, every request's lifecycle is traced (admitted/rejected/
  /// started/pool/finished events). Must outlive the server.
  TraceLog* trace = nullptr;
  /// Slow-request auto-profiling threshold, in milliseconds: requests
  /// whose wall latency exceeds it get their profile::Session span tree
  /// written to `slow_dir` — and *only* those. Negative = off. With a
  /// zero threshold every request is slow (the test hook).
  double slow_ms = -1.0;
  /// Artifact directory for slow requests (defaults to profile_dir;
  /// required via one of the two when slow_ms >= 0).
  std::string slow_dir;
  /// Injectable nanosecond clock for latency measurement (admission
  /// stamps, wall_ms, latency histograms, wave timing). Null = monotonic.
  ClockFn clock_ns;
};

struct ServerStats {
  u64 submitted = 0;    ///< submit/enqueue calls
  u64 accepted = 0;     ///< admitted to the queue
  u64 rejected = 0;     ///< bounced by admission control
  u64 completed = 0;    ///< executed with Status::kOk
  u64 failed = 0;       ///< executed with Status::kError
  u64 queue_depth = 0;  ///< pending requests right now
  u64 queue_peak = 0;   ///< high-water mark of `queue_depth`
  graph::PoolStats graphs;  ///< in-process graph pool counters
};

/// Render stats as the eclp-serve --stats-json document (fields
/// submitted/accepted/rejected/completed/failed/queue_depth/queue_peak +
/// a "graph_pool" object mirroring PoolStats). Tests parse this back and
/// assert hits + misses == requests.
json::Value stats_to_json(const ServerStats& s);

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains the queue (every accepted request completes), then joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Non-blocking admission: the future is always valid; when the queue
  /// is full it is already fulfilled with a Status::kRejected response.
  std::future<Response> submit(Request req);
  /// Blocking admission: waits for queue space instead of rejecting.
  std::future<Response> enqueue(Request req);
  /// Serve a whole batch with backpressure; responses in request order.
  std::vector<Response> serve(std::vector<Request> requests);

  /// Start the dispatcher (only needed with ServerOptions::manual_start).
  void start();

  ServerStats stats() const;
  const graph::Pool& graph_pool() const { return graphs_; }
  u32 threads() const { return exec_pool_.size(); }

  /// The pool key of a request's algorithm-ready graph: source (suite
  /// name + scale, or file path), directedness as the algorithm wants it,
  /// and the MST weight attachment. Exposed for tests.
  static std::string graph_key(const Request& req);

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    u64 submit_ns = 0;
    u64 trace = 0;        ///< TraceLog id (valid only when traced)
    bool traced = false;  ///< a trace was opened at admission
  };

  /// Live instruments, pre-registered in the constructor so every metric
  /// name exists (at zero) before the first request — snapshots then do
  /// not depend on which algorithms a workload happened to run. All null
  /// when ServerOptions::metrics is null.
  struct Instruments {
    metrics::Counter* submitted = nullptr;
    metrics::Counter* accepted = nullptr;
    metrics::Counter* rejected = nullptr;
    metrics::Counter* completed = nullptr;
    metrics::Counter* failed = nullptr;
    metrics::Counter* waves = nullptr;
    metrics::Counter* slow = nullptr;
    metrics::Gauge* queue_depth = nullptr;
    metrics::Gauge* queue_peak = nullptr;
    metrics::Gauge* inflight = nullptr;
    metrics::Histogram* wave_us = nullptr;
    /// Per-algorithm request latency, indexed by Algo.
    std::array<metrics::Histogram*, 5> latency_us = {};
  };

  void dispatcher_main();
  void admit_locked(Job& job);
  Response execute(const Job& job);
  graph::Csr build_graph(const Request& req) const;
  u64 now_ns() const { return clock_(); }

  ServerOptions options_;
  ClockFn clock_;        ///< resolved: options_.clock_ns or monotonic_ns
  Instruments inst_;
  Pool exec_pool_;       ///< shared work-stealing pool (one task = one request)
  graph::Pool graphs_;   ///< shared ref-counted CSR pool

  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;  ///< dispatcher: work available
  std::condition_variable space_cv_;    ///< enqueue(): queue has room
  std::deque<Job> pending_;
  bool stop_ = false;
  bool started_ = false;
  ServerStats stats_;
  std::thread dispatcher_;
};

}  // namespace eclp::serve
