// Concurrent serving of analytics requests over shared graphs.
//
// The one-shot CLI (tools/eclp_run.cpp) pays graph acquisition and process
// startup per run; the Server executes many requests inside one process:
//
//   submit/serve            bounded pending queue (admission control)
//     └─ dispatcher thread  swaps the queue into a wave
//         └─ Pool::run      work-stealing execution, one task per request
//             └─ execute()  per-request Device + optional profile::Session
//                           over a graph::Pool::Pin on the shared CSR
//
// Isolation model: every request gets its own sim::Device (own PRNG
// stream, cycle counter, atomic tallies) and, when profiling, its own
// Session — the only state shared between in-flight requests is the
// immutable pooled CSR and the mutex-guarded pool/cache bookkeeping.
// Modeled results are therefore bit-identical to the same run issued
// through the one-shot CLI, independent of serving thread count or of
// which requests happen to run concurrently (pinned by the serve goldens
// and tests/serve_test.cpp).
//
// Admission control: the pending queue is bounded by max_queue. submit()
// rejects above the bound with a typed Status::kRejected response;
// enqueue()/serve() apply backpressure instead (block until space). The
// in-flight wave is bounded by the same constant, so a flooded server
// degrades by rejecting, not by queue growth.
#pragma once

#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/pool.hpp"
#include "serve/request.hpp"
#include "support/pool.hpp"

namespace eclp::serve {

struct ServerOptions {
  /// Worker slots of the shared execution pool (0 = one per hardware
  /// thread). The dispatcher participates as worker 0 while a wave runs,
  /// so this is the concurrency bound on in-flight requests.
  u32 threads = 0;
  /// Pending-queue bound: submit() rejects once this many requests wait.
  usize max_queue = 256;
  /// Byte budget of the in-process graph pool (LRU above it).
  u64 graph_pool_bytes = u64{512} << 20;
  /// When non-empty, every request records a profile::Session written to
  /// <profile_dir>/<id>.json (+ the Perfetto twin). See docs/SERVING.md.
  std::string profile_dir;
  /// Do not start the dispatcher in the constructor; callers fill the
  /// queue first and call start(). Deterministic admission for tests.
  bool manual_start = false;
};

struct ServerStats {
  u64 submitted = 0;  ///< submit/enqueue calls
  u64 accepted = 0;   ///< admitted to the queue
  u64 rejected = 0;   ///< bounced by admission control
  u64 completed = 0;  ///< executed with Status::kOk
  u64 failed = 0;     ///< executed with Status::kError
  graph::PoolStats graphs;  ///< in-process graph pool counters
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains the queue (every accepted request completes), then joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Non-blocking admission: the future is always valid; when the queue
  /// is full it is already fulfilled with a Status::kRejected response.
  std::future<Response> submit(Request req);
  /// Blocking admission: waits for queue space instead of rejecting.
  std::future<Response> enqueue(Request req);
  /// Serve a whole batch with backpressure; responses in request order.
  std::vector<Response> serve(std::vector<Request> requests);

  /// Start the dispatcher (only needed with ServerOptions::manual_start).
  void start();

  ServerStats stats() const;
  const graph::Pool& graph_pool() const { return graphs_; }
  u32 threads() const { return exec_pool_.size(); }

  /// The pool key of a request's algorithm-ready graph: source (suite
  /// name + scale, or file path), directedness as the algorithm wants it,
  /// and the MST weight attachment. Exposed for tests.
  static std::string graph_key(const Request& req);

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    u64 submit_ns = 0;
  };

  void dispatcher_main();
  Response execute(const Request& req, u64 submit_ns);
  graph::Csr build_graph(const Request& req) const;

  ServerOptions options_;
  Pool exec_pool_;       ///< shared work-stealing pool (one task = one request)
  graph::Pool graphs_;   ///< shared ref-counted CSR pool

  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;  ///< dispatcher: work available
  std::condition_variable space_cv_;    ///< enqueue(): queue has room
  std::deque<Job> pending_;
  bool stop_ = false;
  bool started_ = false;
  ServerStats stats_;
  std::thread dispatcher_;
};

}  // namespace eclp::serve
