#include "serve/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace eclp::serve {

namespace {

ClockFn resolve_clock(ClockFn clock) {
  if (clock) return clock;
  return [] { return monotonic_ns(); };
}

/// Metric names use dots; Prometheus wants [a-zA-Z0-9_:] with an eclp_
/// namespace prefix.
std::string prom_name(const std::string& name) {
  std::string out = "eclp_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

// --- TraceLog ----------------------------------------------------------------

TraceLog::TraceLog(ClockFn clock_ns) : clock_(resolve_clock(std::move(clock_ns))) {
  epoch_ns_ = clock_();
}

u64 TraceLog::open(const std::string& request_id) {
  std::lock_guard<std::mutex> lk(mutex_);
  traces_.push_back(Trace{request_id, {}, false});
  return traces_.size() - 1;
}

std::string TraceLog::id_string(u64 trace) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%08llx",
                static_cast<unsigned long long>(trace));
  return buf;
}

void TraceLog::emit(u64 trace, const char* event, json::Value fields) {
  const u64 ts_us = (clock_() - epoch_ns_) / 1000;
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(trace < traces_.size(), "unknown trace " << trace);
  Trace& t = traces_[trace];
  json::Value line = json::Value::object();
  line.set("trace", id_string(trace));
  line.set("id", t.request_id);
  line.set("event", event);
  line.set("ts_us", ts_us);
  for (const auto& [key, value] : fields.members()) line.set(key, value);
  t.lines.push_back(line.dump());
}

void TraceLog::close(u64 trace) {
  std::lock_guard<std::mutex> lk(mutex_);
  ECLP_CHECK_MSG(trace < traces_.size(), "unknown trace " << trace);
  traces_[trace].done = true;
  // Flush grouped, in admission order: a completed trace waits until every
  // earlier-admitted trace completed, which is what makes the log
  // byte-identical across serving thread counts.
  while (flushed_ < traces_.size() && traces_[flushed_].done) {
    for (const std::string& line : traces_[flushed_].lines) {
      text_ += line;
      text_ += '\n';
    }
    traces_[flushed_].lines.clear();
    flushed_++;
  }
}

std::string TraceLog::text() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return text_;
}

bool TraceLog::write(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os.good()) {
    std::fprintf(stderr, "trace log: cannot write %s\n", path.c_str());
    return false;
  }
  os << text();
  return os.good();
}

// --- Telemetry ---------------------------------------------------------------

Telemetry::Telemetry(metrics::Registry& registry, TelemetryOptions options)
    : registry_(registry),
      options_(std::move(options)),
      clock_(resolve_clock(options_.clock_ns)) {
  if (options_.prom_path.empty() && !options_.jsonl_path.empty()) {
    options_.prom_path = prom_path_for(options_.jsonl_path);
  }
}

Telemetry::~Telemetry() {
  {
    std::lock_guard<std::mutex> lk(stop_mutex_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Telemetry::start() {
  if (options_.interval_ms == 0 || thread_.joinable()) return;
  thread_ = std::thread([this] { loop(); });
}

void Telemetry::loop() {
  std::unique_lock<std::mutex> lk(stop_mutex_);
  for (;;) {
    stop_cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                      [&] { return stop_; });
    if (stop_) return;
    lk.unlock();
    snapshot();
    lk.lock();
  }
}

std::string Telemetry::prom_path_for(const std::string& jsonl_path) {
  const std::string suffix = ".jsonl";
  if (jsonl_path.size() > suffix.size() &&
      jsonl_path.compare(jsonl_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return jsonl_path.substr(0, jsonl_path.size() - suffix.size()) + ".prom";
  }
  return jsonl_path + ".prom";
}

json::Value Telemetry::to_json(const metrics::Snapshot& snap, u64 seq,
                               u64 ts_ns) {
  json::Value doc = json::Value::object();
  doc.set("schema", "eclp.metrics");
  doc.set("version", u64{1});
  doc.set("seq", seq);
  doc.set("ts_ns", ts_ns);
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);
  doc.set("counters", std::move(counters));
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);
  doc.set("gauges", std::move(gauges));
  json::Value histograms = json::Value::object();
  for (const metrics::HistogramSnapshot& h : snap.histograms) {
    json::Value entry = json::Value::object();
    entry.set("count", h.data.count);
    entry.set("sum", h.data.sum);
    entry.set("p50", h.data.quantile_floor(0.50));
    entry.set("p90", h.data.quantile_floor(0.90));
    entry.set("p99", h.data.quantile_floor(0.99));
    json::Value buckets = json::Value::array();
    for (usize b = 0; b < metrics::Histogram::kBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      json::Value pair = json::Value::array();
      pair.push_back(profile::Log2Histogram::bucket_floor(b));
      pair.push_back(h.data.buckets[b]);
      buckets.push_back(std::move(pair));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

std::string Telemetry::to_prometheus(const metrics::Snapshot& snap) {
  std::string out;
  const auto line = [&out](const std::string& name, u64 v) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prom_name(name) + "_total";
    out += "# TYPE " + p + " counter\n";
    line(p, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const metrics::HistogramSnapshot& h : snap.histograms) {
    const std::string p = prom_name(h.name);
    out += "# TYPE " + p + " histogram\n";
    u64 cumulative = 0;
    for (usize b = 0; b < metrics::Histogram::kBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      cumulative += h.data.buckets[b];
      // Bucket b covers [floor(b), floor(b + 1)): inclusive upper bound.
      const u64 le = b + 1 < metrics::Histogram::kBuckets
                         ? profile::Log2Histogram::bucket_floor(b + 1) - 1
                         : ~u64{0};
      line(p + "_bucket{le=\"" + std::to_string(le) + "\"}", cumulative);
    }
    line(p + "_bucket{le=\"+Inf\"}", h.data.count);
    line(p + "_sum", h.data.sum);
    line(p + "_count", h.data.count);
  }
  return out;
}

json::Value Telemetry::snapshot() {
  std::lock_guard<std::mutex> lk(mutex_);
  const metrics::Snapshot snap = registry_.snapshot();
  const json::Value doc = to_json(snap, seq_++, clock_());
  if (!options_.jsonl_path.empty()) {
    std::ofstream os(options_.jsonl_path, std::ios::binary | std::ios::app);
    if (os.good()) {
      os << doc.dump() << '\n';
    } else {
      std::fprintf(stderr, "telemetry: cannot append %s\n",
                   options_.jsonl_path.c_str());
    }
  }
  if (!options_.prom_path.empty()) {
    std::ofstream os(options_.prom_path, std::ios::binary | std::ios::trunc);
    if (os.good()) {
      os << to_prometheus(snap);
    } else {
      std::fprintf(stderr, "telemetry: cannot write %s\n",
                   options_.prom_path.c_str());
    }
  }
  return doc;
}

// --- schema validation -------------------------------------------------------

void validate_metrics_snapshot(const json::Value& doc) {
  ECLP_CHECK_MSG(doc.is_object(), "snapshot: not a JSON object");
  ECLP_CHECK_MSG(doc.at("schema").as_string() == "eclp.metrics",
                 "snapshot: schema is not eclp.metrics");
  ECLP_CHECK_MSG(doc.at("version").as_u64() == 1,
                 "snapshot: unsupported version "
                     << doc.at("version").as_u64());
  doc.at("seq").as_u64();
  doc.at("ts_ns").as_u64();
  for (const auto& [name, value] : doc.at("counters").members()) {
    ECLP_CHECK_MSG(value.is_number(), "counter " << name << ": not a number");
  }
  for (const auto& [name, value] : doc.at("gauges").members()) {
    ECLP_CHECK_MSG(value.is_number(), "gauge " << name << ": not a number");
  }
  for (const auto& [name, value] : doc.at("histograms").members()) {
    ECLP_CHECK_MSG(value.is_object(), "histogram " << name << ": not an object");
    u64 bucket_total = 0;
    for (const json::Value& pair : value.at("buckets").items()) {
      ECLP_CHECK_MSG(pair.is_array() && pair.items().size() == 2,
                     "histogram " << name << ": bucket entry is not a "
                                  << "[floor, count] pair");
      bucket_total += pair.items()[1].as_u64();
    }
    ECLP_CHECK_MSG(bucket_total == value.at("count").as_u64(),
                   "histogram " << name
                                << ": bucket counts do not sum to count");
    value.at("sum").as_u64();
    for (const char* q : {"p50", "p90", "p99"}) value.at(q).as_u64();
  }
}

}  // namespace eclp::serve
