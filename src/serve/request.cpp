#include "serve/request.hpp"

#include "support/check.hpp"

namespace eclp::serve {

namespace {

const char* scale_name(gen::Scale s) {
  switch (s) {
    case gen::Scale::kTiny: return "tiny";
    case gen::Scale::kSmall: return "small";
    case gen::Scale::kDefault: return "default";
  }
  return "tiny";
}

}  // namespace

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kCc: return "cc";
    case Algo::kGc: return "gc";
    case Algo::kMis: return "mis";
    case Algo::kMst: return "mst";
    case Algo::kScc: return "scc";
  }
  return "cc";
}

Algo parse_algo(const std::string& s) {
  if (s == "cc") return Algo::kCc;
  if (s == "gc") return Algo::kGc;
  if (s == "mis") return Algo::kMis;
  if (s == "mst") return Algo::kMst;
  if (s == "scc") return Algo::kScc;
  ECLP_CHECK_MSG(false, "unknown algo '" << s
                        << "' (cc | gc | mis | mst | scc)");
  return Algo::kCc;
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kError: return "error";
  }
  return "error";
}

Request Request::from_json(const json::Value& v, usize index) {
  ECLP_CHECK_MSG(v.is_object(), "request " << index << ": not a JSON object");
  Request req;
  req.id = "r" + std::to_string(index);
  for (const auto& [key, value] : v.members()) {
    if (key == "id") {
      req.id = value.as_string();
    } else if (key == "algo") {
      req.algo = parse_algo(value.as_string());
    } else if (key == "input") {
      req.input = value.as_string();
    } else if (key == "graph") {
      req.file = value.as_string();
    } else if (key == "scale") {
      req.scale = gen::parse_scale(value.as_string());
    } else if (key == "seed") {
      req.seed = value.as_u64();
    } else if (key == "weights") {
      req.weights_seed = value.as_u64();
    } else if (key == "directed") {
      req.directed = value.as_bool();
    } else if (key == "verify") {
      req.verify = value.as_bool();
    } else if (key == "reorder") {
      req.reorder = value.as_string();
    } else if (key == "llc") {
      req.llc = value.as_string();
    } else {
      ECLP_CHECK_MSG(false, "request " << req.id << ": unknown field '"
                            << key << "'");
    }
  }
  ECLP_CHECK_MSG(req.input.empty() != req.file.empty(),
                 "request " << req.id
                            << ": exactly one of \"input\" (suite name) or "
                               "\"graph\" (file path) is required");
  return req;
}

json::Value Request::to_json() const {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("algo", algo_name(algo));
  if (!input.empty()) {
    v.set("input", input);
    v.set("scale", scale_name(scale));
  } else {
    v.set("graph", file);
  }
  v.set("seed", seed);
  if (algo == Algo::kMst) v.set("weights", weights_seed);
  if (directed) v.set("directed", true);
  if (verify) v.set("verify", true);
  // Emitted only when set, so pre-existing request round-trips (and the
  // serve goldens) are unchanged.
  if (!reorder.empty()) v.set("reorder", reorder);
  if (!llc.empty()) v.set("llc", llc);
  return v;
}

std::vector<Request> parse_requests_jsonl(const std::string& text) {
  std::vector<Request> requests;
  usize begin = 0;
  while (begin < text.size()) {
    usize end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const usize first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    requests.push_back(
        Request::from_json(json::Value::parse(line), requests.size()));
  }
  return requests;
}

json::Value Response::to_json(bool timing) const {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("algo", algo_name(algo));
  v.set("graph", graph);
  v.set("status", status_name(status));
  if (status == Status::kOk) {
    v.set("summary", summary);
    v.set("modeled_cycles", modeled_cycles);
    // LLC fields appear only for cache-enabled requests, keeping
    // cache-off response lines (and the serve goldens) unchanged.
    if (llc_hits + llc_misses > 0) {
      v.set("llc_hits", llc_hits);
      v.set("llc_misses", llc_misses);
    }
    v.set("checksum", checksum);
  } else {
    v.set("error", error);
  }
  if (timing) {
    v.set("pool", pool_hit ? "hit" : "miss");
    v.set("wall_ms", wall_ms);
  }
  return v;
}

std::string responses_to_jsonl(const std::vector<Response>& responses,
                               bool timing) {
  std::string out;
  for (const Response& r : responses) {
    out += r.to_json(timing).dump();
    out += '\n';
  }
  return out;
}

}  // namespace eclp::serve
