// Runtime telemetry for the serving layer: snapshot export + request traces.
//
// The metrics registry (support/metrics.hpp) is the in-memory truth; this
// file is how it leaves the process:
//
//  * Telemetry — a snapshot exporter. Every snapshot() merges the registry
//    shards and emits one JSON object ("eclp.metrics" schema, below) —
//    appended as a JSONL time series — plus a Prometheus-style text
//    exposition file rewritten in place. A background thread can snapshot
//    periodically (interval_ms); tests and shutdown paths call snapshot()
//    explicitly. The clock is injectable, so golden tests pin the exports
//    byte-for-byte.
//
//  * TraceLog — a structured JSONL event log of every request's life:
//    admitted (or rejected, with cause), started, pool (hit|miss),
//    finished (status, wall_us, cause on error). Each request gets a trace
//    id at admission; events buffer per trace and flush grouped, in
//    admission order, once the trace closes — so the log is byte-identical
//    across serving thread counts (events never interleave between
//    requests), at the cost of not streaming mid-request.
//
// Snapshot schema ("eclp.metrics" version 1):
//
//   {"schema": "eclp.metrics", "version": 1, "seq": N, "ts_ns": N,
//    "counters":   {"pool.hits": N, ...},
//    "gauges":     {"pool.bytes": N, ...},
//    "histograms": {"serve.latency_us.cc":
//                     {"count": N, "sum": N, "p50": N, "p90": N, "p99": N,
//                      "buckets": [[floor, count], ...]}, ...}}
//
// Instruments are name-sorted; histogram buckets list only non-empty
// log2 buckets as [bucket floor, count] pairs; p50/p90/p99 are the floors
// of the quantile buckets (coarse quantiles — see profile/histogram.hpp).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/types.hpp"

namespace eclp::serve {

/// Injectable nanosecond clock. Null means support/timer.hpp monotonic_ns;
/// tests inject a deterministic clock to make exports byte-stable.
using ClockFn = std::function<u64()>;

class TraceLog {
 public:
  explicit TraceLog(ClockFn clock_ns = {});

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Open a trace for a request; returns the trace id (a dense admission
  /// sequence number — deterministic for a fixed submission order).
  u64 open(const std::string& request_id);
  /// Append one event. `fields` members follow the standard
  /// trace/id/event/ts_us prefix in the emitted line.
  void emit(u64 trace, const char* event,
            json::Value fields = json::Value::object());
  /// Mark the trace complete and flush every consecutive completed trace
  /// (in admission order) into the log text.
  void close(u64 trace);

  /// "00000003" — the id string emitted in event lines and propagated into
  /// profile::Session metadata.
  static std::string id_string(u64 trace);

  /// Flushed log text so far (complete traces only, admission order).
  std::string text() const;
  /// Write text() to a file; false (with a stderr warning) on IO failure.
  bool write(const std::string& path) const;

 private:
  struct Trace {
    std::string request_id;
    std::vector<std::string> lines;
    bool done = false;
  };

  ClockFn clock_;
  u64 epoch_ns_ = 0;
  mutable std::mutex mutex_;
  std::vector<Trace> traces_;
  usize flushed_ = 0;  ///< traces_[0, flushed_) already appended to text_
  std::string text_;
};

struct TelemetryOptions {
  /// Snapshot destination, one JSON object per line (appended). Empty =
  /// callers consume the returned json::Value instead.
  std::string jsonl_path;
  /// Prometheus-style text exposition file, rewritten per snapshot.
  /// Empty = derive from jsonl_path (prom_path_for); both empty = none.
  std::string prom_path;
  /// Background snapshot period; 0 = explicit snapshot() calls only.
  u64 interval_ms = 0;
  ClockFn clock_ns;
};

class Telemetry {
 public:
  Telemetry(metrics::Registry& registry, TelemetryOptions options);
  /// Stops the background thread. Does NOT take a final snapshot — the
  /// owner decides whether one more is wanted (eclp-serve always does).
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Start the periodic exporter (no-op when interval_ms == 0).
  void start();

  /// Merge, render, and (when paths are set) write one snapshot; returns
  /// the snapshot document. Thread-safe against the background exporter.
  json::Value snapshot();

  /// "metrics.jsonl" -> "metrics.prom" (non-.jsonl paths get ".prom"
  /// appended) — mirrors profile::Session::trace_path_for.
  static std::string prom_path_for(const std::string& jsonl_path);

  static json::Value to_json(const metrics::Snapshot& snap, u64 seq,
                             u64 ts_ns);
  static std::string to_prometheus(const metrics::Snapshot& snap);

 private:
  void loop();

  metrics::Registry& registry_;
  TelemetryOptions options_;
  ClockFn clock_;
  std::mutex mutex_;  ///< guards seq_ and file writes
  u64 seq_ = 0;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Validate one "eclp.metrics" snapshot document; throws CheckFailure with
/// a field-level message on schema violations (used by eclp-metrics
/// --check and the metrics-smoke tier).
void validate_metrics_snapshot(const json::Value& doc);

}  // namespace eclp::serve
