#include "profile/histogram.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "support/check.hpp"

namespace eclp::profile {

namespace {

usize bucket_of(u64 value) {
  if (value == 0) return 0;
  const usize b = static_cast<usize>(std::bit_width(value));  // >= 1
  return std::min(b, Log2Histogram::kBuckets - 1);
}

}  // namespace

void Log2Histogram::add(u64 value, u64 weight) {
  buckets_[bucket_of(value)] += weight;
}

void Log2Histogram::add_all(std::span<const u64> values) {
  for (const u64 v : values) add(v);
}

u64 Log2Histogram::total() const {
  u64 t = 0;
  for (const u64 b : buckets_) t += b;
  return t;
}

usize Log2Histogram::quantile_bucket(double fraction) const {
  ECLP_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const u64 t = total();
  if (t == 0) return 0;
  const double target = fraction * static_cast<double>(t);
  u64 running = 0;
  for (usize b = 0; b < kBuckets; ++b) {
    running += buckets_[b];
    if (static_cast<double>(running) >= target) return b;
  }
  return kBuckets - 1;
}

u64 Log2Histogram::bucket_floor(usize bucket) {
  ECLP_CHECK(bucket < kBuckets);
  if (bucket == 0) return 0;
  return u64{1} << (bucket - 1);
}

std::string Log2Histogram::bucket_label(usize bucket) {
  ECLP_CHECK(bucket < kBuckets);
  if (bucket == 0) return "0";
  if (bucket == 1) return "1";
  const u64 lo = bucket_floor(bucket);
  std::ostringstream os;
  if (bucket == kBuckets - 1) {
    os << '[' << lo << ",inf)";
  } else {
    os << '[' << lo << ',' << lo * 2 << ')';
  }
  return os.str();
}

Table Log2Histogram::to_table(const std::string& title) const {
  Table t(title);
  t.set_header({"value range", "count", "share", "bar"});
  const u64 tot = total();
  u64 peak = 0;
  for (const u64 b : buckets_) peak = std::max(peak, b);
  for (usize b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double share =
        tot ? 100.0 * static_cast<double>(buckets_[b]) / static_cast<double>(tot)
            : 0.0;
    const usize bar_len =
        peak ? static_cast<usize>(
                   (buckets_[b] * 40 + peak - 1) / peak)
             : 0;
    t.add_row({bucket_label(b), fmt::grouped(buckets_[b]),
               fmt::fixed(share, 1) + "%", std::string(bar_len, '#')});
  }
  return t;
}

}  // namespace eclp::profile
