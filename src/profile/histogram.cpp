#include "profile/histogram.hpp"

#include <sstream>

namespace eclp::profile {

std::string Log2Histogram::bucket_label(usize bucket) {
  ECLP_CHECK(bucket < kBuckets);
  if (bucket == 0) return "0";
  if (bucket == 1) return "1";
  const u64 lo = bucket_floor(bucket);
  std::ostringstream os;
  if (bucket == kBuckets - 1) {
    os << '[' << lo << ",inf)";
  } else {
    os << '[' << lo << ',' << lo * 2 << ')';
  }
  return os.str();
}

Table Log2Histogram::to_table(const std::string& title) const {
  Table t(title);
  t.set_header({"value range", "count", "share", "bar"});
  const u64 tot = total();
  u64 peak = 0;
  for (const u64 b : buckets_) peak = std::max(peak, b);
  for (usize b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double share =
        tot ? 100.0 * static_cast<double>(buckets_[b]) / static_cast<double>(tot)
            : 0.0;
    const usize bar_len =
        peak ? static_cast<usize>(
                   (buckets_[b] * 40 + peak - 1) / peak)
             : 0;
    t.add_row({bucket_label(b), fmt::grouped(buckets_[b]),
               fmt::fixed(share, 1) + "%", std::string(bar_len, '#')});
  }
  return t;
}

}  // namespace eclp::profile
