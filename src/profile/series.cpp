#include "profile/series.hpp"

#include <algorithm>
#include <sstream>

#include "support/stats.hpp"

namespace eclp::profile {

std::vector<double> IterationSeries::column(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  ECLP_CHECK_MSG(it != columns_.end(), "no series column '" << name << "'");
  const usize c = static_cast<usize>(it - columns_.begin());
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[c]);
  return out;
}

Table IterationSeries::to_table(const std::string& title, int digits) const {
  Table t(title);
  std::vector<std::string> header = {"iteration"};
  header.insert(header.end(), columns_.begin(), columns_.end());
  t.set_header(std::move(header));
  for (usize i = 0; i < rows_.size(); ++i) {
    std::vector<std::string> row = {labels_[i]};
    for (const double v : rows_[i]) row.push_back(fmt::fixed(v, digits));
    t.add_row(std::move(row));
  }
  return t;
}

const BlockSeries::Snapshot* BlockSeries::find(u32 outer, u64 inner) const {
  for (const auto& s : snapshots_) {
    if (s.outer == outer && s.inner == inner) return &s;
  }
  return nullptr;
}

u64 BlockSeries::max_inner(u32 outer) const {
  u64 best = 0;
  for (const auto& s : snapshots_) {
    if (s.outer == outer) best = std::max(best, s.inner);
  }
  return best;
}

u32 BlockSeries::max_outer() const {
  u32 best = 0;
  for (const auto& s : snapshots_) best = std::max(best, s.outer);
  return best;
}

Table BlockSeries::to_table(const std::string& title) const {
  Table t(title);
  t.set_header({"m", "n", "active blocks", "total blocks", "total updates",
                "avg updates", "max updates"});
  for (const auto& s : snapshots_) {
    const auto sum = stats::summarize(std::span<const u64>(s.per_block));
    const usize active = static_cast<usize>(std::count_if(
        s.per_block.begin(), s.per_block.end(), [](u64 v) { return v > 0; }));
    t.add_row({std::to_string(s.outer), std::to_string(s.inner),
               std::to_string(active), std::to_string(s.per_block.size()),
               fmt::grouped(static_cast<u64>(sum.total)),
               fmt::fixed(sum.mean, 2), fmt::fixed(sum.max, 0)});
  }
  return t;
}

std::string BlockSeries::to_csv() const {
  std::ostringstream os;
  os << "outer,inner,block,updates\n";
  for (const auto& s : snapshots_) {
    for (usize b = 0; b < s.per_block.size(); ++b) {
      os << s.outer << ',' << s.inner << ',' << b << ',' << s.per_block[b]
         << '\n';
    }
  }
  return os.str();
}

}  // namespace eclp::profile
