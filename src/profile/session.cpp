#include "profile/session.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>

#include "support/timer.hpp"

namespace eclp::profile {

namespace {

thread_local Session* tl_current_session = nullptr;

/// Per-outcome session deltas reported under "atomics.<outcome>" in the
/// profile document's counters section (paper §3.1.5: outcome
/// classification is the part hardware profilers cannot see).
struct OutcomeName {
  sim::AtomicOutcome outcome;
  const char* name;
};
constexpr OutcomeName kOutcomes[] = {
    {sim::AtomicOutcome::kCasSuccess, "atomics.cas_success"},
    {sim::AtomicOutcome::kCasFailure, "atomics.cas_failure"},
    {sim::AtomicOutcome::kMinEffective, "atomics.min_effective"},
    {sim::AtomicOutcome::kMinIneffective, "atomics.min_ineffective"},
    {sim::AtomicOutcome::kMaxEffective, "atomics.max_effective"},
    {sim::AtomicOutcome::kMaxIneffective, "atomics.max_ineffective"},
    {sim::AtomicOutcome::kAdd, "atomics.add"},
};

}  // namespace

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAlgorithm: return "algorithm";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kIteration: return "iteration";
    case SpanKind::kOperator: return "operator";
    case SpanKind::kKernel: return "kernel";
  }
  return "unknown";
}

Session::Session(sim::Device& dev, CounterRegistry* registry, Options options)
    : dev_(dev),
      registry_(registry),
      options_(options),
      epoch_ns_(monotonic_ns()),
      start_cycles_(dev.total_cycles()),
      start_launches_(dev.kernel_launches()),
      start_llc_hits_(dev.llc_hits()),
      start_llc_misses_(dev.llc_misses()),
      atomics_at_start_(dev.atomic_stats()) {
  prev_observer_ = dev_.launch_observer();
  dev_.set_launch_observer(this);
  if (sim::Pool* pool = dev_.pool(); pool != nullptr) {
    prev_pool_sampling_ = pool->sampling();
    pool->reset_worker_samples();
    pool->set_sampling(true);
  }
  prev_current_ = tl_current_session;
  tl_current_session = this;
}

Session::~Session() {
  finalize();
  // Detach before writing so artifact I/O can never re-enter on_launch.
  if (dev_.launch_observer() == this) dev_.set_launch_observer(prev_observer_);
  if (sim::Pool* pool = dev_.pool(); pool != nullptr) {
    pool->set_sampling(prev_pool_sampling_);
  }
  if (tl_current_session == this) tl_current_session = prev_current_;
  if (!output_path_.empty()) write(output_path_);
}

Session* Session::current() { return tl_current_session; }

std::vector<std::pair<std::string, u64>> Session::snapshot_counters() const {
  std::vector<std::pair<std::string, u64>> totals;
  if (registry_ == nullptr) return totals;
  totals.reserve(registry_->size());
  registry_->for_each(
      [&](const std::string& name, const Counter& c) {
        totals.emplace_back(name, c.total());
      });
  return totals;
}

u32 Session::open_span(std::string name, SpanKind kind) {
  ECLP_CHECK_MSG(!finalized_, "open_span on a finalized session");
  Span span;
  span.id = static_cast<u32>(spans_.size());
  span.parent = stack_.empty() ? -1 : static_cast<i32>(stack_.back().span_id);
  span.depth = static_cast<u32>(stack_.size());
  span.name = std::move(name);
  span.kind = kind;
  span.start_cycles = dev_.total_cycles();
  span.wall_start_ns = monotonic_ns() - epoch_ns_;
  OpenState open;
  open.span_id = span.id;
  open.atomics_at_open = dev_.atomic_stats().total();
  open.launches_at_open = dev_.kernel_launches();
  open.llc_hits_at_open = dev_.llc_hits();
  open.llc_misses_at_open = dev_.llc_misses();
  open.counter_totals = snapshot_counters();
  spans_.push_back(std::move(span));
  stack_.push_back(std::move(open));
  return spans_.back().id;
}

void Session::close_span(u32 id) {
  ECLP_CHECK_MSG(!stack_.empty(), "close_span with no span open");
  ECLP_CHECK_MSG(stack_.back().span_id == id,
                 "close_span out of order: closing " << id << " but innermost is "
                                                     << stack_.back().span_id);
  OpenState open = std::move(stack_.back());
  stack_.pop_back();
  Span& span = spans_[id];
  span.end_cycles = dev_.total_cycles();
  span.wall_end_ns = monotonic_ns() - epoch_ns_;
  span.atomics = dev_.atomic_stats().total() - open.atomics_at_open;
  span.launches = dev_.kernel_launches() - open.launches_at_open;
  span.llc_hits = dev_.llc_hits() - open.llc_hits_at_open;
  span.llc_misses = dev_.llc_misses() - open.llc_misses_at_open;
  if (registry_ != nullptr) {
    // The registry's counter set can only grow, and for_each is name-ordered,
    // so the open snapshot is an ordered subsequence of the close snapshot:
    // one forward scan pairs them up. Counters born inside the span diff
    // against zero.
    const auto now = snapshot_counters();
    usize j = 0;
    for (const auto& [name, total] : now) {
      u64 before = 0;
      while (j < open.counter_totals.size() &&
             open.counter_totals[j].first < name) {
        ++j;
      }
      if (j < open.counter_totals.size() &&
          open.counter_totals[j].first == name) {
        before = open.counter_totals[j].second;
      }
      if (total != before) span.counters.emplace_back(name, total - before);
    }
    emit_counter_samples(span.end_cycles);
  }
}

void Session::emit_counter_samples(u64 at_cycles) {
  // One Perfetto counter sample per registry counter per span close, only
  // when the total moved since the last sample — keeps traces compact.
  const auto now = snapshot_counters();
  usize j = 0;
  for (const auto& [name, total] : now) {
    u64 last = 0;
    bool seen = false;
    while (j < last_sampled_totals_.size() &&
           last_sampled_totals_[j].first < name) {
      ++j;
    }
    if (j < last_sampled_totals_.size() &&
        last_sampled_totals_[j].first == name) {
      last = last_sampled_totals_[j].second;
      seen = true;
    }
    if (!seen || total != last) {
      counter_samples_.push_back({at_cycles, name, total});
    }
  }
  last_sampled_totals_ = now;
}

void Session::on_launch(const sim::KernelStats& stats,
                        const sim::TraceEvent& event) {
  Span span;
  span.id = static_cast<u32>(spans_.size());
  span.parent = stack_.empty() ? -1 : static_cast<i32>(stack_.back().span_id);
  span.depth = static_cast<u32>(stack_.size());
  span.name = stats.name;
  span.kind = SpanKind::kKernel;
  span.start_cycles = event.cumulative_cycles - event.modeled_cycles;
  span.end_cycles = event.cumulative_cycles;
  const u64 wall_end = monotonic_ns() - epoch_ns_;
  span.wall_end_ns = wall_end;
  span.wall_start_ns = event.wall_ns > wall_end ? 0 : wall_end - event.wall_ns;
  span.atomics = event.atomics_delta;
  span.launches = 1;
  span.llc_hits = event.llc_hits;
  span.llc_misses = event.llc_misses;
  span.blocks = event.blocks;
  span.threads_per_block = event.threads_per_block;
  span.active_threads = event.active_threads;
  span.idle_threads = event.idle_threads;
  span.imbalance = event.imbalance;
  span.block_cycles = event.block_cycles;
  spans_.push_back(std::move(span));
  // Chain to any previously attached observer so sessions stack.
  if (prev_observer_ != nullptr) prev_observer_->on_launch(stats, event);
}

void Session::finalize() {
  if (finalized_) return;
  while (!stack_.empty()) close_span(stack_.back().span_id);
  finalize_wall_ns_ = monotonic_ns() - epoch_ns_;
  final_cycles_ = dev_.total_cycles();
  final_launches_ = dev_.kernel_launches();
  final_llc_hits_ = dev_.llc_hits();
  final_llc_misses_ = dev_.llc_misses();
  atomics_at_end_ = dev_.atomic_stats();
  if (sim::Pool* pool = dev_.pool(); pool != nullptr) {
    workers_ = pool->worker_samples();
  }
  finalized_ = true;
}

void Session::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

void Session::set_output(std::string profile_path) {
  output_path_ = std::move(profile_path);
}

std::string Session::trace_path_for(const std::string& profile_path) {
  constexpr std::string_view kJson = ".json";
  if (profile_path.size() > kJson.size() &&
      profile_path.compare(profile_path.size() - kJson.size(), kJson.size(),
                           kJson) == 0) {
    return profile_path.substr(0, profile_path.size() - kJson.size()) +
           ".trace.json";
  }
  return profile_path + ".trace.json";
}

// --- Perfetto (Chrome trace-event) export ------------------------------------

std::string Session::perfetto_json() {
  finalize();
  json::Value events = json::Value::array();

  const auto meta_event = [&](const char* what, u64 tid, const std::string& n) {
    json::Value e = json::Value::object();
    e.set("ph", "M");
    e.set("pid", u64{1});
    if (tid != 0) e.set("tid", tid);
    e.set("name", what);
    json::Value args = json::Value::object();
    args.set("name", n);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };

  std::string process_name = "eclp";
  for (const auto& [k, v] : meta_) {
    if (k == "algo") process_name = "eclp " + v;
  }
  meta_event("process_name", 0, process_name);
  meta_event("thread_name", 1, "phases");
  meta_event("thread_name", 2, "kernels");

  // Per-block tracks: tid 100 + block, one track set shared by all launches
  // small enough to qualify. Name only the tracks actually used.
  u32 block_tracks = 0;
  if (options_.max_block_tracks > 0) {
    for (const Span& s : spans_) {
      if (s.kind == SpanKind::kKernel && !s.block_cycles.empty() &&
          s.blocks <= options_.max_block_tracks) {
        block_tracks = std::max(block_tracks, s.blocks);
      }
    }
  }
  for (u32 b = 0; b < block_tracks; ++b) {
    meta_event("thread_name", 100 + b, "block " + std::to_string(b));
  }

  const auto push_span = [&](const Span& s) {
    json::Value e = json::Value::object();
    e.set("ph", "X");
    e.set("pid", u64{1});
    e.set("tid", s.kind == SpanKind::kKernel ? u64{2} : u64{1});
    e.set("ts", s.start_cycles - start_cycles_);
    e.set("dur", s.cycles());
    e.set("name", s.name);
    e.set("cat", span_kind_name(s.kind));
    json::Value args = json::Value::object();
    args.set("atomics", s.atomics);
    if (s.kind == SpanKind::kKernel) {
      args.set("blocks", s.blocks);
      args.set("threads_per_block", s.threads_per_block);
      args.set("active_threads", s.active_threads);
      args.set("idle_threads", s.idle_threads);
      args.set("imbalance", s.imbalance);
      if (s.llc_hits + s.llc_misses > 0) {
        args.set("llc_hits", s.llc_hits);
        args.set("llc_misses", s.llc_misses);
      }
    } else {
      args.set("launches", s.launches);
      for (const auto& [name, delta] : s.counters) args.set(name, delta);
    }
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };

  // Modeled-LLC counter tracks: one cumulative sample per kernel launch
  // that classified anything. Emitted from span data (not the registry
  // sampler) so the tracks line up with kernel span ends exactly; absent
  // entirely while the cache is disabled.
  u64 llc_hits_running = 0;
  u64 llc_misses_running = 0;
  const auto push_llc_sample = [&](const char* name, u64 ts, u64 total) {
    json::Value e = json::Value::object();
    e.set("ph", "C");
    e.set("pid", u64{1});
    e.set("ts", ts);
    e.set("name", name);
    json::Value args = json::Value::object();
    args.set("value", total);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };

  for (const Span& s : spans_) {
    push_span(s);
    if (s.kind == SpanKind::kKernel && s.llc_hits + s.llc_misses > 0) {
      llc_hits_running += s.llc_hits;
      llc_misses_running += s.llc_misses;
      const u64 ts = s.end_cycles - start_cycles_;
      push_llc_sample("llc.hits", ts, llc_hits_running);
      push_llc_sample("llc.misses", ts, llc_misses_running);
    }
    if (s.kind == SpanKind::kKernel && !s.block_cycles.empty() &&
        options_.max_block_tracks > 0 && s.blocks <= options_.max_block_tracks) {
      for (u32 b = 0; b < s.block_cycles.size(); ++b) {
        json::Value e = json::Value::object();
        e.set("ph", "X");
        e.set("pid", u64{1});
        e.set("tid", u64{100} + b);
        e.set("ts", s.start_cycles - start_cycles_);
        e.set("dur", s.block_cycles[b]);
        e.set("name", s.name);
        e.set("cat", "block");
        events.push_back(std::move(e));
      }
    }
  }

  for (const CounterSample& cs : counter_samples_) {
    json::Value e = json::Value::object();
    e.set("ph", "C");
    e.set("pid", u64{1});
    e.set("ts", cs.cycles - start_cycles_);
    e.set("name", cs.name);
    json::Value args = json::Value::object();
    args.set("value", cs.total);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }

  json::Value doc = json::Value::object();
  doc.set("traceEvents", std::move(events));
  // The "microseconds" here are modeled device cycles (1 cycle == 1 µs in
  // the UI) — deliberately not wall-clock, so traces are deterministic.
  doc.set("displayTimeUnit", "ms");
  return doc.dump(1) + "\n";
}

// --- versioned profile document ----------------------------------------------

json::Value Session::profile() {
  finalize();
  json::Value doc = json::Value::object();
  doc.set("schema", "eclp.profile");
  doc.set("version", u64{1});

  json::Value meta = json::Value::object();
  for (const auto& [k, v] : meta_) meta.set(k, v);
  doc.set("meta", std::move(meta));

  json::Value totals = json::Value::object();
  totals.set("modeled_cycles", final_cycles_ - start_cycles_);
  totals.set("launches", final_launches_ - start_launches_);
  totals.set("atomics", atomics_at_end_.total() - atomics_at_start_.total());
  const u64 total_llc_hits = final_llc_hits_ - start_llc_hits_;
  const u64 total_llc_misses = final_llc_misses_ - start_llc_misses_;
  // Modeled-LLC fields appear only when the cache classified something, so
  // cache-off documents (the default, and every committed golden) are
  // byte-identical to the pre-LLC schema.
  if (total_llc_hits + total_llc_misses > 0) {
    totals.set("llc_hits", total_llc_hits);
    totals.set("llc_misses", total_llc_misses);
  }
  totals.set("spans", static_cast<u64>(spans_.size()));
  if (options_.record_wall) totals.set("wall_ns", finalize_wall_ns_);
  doc.set("totals", std::move(totals));

  json::Value spans = json::Value::array();
  for (const Span& s : spans_) {
    json::Value j = json::Value::object();
    j.set("id", s.id);
    j.set("parent", static_cast<i64>(s.parent));
    j.set("kind", span_kind_name(s.kind));
    j.set("name", s.name);
    j.set("start_cycles", s.start_cycles - start_cycles_);
    j.set("cycles", s.cycles());
    j.set("atomics", s.atomics);
    if (s.llc_hits + s.llc_misses > 0) {
      j.set("llc_hits", s.llc_hits);
      j.set("llc_misses", s.llc_misses);
    }
    if (s.kind != SpanKind::kKernel) j.set("launches", s.launches);
    if (options_.record_wall) j.set("wall_ns", s.wall_ns());
    if (!s.counters.empty()) {
      json::Value deltas = json::Value::object();
      for (const auto& [name, delta] : s.counters) deltas.set(name, delta);
      j.set("counters", std::move(deltas));
    }
    if (s.kind == SpanKind::kKernel) {
      j.set("blocks", s.blocks);
      j.set("threads_per_block", s.threads_per_block);
      j.set("active_threads", s.active_threads);
      j.set("idle_threads", s.idle_threads);
      j.set("imbalance", s.imbalance);
    }
    spans.push_back(std::move(j));
  }
  doc.set("spans", std::move(spans));

  // Per-kernel aggregation, name-ordered — the unit eclp_profile_diff gates.
  struct KernelAgg {
    u64 launches = 0;
    u64 cycles = 0;
    u64 atomics = 0;
    u64 active_threads = 0;
    u64 idle_threads = 0;
    u64 llc_hits = 0;
    u64 llc_misses = 0;
    double max_imbalance = 0.0;
  };
  std::map<std::string, KernelAgg> by_kernel;
  for (const Span& s : spans_) {
    if (s.kind != SpanKind::kKernel) continue;
    KernelAgg& agg = by_kernel[s.name];
    agg.launches += 1;
    agg.cycles += s.cycles();
    agg.atomics += s.atomics;
    agg.active_threads += s.active_threads;
    agg.idle_threads += s.idle_threads;
    agg.llc_hits += s.llc_hits;
    agg.llc_misses += s.llc_misses;
    agg.max_imbalance = std::max(agg.max_imbalance, s.imbalance);
  }
  json::Value kernels = json::Value::array();
  for (const auto& [name, agg] : by_kernel) {
    json::Value j = json::Value::object();
    j.set("name", name);
    j.set("launches", agg.launches);
    j.set("modeled_cycles", agg.cycles);
    j.set("atomics", agg.atomics);
    j.set("active_threads", agg.active_threads);
    j.set("idle_threads", agg.idle_threads);
    if (agg.llc_hits + agg.llc_misses > 0) {
      j.set("llc_hits", agg.llc_hits);
      j.set("llc_misses", agg.llc_misses);
    }
    j.set("max_imbalance", agg.max_imbalance);
    kernels.push_back(std::move(j));
  }
  doc.set("kernels", std::move(kernels));

  json::Value counters = json::Value::object();
  for (const auto& [outcome, name] : kOutcomes) {
    const u64 delta =
        atomics_at_end_.count(outcome) - atomics_at_start_.count(outcome);
    if (delta != 0) counters.set(name, delta);
  }
  // Modeled-LLC session totals, gated like every other counter by diff.
  if (total_llc_hits + total_llc_misses > 0) {
    counters.set("llc.hits", total_llc_hits);
    counters.set("llc.misses", total_llc_misses);
  }
  if (registry_ != nullptr) {
    registry_->for_each([&](const std::string& name, const Counter& c) {
      counters.set(name, c.total());
    });
  }
  doc.set("counters", std::move(counters));

  json::Value workers = json::Value::array();
  if (options_.record_wall) {
    for (const sim::Pool::WorkerSample& w : workers_) {
      json::Value j = json::Value::object();
      j.set("worker", w.worker);
      j.set("busy_ns", w.busy_ns);
      j.set("drains", w.drains);
      j.set("tasks", w.tasks);
      j.set("utilization",
            finalize_wall_ns_ == 0
                ? 0.0
                : static_cast<double>(w.busy_ns) /
                      static_cast<double>(finalize_wall_ns_));
      workers.push_back(std::move(j));
    }
  }
  doc.set("workers", std::move(workers));
  return doc;
}

std::string Session::profile_json() { return profile().dump(1) + "\n"; }

bool Session::write(const std::string& profile_path) {
  const auto write_file = [](const std::string& path, const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "eclp: cannot write profile artifact '%s'\n",
                   path.c_str());
      return false;
    }
    out << body;
    return static_cast<bool>(out);
  };
  const bool a = write_file(profile_path, profile_json());
  const bool b = write_file(trace_path_for(profile_path), perfetto_json());
  return a && b;
}

}  // namespace eclp::profile
