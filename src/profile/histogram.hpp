// Log2-bucketed histograms of per-thread/per-vertex counter values.
//
// The paper's tables report Avg and Max, but its analysis repeatedly leans
// on the *distribution* behind them ("traversals are either 1 or the full
// degree", "most threads execute few iterations while some spin for
// hundreds"). A log2 histogram captures exactly that shape at counter cost.
//
// The bucketing/accumulation methods are defined inline: they sit on hot
// paths (one add per sample), and the serving-layer metrics registry
// (support/metrics.hpp) reuses the bucket arithmetic header-only — support
// sits below profile in the link graph, so the shared logic must not
// require linking eclp_profile. Only the table renderer lives in the .cpp.
#pragma once

#include <algorithm>
#include <bit>
#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/table.hpp"
#include "support/types.hpp"

namespace eclp::profile {

class Log2Histogram {
 public:
  /// Buckets: [0], [1], [2,3], [4,7], ..., [2^(kBuckets-2), inf).
  static constexpr usize kBuckets = 22;

  /// Bucket index a value lands in (shared with support/metrics.hpp).
  static usize bucket_of(u64 value) {
    if (value == 0) return 0;
    const usize b = static_cast<usize>(std::bit_width(value));  // >= 1
    return std::min(b, kBuckets - 1);
  }

  void add(u64 value, u64 weight = 1) { buckets_[bucket_of(value)] += weight; }
  /// Bucket a whole sample (e.g. a BucketCounter's values()).
  void add_all(std::span<const u64> values) {
    for (const u64 v : values) add(v);
  }

  u64 count(usize bucket) const { return buckets_.at(bucket); }
  u64 total() const {
    u64 t = 0;
    for (const u64 b : buckets_) t += b;
    return t;
  }
  /// Index of the first non-empty bucket such that at least `fraction` of
  /// the mass is at or below it (a coarse quantile). Empty buckets never
  /// qualify — quantile_bucket(0.0) is the first bucket holding any mass,
  /// not bucket 0 — and an empty histogram returns 0.
  usize quantile_bucket(double fraction) const {
    ECLP_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const u64 t = total();
    if (t == 0) return 0;
    const double target = fraction * static_cast<double>(t);
    u64 running = 0;
    for (usize b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      running += buckets_[b];
      if (static_cast<double>(running) >= target) return b;
    }
    return kBuckets - 1;
  }
  /// Lower bound of a bucket's value range.
  static u64 bucket_floor(usize bucket) {
    ECLP_CHECK(bucket < kBuckets);
    if (bucket == 0) return 0;
    return u64{1} << (bucket - 1);
  }
  /// Human-readable bucket label, e.g. "[4,8)".
  static std::string bucket_label(usize bucket);

  void reset() { buckets_.assign(kBuckets, 0); }

  /// Rows only for non-empty buckets; includes a text bar for quick reading.
  Table to_table(const std::string& title) const;

 private:
  std::vector<u64> buckets_ = std::vector<u64>(kBuckets, 0);
};

}  // namespace eclp::profile
