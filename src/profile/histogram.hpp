// Log2-bucketed histograms of per-thread/per-vertex counter values.
//
// The paper's tables report Avg and Max, but its analysis repeatedly leans
// on the *distribution* behind them ("traversals are either 1 or the full
// degree", "most threads execute few iterations while some spin for
// hundreds"). A log2 histogram captures exactly that shape at counter cost.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/table.hpp"
#include "support/types.hpp"

namespace eclp::profile {

class Log2Histogram {
 public:
  /// Buckets: [0], [1], [2,3], [4,7], ..., [2^(kBuckets-2), inf).
  static constexpr usize kBuckets = 22;

  void add(u64 value, u64 weight = 1);
  /// Bucket a whole sample (e.g. a BucketCounter's values()).
  void add_all(std::span<const u64> values);

  u64 count(usize bucket) const { return buckets_.at(bucket); }
  u64 total() const;
  /// Index of the first bucket such that at least `fraction` of the mass is
  /// at or below it (a coarse quantile).
  usize quantile_bucket(double fraction) const;
  /// Lower bound of a bucket's value range.
  static u64 bucket_floor(usize bucket);
  /// Human-readable bucket label, e.g. "[4,8)".
  static std::string bucket_label(usize bucket);

  void reset() { buckets_.assign(kBuckets, 0); }

  /// Rows only for non-empty buckets; includes a text bar for quick reading.
  Table to_table(const std::string& title) const;

 private:
  std::vector<u64> buckets_ = std::vector<u64>(kBuckets, 0);
};

}  // namespace eclp::profile
