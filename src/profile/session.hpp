// Unified profiling sessions: hierarchical spans over one algorithm run.
//
// The paper's counters (CounterRegistry), the kernel launch timeline
// (sim::Trace), and the bench JSON artifacts each show one face of a run;
// a Session ties them together with *phase structure*:
//
//   algorithm span            opened by the algorithm's run()
//    └─ phase / iteration     RAII ScopedSpan annotations inside run()
//        └─ kernel launch     recorded automatically via sim::LaunchObserver
//
// Every span close snapshots deltas of modeled cycles, device atomics, the
// launch count, and — when a CounterRegistry is attached — every registry
// counter, so "which phase spent what" needs no manual bookkeeping. The
// host pool contributes per-worker wall-clock/utilization samples, putting
// modeled time and real simulator time side by side.
//
// Sessions export two artifacts:
//  * perfetto_json(): Chrome trace-event JSON loadable in Perfetto
//    (https://ui.perfetto.dev). The timebase is MODELED CYCLES (1 cycle
//    rendered as 1 "µs"), never wall-clock, so the trace is byte-stable
//    across machines and sim-thread counts — phases nest on one track,
//    kernels and per-block slices sit on their own tracks, and counter
//    totals ride along as counter tracks.
//  * profile_json(): a versioned, self-describing schema ("eclp.profile"
//    version 1) consumed by tools/eclp_profile_diff for run-to-run
//    regression gating. This artifact additionally carries wall-clock and
//    per-worker samples; see profile/diff.hpp for what is gated.
//
// Attachment model: constructing a Session registers it as the device's
// launch observer AND as the thread-local *current session*, which is what
// the zero-plumbing ScopedSpan annotations in the algorithms consult. Both
// registrations save and restore the previous holder, so sessions nest
// (useful in tests); algorithms run without a session see one thread-local
// null check per annotation and nothing else.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "profile/registry.hpp"
#include "sim/device.hpp"
#include "support/json.hpp"

namespace eclp::profile {

enum class SpanKind : u8 { kAlgorithm, kPhase, kIteration, kOperator, kKernel };
const char* span_kind_name(SpanKind kind);

struct Span {
  u32 id = 0;
  i32 parent = -1;  ///< span id of the parent; -1 for roots
  u32 depth = 0;
  std::string name;
  SpanKind kind = SpanKind::kPhase;
  // Modeled interval (device cycles at open/close).
  u64 start_cycles = 0;
  u64 end_cycles = 0;
  // Real simulator wall-clock interval, ns since the session epoch.
  u64 wall_start_ns = 0;
  u64 wall_end_ns = 0;
  // Device deltas over the span.
  u64 atomics = 0;
  u64 launches = 0;
  // Modeled-LLC deltas over the span; 0/0 (and omitted from every export)
  // while the cache is disabled, so cache-off artifacts are unchanged.
  u64 llc_hits = 0;
  u64 llc_misses = 0;
  /// Registry counter deltas over the span (name-ordered; only counters
  /// that changed). Filled at close when a registry is attached.
  std::vector<std::pair<std::string, u64>> counters;
  // Kernel spans only (kind == kKernel):
  u32 blocks = 0;
  u32 threads_per_block = 0;
  u32 active_threads = 0;
  u32 idle_threads = 0;
  double imbalance = 1.0;
  std::vector<u64> block_cycles;  ///< per-block modeled times

  u64 cycles() const { return end_cycles - start_cycles; }
  u64 wall_ns() const { return wall_end_ns - wall_start_ns; }
};

struct SessionOptions {
  /// Per-block Perfetto tracks are emitted for launches with at most
  /// this many blocks (huge grids would drown the UI); 0 disables them.
  u32 max_block_tracks = 64;
  /// Include wall-clock fields in profile_json(). On by default; tests
  /// that pin artifacts byte-for-byte turn it off.
  bool record_wall = true;
};

class Session : public sim::LaunchObserver {
 public:
  using Options = SessionOptions;

  /// Attach to a device; `registry` (optional, not owned) adds counter
  /// snapshots to every span. Registers this session as the device's
  /// launch observer and as the thread-local current session.
  explicit Session(sim::Device& dev, CounterRegistry* registry = nullptr,
                   Options options = {});
  /// Detaches, restores the previous observer/current session, and — when
  /// set_output() was called — finalizes and writes both artifacts.
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The session the calling thread's annotations attach to, if any.
  static Session* current();

  // --- spans ----------------------------------------------------------------
  u32 open_span(std::string name, SpanKind kind);
  void close_span(u32 id);
  /// Close any spans still open (in LIFO order) and snapshot pool worker
  /// samples. Idempotent; called automatically by the exporters and the
  /// destructor.
  void finalize();

  // --- metadata ---------------------------------------------------------------
  /// Free-form metadata recorded into both artifacts ("algo", "graph",
  /// "seed", ...). Later values for the same key win.
  void set_meta(const std::string& key, const std::string& value);

  /// Write both artifacts on destruction: the profile schema to
  /// `profile_path` and the Perfetto trace next to it (trace_path_for).
  void set_output(std::string profile_path);
  /// "out.json" -> "out.trace.json"; non-.json paths get ".trace.json"
  /// appended.
  static std::string trace_path_for(const std::string& profile_path);

  // --- sim::LaunchObserver ----------------------------------------------------
  void on_launch(const sim::KernelStats& stats,
                 const sim::TraceEvent& event) override;

  // --- results ----------------------------------------------------------------
  std::span<const Span> spans() const { return spans_; }
  std::span<const sim::Pool::WorkerSample> worker_samples() const {
    return workers_;
  }

  /// Chrome trace-event JSON on the modeled-cycle timebase (deterministic).
  std::string perfetto_json();
  /// The versioned profile document (see docs/OBSERVABILITY.md for the
  /// schema). Deterministic except for wall_ns/worker fields.
  json::Value profile();
  std::string profile_json();
  /// Write both artifacts; returns false (with a stderr warning) when a
  /// file cannot be written.
  bool write(const std::string& profile_path);

 private:
  struct OpenState {
    u32 span_id = 0;
    u64 atomics_at_open = 0;
    u64 launches_at_open = 0;
    u64 llc_hits_at_open = 0;
    u64 llc_misses_at_open = 0;
    /// Registry totals at open, name-ordered (consumed when the span
    /// closes to produce the span's counter deltas).
    std::vector<std::pair<std::string, u64>> counter_totals;
  };

  std::vector<std::pair<std::string, u64>> snapshot_counters() const;
  void emit_counter_samples(u64 at_cycles);

  sim::Device& dev_;
  CounterRegistry* registry_;
  Options options_;
  u64 epoch_ns_ = 0;
  u64 start_cycles_ = 0;
  u64 start_launches_ = 0;
  u64 start_llc_hits_ = 0;
  u64 start_llc_misses_ = 0;
  sim::AtomicStats atomics_at_start_;  ///< copy of the device tally at attach
  // Totals frozen at finalize() so exports are stable afterwards.
  u64 final_cycles_ = 0;
  u64 final_launches_ = 0;
  u64 final_llc_hits_ = 0;
  u64 final_llc_misses_ = 0;
  sim::AtomicStats atomics_at_end_;

  std::vector<Span> spans_;
  std::vector<OpenState> stack_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<sim::Pool::WorkerSample> workers_;
  bool finalized_ = false;
  u64 finalize_wall_ns_ = 0;  ///< session wall at finalize (utilization base)

  /// Counter-track samples for the Perfetto export: (cycles, name, total).
  struct CounterSample {
    u64 cycles;
    std::string name;
    u64 total;
  };
  std::vector<CounterSample> counter_samples_;
  std::vector<std::pair<std::string, u64>> last_sampled_totals_;

  std::string output_path_;
  sim::LaunchObserver* prev_observer_ = nullptr;
  Session* prev_current_ = nullptr;
  bool prev_pool_sampling_ = false;  ///< restored on detach
};

/// Zero-plumbing RAII span annotation: attaches to Session::current() and
/// is a no-op (one thread-local load) when no session is active. Use the
/// (kind, base, index) form inside iteration loops — the name string is
/// only built when a session is live.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, SpanKind kind = SpanKind::kPhase)
      : session_(Session::current()) {
    if (session_ != nullptr) id_ = session_->open_span(name, kind);
  }
  ScopedSpan(SpanKind kind, const char* base, u64 index)
      : session_(Session::current()) {
    if (session_ != nullptr) {
      id_ = session_->open_span(std::string(base) + " " +
                                    std::to_string(index),
                                kind);
    }
  }
  ~ScopedSpan() { end(); }
  /// Close the span before the end of the C++ scope (phases that flow into
  /// one another without a natural brace boundary).
  void end() {
    if (session_ != nullptr) session_->close_span(id_);
    session_ = nullptr;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Session* session_;
  u32 id_ = 0;
};

}  // namespace eclp::profile
