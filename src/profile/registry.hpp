// Named ownership of profiling counters plus report generation.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "profile/counters.hpp"
#include "support/table.hpp"

namespace eclp::profile {

/// Owns a set of named counters. Algorithms create their counters here so
/// benches/tests can enumerate and report them uniformly.
class CounterRegistry {
 public:
  /// Create (or fetch, if already present with the same type) a counter.
  template <typename C, typename... Args>
  C& make(const std::string& name, Args&&... args) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      auto owned = std::make_unique<C>(std::forward<Args>(args)...);
      C& ref = *owned;
      counters_.emplace(name, std::move(owned));
      return ref;
    }
    C* existing = dynamic_cast<C*>(it->second.get());
    ECLP_CHECK_MSG(existing != nullptr,
                   "counter '" << name << "' exists with a different type");
    return *existing;
  }

  bool contains(const std::string& name) const {
    return counters_.count(name) != 0;
  }

  const Counter& get(const std::string& name) const {
    auto it = counters_.find(name);
    ECLP_CHECK_MSG(it != counters_.end(), "no counter named '" << name << "'");
    return *it->second;
  }

  usize size() const { return counters_.size(); }

  /// Visit every counter in name order (deterministic — std::map). Profile
  /// sessions use this to snapshot totals at span boundaries.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }

  void reset_all() {
    for (auto& [name, c] : counters_) c->reset();
  }

  /// One row per counter: name, kind, total, avg, max.
  Table report(const std::string& title = "profiling counters") const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

}  // namespace eclp::profile
