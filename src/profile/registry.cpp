#include "profile/registry.hpp"

namespace eclp::profile {

Table CounterRegistry::report(const std::string& title) const {
  Table t(title);
  t.set_header({"counter", "kind", "total", "avg", "max"});
  for (const auto& [name, c] : counters_) {
    const auto s = c->summary();
    t.add_row({name, c->kind(), fmt::grouped(c->total()),
               fmt::fixed(s.mean, 2), fmt::fixed(s.max, 0)});
  }
  return t;
}

}  // namespace eclp::profile
