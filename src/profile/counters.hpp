// Manual profiling counters — the paper's contribution (§3).
//
// The paper instruments CUDA kernels with counters that are "either
// per-thread or cumulative depending on need". We provide four granularities:
//
//   GlobalCounter     one cumulative count across all threads (atomicAdd in
//                     the CUDA original; plain add here — the simulator
//                     serializes steps, and we deliberately do NOT charge the
//                     cost model for profiling operations so instrumented and
//                     uninstrumented runs cost the same, making
//                     paper-§3-style overhead concerns visible only in wall
//                     clock, not in the modeled results);
//   PerThreadCounter  one slot per launched thread (paper Tables 2-3);
//   PerBlockCounter   one slot per thread block (paper Figure 1);
//   PerVertexCounter  one slot per graph vertex (paper Table 5).
//
// All counters expose summary() so reports can print the Avg/Max columns the
// paper's tables use.
//
// Host parallelism: block-independent launches (sim/device.hpp) may execute
// kernel bodies on several host worker threads at once, so inc() routes
// through a per-worker *shard* keyed on the calling thread's worker slot
// (support/worker.hpp). Shards are folded in worker-slot order when a value
// is read. Because every fold is a sum of u64 event counts, the totals are
// bit-identical for any worker count and any steal schedule. Reads
// (value/total/at/values/summary) must not race with in-flight kernel
// writes — the simulator guarantees this by joining every launch before it
// returns.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"
#include "support/worker.hpp"

namespace eclp::profile {

/// Abstract counter; the registry stores these polymorphically.
class Counter {
 public:
  virtual ~Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  virtual void reset() = 0;
  virtual u64 total() const = 0;
  /// "global", "per-thread", "per-block", or "per-vertex".
  virtual std::string kind() const = 0;
  virtual stats::Summary summary() const = 0;

 protected:
  Counter() = default;
};

/// Cumulative event count across all threads. Increments land in the
/// calling worker's cache-line-padded shard; value() is the shard sum.
class GlobalCounter final : public Counter {
 public:
  void inc(u64 n = 1) { shards_[current_worker_slot()].count += n; }
  u64 value() const {
    u64 t = 0;
    for (const Shard& s : shards_) t += s.count;
    return t;
  }

  void reset() override {
    for (Shard& s : shards_) s.count = 0;
  }
  u64 total() const override { return value(); }
  std::string kind() const override { return "global"; }
  stats::Summary summary() const override {
    stats::Summary s;
    s.count = 1;
    s.total = s.min = s.max = s.mean = static_cast<double>(value());
    return s;
  }

 private:
  struct alignas(64) Shard {
    u64 count = 0;
  };
  std::array<Shard, kMaxWorkerSlots> shards_{};
};

/// One counter slot per bucket (thread / block / vertex). Increments from
/// pool workers land in lazily allocated per-worker shard vectors; reads
/// fold the shards into the primary slots in worker-slot order first.
class BucketCounter : public Counter {
 public:
  explicit BucketCounter(usize buckets = 0) : slots_(buckets, 0) {}

  /// (Re)size, zeroing all slots. Call before each instrumented launch with
  /// the launch's thread/block count. Shard vectors allocated by earlier
  /// launches are kept as arenas and re-zeroed at the new size — an
  /// instrumented launch loop never re-heap-allocates a shard it already
  /// owns.
  void resize(usize buckets) {
    slots_.assign(buckets, 0);
    zero_shards(buckets);
  }
  usize size() const { return slots_.size(); }

  void inc(usize bucket, u64 n = 1) {
    ECLP_ASSERT_MSG(bucket < slots_.size(),
                    "counter bucket " << bucket << " out of range "
                                      << slots_.size());
    const u32 slot = current_worker_slot();
    if (slot == 0) {
      slots_[bucket] += n;
      return;
    }
    // Worker slot s only ever touches shards_[s - 1], so lazy allocation
    // needs no synchronization.
    auto& shard = shards_[slot - 1];
    if (shard == nullptr) {
      shard = std::make_unique<std::vector<u64>>(slots_.size(), 0);
    }
    (*shard)[bucket] += n;
  }
  u64 at(usize bucket) const {
    consolidate();
    return slots_.at(bucket);
  }
  std::span<const u64> values() const {
    consolidate();
    return slots_;
  }

  void reset() override {
    std::fill(slots_.begin(), slots_.end(), 0);
    zero_shards(slots_.size());
  }
  u64 total() const override {
    consolidate();
    u64 t = 0;
    for (const u64 v : slots_) t += v;
    return t;
  }
  stats::Summary summary() const override {
    consolidate();
    return stats::summarize(std::span<const u64>(slots_));
  }

 private:
  /// Fold worker shards into the primary slots (worker-slot order; sums,
  /// so the result is independent of which worker ran which block).
  void consolidate() const {
    for (auto& shard : shards_) {
      if (shard == nullptr) continue;
      for (usize i = 0; i < slots_.size(); ++i) {
        slots_[i] += (*shard)[i];
        (*shard)[i] = 0;
      }
    }
  }
  /// Re-zero existing shard arenas at the given size, keeping their heap
  /// allocations alive for the next launch (assign reuses capacity).
  void zero_shards(usize buckets) {
    for (auto& shard : shards_) {
      if (shard != nullptr) shard->assign(buckets, 0);
    }
  }

  mutable std::vector<u64> slots_;
  mutable std::array<std::unique_ptr<std::vector<u64>>, kMaxWorkerSlots - 1>
      shards_{};
};

class PerThreadCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-thread"; }
};

class PerBlockCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-block"; }
};

class PerVertexCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-vertex"; }
};

}  // namespace eclp::profile
