// Manual profiling counters — the paper's contribution (§3).
//
// The paper instruments CUDA kernels with counters that are "either
// per-thread or cumulative depending on need". We provide four granularities:
//
//   GlobalCounter     one cumulative count across all threads (atomicAdd in
//                     the CUDA original; plain add here — the simulator
//                     serializes steps, and we deliberately do NOT charge the
//                     cost model for profiling operations so instrumented and
//                     uninstrumented runs cost the same, making
//                     paper-§3-style overhead concerns visible only in wall
//                     clock, not in the modeled results);
//   PerThreadCounter  one slot per launched thread (paper Tables 2-3);
//   PerBlockCounter   one slot per thread block (paper Figure 1);
//   PerVertexCounter  one slot per graph vertex (paper Table 5).
//
// All counters expose summary() so reports can print the Avg/Max columns the
// paper's tables use.
#pragma once

#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace eclp::profile {

/// Abstract counter; the registry stores these polymorphically.
class Counter {
 public:
  virtual ~Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  virtual void reset() = 0;
  virtual u64 total() const = 0;
  /// "global", "per-thread", "per-block", or "per-vertex".
  virtual std::string kind() const = 0;
  virtual stats::Summary summary() const = 0;

 protected:
  Counter() = default;
};

/// Cumulative event count across all threads.
class GlobalCounter final : public Counter {
 public:
  void inc(u64 n = 1) { value_ += n; }
  u64 value() const { return value_; }

  void reset() override { value_ = 0; }
  u64 total() const override { return value_; }
  std::string kind() const override { return "global"; }
  stats::Summary summary() const override {
    stats::Summary s;
    s.count = 1;
    s.total = s.min = s.max = s.mean = static_cast<double>(value_);
    return s;
  }

 private:
  u64 value_ = 0;
};

/// One counter slot per bucket (thread / block / vertex).
class BucketCounter : public Counter {
 public:
  explicit BucketCounter(usize buckets = 0) : slots_(buckets, 0) {}

  /// (Re)size, zeroing all slots. Call before each instrumented launch with
  /// the launch's thread/block count.
  void resize(usize buckets) { slots_.assign(buckets, 0); }
  usize size() const { return slots_.size(); }

  void inc(usize bucket, u64 n = 1) {
    ECLP_CHECK_MSG(bucket < slots_.size(),
                   "counter bucket " << bucket << " out of range "
                                     << slots_.size());
    slots_[bucket] += n;
  }
  u64 at(usize bucket) const { return slots_.at(bucket); }
  std::span<const u64> values() const { return slots_; }

  void reset() override { std::fill(slots_.begin(), slots_.end(), 0); }
  u64 total() const override {
    u64 t = 0;
    for (const u64 v : slots_) t += v;
    return t;
  }
  stats::Summary summary() const override {
    return stats::summarize(std::span<const u64>(slots_));
  }

 private:
  std::vector<u64> slots_;
};

class PerThreadCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-thread"; }
};

class PerBlockCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-block"; }
};

class PerVertexCounter final : public BucketCounter {
 public:
  using BucketCounter::BucketCounter;
  std::string kind() const override { return "per-vertex"; }
};

}  // namespace eclp::profile
