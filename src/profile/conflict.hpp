// Detection of conflicting atomic updates.
//
// The paper's Figure 2 reports, per ECL-MST iteration, "the percentage of
// conflicting threads (attempting atomic updates to the same memory
// location)". No profiler exposes that; it needs the algorithm-level mapping
// from atomic operation to logical target. Kernels record
// (location, thread) pairs during a launch; afterwards, every thread that
// touched a location also touched by another thread counts as conflicting.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace eclp::profile {

class ConflictTracker {
 public:
  /// Record that `thread` attempted an atomic on logical location `loc`.
  void record(u64 loc, u32 thread) { events_.push_back({loc, thread}); }

  usize num_events() const { return events_.size(); }

  /// Distinct threads that attempted at least one atomic.
  usize attempting_threads() const;

  /// Distinct threads that attempted an atomic on a location another thread
  /// also targeted.
  usize conflicting_threads() const;

  /// Distinct locations targeted by 2+ distinct threads.
  usize contended_locations() const;

  void reset() { events_.clear(); }

 private:
  struct Event {
    u64 loc;
    u32 thread;
  };
  std::vector<Event> events_;
};

}  // namespace eclp::profile
