// Run-to-run regression gating over eclp.profile documents.
//
// eclp_profile_diff (tools/) compares a candidate profile against a
// baseline per-kernel and per-counter, with configurable tolerances, and
// exits non-zero on regression. The comparison itself lives here as a
// library so tests can gate without spawning processes.
//
// What is gated (all purely modeled, so bit-stable across machines and
// sim-thread counts — wall_ns and workers are deliberately ignored):
//  * totals.modeled_cycles and per-kernel modeled_cycles, against
//    cycle_tolerance_pct;
//  * totals.atomics, per-kernel atomics, and every entry of "counters",
//    against counter_tolerance_pct (default 0: counters are deterministic,
//    any growth is a real behavior change);
//  * kernels/counters present only on one side are reported as added /
//    removed — informational, never a regression by themselves (renames
//    and phase restructuring should not fail the gate; their cost shows
//    up in the totals).
// Decreases are reported as improvements and never fail the gate.
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/types.hpp"

namespace eclp::profile {

struct DiffOptions {
  /// Allowed growth of modeled-cycle metrics, in percent.
  double cycle_tolerance_pct = 2.0;
  /// Allowed growth of event-count metrics (atomics, counters, launches),
  /// in percent. Zero by default: modeled counts are deterministic.
  double counter_tolerance_pct = 0.0;
};

enum class DiffStatus : u8 {
  kOk,        ///< within tolerance (including unchanged)
  kImproved,  ///< decreased — reported, never gated
  kRegressed, ///< grew beyond tolerance
  kAdded,     ///< only in the candidate (informational)
  kRemoved,   ///< only in the baseline (informational)
};
const char* diff_status_name(DiffStatus status);

struct DiffEntry {
  std::string metric;  ///< e.g. "kernel/cc_compute_low/modeled_cycles"
  double base = 0.0;
  double cand = 0.0;
  double delta_pct = 0.0;  ///< (cand - base) / base * 100; 0 when base == 0
  DiffStatus status = DiffStatus::kOk;
};

struct DiffReport {
  std::vector<DiffEntry> entries;
  u32 regressions() const;
  /// Human-readable listing; `all` includes unchanged metrics.
  std::string to_string(bool all = false) const;
};

/// Structural validation of an eclp.profile document: schema tag, version,
/// required sections and their field types. Throws CheckFailure with a
/// field-path message on the first violation.
void validate_profile(const json::Value& doc);

/// Compare candidate against baseline. Both documents are validated first.
DiffReport diff_profiles(const json::Value& base, const json::Value& cand,
                         const DiffOptions& options = {});

}  // namespace eclp::profile
