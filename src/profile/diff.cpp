#include "profile/diff.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace eclp::profile {

namespace {

/// Fetch doc[path...] asserting presence; used by the validator so every
/// failure names the offending field.
const json::Value& require_member(const json::Value& obj, const char* key,
                                  const char* where) {
  const json::Value* v = obj.find(key);
  ECLP_CHECK_MSG(v != nullptr, "profile: missing '" << where << "." << key
                                                    << "'");
  return *v;
}

void require_number(const json::Value& obj, const char* key,
                    const char* where) {
  ECLP_CHECK_MSG(require_member(obj, key, where).is_number(),
                 "profile: '" << where << "." << key << "' must be a number");
}

void require_string(const json::Value& obj, const char* key,
                    const char* where) {
  ECLP_CHECK_MSG(require_member(obj, key, where).is_string(),
                 "profile: '" << where << "." << key << "' must be a string");
}

/// Name-keyed map of the "kernels" array.
std::map<std::string, const json::Value*> kernels_by_name(
    const json::Value& doc) {
  std::map<std::string, const json::Value*> out;
  for (const json::Value& k : doc.at("kernels").items()) {
    out.emplace(k.at("name").as_string(), &k);
  }
  return out;
}

}  // namespace

const char* diff_status_name(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kImproved: return "improved";
    case DiffStatus::kRegressed: return "REGRESSED";
    case DiffStatus::kAdded: return "added";
    case DiffStatus::kRemoved: return "removed";
  }
  return "unknown";
}

u32 DiffReport::regressions() const {
  u32 n = 0;
  for (const DiffEntry& e : entries) {
    if (e.status == DiffStatus::kRegressed) ++n;
  }
  return n;
}

std::string DiffReport::to_string(bool all) const {
  std::string out;
  char line[256];
  for (const DiffEntry& e : entries) {
    if (!all && e.status == DiffStatus::kOk) continue;
    std::snprintf(line, sizeof(line), "%-10s %-48s %14.0f -> %14.0f (%+.2f%%)\n",
                  diff_status_name(e.status), e.metric.c_str(), e.base, e.cand,
                  e.delta_pct);
    out += line;
  }
  const u32 n = regressions();
  std::snprintf(line, sizeof(line), "%u regression%s\n", n, n == 1 ? "" : "s");
  out += line;
  return out;
}

void validate_profile(const json::Value& doc) {
  ECLP_CHECK_MSG(doc.is_object(), "profile: document must be an object");
  require_string(doc, "schema", "$");
  ECLP_CHECK_MSG(doc.at("schema").as_string() == "eclp.profile",
                 "profile: schema tag is '" << doc.at("schema").as_string()
                                            << "', expected 'eclp.profile'");
  require_number(doc, "version", "$");
  ECLP_CHECK_MSG(doc.at("version").as_u64() == 1,
                 "profile: unsupported version " << doc.at("version").as_u64());

  ECLP_CHECK_MSG(require_member(doc, "meta", "$").is_object(),
                 "profile: 'meta' must be an object");
  for (const auto& [key, value] : doc.at("meta").members()) {
    ECLP_CHECK_MSG(value.is_string(),
                   "profile: 'meta." << key << "' must be a string");
  }

  const json::Value& totals = require_member(doc, "totals", "$");
  ECLP_CHECK_MSG(totals.is_object(), "profile: 'totals' must be an object");
  require_number(totals, "modeled_cycles", "totals");
  require_number(totals, "launches", "totals");
  require_number(totals, "atomics", "totals");
  require_number(totals, "spans", "totals");

  const json::Value& spans = require_member(doc, "spans", "$");
  ECLP_CHECK_MSG(spans.is_array(), "profile: 'spans' must be an array");
  ECLP_CHECK_MSG(spans.items().size() == totals.at("spans").as_u64(),
                 "profile: totals.spans says "
                     << totals.at("spans").as_u64() << " but 'spans' holds "
                     << spans.items().size());
  for (const json::Value& s : spans.items()) {
    ECLP_CHECK_MSG(s.is_object(), "profile: span entries must be objects");
    require_number(s, "id", "spans[]");
    require_number(s, "parent", "spans[]");
    require_string(s, "kind", "spans[]");
    require_string(s, "name", "spans[]");
    require_number(s, "start_cycles", "spans[]");
    require_number(s, "cycles", "spans[]");
    const std::string& kind = s.at("kind").as_string();
    ECLP_CHECK_MSG(kind == "algorithm" || kind == "phase" ||
                       kind == "iteration" || kind == "operator" ||
                       kind == "kernel",
                   "profile: unknown span kind '" << kind << "'");
    const double parent = s.at("parent").as_number();
    ECLP_CHECK_MSG(parent >= -1.0 && parent < s.at("id").as_number(),
                   "profile: span " << s.at("id").as_number()
                                    << " has invalid parent " << parent);
  }

  const json::Value& kernels = require_member(doc, "kernels", "$");
  ECLP_CHECK_MSG(kernels.is_array(), "profile: 'kernels' must be an array");
  for (const json::Value& k : kernels.items()) {
    ECLP_CHECK_MSG(k.is_object(), "profile: kernel entries must be objects");
    require_string(k, "name", "kernels[]");
    require_number(k, "launches", "kernels[]");
    require_number(k, "modeled_cycles", "kernels[]");
    require_number(k, "atomics", "kernels[]");
  }

  const json::Value& counters = require_member(doc, "counters", "$");
  ECLP_CHECK_MSG(counters.is_object(), "profile: 'counters' must be an object");
  for (const auto& [key, value] : counters.members()) {
    ECLP_CHECK_MSG(value.is_number(),
                   "profile: 'counters." << key << "' must be a number");
  }

  const json::Value& workers = require_member(doc, "workers", "$");
  ECLP_CHECK_MSG(workers.is_array(), "profile: 'workers' must be an array");
  for (const json::Value& w : workers.items()) {
    ECLP_CHECK_MSG(w.is_object(), "profile: worker entries must be objects");
    require_number(w, "worker", "workers[]");
    require_number(w, "busy_ns", "workers[]");
  }
}

DiffReport diff_profiles(const json::Value& base, const json::Value& cand,
                         const DiffOptions& options) {
  validate_profile(base);
  validate_profile(cand);
  DiffReport report;

  const auto compare = [&](std::string metric, double b, double c,
                           double tolerance_pct) {
    DiffEntry e;
    e.metric = std::move(metric);
    e.base = b;
    e.cand = c;
    e.delta_pct = b == 0.0 ? 0.0 : (c - b) / b * 100.0;
    if (c > b) {
      // Growth from zero has no meaningful percentage; any growth beyond
      // an absolute zero baseline regresses unless the tolerance is
      // explicitly non-zero (which then admits everything from zero —
      // documented behavior of percentage gates).
      const bool within =
          b == 0.0 ? tolerance_pct > 0.0 : e.delta_pct <= tolerance_pct;
      e.status = within ? DiffStatus::kOk : DiffStatus::kRegressed;
    } else if (c < b) {
      e.status = DiffStatus::kImproved;
    } else {
      e.status = DiffStatus::kOk;
    }
    report.entries.push_back(std::move(e));
  };

  const json::Value& bt = base.at("totals");
  const json::Value& ct = cand.at("totals");
  compare("totals/modeled_cycles", bt.at("modeled_cycles").as_number(),
          ct.at("modeled_cycles").as_number(), options.cycle_tolerance_pct);
  compare("totals/launches", bt.at("launches").as_number(),
          ct.at("launches").as_number(), options.counter_tolerance_pct);
  compare("totals/atomics", bt.at("atomics").as_number(),
          ct.at("atomics").as_number(), options.counter_tolerance_pct);

  const auto base_kernels = kernels_by_name(base);
  const auto cand_kernels = kernels_by_name(cand);
  for (const auto& [name, bk] : base_kernels) {
    const auto it = cand_kernels.find(name);
    if (it == cand_kernels.end()) {
      report.entries.push_back({"kernel/" + name,
                                bk->at("modeled_cycles").as_number(), 0.0, 0.0,
                                DiffStatus::kRemoved});
      continue;
    }
    const json::Value& ck = *it->second;
    compare("kernel/" + name + "/modeled_cycles",
            bk->at("modeled_cycles").as_number(),
            ck.at("modeled_cycles").as_number(), options.cycle_tolerance_pct);
    compare("kernel/" + name + "/launches", bk->at("launches").as_number(),
            ck.at("launches").as_number(), options.counter_tolerance_pct);
    compare("kernel/" + name + "/atomics", bk->at("atomics").as_number(),
            ck.at("atomics").as_number(), options.counter_tolerance_pct);
    // Modeled-LLC misses are optional (emitted only when the cache
    // classified something); gate them whenever either side recorded any,
    // treating the absent side as zero. Hits are informational — more hits
    // are not a regression — so only misses are gated per kernel.
    const json::Value* bm = bk->find("llc_misses");
    const json::Value* cm = ck.find("llc_misses");
    if (bm != nullptr || cm != nullptr) {
      compare("kernel/" + name + "/llc_misses",
              bm == nullptr ? 0.0 : bm->as_number(),
              cm == nullptr ? 0.0 : cm->as_number(),
              options.counter_tolerance_pct);
    }
  }
  for (const auto& [name, ck] : cand_kernels) {
    if (base_kernels.count(name) == 0) {
      report.entries.push_back({"kernel/" + name, 0.0,
                                ck->at("modeled_cycles").as_number(), 0.0,
                                DiffStatus::kAdded});
    }
  }

  // Counters: union of both documents' names, name-ordered.
  std::map<std::string, std::pair<const json::Value*, const json::Value*>>
      counter_union;
  for (const auto& [name, value] : base.at("counters").members()) {
    counter_union[name].first = &value;
  }
  for (const auto& [name, value] : cand.at("counters").members()) {
    counter_union[name].second = &value;
  }
  for (const auto& [name, sides] : counter_union) {
    if (sides.first == nullptr) {
      report.entries.push_back({"counter/" + name, 0.0,
                                sides.second->as_number(), 0.0,
                                DiffStatus::kAdded});
    } else if (sides.second == nullptr) {
      report.entries.push_back({"counter/" + name, sides.first->as_number(),
                                0.0, 0.0, DiffStatus::kRemoved});
    } else {
      // llc.hits is informational: hit growth usually means *better*
      // locality (llc.misses carries the regression gate), so it gets an
      // effectively unlimited tolerance but still shows in the report.
      const double tolerance = name == "llc.hits"
                                   ? 1e18
                                   : options.counter_tolerance_pct;
      compare("counter/" + name, sides.first->as_number(),
              sides.second->as_number(), tolerance);
    }
  }

  return report;
}

}  // namespace eclp::profile
