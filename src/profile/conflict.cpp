#include "profile/conflict.hpp"

#include <algorithm>

namespace eclp::profile {

namespace {

/// Sorted copy grouped by (loc, thread) with same-(loc,thread) dupes removed
/// — a thread hammering one location multiple times is one participant.
std::vector<std::pair<u64, u32>> normalized(
    const std::vector<std::pair<u64, u32>>& events) {
  auto v = events;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

usize ConflictTracker::attempting_threads() const {
  std::vector<u32> threads;
  threads.reserve(events_.size());
  for (const auto& e : events_) threads.push_back(e.thread);
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  return threads.size();
}

usize ConflictTracker::conflicting_threads() const {
  std::vector<std::pair<u64, u32>> v;
  v.reserve(events_.size());
  for (const auto& e : events_) v.push_back({e.loc, e.thread});
  v = normalized(v);

  std::vector<u32> conflicted;
  usize i = 0;
  while (i < v.size()) {
    usize j = i;
    while (j < v.size() && v[j].first == v[i].first) ++j;
    if (j - i >= 2) {
      for (usize k = i; k < j; ++k) conflicted.push_back(v[k].second);
    }
    i = j;
  }
  std::sort(conflicted.begin(), conflicted.end());
  conflicted.erase(std::unique(conflicted.begin(), conflicted.end()),
                   conflicted.end());
  return conflicted.size();
}

usize ConflictTracker::contended_locations() const {
  std::vector<std::pair<u64, u32>> v;
  v.reserve(events_.size());
  for (const auto& e : events_) v.push_back({e.loc, e.thread});
  v = normalized(v);

  usize count = 0;
  usize i = 0;
  while (i < v.size()) {
    usize j = i;
    while (j < v.size() && v[j].first == v[i].first) ++j;
    if (j - i >= 2) ++count;
    i = j;
  }
  return count;
}

}  // namespace eclp::profile
