// Per-iteration metric recording for the paper's figures.
//
// IterationSeries captures named scalar metrics per kernel iteration — the
// shape of Figure 2 (ECL-MST: % threads with work, % conflicts, % useless
// atomics for each Regular/Filter iteration).
//
// BlockSeries captures a per-block value for each (outer m, inner n)
// signature-propagation iteration — the shape of Figure 1 (ECL-SCC).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/table.hpp"
#include "support/types.hpp"

namespace eclp::profile {

/// Fixed-column series of per-iteration metrics.
class IterationSeries {
 public:
  explicit IterationSeries(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    ECLP_CHECK(!columns_.empty());
  }

  void add_row(std::string label, std::vector<double> values) {
    ECLP_CHECK_MSG(values.size() == columns_.size(),
                   "series row arity " << values.size() << " != "
                                       << columns_.size());
    labels_.push_back(std::move(label));
    rows_.push_back(std::move(values));
  }

  usize rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::string& label(usize i) const { return labels_.at(i); }
  std::span<const double> row(usize i) const { return rows_.at(i); }
  double value(usize row, usize col) const { return rows_.at(row).at(col); }

  /// Column by name across all rows (one figure line).
  std::vector<double> column(const std::string& name) const;

  Table to_table(const std::string& title, int digits = 2) const;
  void clear() {
    labels_.clear();
    rows_.clear();
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::string> labels_;
  std::vector<std::vector<double>> rows_;
};

/// Per-block snapshots keyed by (outer, inner) iteration counters.
class BlockSeries {
 public:
  struct Snapshot {
    u32 outer = 0;  ///< the paper's m
    u64 inner = 0;  ///< the paper's n
    std::vector<u64> per_block;
  };

  void record(u32 outer, u64 inner, std::vector<u64> per_block) {
    snapshots_.push_back({outer, inner, std::move(per_block)});
  }

  std::span<const Snapshot> snapshots() const { return snapshots_; }
  usize size() const { return snapshots_.size(); }

  /// Find a snapshot; nullptr if absent.
  const Snapshot* find(u32 outer, u64 inner) const;
  /// Largest inner iteration recorded for a given outer iteration.
  u64 max_inner(u32 outer) const;
  /// Largest outer iteration recorded.
  u32 max_outer() const;

  /// Summary table: one row per snapshot with active-block count and
  /// total/mean/max updates (the textual equivalent of Figure 1's panels).
  Table to_table(const std::string& title) const;
  /// Full CSV: outer,inner,block,value — one line per block per snapshot,
  /// suitable for regenerating the figure with any plotting tool.
  std::string to_csv() const;

  void clear() { snapshots_.clear(); }

 private:
  std::vector<Snapshot> snapshots_;
};

}  // namespace eclp::profile
