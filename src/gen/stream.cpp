#include "gen/stream.hpp"

#include <atomic>

#include "graph/stream_build.hpp"

namespace eclp::gen {

namespace {

// Scheduling granularity only — the generated graph is chunk-count-
// invariant by construction (block-aligned chunk boundaries). 64 gives
// the work-stealing pool slack over any realistic host thread count.
constexpr u64 kDefaultGenChunks = 64;
std::atomic<u64> g_gen_chunks{kDefaultGenChunks};

}  // namespace

u64 gen_chunks() { return g_gen_chunks.load(std::memory_order_relaxed); }

void set_gen_chunks(u64 chunks) {
  g_gen_chunks.store(chunks == 0 ? kDefaultGenChunks : chunks,
                     std::memory_order_relaxed);
}

namespace detail {

u64 stream_chunks(u64 requested, u64 blocks) {
  const u64 want = requested == 0 ? gen_chunks() : requested;
  return std::max<u64>(1, std::min(want, std::max<u64>(1, blocks)));
}

}  // namespace detail

PreferentialAttachmentStream::PreferentialAttachmentStream(vidx n, u32 m,
                                                           u64 seed,
                                                           u64 chunks)
    : n_(n),
      m_(m),
      seed_(seed),
      attach_edges_(static_cast<u64>(n - m - 1) * m),
      chunks_(detail::stream_chunks(chunks, attach_edges_)) {
  ECLP_CHECK(n > m && m >= 1);
  // Seed clique over the first m+1 vertices, flattened into endpoint
  // positions: clique edge p contributes positions 2p (its lower
  // endpoint) and 2p+1 (its upper). Tiny — (m+1)m entries.
  skeleton_.reserve(static_cast<usize>(m + 1) * m);
  for (vidx u = 0; u <= m; ++u) {
    for (vidx v = u + 1; v <= m; ++v) {
      skeleton_.push_back(u);
      skeleton_.push_back(v);
    }
  }
}

graph::Csr uniform_random_streamed(vidx n, u64 edges, u64 seed,
                                   u64 chunks) {
  return graph::build_from_chunks(
      UniformRandomStream(n, edges, seed, chunks));
}

graph::Csr rmat_streamed(u32 scale, u64 edges, double a, double b,
                         double c, u64 seed, u64 chunks) {
  return graph::build_from_chunks(
      RmatStream(scale, edges, a, b, c, seed, chunks));
}

graph::Csr kronecker_streamed(u32 scale, u64 edges, u64 seed, u64 chunks) {
  // Same parameterization kronecker() uses over rmat().
  return rmat_streamed(scale, edges, 0.57, 0.19, 0.19, seed, chunks);
}

graph::Csr preferential_attachment_streamed(vidx n, u32 m, u64 seed,
                                            u64 chunks) {
  return graph::build_from_chunks(
      PreferentialAttachmentStream(n, m, seed, chunks));
}

}  // namespace eclp::gen
