#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>

#include "gen/distributions.hpp"
#include "graph/builder.hpp"
#include "support/prng.hpp"

namespace eclp::gen {

using graph::BuildOptions;
using graph::Builder;
using graph::Csr;

Csr grid2d_torus(u32 side) {
  ECLP_CHECK(side >= 3);
  const vidx n = side * side;
  Builder b(n);
  b.reserve_edges(static_cast<usize>(n) * 2);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      b.add(id(x, y), id((x + 1) % side, y));
      b.add(id(x, y), id(x, (y + 1) % side));
    }
  }
  return b.build();
}

Csr triangulated_grid(u32 side, u64 seed) {
  ECLP_CHECK(side >= 3);
  const vidx n = side * side;
  Rng rng(seed);
  Builder b(n);
  b.reserve_edges(static_cast<usize>(n) * 3);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      const u32 xr = (x + 1) % side, yd = (y + 1) % side;
      b.add(id(x, y), id(xr, y));
      b.add(id(x, y), id(x, yd));
      // One diagonal per cell, random orientation — degrees land in 4..8,
      // mimicking a planar triangulation's degree spread.
      if (rng.chance(0.5)) {
        b.add(id(x, y), id(xr, yd));
      } else {
        b.add(id(xr, y), id(x, yd));
      }
    }
  }
  return b.build();
}

Csr uniform_random(vidx n, u64 edges, u64 seed) {
  ECLP_CHECK(n >= 2);
  Rng rng(seed);
  Builder b(n);
  b.reserve_edges(edges);
  for (u64 e = 0; e < edges; ++e) {
    const vidx u = static_cast<vidx>(rng.below(n));
    vidx v = static_cast<vidx>(rng.below(n));
    while (v == u) v = static_cast<vidx>(rng.below(n));
    b.add(u, v);
  }
  return b.build();
}

Csr rmat(u32 scale, u64 edges, double a, double b, double c, u64 seed) {
  ECLP_CHECK(scale >= 2 && scale <= 28);
  ECLP_CHECK(a + b + c < 1.0 + 1e-9);
  Rng rng(seed);
  Builder builder(vidx{1} << scale);
  builder.reserve_edges(edges);
  for (u64 e = 0; e < edges; ++e) {
    const auto [u, v] = rmat_edge(rng, scale, a, b, c);
    if (u == v) continue;
    builder.add(u, v);
  }
  return builder.build();
}

Csr kronecker(u32 scale, u64 edges, u64 seed) {
  return rmat(scale, edges, 0.57, 0.19, 0.19, seed);
}

Csr preferential_attachment(vidx n, u32 m, u64 seed) {
  ECLP_CHECK(n > m && m >= 1);
  Rng rng(seed);
  Builder b(n);
  b.reserve_edges(static_cast<usize>(n) * m);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // is degree-proportional sampling.
  std::vector<vidx> targets;
  targets.reserve(static_cast<usize>(n) * m * 2);
  // Seed clique over the first m+1 vertices.
  for (vidx u = 0; u <= m; ++u) {
    for (vidx v = u + 1; v <= m; ++v) {
      b.add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (vidx u = m + 1; u < n; ++u) {
    for (u32 k = 0; k < m; ++k) {
      const vidx v = targets[rng.below(targets.size())];
      if (v == u) continue;
      b.add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return b.build();
}

Csr internet_topology(vidx n, u64 seed) {
  ECLP_CHECK(n >= 8);
  Rng rng(seed);
  Builder b(n);
  std::vector<vidx> targets;
  targets.reserve(static_cast<usize>(n) * 4);
  for (vidx u = 0; u < 4; ++u) {
    for (vidx v = u + 1; v < 4; ++v) {
      b.add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (vidx u = 4; u < n; ++u) {
    // Mostly stub networks (1 uplink), some multihomed (2), rare exchanges.
    const double r = rng.unit();
    const u32 m = r < 0.62 ? 1 : (r < 0.94 ? 2 : 4);
    for (u32 k = 0; k < m; ++k) {
      const vidx v = targets[rng.below(targets.size())];
      if (v == u) continue;
      b.add(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return b.build();
}

Csr citation(vidx n, double avg_out, double p_no_citation, u64 seed) {
  ECLP_CHECK(n >= 2);
  ECLP_CHECK(avg_out > 0.0);
  ECLP_CHECK(p_no_citation >= 0.0 && p_no_citation < 1.0);
  Rng rng(seed);
  Builder b(n);
  // Citing vertices emit Geometric-ish out-degrees with the target mean.
  const double mean_when_citing = avg_out / (1.0 - p_no_citation);
  for (vidx u = 1; u < n; ++u) {
    if (rng.chance(p_no_citation)) continue;
    // Sample a positive out-degree with the desired conditional mean.
    u32 k = 1;
    while (rng.chance(1.0 - 1.0 / mean_when_citing) && k < 64) ++k;
    for (u32 j = 0; j < k; ++j) {
      // Recency bias: mostly cite recent work, occasionally old classics.
      vidx v;
      if (rng.chance(0.8)) {
        const vidx window = std::max<vidx>(1, std::min<vidx>(u, n / 16));
        v = u - 1 - static_cast<vidx>(rng.below(window));
      } else {
        v = static_cast<vidx>(rng.below(u));
      }
      b.add(u, v);
    }
  }
  return b.build();
}

Csr road_network(u32 side, double q, u64 seed) {
  ECLP_CHECK(side >= 3);
  ECLP_CHECK(q >= 0.0 && q <= 1.0);
  const vidx n = side * side;
  Rng rng(seed);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };

  // Random spanning tree via randomized DFS over the (non-torus) grid.
  std::vector<bool> visited(n, false);
  std::vector<vidx> stack;
  Builder b(n);
  stack.push_back(0);
  visited[0] = true;
  // Collect all grid edges first.
  std::vector<std::pair<vidx, vidx>> grid_edges;
  grid_edges.reserve(static_cast<usize>(n) * 2);
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      if (x + 1 < side) grid_edges.push_back({id(x, y), id(x + 1, y)});
      if (y + 1 < side) grid_edges.push_back({id(x, y), id(x, y + 1)});
    }
  }
  // Adjacency for DFS.
  std::vector<std::vector<vidx>> adj(n);
  for (const auto& [u, v] : grid_edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<std::pair<vidx, vidx>> in_tree;
  while (!stack.empty()) {
    const vidx u = stack.back();
    stack.pop_back();
    rng.shuffle(adj[u]);
    for (const vidx v : adj[u]) {
      if (!visited[v]) {
        visited[v] = true;
        in_tree.push_back({u, v});
        stack.push_back(v);
        stack.push_back(u);  // continue exploring u later (iterative DFS)
        break;
      }
    }
  }
  // Membership set for tree edges (normalized order).
  auto norm = [](std::pair<vidx, vidx> e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  std::vector<std::pair<vidx, vidx>> tree_sorted;
  tree_sorted.reserve(in_tree.size());
  for (auto e : in_tree) tree_sorted.push_back(norm(e));
  std::sort(tree_sorted.begin(), tree_sorted.end());

  for (const auto& e : in_tree) b.add(e.first, e.second);
  for (const auto& e : grid_edges) {
    if (std::binary_search(tree_sorted.begin(), tree_sorted.end(), norm(e))) {
      continue;
    }
    if (rng.chance(q)) b.add(e.first, e.second);
  }
  return b.build();
}

Csr clique_union(vidx n, usize cliques, u32 min_size, u32 max_size,
                 u64 seed) {
  ECLP_CHECK(n >= max_size && max_size >= min_size && min_size >= 2);
  Rng rng(seed);
  Builder b(n);
  std::vector<vidx> members;
  for (usize c = 0; c < cliques; ++c) {
    // Zipf-ish size: small papers common, big collaborations rare.
    const double z = rng.unit();
    const u32 size = min_size + static_cast<u32>((max_size - min_size) *
                                                 z * z * z);
    members.clear();
    // Authors cluster: pick a community anchor and draw members near it.
    const vidx anchor = static_cast<vidx>(rng.below(n));
    for (u32 k = 0; k < size; ++k) {
      const vidx span = std::max<vidx>(64, n / 256);
      const vidx offset = static_cast<vidx>(rng.below(span));
      members.push_back((anchor + offset) % n);
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (usize i = 0; i < members.size(); ++i) {
      for (usize j = i + 1; j < members.size(); ++j) {
        b.add(members[i], members[j]);
      }
    }
  }
  return b.build();
}

Csr weblink(vidx n, double avg_degree, u64 seed) {
  ECLP_CHECK(n >= 16);
  Rng rng(seed);
  // Pages cluster into "hosts" that are internally well linked, plus
  // RMAT-style cross-host links with hub skew.
  Builder b(n);
  const vidx host_size = 32;
  const vidx hosts = (n + host_size - 1) / host_size;
  // Intra-host structure: every page links to the host's root page (its
  // smallest id — after symmetrization the root's neighbors are therefore
  // all larger, reproducing in-2004's large traversed/initialized gap in
  // the paper's Table 4), plus random intra-host links.
  for (vidx h = 0; h < hosts; ++h) {
    const vidx base = h * host_size;
    const vidx count = std::min<vidx>(host_size, n - base);
    if (count < 2) continue;
    for (vidx i = 1; i < count; ++i) {
      b.add(base + i, base);
    }
    const u64 extra =
        static_cast<u64>(count * std::max(0.0, avg_degree / 4.0 - 1.0));
    for (u64 e = 0; e < extra; ++e) {
      const vidx u = base + static_cast<vidx>(rng.below(count));
      const vidx v = base + static_cast<vidx>(rng.below(count));
      if (u != v) b.add(u, v);
    }
  }
  // Cross-host hub links: preferential sampling of target pages, seeded
  // with a small set of already-popular sites so the tail develops the
  // huge hubs of real weblink crawls.
  std::vector<vidx> targets;
  targets.reserve(n);
  const vidx popular = std::max<vidx>(8, n / 100);
  for (vidx v = 0; v < popular; ++v) {
    for (int k = 0; k < 40; ++k) targets.push_back(v * (n / popular));
  }
  for (vidx v = 0; v < n; v += 8) targets.push_back(v);
  const u64 cross = static_cast<u64>(n * avg_degree / 4.0);
  for (u64 e = 0; e < cross; ++e) {
    const vidx u = static_cast<vidx>(rng.below(n));
    const vidx v = targets[rng.below(targets.size())];
    if (u == v) continue;
    b.add(u, v);
    // Rich get richer, strongly: link targets are re-inserted several times
    // so the tail reaches the huge hubs real weblink graphs show (in-2004:
    // d-max / d-avg > 1000).
    for (int k = 0; k < 4; ++k) targets.push_back(v);
  }
  return b.build();
}

Csr chung_lu(vidx n, double avg_degree, double exponent, double max_degree,
             u64 seed) {
  ECLP_CHECK(n >= 16);
  ECLP_CHECK(avg_degree > 0.0 && exponent > 2.0);
  ECLP_CHECK(max_degree >= avg_degree);
  Rng rng(seed);

  // Expected-degree weights: a truncated Pareto tail over vertex ranks.
  const double alpha = 1.0 / (exponent - 1.0);
  std::vector<double> w(n);
  double total = 0.0;
  for (vidx v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v) + 1.0, -alpha);
    total += w[v];
  }
  // Scale to the target mean, then clamp the head to the target maximum
  // (clamping shifts the mean down slightly; acceptable for a generator).
  const double scale = avg_degree * static_cast<double>(n) / total;
  for (double& x : w) x = std::min(x * scale, max_degree);
  double wsum = 0.0;
  for (const double x : w) wsum += x;

  // Edge sampling: draw ~ n*avg/2 endpoint pairs weight-proportionally via
  // the alias-free cumulative trick (binary search in the prefix sums).
  std::vector<double> prefix(n);
  double run = 0.0;
  for (vidx v = 0; v < n; ++v) {
    run += w[v];
    prefix[v] = run;
  }
  const auto sample = [&]() -> vidx {
    const double r = rng.unit() * wsum;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), r);
    return static_cast<vidx>(it - prefix.begin());
  };
  Builder b(n);
  const u64 edges = static_cast<u64>(avg_degree * n / 2.0);
  b.reserve_edges(edges);
  for (u64 e = 0; e < edges; ++e) {
    const vidx u = sample();
    const vidx v = sample();
    if (u != v) b.add(u, v);
  }
  return b.build();
}

}  // namespace eclp::gen
