// Synthetic graph generators.
//
// The paper evaluates on 17 general inputs plus 5 directed meshes (Table 1).
// Those exact files are not redistributable here, so each *class* of input
// gets a generator that reproduces the structural properties the profiled
// behaviours depend on: degree distribution (average and skew), diameter
// class (road networks vs. power-law), adjacency-vs-id correlation
// (citation graphs: old vertices are cited by newer, larger ids), and
// clustering (co-authorship clique unions). DESIGN.md §2 records this
// substitution; EXPERIMENTS.md compares the generated stats against Table 1.
//
// All generators are deterministic functions of their seed.
#pragma once

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace eclp::gen {

/// 2D torus grid: every vertex has degree exactly 4 (paper's 2d-2e20.sym).
graph::Csr grid2d_torus(u32 side);

/// Triangulated grid: a torus grid plus one randomly-oriented diagonal per
/// cell. Degrees fall in 4..8, planar-like (paper's delaunay_n24 class).
graph::Csr triangulated_grid(u32 side, u64 seed);

/// Erdős–Rényi-style uniform random graph with ~`edges` undirected edges
/// (paper's r4-2e23.sym class).
graph::Csr uniform_random(vidx n, u64 edges, u64 seed);

/// RMAT recursive-matrix graph with partition probabilities (a,b,c) and
/// d = 1-a-b-c, symmetrized (paper's rmat16.sym / rmat22.sym class).
graph::Csr rmat(u32 scale, u64 edges, double a, double b, double c, u64 seed);

/// Graph500 Kronecker parameters (a=.57,b=.19,c=.19), symmetrized (paper's
/// kron_g500-logn21 class; extremely skewed degrees).
graph::Csr kronecker(u32 scale, u64 edges, u64 seed);

/// Preferential attachment (Barabási–Albert): each new vertex attaches to
/// `m` existing vertices chosen proportionally to degree (paper's community
/// / co-purchase graphs: amazon0601, soc-LiveJournal1 class).
graph::Csr preferential_attachment(vidx n, u32 m, u64 seed);

/// Internet-topology-like: preferential attachment with mostly 1-2
/// attachments and occasional bursts, giving avg degree ~3 with large hubs
/// (paper's internet / as-skitter class).
graph::Csr internet_topology(vidx n, u64 seed);

/// Citation graph: vertex ids follow publication time; vertex u cites
/// earlier vertices (< u), and with probability `p_no_citation` cites
/// nothing (dataset-boundary patents). After symmetrization, such vertices
/// see only larger-id neighbors — the behaviour behind the large
/// traversed/initialized gap the paper reports for cit-Patents (Table 4).
graph::Csr citation(vidx n, double avg_out, double p_no_citation, u64 seed);

/// Road network: spanning tree of a 2D grid plus a fraction `q` of the
/// remaining grid edges. Average degree ~2+2q, max <= 8, high diameter
/// (paper's USA-road / europe_osm class).
graph::Csr road_network(u32 side, double q, u64 seed);

/// Union of cliques ("papers") over n authors with Zipf-ish clique sizes in
/// [min_size, max_size]; dense and highly clustered (paper's coPapersDBLP /
/// citationCiteseer class).
graph::Csr clique_union(vidx n, usize cliques, u32 min_size, u32 max_size,
                        u64 seed);

/// Weblink-like graph: RMAT with strong locality plus host-level cliques
/// (paper's in-2004 class: high average degree, huge hubs).
graph::Csr weblink(vidx n, double avg_degree, u64 seed);

/// Chung-Lu random graph with a power-law expected degree sequence:
/// w_v ~ v^(-1/(exponent-1)) scaled so the mean is `avg_degree` and the
/// largest expected degree is `max_degree`. Gives direct control over the
/// d-avg / d-max pair Table 1 reports, which the growth models above only
/// hit approximately.
graph::Csr chung_lu(vidx n, double avg_degree, double exponent,
                    double max_degree, u64 seed);

}  // namespace eclp::gen
