// Directed mesh generators for ECL-SCC.
//
// The paper evaluates ECL-SCC only on mesh graphs (toroid-wedge, star,
// toroid-hex, cold-flow, klein-bottle) because the algorithm was developed
// for meshes. The original files are proprietary mesh dependence graphs; we
// generate directed graphs with the same structural signature: vertex ids
// follow a spatial numbering (so CSR-contiguous edge ranges are spatially
// local, which is what makes signature propagation "largely localized within
// thread blocks", paper §6.1.2), arcs follow sweep/flow directions, and
// cycles of widely varying length produce non-trivial SCCs that take many
// propagation iterations (n) and several prune rounds (m) to resolve.
// Average/max degrees are tuned to Table 1's values.
#pragma once

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace eclp::gen {

/// Hub-and-petals cycle structure: one hub cycle, many petal cycles of
/// varying length, one-way connector arcs hub -> petal. Nearly all vertices
/// have in/out degree 1 (paper's star: d-avg 2.00, d-max 2).
graph::Csr star_mesh(u32 petals, u32 avg_petal_len, u64 seed);

/// Torus of directed row cycles with banded up/down vertical coupling and
/// wedge diagonals (paper's toroid-wedge: d-avg 2.47, d-max 4).
graph::Csr toroid_wedge(u32 side, u64 seed);

/// Hexagonal-like torus sweep mesh (paper's toroid-hex: d-avg 2.98, d-max 4).
graph::Csr toroid_hex(u32 side, u64 seed);

/// Channel-flow mesh: arcs follow the flow (+x) with recirculation patches
/// of reversed arcs and scattered vertical mixing (paper's cold-flow:
/// d-avg 2.98, d-max 5).
graph::Csr cold_flow(u32 side, u64 seed);

/// Klein-bottle identification: torus in x; the y wraparound flips x
/// (paper's klein-bottle: d-avg 2.24, d-max 4).
graph::Csr klein_bottle(u32 side, u64 seed);

}  // namespace eclp::gen
