#include "gen/meshes.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "support/prng.hpp"

namespace eclp::gen {

using graph::BuildOptions;
using graph::Builder;
using graph::Csr;

namespace {

BuildOptions directed_opts() {
  BuildOptions opt;
  opt.directed = true;
  opt.remove_self_loops = true;
  opt.dedupe = true;
  return opt;
}

/// Renumber a side x side mesh along the Morton (Z-order) curve, the kind
/// of locality-preserving numbering FEM meshes ship with: consecutive ids
/// then cover compact 2D patches, so a thread block's contiguous edge range
/// is a patch — the property behind the paper's observation that signature
/// propagation "remains largely localized within thread blocks" (§6.1.2)
/// and behind the block-size sensitivity of Table 6.
graph::Csr morton_relabel(const graph::Csr& g, u32 side) {
  return graph::relabel(g, graph::order_morton_grid(side));
}

}  // namespace

Csr star_mesh(u32 petals, u32 avg_petal_len, u64 seed) {
  ECLP_CHECK(petals >= 1 && avg_petal_len >= 3);
  Rng rng(seed);
  // Petal lengths vary from short to ~4x the average so cycles span from a
  // fraction of a thread block to many blocks.
  std::vector<u32> lengths;
  u64 total = 0;
  const u32 hub_len = std::max<u32>(8, petals);
  total += hub_len;
  for (u32 p = 0; p < petals; ++p) {
    const double z = rng.unit();
    const u32 len =
        std::max<u32>(4, static_cast<u32>(avg_petal_len * (0.25 + 3.0 * z * z)));
    lengths.push_back(len);
    total += len;
  }
  ECLP_CHECK(total < kNoVertex);

  Builder b(static_cast<vidx>(total));
  // Hub cycle occupies ids [0, hub_len). Every vertex gets the cycle arc
  // plus a +2 chord: out-degree 2 throughout, matching the original star
  // mesh's d-avg = d-max = 2 (Table 1). Chords stay inside the cycle, so
  // the SCC structure is unchanged.
  for (u32 i = 0; i < hub_len; ++i) {
    b.add(i, (i + 1) % hub_len);
    b.add(i, (i + 2) % hub_len);
  }
  // Petals follow contiguously in id space; each is a chorded cycle.
  std::vector<vidx> petal_base(petals), petal_len(petals);
  vidx base = hub_len;
  for (u32 p = 0; p < petals; ++p) {
    const u32 len = lengths[p];
    petal_base[p] = base;
    petal_len[p] = len;
    for (u32 i = 0; i < len; ++i) {
      b.add(base + i, base + (i + 1) % len);
      b.add(base + i, base + (i + 2) % len);
    }
    base += len;
  }
  // One-way connectors chain the petals in a *random* order (relative to
  // their id ranges), so the condensation is a path whose per-petal maxima
  // are unordered. The SCC prune rounds (the paper's outer counter m) then
  // peel the chain at its running-maximum records, splitting segments
  // recursively — m ~ O(log petals), reproducing the multi-round behaviour
  // behind the paper's Figure 1 (m up to 10 on star).
  auto order = rng.permutation(petals);
  vidx prev_exit = 0;  // a hub vertex
  for (u32 i = 0; i < petals; ++i) {
    const u32 p = order[i];
    b.add(prev_exit, petal_base[p]);
    prev_exit = petal_base[p] + petal_len[p] / 2;
  }
  return b.build(directed_opts());
}

Csr toroid_wedge(u32 side, u64 seed) {
  ECLP_CHECK(side >= 8);
  Rng rng(seed);
  const vidx n = side * side;
  Builder b(n);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };
  // Bands of 8 rows form one SCC each, strongly connected through *short
  // local* cycles (forward row arcs + sparse backward arcs + vertical
  // up/down pairs), the way unstructured mesh dependence graphs are: value
  // chains then span spatial distance, not a global cycle circumference, so
  // propagation cost varies smoothly with the thread-block size. Bands feed
  // the next band one-way (the "wedge").
  constexpr u32 kBand = 8;
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      if (x + 1 < side) {
        b.add(id(x, y), id(x + 1, y));  // forward along the row
        if (x % 3 == 0) b.add(id(x + 1, y), id(x, y));  // sparse back arc
      }
      const u32 band_row = y % kBand;
      if (band_row + 1 < kBand && y + 1 < side) {
        b.add(id(x, y), id(x, y + 1));  // downward inside the band
        if (x % 4 == 0) b.add(id(x, y + 1), id(x, y));  // sparse upward
      } else if (y + 1 < side && x % 4 == 0) {
        b.add(id(x, y), id(x, y + 1));  // one-way wedge to the next band
      }
      if (x % 8 == 3 && y + 1 < side && rng.chance(0.5)) {
        b.add(id(x, y), id(x + 1 < side ? x + 1 : x, y + 1));  // diagonal
      }
    }
  }
  return morton_relabel(b.build(directed_opts()), side);
}

Csr toroid_hex(u32 side, u64 seed) {
  ECLP_CHECK(side >= 8);
  Rng rng(seed);
  const vidx n = side * side;
  Builder b(n);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };
  // Like toroid_wedge but denser (hex-like valence ~3) with 16-row bands.
  constexpr u32 kBand = 16;
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      if (x + 1 < side) {
        b.add(id(x, y), id(x + 1, y));
        if (x % 2 == 0) b.add(id(x + 1, y), id(x, y));  // denser back arcs
      }
      const bool band_interior = (y % kBand) + 1 < kBand && y + 1 < side;
      if (band_interior) {
        b.add(id(x, y), id(x, y + 1));
        if (x % 3 == 0) b.add(id(x, y + 1), id(x, y));  // sparse upward
        // Hex diagonals on even columns.
        if (x % 2 == 0 && x + 1 < side) {
          b.add(id(x, y), id(x + 1, y + 1));
        }
      } else if (y + 1 < side && x % 4 == 1) {
        b.add(id(x, y), id(x, y + 1));  // one-way band boundary
      }
      if (rng.chance(0.05) && x + 2 < side) {
        b.add(id(x, y), id(x + 2, y));  // irregular skip arc
      }
    }
  }
  return morton_relabel(b.build(directed_opts()), side);
}

Csr cold_flow(u32 side, u64 seed) {
  ECLP_CHECK(side >= 16);
  Rng rng(seed);
  const vidx n = side * side;
  Builder b(n);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };

  // Obstacle patches where the flow recirculates.
  struct Patch {
    u32 cx, cy, r;
  };
  std::vector<Patch> patches;
  const u32 num_patches = std::max<u32>(1, side / 16);
  for (u32 p = 0; p < num_patches; ++p) {
    patches.push_back({static_cast<u32>(rng.below(side)),
                       static_cast<u32>(rng.below(side)),
                       static_cast<u32>(4 + rng.below(side / 8 + 1))});
  }
  const auto in_patch = [&](u32 x, u32 y) {
    for (const auto& pt : patches) {
      const i64 dx = static_cast<i64>(x) - pt.cx;
      const i64 dy = static_cast<i64>(y) - pt.cy;
      if (dx * dx + dy * dy <= static_cast<i64>(pt.r) * pt.r) return true;
    }
    return false;
  };

  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      if (in_patch(x, y)) {
        // Recirculation: local clockwise cycle arcs.
        b.add(id(x, y), id((x + side - 1) % side, y));
        b.add(id((x + side - 1) % side, (y + 1) % side), id(x, y));
        b.add(id(x, y), id(x, (y + 1) % side));
      } else {
        b.add(id(x, y), id((x + 1) % side, y));  // downstream flow
        if (x % 2 == 0) {
          b.add(id(x, y), id((x + 1) % side, (y + 1) % side));  // shear
        }
        if (y % 2 == 0) b.add(id(x, y), id(x, (y + 1) % side));
        if (y % 2 == 1 && x % 2 == 0) b.add(id(x, (y + 1) % side), id(x, y));
      }
      if (x % 16 == 7 && rng.chance(0.5)) {
        b.add(id(x, y), id(x, (y + side - 1) % side));  // mixing
      }
    }
  }
  return morton_relabel(b.build(directed_opts()), side);
}

Csr klein_bottle(u32 side, u64 seed) {
  ECLP_CHECK(side >= 8);
  Rng rng(seed);
  const vidx n = side * side;
  Builder b(n);
  const auto id = [side](u32 x, u32 y) { return y * side + x; };
  for (u32 y = 0; y < side; ++y) {
    for (u32 x = 0; x < side; ++x) {
      b.add(id(x, y), id((x + 1) % side, y));  // rows are cycles
      if (rng.chance(0.1)) b.add(id(x, y), id((x + 2) % side, y));  // skip arc
      // Sparse forward diagonals thicken the sweep (Table 1: d-avg 2.24).
      if (x % 4 == 0 && y + 1 < side) {
        b.add(id(x, y), id((x + 1) % side, y + 1));
      }
      // Column arcs with the Klein twist at the wraparound seam.
      if (x % 4 != 3) {
        if (y + 1 < side) {
          b.add(id(x, y), id(x, y + 1));
        } else {
          b.add(id(x, y), id(side - 1 - x, 0));  // twisted identification
        }
      }
      // Sparse upward return arcs close column cycles through the twist.
      if (y % 8 == 1 && x % 4 == 1 && rng.chance(0.7)) {
        b.add(id(x, y), id(x, (y + side - 1) % side));
      }
    }
  }
  return morton_relabel(b.build(directed_opts()), side);
}

}  // namespace eclp::gen
