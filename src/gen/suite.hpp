// The input suite mirroring the paper's Table 1.
//
// Every entry names one of the paper's inputs and provides (a) the values
// Table 1 reports for the original file and (b) a generator producing a
// scaled-down synthetic stand-in of the same structural class (see
// generators.hpp / meshes.hpp for why each class preserves the profiled
// behaviour). Three scales are provided: kDefault for the bench harness,
// kSmall for quick runs, kTiny for unit tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/cache.hpp"
#include "graph/csr.hpp"

namespace eclp::gen {

/// kTiny/kSmall/kDefault are the classic materialized scales. kHuge is
/// generated through the chunked streaming pipeline (gen/stream.hpp) —
/// ~10^8-arc graphs built in bounded memory — and exists only for the
/// inputs whose generator family has a streaming port (InputSpec::huge).
enum class Scale : u8 { kTiny = 0, kSmall = 1, kDefault = 2, kHuge = 3 };

/// Parse "tiny"/"small"/"default"/"huge" (used by bench --scale flags).
Scale parse_scale(const std::string& s);

/// The row Table 1 reports for the original input file.
struct PaperRow {
  u64 edges = 0;
  u64 vertices = 0;
  std::string type;
  double d_avg = 0.0;
  double d_max = 0.0;
};

struct InputSpec {
  std::string name;       ///< the paper's input name (e.g. "europe_osm")
  PaperRow paper;         ///< Table 1 values for the original file
  bool directed = false;  ///< true for the SCC meshes
  /// Generate the stand-in at the given scale. Memoized through the
  /// content-addressed graph cache (graph/cache.hpp) when a cache
  /// directory is configured: repeat runs deserialize the finished CSR
  /// instead of regenerating and rebuilding it.
  std::function<graph::Csr(Scale)> make;
  /// True when make() supports Scale::kHuge via the chunked streaming
  /// pipeline; other entries CHECK-fail on kHuge.
  bool huge = false;
};

/// The 17 general inputs (upper block of Table 1): MIS, CC, MST, GC.
const std::vector<InputSpec>& general_inputs();
/// The 5 directed meshes (lower block of Table 1): SCC.
const std::vector<InputSpec>& mesh_inputs();

/// Look up any input by name across both blocks. Throws if unknown.
const InputSpec& find_input(const std::string& name);

/// Version tag mixed into every suite cache key (the suite's own version
/// plus the chunk-stream seeding-scheme version). Exposed so the
/// cache-key regression test can pin that key derivation actually moved
/// when the builder/generator contract changed.
u64 suite_cache_version();

/// The content address memoize_suite files (name, scale) under. Stable
/// across processes; changes exactly when suite_cache_version() or the
/// entry's identity does.
graph::CacheKey suite_cache_key(const std::string& name, Scale s);

}  // namespace eclp::gen
