#include "gen/suite.hpp"

#include <utility>

#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "gen/stream.hpp"
#include "graph/cache.hpp"
#include "graph/transforms.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace eclp::gen {

namespace {

// Deterministic per-input seeds; distinct per input so the suite is not
// accidentally correlated.
constexpr u64 kSuiteSeed = 0xec1900df11e00001ULL;

// Version tag mixed into every suite cache key. The generator parameters
// live in the make_* lambdas below, so the key cannot hash them directly;
// instead (name, scale, kSuiteSeed, this version) addresses the content.
// BUMP THIS whenever a generator or a suite entry's parameters change, or
// stale cache directories will keep serving the old graphs.
// v2: suite gained scale=huge streamed entries and the Builder's CSR
// assembly grew the chunked streaming path — old .eclg entries keyed
// under v1 must not alias the new generation scheme.
constexpr u64 kSuiteCacheVersion = 2;

/// Wrap every entry's generator in the content-addressed graph cache
/// (graph/cache.hpp): when ECLP_GRAPH_CACHE / --graph-cache names a
/// directory, the first make() stores the finished CSR as .eclg and every
/// later run — any process — deserializes it instead of regenerating and
/// rebuilding. Disabled cache = straight call; no behavior change.
void memoize_suite(std::vector<InputSpec>& specs) {
  for (InputSpec& spec : specs) {
    auto generate = std::move(spec.make);
    const std::string name = spec.name;
    spec.make = [name, generate](Scale s) {
      if (graph::cache_dir().empty()) return generate(s);
      return graph::cache_or_build(suite_cache_key(name, s),
                                   [&] { return generate(s); });
    };
  }
}

u64 seed_for(const char* name) {
  u64 h = kSuiteSeed;
  for (const char* p = name; *p; ++p) h = splitmix64(h ^ static_cast<u8>(*p));
  return h;
}

/// Pick a dimension by scale: tiny/small/default. kHuge never reaches
/// this — huge-capable entries branch to their streamed generator first,
/// and everything else has no huge parameterization to pick.
template <typename T>
T by_scale(Scale s, T tiny, T small, T def) {
  switch (s) {
    case Scale::kTiny:
      return tiny;
    case Scale::kSmall:
      return small;
    case Scale::kDefault:
      return def;
    case Scale::kHuge:
      ECLP_CHECK_MSG(false,
                     "scale=huge is only available for inputs with a "
                     "streamed generator (InputSpec::huge)");
  }
  ECLP_CHECK_MSG(false, "invalid scale");
  return def;
}

std::vector<InputSpec> make_general() {
  std::vector<InputSpec> v;

  // The original grid/triangulation files carry vertex numberings that are
  // uncorrelated with adjacency (Table 4 of the paper shows ~20% of grid
  // vertices find no smaller neighbor, impossible under row-major order),
  // so the stand-ins are relabeled by a deterministic random permutation.
  const auto shuffled = [](graph::Csr g, const char* name) {
    Rng rng(seed_for(name) ^ 0x5eedULL);
    const auto perm = rng.permutation(g.num_vertices());
    return graph::relabel(g, perm);
  };

  v.push_back({"2d-2e20.sym",
               {4190208, 1048576, "grid", 4.0, 4},
               false,
               [shuffled](Scale s) {
                 return shuffled(grid2d_torus(by_scale<u32>(s, 48, 192, 384)),
                                 "2d-2e20.sym");
               }});

  v.push_back({"amazon0601",
               {4886816, 403394, "co-purchases", 12.1, 2752},
               false,
               [](Scale s) {
                 const vidx n = by_scale<vidx>(s, 3000, 12000, 50000);
                 return clique_union(n, n * 9 / 10, 2, 10,
                                     seed_for("amazon0601"));
               }});

  // Huge-capable entries: kTiny/kSmall/kDefault keep the legacy
  // materializing generators (their goldens are byte-stable), while
  // kHuge streams a new ~10^8-arc graph of the same structural class
  // through the chunked pipeline — a sequence a sequential RNG could
  // never re-enter per chunk (gen/stream.hpp).
  v.push_back({"as-skitter",
               {22190596, 1696415, "InTopo", 13.1, 35455},
               false,
               [](Scale s) {
                 if (s == Scale::kHuge) {
                   return preferential_attachment_streamed(
                       1u << 21, 7, seed_for("as-skitter"));
                 }
                 return preferential_attachment(
                     by_scale<vidx>(s, 4000, 30000, 120000), 7,
                     seed_for("as-skitter"));
               },
               /*huge=*/true});

  v.push_back({"citationCiteseer",
               {2313294, 268495, "PubCit", 8.6, 1318},
               false,
               [](Scale s) {
                 return citation(by_scale<vidx>(s, 3000, 9000, 34000), 4.3,
                                 0.20, seed_for("citationCiteseer"));
               }});

  v.push_back({"cit-Patents",
               {33037894, 3774768, "PatCit", 8.0, 793},
               false,
               [](Scale s) {
                 return citation(by_scale<vidx>(s, 4000, 60000, 240000), 4.0,
                                 0.35, seed_for("cit-Patents"));
               }});

  v.push_back({"coPapersDBLP",
               {30491458, 540486, "PubCit", 56.4, 3299},
               false,
               [](Scale s) {
                 const vidx n = by_scale<vidx>(s, 3000, 9000, 35000);
                 return clique_union(n, n / 3, 3, 44,
                                     seed_for("coPapersDBLP"));
               }});

  v.push_back({"delaunay_n24",
               {100663202, 16777216, "triangulation", 6.0, 26},
               false,
               [shuffled](Scale s) {
                 return shuffled(
                     triangulated_grid(by_scale<u32>(s, 48, 192, 384),
                                       seed_for("delaunay_n24")),
                     "delaunay_n24");
               }});

  v.push_back({"europe_osm",
               {108109320, 50912018, "roadmap", 2.1, 13},
               false,
               [](Scale s) {
                 return road_network(by_scale<u32>(s, 56, 300, 600), 0.06,
                                     seed_for("europe_osm"));
               }});

  v.push_back({"in-2004",
               {27182946, 1382908, "weblinks", 19.7, 21869},
               false,
               [](Scale s) {
                 return weblink(by_scale<vidx>(s, 3000, 25000, 90000), 19.7,
                                seed_for("in-2004"));
               }});

  v.push_back({"internet",
               {387240, 124651, "InTopo", 3.1, 151},
               false,
               [](Scale s) {
                 return internet_topology(by_scale<vidx>(s, 3000, 12000, 40000),
                                          seed_for("internet"));
               }});

  v.push_back({"kron_g500-logn21",
               {182081864, 2097152, "Kronecker", 86.8, 213904},
               false,
               [](Scale s) {
                 if (s == Scale::kHuge) {
                   // The paper's actual vertex count (2^21); 22<<21
                   // samples keep the hub skew while fitting the
                   // single-host time budget.
                   return kronecker_streamed(21, u64{22} << 21,
                                             seed_for("kron_g500-logn21"));
                 }
                 const u32 scale = by_scale<u32>(s, 11, 14, 16);
                 const u64 edges = u64{22} << scale;  // dense, hub-skewed
                 return kronecker(scale, edges, seed_for("kron_g500-logn21"));
               },
               /*huge=*/true});

  v.push_back({"r4-2e23.sym",
               {67108846, 8388608, "random", 8.0, 26},
               false,
               [](Scale s) {
                 if (s == Scale::kHuge) {
                   // 2^24 vertices x 4 draws each -> ~1.3x10^8 arcs
                   // after mirroring: past the paper's own r4-2e23.
                   const vidx n = vidx{1} << 24;
                   return uniform_random_streamed(
                       n, static_cast<u64>(n) * 4, seed_for("r4-2e23.sym"));
                 }
                 const vidx n = by_scale<vidx>(s, 4000, 60000, 250000);
                 return uniform_random(n, static_cast<u64>(n) * 4,
                                       seed_for("r4-2e23.sym"));
               },
               /*huge=*/true});

  v.push_back({"rmat16.sym",
               {967866, 65536, "RMAT", 14.8, 569},
               false,
               [](Scale s) {
                 const u32 scale = by_scale<u32>(s, 11, 13, 14);
                 return rmat(scale, u64{8} << scale, 0.45, 0.22, 0.22,
                             seed_for("rmat16.sym"));
               }});

  v.push_back({"rmat22.sym",
               {65660814, 4194304, "RMAT", 15.7, 3687},
               false,
               [](Scale s) {
                 if (s == Scale::kHuge) {
                   // The paper's actual parameterization: scale 22,
                   // 8 samples per vertex.
                   return rmat_streamed(22, u64{8} << 22, 0.45, 0.22,
                                        0.22, seed_for("rmat22.sym"));
                 }
                 const u32 scale = by_scale<u32>(s, 12, 15, 17);
                 return rmat(scale, u64{8} << scale, 0.45, 0.22, 0.22,
                             seed_for("rmat22.sym"));
               },
               /*huge=*/true});

  v.push_back({"soc-LiveJournal1",
               {85702474, 4847571, "community", 20.3, 20333},
               false,
               [](Scale s) {
                 return preferential_attachment(
                     by_scale<vidx>(s, 4000, 40000, 150000), 10,
                     seed_for("soc-LiveJournal1"));
               }});

  v.push_back({"USA-road-d.NY",
               {730100, 264346, "roadmap", 2.8, 8},
               false,
               [](Scale s) {
                 return road_network(by_scale<u32>(s, 48, 80, 160), 0.40,
                                     seed_for("USA-road-d.NY"));
               }});

  v.push_back({"USA-road-d.USA",
               {57708624, 23947347, "roadmap", 2.4, 9},
               false,
               [](Scale s) {
                 return road_network(by_scale<u32>(s, 56, 280, 550), 0.20,
                                     seed_for("USA-road-d.USA"));
               }});

  return v;
}

std::vector<InputSpec> make_meshes() {
  std::vector<InputSpec> v;

  v.push_back({"toroid-wedge",
               {485564, 196608, "mesh", 2.47, 4},
               true,
               [](Scale s) {
                 return gen::toroid_wedge(by_scale<u32>(s, 32, 128, 256),
                                          seed_for("toroid-wedge"));
               }});

  v.push_back({"star",
               {654080, 327680, "mesh", 2.00, 2},
               true,
               [](Scale s) {
                 return star_mesh(by_scale<u32>(s, 24, 150, 600),
                                  by_scale<u32>(s, 60, 120, 160),
                                  seed_for("star"));
               }});

  v.push_back({"toroid-hex",
               {4684142, 1572864, "mesh", 2.98, 4},
               true,
               [](Scale s) {
                 return gen::toroid_hex(by_scale<u32>(s, 32, 160, 320),
                                        seed_for("toroid-hex"));
               }});

  v.push_back({"cold-flow",
               {6295558, 2112512, "mesh", 2.98, 5},
               true,
               [](Scale s) {
                 return gen::cold_flow(by_scale<u32>(s, 32, 176, 352),
                                       seed_for("cold-flow"));
               }});

  v.push_back({"klein-bottle",
               {18793715, 8388608, "mesh", 2.24, 4},
               true,
               [](Scale s) {
                 return gen::klein_bottle(by_scale<u32>(s, 32, 208, 416),
                                          seed_for("klein-bottle"));
               }});

  return v;
}

}  // namespace

Scale parse_scale(const std::string& s) {
  if (s == "tiny") return Scale::kTiny;
  if (s == "small") return Scale::kSmall;
  if (s == "default") return Scale::kDefault;
  if (s == "huge") return Scale::kHuge;
  ECLP_CHECK_MSG(false, "unknown scale '" << s
                                          << "' (tiny|small|default|huge)");
  return Scale::kDefault;
}

u64 suite_cache_version() {
  // The chunk-stream version rides along so a change to the per-chunk
  // seeding scheme moves every key even without a suite-level bump.
  return kSuiteCacheVersion ^ (kChunkStreamVersion << 32);
}

graph::CacheKey suite_cache_key(const std::string& name, Scale s) {
  graph::CacheKey key;
  key.mix("eclp-suite").mix_u64(suite_cache_version()).mix(name)
      .mix_u64(static_cast<u64>(s)).mix_u64(kSuiteSeed);
  return key;
}

const std::vector<InputSpec>& general_inputs() {
  static const std::vector<InputSpec> inputs = [] {
    auto v = make_general();
    memoize_suite(v);
    return v;
  }();
  return inputs;
}

const std::vector<InputSpec>& mesh_inputs() {
  static const std::vector<InputSpec> inputs = [] {
    auto v = make_meshes();
    memoize_suite(v);
    return v;
  }();
  return inputs;
}

const InputSpec& find_input(const std::string& name) {
  for (const auto& spec : general_inputs()) {
    if (spec.name == name) return spec;
  }
  for (const auto& spec : mesh_inputs()) {
    if (spec.name == name) return spec;
  }
  ECLP_CHECK_MSG(false, "unknown input '" << name << "'");
  static const InputSpec dummy{};
  return dummy;
}

}  // namespace eclp::gen
