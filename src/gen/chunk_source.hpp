// The generator-layer name for the chunked streaming contract.
//
// A gen::ChunkSource is exactly a graph::ChunkedEdgeSource (see
// graph/stream_build.hpp for the full determinism contract): a fixed
// chunk count, and emit(chunk_id, sink) whose output is a pure function
// of the chunk id — independent of thread count, chunk schedule, and how
// many times the chunk has been (re)emitted. The streamed CSR pipeline
// re-emits every chunk twice (histogram pass, scatter pass), which is
// what buys generation at billion-edge scale without ever materializing
// the edge list.
#pragma once

#include "graph/stream_build.hpp"

namespace eclp::gen {

template <typename S>
concept ChunkSource = graph::ChunkedEdgeSource<S>;

}  // namespace eclp::gen
