// Distribution kernels shared by the materializing generators
// (generators.cpp) and their chunked streaming ports (stream.hpp). One
// definition keeps the two paths sampling identical distributions even
// though their RNG streams differ (sequential vs. per-block seeding).
#pragma once

#include <utility>

#include "support/prng.hpp"
#include "support/types.hpp"

namespace eclp::gen {

/// One RMAT edge sample in a 2^scale x 2^scale adjacency matrix: descend
/// the matrix one bit per level, picking a quadrant with probabilities
/// (a, b, c, 1-a-b-c).
inline std::pair<vidx, vidx> rmat_edge(Rng& rng, u32 scale, double a,
                                       double b, double c) {
  vidx u = 0, v = 0;
  for (u32 bit = 0; bit < scale; ++bit) {
    const double r = rng.unit();
    u <<= 1;
    v <<= 1;
    if (r < a) {
      // top-left: nothing to add
    } else if (r < a + b) {
      v |= 1;
    } else if (r < a + b + c) {
      u |= 1;
    } else {
      u |= 1;
      v |= 1;
    }
  }
  return {u, v};
}

}  // namespace eclp::gen
