// eclp-convert — convert between the supported graph formats.
//
//   $ eclp-convert input.mtx output.eclg
//   $ eclp-convert --directed edges.el output.gr
//
// Formats are inferred from file extensions (graph::load_any/save_any):
// .eclg, .mtx, .gr, .col, .el/.txt.
#include <cstdio>

#include "graph/csr.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "support/cli.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("directed", "treat extension-ambiguous inputs as directed");
  cli.add_flag("symmetrize", "mirror all arcs before writing");
  cli.add_option("weights", "attach random weights with this seed (0 = none)",
                 "0");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || cli.positional().size() != 2) {
    std::printf("usage: eclp-convert [options] <in> <out>\n%s",
                cli.usage("eclp-convert").c_str());
    return cli.get_flag("help") ? 0 : 2;
  }

  auto g = graph::load_any(cli.positional()[0], cli.get_flag("directed"));
  std::printf("loaded %s: %u vertices, %u edges, %s%s\n",
              cli.positional()[0].c_str(), g.num_vertices(), g.num_edges(),
              g.directed() ? "directed" : "undirected",
              g.weighted() ? ", weighted" : "");
  if (cli.get_flag("symmetrize") && g.directed()) {
    g = graph::symmetrize(g);
    std::printf("symmetrized: %u edges\n", g.num_edges());
  }
  const u64 weight_seed = static_cast<u64>(cli.get_int("weights"));
  if (weight_seed != 0 && !g.weighted()) {
    g = graph::with_random_weights(g, weight_seed);
  }
  graph::save_any(g, cli.positional()[1]);
  std::printf("wrote %s\n", cli.positional()[1].c_str());
  return 0;
}
