// eclp-serve — concurrent batch/serving driver: execute a JSONL request
// file over shared pooled graphs.
//
//   $ eclp-serve --requests=reqs.jsonl --threads=4 --out=results.jsonl
//   $ eclp-serve --requests=reqs.jsonl --repeat=3          # warm-pool rounds
//   $ eclp-serve --requests=reqs.jsonl --admission=reject --max-queue=8
//
// Each request line is (algorithm, graph spec, seed, options) — see
// docs/SERVING.md for the schema. Requests execute concurrently with
// per-request Device/Session isolation over a shared work-stealing pool;
// graphs are pinned in an in-process ref-counted pool (LRU under
// --pool-mb) promoted from the on-disk --graph-cache when one is set.
// Results are emitted in request order, so the default (modeled-only)
// output is byte-stable across thread counts — the serving counterpart of
// the repo's determinism goldens. --timing adds wall-clock latency and
// pool hit/miss per response.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "graph/cache.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("requests", "JSONL request file (see docs/SERVING.md)", "");
  cli.add_option("out", "results JSONL destination (default: stdout)", "");
  cli.add_option("threads",
                 "serving worker threads (0 = one per hardware thread)", "0");
  cli.add_option("max-queue",
                 "admission bound on pending requests (queue-full rejects "
                 "under --admission=reject)",
                 "256");
  cli.add_option("pool-mb", "graph pool byte budget, in MiB", "512");
  cli.add_option("repeat",
                 "serve the request list this many times (later rounds hit "
                 "the warm pool)",
                 "1");
  cli.add_option("admission",
                 "wait (backpressure) | reject (typed queue-full responses)",
                 "wait");
  cli.add_option("profile-dir",
                 "write a per-request profiling session (eclp.profile JSON + "
                 "Perfetto trace) under this directory",
                 "");
  cli.add_option("stats-json", "write server/pool stats JSON to this path",
                 "");
  cli.add_option("metrics",
                 "append eclp.metrics snapshots (JSONL) to this path; a "
                 "Prometheus-style .prom twin is rewritten next to it "
                 "(see docs/OBSERVABILITY.md, Runtime telemetry)",
                 "");
  cli.add_option("metrics-interval-ms",
                 "periodic snapshot interval; 0 = a single final snapshot",
                 "0");
  cli.add_option("trace",
                 "write per-request lifecycle events (JSONL: admitted/"
                 "rejected/started/pool/finished) to this path",
                 "");
  cli.add_option("slow-ms",
                 "auto-attach a profiling session to requests slower than "
                 "this many milliseconds and write their span trees to "
                 "--slow-dir (negative = off; 0 profiles everything)",
                 "-1");
  cli.add_option("slow-dir",
                 "artifact directory for slow requests (defaults to "
                 "--profile-dir)",
                 "");
  cli.add_option("build-threads",
                 "host threads for parallel graph ingest (0 = one per "
                 "hardware thread; overrides ECLP_BUILD_THREADS)",
                 "");
  cli.add_option("graph-cache",
                 "content-addressed .eclg cache directory promoted into the "
                 "in-process pool; overrides ECLP_GRAPH_CACHE",
                 "");
  cli.add_flag("timing",
               "add wall_ms + pool hit/miss to each response (scheduling-"
               "dependent, so off by default to keep output deterministic)");
  cli.add_flag("verify",
               "check every result against its sequential reference");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help")) {
    std::printf("%s", cli.usage("eclp-serve").c_str());
    return 0;
  }

  ECLP_CHECK_MSG(!cli.get("requests").empty(),
                 "pass --requests=<file.jsonl>");
  if (!cli.get("build-threads").empty()) {
    set_build_threads(static_cast<u32>(cli.get_int("build-threads")));
  }
  if (!cli.get("graph-cache").empty()) {
    graph::set_cache_dir(cli.get("graph-cache"));
  }

  std::ifstream is(cli.get("requests"));
  ECLP_CHECK_MSG(is.good(), "cannot open " << cli.get("requests"));
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::vector<serve::Request> requests =
      serve::parse_requests_jsonl(buffer.str());
  ECLP_CHECK_MSG(!requests.empty(),
                 cli.get("requests") << " contains no requests");
  if (cli.get_flag("verify")) {
    for (serve::Request& r : requests) r.verify = true;
  }

  serve::ServerOptions options;
  options.threads = static_cast<u32>(cli.get_int("threads"));
  options.max_queue = static_cast<usize>(cli.get_int("max-queue"));
  options.graph_pool_bytes = static_cast<u64>(cli.get_int("pool-mb")) << 20;
  options.profile_dir = cli.get("profile-dir");
  options.slow_ms = cli.get_double("slow-ms");
  options.slow_dir = cli.get("slow-dir");
  const std::string admission = cli.get("admission");
  ECLP_CHECK_MSG(admission == "wait" || admission == "reject",
                 "--admission must be wait or reject");

  metrics::Registry registry;
  std::unique_ptr<serve::Telemetry> telemetry;
  if (!cli.get("metrics").empty()) {
    options.metrics = &registry;
    serve::TelemetryOptions topt;
    topt.jsonl_path = cli.get("metrics");
    topt.interval_ms = static_cast<u64>(cli.get_int("metrics-interval-ms"));
    telemetry = std::make_unique<serve::Telemetry>(registry, topt);
    telemetry->start();
  }
  std::unique_ptr<serve::TraceLog> trace;
  if (!cli.get("trace").empty()) {
    trace = std::make_unique<serve::TraceLog>();
    options.trace = trace.get();
  }

  auto server = std::make_unique<serve::Server>(options);
  const i64 repeat = std::max<i64>(1, cli.get_int("repeat"));
  std::vector<serve::Response> responses;
  Timer wall;
  for (i64 round = 0; round < repeat; ++round) {
    if (admission == "wait") {
      auto batch = server->serve(requests);
      responses.insert(responses.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
    } else {
      std::vector<std::future<serve::Response>> futures;
      futures.reserve(requests.size());
      for (const serve::Request& r : requests) futures.push_back(
          server->submit(r));
      for (auto& f : futures) responses.push_back(f.get());
    }
  }
  const double total_ms = wall.milliseconds();
  const u32 serve_threads = server->threads();
  const serve::ServerStats stats = server->stats();
  // Destroy the server before the final telemetry snapshot: the destructor
  // joins the dispatcher, so wave metrics recorded after the last response
  // resolves are guaranteed to be in the registry.
  server.reset();

  const std::string jsonl =
      serve::responses_to_jsonl(responses, cli.get_flag("timing"));
  if (cli.get("out").empty()) {
    std::fputs(jsonl.c_str(), stdout);
  } else {
    std::ofstream os(cli.get("out"));
    ECLP_CHECK_MSG(os.good(), "cannot write " << cli.get("out"));
    os << jsonl;
  }

  const double hit_rate =
      stats.graphs.requests == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.graphs.hits) /
                static_cast<double>(stats.graphs.requests);
  std::printf(
      "served %zu responses in %.1f ms (%.1f req/s) on %u threads: "
      "%llu ok, %llu failed, %llu rejected\n",
      responses.size(), total_ms, 1e3 * static_cast<double>(responses.size()) / total_ms,
      serve_threads, static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected));
  std::printf(
      "graph pool: %llu hits / %llu misses (%.1f%% hit rate), "
      "%llu evictions, %.1f MiB resident (peak %.1f)\n",
      static_cast<unsigned long long>(stats.graphs.hits),
      static_cast<unsigned long long>(stats.graphs.misses), hit_rate,
      static_cast<unsigned long long>(stats.graphs.evictions),
      static_cast<double>(stats.graphs.bytes) / (1 << 20),
      static_cast<double>(stats.graphs.peak_bytes) / (1 << 20));

  if (!cli.get("stats-json").empty()) {
    std::ofstream os(cli.get("stats-json"));
    ECLP_CHECK_MSG(os.good(), "cannot write " << cli.get("stats-json"));
    os << serve::stats_to_json(stats).dump(2) << "\n";
  }
  if (telemetry != nullptr) telemetry->snapshot();  // final (or only) one
  if (trace != nullptr) {
    ECLP_CHECK_MSG(trace->write(cli.get("trace")),
                   "cannot write " << cli.get("trace"));
  }
  return stats.failed == 0 ? 0 : 1;
}
