// eclp-metrics — render and gate eclp.metrics telemetry snapshots.
//
//   $ eclp-metrics --check metrics.jsonl
//       validate every snapshot line against the eclp.metrics v1 schema
//   $ eclp-metrics metrics.jsonl
//       render the last snapshot as counter/gauge/histogram tables
//   $ eclp-metrics base.jsonl candidate.jsonl
//       compare the last snapshots; exit 1 when the candidate regresses
//       beyond tolerance (see --counter-tol / --latency-tol)
//
// The gated set is deliberately small — the metrics whose growth means the
// serving layer got *worse*, not just busier: the serve.failed /
// serve.rejected / pool.misses / pool.evictions counters (relative to
// serve.submitted where that makes sense would be nicer, but absolute
// growth with a percent tolerance matches the eclp-profile-diff
// convention) and every latency histogram's p99. Throughput-shaped
// counters (submitted, completed, waves, hits) are reported, never gated.
//
// Exit codes: 0 ok, 1 regressions found, 2 usage/IO/validation error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/telemetry.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace eclp;

namespace {

/// Parse a metrics JSONL file, validating every line; returns the
/// snapshots in file order. Throws CheckFailure on IO/parse/schema errors.
std::vector<json::Value> load_snapshots(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ECLP_CHECK_MSG(static_cast<bool>(in), "cannot open '" << path << "'");
  std::vector<json::Value> snapshots;
  std::string line;
  usize line_no = 0;
  while (std::getline(in, line)) {
    line_no++;
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::Value::parse(line);
      serve::validate_metrics_snapshot(doc);
    } catch (const CheckFailure& e) {
      throw CheckFailure(path + ":" + std::to_string(line_no) + ": " +
                         e.what());
    }
    snapshots.push_back(std::move(doc));
  }
  ECLP_CHECK_MSG(!snapshots.empty(), path << " contains no snapshots");
  return snapshots;
}

void render(const json::Value& snap) {
  std::printf("snapshot seq %llu\n",
              static_cast<unsigned long long>(snap.at("seq").as_u64()));
  Table counters("counters");
  counters.set_header({"name", "value"});
  for (const auto& [name, value] : snap.at("counters").members()) {
    counters.add_row({name, fmt::grouped(value.as_u64())});
  }
  if (counters.rows() > 0) std::printf("%s", counters.to_text().c_str());
  Table gauges("gauges");
  gauges.set_header({"name", "value"});
  for (const auto& [name, value] : snap.at("gauges").members()) {
    gauges.add_row({name, fmt::grouped(value.as_u64())});
  }
  if (gauges.rows() > 0) std::printf("%s", gauges.to_text().c_str());
  Table hists("histograms");
  hists.set_header({"name", "count", "sum", "mean", "p50", "p90", "p99"});
  for (const auto& [name, h] : snap.at("histograms").members()) {
    const u64 count = h.at("count").as_u64();
    const u64 sum = h.at("sum").as_u64();
    const double mean =
        count == 0 ? 0.0
                   : static_cast<double>(sum) / static_cast<double>(count);
    hists.add_row({name, fmt::grouped(count), fmt::grouped(sum),
                   fmt::fixed(mean, 1), fmt::grouped(h.at("p50").as_u64()),
                   fmt::grouped(h.at("p90").as_u64()),
                   fmt::grouped(h.at("p99").as_u64())});
  }
  if (hists.rows() > 0) std::printf("%s", hists.to_text().c_str());
}

u64 counter_or_zero(const json::Value& snap, const std::string& name) {
  const json::Value* v = snap.at("counters").find(name);
  return v == nullptr ? 0 : v->as_u64();
}

/// Percent growth of candidate over base; a zero base with a nonzero
/// candidate is unbounded growth (reported as such, always over tolerance).
double growth_pct(u64 base, u64 cand) {
  if (base == 0) return cand == 0 ? 0.0 : 1e9;
  return 100.0 * (static_cast<double>(cand) - static_cast<double>(base)) /
         static_cast<double>(base);
}

int diff(const json::Value& base, const json::Value& cand,
         double counter_tol, double latency_tol) {
  usize regressions = 0;
  const auto gate = [&](const std::string& what, u64 b, u64 c, double tol) {
    const double pct = growth_pct(b, c);
    const bool bad = pct > tol;
    if (bad) regressions++;
    std::printf("  %-28s %12llu -> %-12llu %s%s\n", what.c_str(),
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(c),
                b == 0 && c != 0 ? "new" : fmt::signed_pct(pct).c_str(),
                bad ? "  REGRESSION" : "");
  };
  std::printf("gated counters (tolerance %+.1f%%):\n", counter_tol);
  for (const char* name :
       {"serve.failed", "serve.rejected", "pool.misses", "pool.evictions"}) {
    gate(name, counter_or_zero(base, name), counter_or_zero(cand, name),
         counter_tol);
  }
  std::printf("latency p99 (tolerance %+.1f%%):\n", latency_tol);
  for (const auto& [name, h] : cand.at("histograms").members()) {
    const json::Value* bh = base.at("histograms").find(name);
    if (bh == nullptr) continue;  // new histogram: nothing to regress from
    gate(name + " p99", bh->at("p99").as_u64(), h.at("p99").as_u64(),
         latency_tol);
  }
  if (regressions == 0) {
    std::printf("no regressions\n");
    return 0;
  }
  std::printf("%zu regression%s\n", regressions,
              regressions == 1 ? "" : "s");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("check",
                 "validate every snapshot in this JSONL file and exit", "");
  cli.add_option("counter-tol",
                 "allowed growth of gated failure/miss counters, percent",
                 "0");
  cli.add_option("latency-tol",
                 "allowed growth of histogram p99s, percent", "10");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help")) {
    std::printf("usage: eclp-metrics <metrics.jsonl>\n"
                "       eclp-metrics <base.jsonl> <candidate.jsonl>\n"
                "       eclp-metrics --check <metrics.jsonl>\n\n%s",
                cli.usage("eclp-metrics").c_str());
    return 0;
  }

  try {
    if (!cli.get("check").empty()) {
      const auto snapshots = load_snapshots(cli.get("check"));
      std::printf("%s: %zu valid eclp.metrics snapshot%s\n",
                  cli.get("check").c_str(), snapshots.size(),
                  snapshots.size() == 1 ? "" : "s");
      return 0;
    }

    const auto& files = cli.positional();
    if (files.size() == 1) {
      render(load_snapshots(files[0]).back());
      return 0;
    }
    if (files.size() != 2) {
      std::fprintf(stderr,
                   "usage: eclp-metrics <metrics.jsonl> | <base.jsonl> "
                   "<cand.jsonl> | --check <metrics.jsonl>\n");
      return 2;
    }
    return diff(load_snapshots(files[0]).back(),
                load_snapshots(files[1]).back(),
                cli.get_double("counter-tol"), cli.get_double("latency-tol"));
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "eclp-metrics: %s\n", e.what());
    return 2;
  }
}
