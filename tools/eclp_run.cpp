// eclp-run — run any of the five instrumented ECL algorithms on any graph,
// with verification, the paper's counters, and an optional kernel timeline.
//
//   $ eclp-run --algo=cc --graph=web.mtx
//   $ eclp-run --algo=scc --input=star --scale=small --timeline
//   $ eclp-run --algo=mst --graph=road.gr --verify
//
// Either --graph=<file> (any supported extension) or --input=<suite name>
// selects the graph. Undirected algorithms symmetrize directed files.
//
// --profile=<path> (or ECLP_PROFILE) records a profiling session: a
// versioned eclp.profile JSON at <path> (gate two runs against each other
// with eclp-profile-diff) plus a Perfetto-loadable <path minus
// .json>.trace.json. See docs/OBSERVABILITY.md.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "algos/cc/ecl_cc.hpp"
#include "graph/cache.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/stream.hpp"
#include "gen/suite.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "profile/session.hpp"
#include "sim/trace.hpp"
#include "support/cli.hpp"
#include "support/parallel_for.hpp"
#include "support/rss.hpp"
#include "support/timer.hpp"

using namespace eclp;

namespace {

graph::Csr obtain_graph(const Cli& cli, const std::string& algo) {
  const bool want_directed = algo == "scc";
  graph::Csr g;
  if (!cli.get("graph").empty()) {
    g = graph::load_any(cli.get("graph"), want_directed);
  } else {
    ECLP_CHECK_MSG(!cli.get("input").empty(),
                   "pass --graph=<file> or --input=<suite name>");
    g = gen::find_input(cli.get("input"))
            .make(gen::parse_scale(cli.get("scale")));
  }
  if (!want_directed && g.directed()) {
    std::printf("note: symmetrizing directed input for an undirected "
                "algorithm\n");
    g = graph::symmetrize(g);
  }
  ECLP_CHECK_MSG(!want_directed || g.directed(),
                 "SCC needs a directed graph");
  // MST weights must be attached BEFORE any reordering: with_random_weights
  // hashes endpoint ids, so weighting first and permuting the weights with
  // the graph keeps results isomorphic across every --reorder choice.
  if (algo == "mst" && !g.weighted()) {
    g = graph::with_random_weights(g,
                                   static_cast<u64>(cli.get_int("weights")));
    std::printf("note: attached random weights (seed %lld)\n",
                static_cast<long long>(cli.get_int("weights")));
  }
  const auto spec = graph::ReorderSpec::parse(cli.get("reorder"));
  if (!spec.is_natural()) {
    g = graph::apply_reorder(g, spec);
    std::printf("note: reordered vertices (%s); locality %.4f, "
                "block affinity %.4f\n",
                spec.canonical().c_str(), graph::locality_score(g),
                graph::block_affinity(g, 256));
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("algo", "cc | gc | mis | mst | scc", "cc");
  cli.add_option("graph", "graph file (.eclg/.mtx/.gr/.col/.el)", "");
  cli.add_option("input", "suite input name (alternative to --graph)", "");
  cli.add_option("scale",
                 "tiny|small|default|huge (with --input; huge streams "
                 "through the chunked generator pipeline)",
                 "small");
  cli.add_option("seed", "device seed (shuffled schedule if nonzero)", "0");
  cli.add_option("weights", "random-weight seed for MST on unweighted input",
                 "42");
  cli.add_option("sim-threads",
                 "host worker threads for block-parallel simulation "
                 "(0 = one per hardware thread; overrides ECLP_SIM_THREADS)",
                 "");
  cli.add_option("build-threads",
                 "host threads for parallel graph ingest (0 = one per "
                 "hardware thread; overrides ECLP_BUILD_THREADS)",
                 "");
  cli.add_option("graph-cache",
                 "content-addressed .eclg cache directory — repeat runs "
                 "skip graph generation/parsing/build; overrides "
                 "ECLP_GRAPH_CACHE (see docs/INGEST.md)",
                 "");
  cli.add_option("gen-chunks",
                 "chunk count for streamed (scale=huge) generation — "
                 "scheduling granularity only, the graph is chunk-count-"
                 "invariant (0 = default; docs/INGEST.md)",
                 "");
  cli.add_option("profile",
                 "write a profiling session (eclp.profile JSON + Perfetto "
                 ".trace.json) to this path; overrides ECLP_PROFILE",
                 "");
  cli.add_option("reorder",
                 "vertex reordering applied to the input: natural, "
                 "random[:SEED], bfs, degree, hub, hubcluster, "
                 "gorder[:WINDOW]",
                 "natural");
  cli.add_option("llc",
                 "modeled last-level cache: off (default), on, or "
                 "LINE:WAYS:SETS (e.g. 64:8:64) — adds llc hit/miss "
                 "counters to profiles (docs/SIMULATOR.md)",
                 "off");
  cli.add_flag("verify", "check the result against the sequential reference");
  cli.add_flag("timeline", "print the kernel launch timeline");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help")) {
    std::printf("%s", cli.usage("eclp-run").c_str());
    return 0;
  }

  const std::string algo = cli.get("algo");
  if (!cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(cli.get_int("sim-threads")));
  }
  if (!cli.get("build-threads").empty()) {
    set_build_threads(static_cast<u32>(cli.get_int("build-threads")));
  }
  if (!cli.get("graph-cache").empty()) {
    graph::set_cache_dir(cli.get("graph-cache"));
  }
  if (!cli.get("gen-chunks").empty()) {
    gen::set_gen_chunks(static_cast<u64>(cli.get_int("gen-chunks")));
  }
  const u64 seed = static_cast<u64>(cli.get_int("seed"));
  sim::CostModel cost;
  cost.cache = sim::parse_cache_config(cli.get("llc"));
  sim::Device dev(cost, seed,
                  seed == 0 ? sim::ScheduleMode::kDeterministic
                            : sim::ScheduleMode::kShuffled);
  sim::Trace trace;
  if (cli.get_flag("timeline")) dev.set_trace(&trace);

  std::string profile_path = cli.get("profile");
  if (profile_path.empty()) {
    const char* env = std::getenv("ECLP_PROFILE");
    if (env != nullptr) profile_path = env;
  }
  std::unique_ptr<profile::Session> session;
  if (!profile_path.empty()) {
    session = std::make_unique<profile::Session>(dev);
    session->set_meta("tool", "eclp-run");
    session->set_meta("algo", algo);
    session->set_meta("seed", cli.get("seed"));
    session->set_meta("graph", !cli.get("graph").empty()
                                   ? cli.get("graph")
                                   : cli.get("input"));
    const auto spec = graph::ReorderSpec::parse(cli.get("reorder"));
    if (!spec.is_natural()) session->set_meta("reorder", spec.canonical());
    if (cost.cache.enabled) {
      session->set_meta("llc", sim::cache_config_label(cost.cache));
    }
    session->set_output(profile_path);
  }

  Timer wall;
  if (algo == "cc") {
    const auto g = obtain_graph(cli, algo);
    const auto res = algos::cc::run(dev, g);
    std::printf("CC: %zu components, %llu modeled cycles, %.0f ms wall\n",
                [&] {
                  usize c = 0;
                  for (vidx v = 0; v < g.num_vertices(); ++v) {
                    c += (res.labels[v] == v);
                  }
                  return c;
                }(),
                static_cast<unsigned long long>(res.modeled_cycles),
                wall.milliseconds());
    std::printf("init traversals %llu over %llu vertices (ratio %.2f)\n",
                static_cast<unsigned long long>(
                    res.profile.init_neighbors_traversed),
                static_cast<unsigned long long>(
                    res.profile.vertices_initialized),
                static_cast<double>(res.profile.init_neighbors_traversed) /
                    static_cast<double>(res.profile.vertices_initialized));
    if (cli.get_flag("verify")) {
      ECLP_CHECK_MSG(algos::cc::verify(g, res.labels), "CC verify FAILED");
      std::printf("verified against BFS reference.\n");
    }
  } else if (algo == "gc") {
    const auto g = obtain_graph(cli, algo);
    const auto res = algos::gc::run(dev, g);
    std::printf("GC: %u colors in %llu rounds, %llu modeled cycles, "
                "%.0f ms wall\n",
                res.num_colors,
                static_cast<unsigned long long>(res.host_iterations),
                static_cast<unsigned long long>(res.modeled_cycles),
                wall.milliseconds());
    if (cli.get_flag("verify")) {
      ECLP_CHECK_MSG(algos::gc::verify(g, res.colors), "GC verify FAILED");
      std::printf("verified: proper coloring.\n");
    }
  } else if (algo == "mis") {
    const auto g = obtain_graph(cli, algo);
    const auto res = algos::mis::run(dev, g);
    std::printf("MIS: |S| = %zu, iterations avg %.2f max %.0f, %llu modeled "
                "cycles, %.0f ms wall\n",
                res.set_size, res.metrics.iterations.mean,
                res.metrics.iterations.max,
                static_cast<unsigned long long>(res.modeled_cycles),
                wall.milliseconds());
    if (cli.get_flag("verify")) {
      ECLP_CHECK_MSG(algos::mis::verify(g, res.status), "MIS verify FAILED");
      std::printf("verified: independent and maximal.\n");
    }
  } else if (algo == "mst") {
    const auto g = obtain_graph(cli, algo);
    algos::mst::Options opt;
    opt.record_iteration_metrics = true;
    const auto res = algos::mst::run(dev, g, opt);
    std::printf("MST: weight %llu over %zu edges, %zu iterations, %llu "
                "modeled cycles, %.0f ms wall\n",
                static_cast<unsigned long long>(res.total_weight),
                res.mst_edges, res.iterations.size(),
                static_cast<unsigned long long>(res.modeled_cycles),
                wall.milliseconds());
    if (cli.get_flag("verify")) {
      ECLP_CHECK_MSG(algos::mst::verify(g, res), "MST verify FAILED");
      std::printf("verified against Kruskal.\n");
    }
  } else if (algo == "scc") {
    const auto g = obtain_graph(cli, algo);
    const auto res = algos::scc::run(dev, g);
    std::printf("SCC: %zu components in m = %u rounds, %llu modeled cycles, "
                "%.0f ms wall\n",
                res.num_sccs, res.outer_iterations,
                static_cast<unsigned long long>(res.modeled_cycles),
                wall.milliseconds());
    if (cli.get_flag("verify")) {
      ECLP_CHECK_MSG(algos::scc::verify(g, res.scc_id), "SCC verify FAILED");
      std::printf("verified against Tarjan.\n");
    }
  } else {
    std::printf("unknown --algo=%s (cc | gc | mis | mst | scc)\n",
                algo.c_str());
    return 2;
  }

  if (cli.get_flag("timeline")) {
    std::printf("\n%s", trace.summary().to_text().c_str());
    std::printf("\n%s", trace.load_balance().to_text().c_str());
  }
  if (session != nullptr) {
    session.reset();  // finalize + write both artifacts
    std::printf("profile: %s (+ %s)\n", profile_path.c_str(),
                profile::Session::trace_path_for(profile_path).c_str());
  }
  std::printf("atomics: %llu total, CAS failure rate %.1f%%\n",
              static_cast<unsigned long long>(dev.atomic_stats().total()),
              100.0 * dev.atomic_stats().cas_failure_rate());
  // The bounded-memory smoke (tests/gen_smoke.cmake) asserts a ceiling on
  // this line; 0 means procfs is unavailable and the smoke skips.
  std::printf("peak rss: %llu MiB\n",
              static_cast<unsigned long long>(peak_rss_bytes() >> 20));
  if (cost.cache.enabled) {
    const u64 total = dev.llc_hits() + dev.llc_misses();
    std::printf("llc(%s): %llu hits, %llu misses (hit rate %.1f%%)\n",
                sim::cache_config_label(cost.cache).c_str(),
                static_cast<unsigned long long>(dev.llc_hits()),
                static_cast<unsigned long long>(dev.llc_misses()),
                total == 0 ? 100.0
                           : 100.0 * static_cast<double>(dev.llc_hits()) /
                                 static_cast<double>(total));
  }
  return 0;
}
