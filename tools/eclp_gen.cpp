// eclp-gen — materialize suite inputs (or list them).
//
//   $ eclp-gen --list
//   $ eclp-gen --input=europe_osm --scale=small --out=europe.eclg
//   $ eclp-gen --input=star --scale=default --out=star.mtx
//
// Output format follows the file extension (see graph::save_any). Weighted
// copies (for MST work) are produced with --weights=<seed>.
#include <cstdio>

#include "gen/stream.hpp"
#include "gen/suite.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("list", "list the available suite inputs");
  cli.add_option("input", "suite input name", "");
  cli.add_option("scale", "tiny|small|default|huge", "small");
  cli.add_option("out", "output path (.eclg/.mtx/.gr/.col/.el)", "");
  cli.add_option("gen-chunks",
                 "chunk count for streamed (scale=huge) generation "
                 "(0 = default; chunk-count-invariant output)",
                 "");
  cli.add_option("weights", "attach random weights with this seed (0 = none)",
                 "0");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help") || (!cli.get_flag("list") && cli.get("input").empty())) {
    std::printf("%s", cli.usage("eclp-gen").c_str());
    return cli.get_flag("help") ? 0 : 2;
  }

  if (cli.get_flag("list")) {
    Table t("suite inputs (paper Table 1 classes)");
    t.set_header({"name", "class", "directed", "paper V", "paper E"});
    for (const auto* specs : {&gen::general_inputs(), &gen::mesh_inputs()}) {
      for (const auto& spec : *specs) {
        t.add_row({spec.name, spec.paper.type, spec.directed ? "yes" : "no",
                   fmt::grouped(spec.paper.vertices),
                   fmt::grouped(spec.paper.edges)});
      }
    }
    std::printf("%s", t.to_text().c_str());
    return 0;
  }

  if (!cli.get("gen-chunks").empty()) {
    gen::set_gen_chunks(static_cast<u64>(cli.get_int("gen-chunks")));
  }
  const auto& spec = gen::find_input(cli.get("input"));
  auto g = spec.make(gen::parse_scale(cli.get("scale")));
  const u64 weight_seed = static_cast<u64>(cli.get_int("weights"));
  if (weight_seed != 0) {
    ECLP_CHECK_MSG(!g.directed(), "--weights is for undirected (MST) inputs");
    g = graph::with_random_weights(g, weight_seed);
  }
  ECLP_CHECK_MSG(!cli.get("out").empty(), "--out is required with --input");
  graph::save_any(g, cli.get("out"));
  std::printf("%s: %u vertices, %u edges%s -> %s\n", spec.name.c_str(),
              g.num_vertices(), g.num_edges(),
              g.weighted() ? " (weighted)" : "", cli.get("out").c_str());
  return 0;
}
