// eclp-profile-diff — validate and gate eclp.profile artifacts.
//
//   $ eclp-profile-diff --check run.json
//       validate the artifact against the eclp.profile v1 schema
//   $ eclp-profile-diff base.json candidate.json
//       compare per-kernel and per-counter; exit 1 when the candidate
//       regresses beyond tolerance (see --cycle-tol / --counter-tol)
//
// The gated metrics are purely modeled (cycles, launches, atomics, registry
// counters) and therefore bit-stable run to run; wall-clock and worker
// utilization are reported by the artifacts but never gated. A profile
// diffed against itself always exits 0 — that self-diff is part of the
// profile-smoke ctest label.
//
// Exit codes: 0 ok, 1 regressions found, 2 usage/IO/validation error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "profile/diff.hpp"
#include "support/cli.hpp"

using namespace eclp;

namespace {

json::Value load_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ECLP_CHECK_MSG(static_cast<bool>(in), "cannot open '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return json::Value::parse(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("cycle-tol",
                 "allowed growth of modeled-cycle metrics, percent", "2");
  cli.add_option("counter-tol",
                 "allowed growth of counter/atomic metrics, percent", "0");
  cli.add_option("check", "validate this profile against the schema and exit",
                 "");
  cli.add_flag("all", "print unchanged metrics too");
  cli.add_flag("help", "show usage");
  cli.parse(argc, argv);
  if (cli.get_flag("help")) {
    std::printf("usage: eclp-profile-diff [options] <base.json> <cand.json>\n"
                "       eclp-profile-diff --check <profile.json>\n\n%s",
                cli.usage("eclp-profile-diff").c_str());
    return 0;
  }

  try {
    if (!cli.get("check").empty()) {
      const json::Value doc = load_json(cli.get("check"));
      profile::validate_profile(doc);
      std::printf("%s: valid eclp.profile v%llu (%zu spans, %zu kernels)\n",
                  cli.get("check").c_str(),
                  static_cast<unsigned long long>(doc.at("version").as_u64()),
                  doc.at("spans").items().size(),
                  doc.at("kernels").items().size());
      return 0;
    }

    const auto& files = cli.positional();
    if (files.size() != 2) {
      std::fprintf(stderr,
                   "usage: eclp-profile-diff <base.json> <candidate.json> "
                   "(or --check <profile.json>)\n");
      return 2;
    }
    profile::DiffOptions options;
    options.cycle_tolerance_pct = cli.get_double("cycle-tol");
    options.counter_tolerance_pct = cli.get_double("counter-tol");

    const json::Value base = load_json(files[0]);
    const json::Value cand = load_json(files[1]);
    const profile::DiffReport report =
        profile::diff_profiles(base, cand, options);
    std::printf("%s", report.to_string(cli.get_flag("all")).c_str());
    return report.regressions() == 0 ? 0 : 1;
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "eclp-profile-diff: %s\n", e.what());
    return 2;
  }
}
