// Tour of the graph substrate: generate every suite input, print its
// structural profile (the properties the profiled behaviours depend on),
// and round-trip one graph through the binary container format.
//
//   $ ./graph_zoo [--scale=tiny] [--save=path.eclg]
#include <cstdio>
#include <sstream>

#include "gen/suite.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("scale", "tiny|small|default", "tiny");
  cli.add_option("save", "write this input to a .eclg file", "");
  cli.add_option("input", "which input --save exports", "rmat16.sym");
  cli.parse(argc, argv);
  const auto scale = gen::parse_scale(cli.get("scale"));

  Table t("graph zoo (" + cli.get("scale") + " scale)");
  t.set_header({"name", "V", "E", "d-avg", "d-max", "components",
                "diam est", "directed"});
  for (const auto* specs : {&gen::general_inputs(), &gen::mesh_inputs()}) {
    for (const auto& spec : *specs) {
      const auto g = spec.make(scale);
      const auto deg = graph::degree_stats(g);
      const std::string comps =
          g.directed() ? "-" : std::to_string(graph::count_components(g));
      const std::string diam =
          g.directed() ? "-" : std::to_string(graph::estimate_diameter(g));
      t.add_row({spec.name, fmt::grouped(g.num_vertices()),
                 fmt::grouped(g.num_edges()), fmt::fixed(deg.avg, 2),
                 fmt::grouped(deg.max), comps, diam,
                 g.directed() ? "yes" : "no"});
    }
  }
  std::printf("%s\n", t.to_text().c_str());

  // Serialization round-trip demo.
  const auto g = gen::find_input(cli.get("input")).make(scale);
  std::stringstream buffer;
  graph::write_binary(g, buffer);
  const auto reloaded = graph::read_binary(buffer);
  ECLP_CHECK(reloaded == g);
  std::printf("binary round-trip of %s: %zu bytes, identical after reload\n",
              cli.get("input").c_str(), buffer.str().size());
  if (!cli.get("save").empty()) {
    graph::save_binary(g, cli.get("save"));
    std::printf("wrote %s\n", cli.get("save").c_str());
  }
  return 0;
}
