// Combining the two profiling views: the paper's application-specific
// counters tell you WHAT a kernel did; the launch timeline tells you WHERE
// the modeled time went. This example runs ECL-MST with both attached.
//
//   $ ./kernel_timeline [--input=amazon0601] [--scale=small]
#include <cstdio>

#include "algos/mst/ecl_mst.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"
#include "support/cli.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "suite input name", "amazon0601");
  cli.add_option("scale", "tiny|small|default", "small");
  cli.add_option("csv", "write the raw per-launch timeline here", "");
  cli.add_option("sim-threads",
                 "host workers for block-parallel simulation "
                 "(0 = one per hardware thread)",
                 "");
  cli.parse(argc, argv);
  if (!cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(cli.get_int("sim-threads")));
  }

  const auto g = graph::with_random_weights(
      gen::find_input(cli.get("input")).make(gen::parse_scale(cli.get("scale"))),
      42);

  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);

  algos::mst::Options opt;
  opt.record_iteration_metrics = true;
  const auto res = algos::mst::run(dev, g, opt);
  ECLP_CHECK_MSG(algos::mst::verify(g, res),
                 "MST verification failed");

  // View 1 — the timeline: which kernel dominates, and how many launches.
  std::printf("%s\n", trace.summary("where the modeled cycles went").to_text().c_str());

  // View 2 — the counters: what the dominant kernel was actually doing.
  std::printf("per-iteration behaviour of the dominant kernel (K1):\n");
  for (const auto& it : res.iterations) {
    std::printf("  %-10s %2u: %5.1f%% threads had work, %5.1f%% conflicted, "
                "%5.1f%% of atomics useless\n",
                it.kind.c_str(), it.index, it.pct_with_work(),
                it.pct_conflicting(), it.pct_useless_atomics());
  }
  std::printf("\nMST weight %llu over %zu edges in %zu launches.\n",
              static_cast<unsigned long long>(res.total_weight),
              res.mst_edges, trace.size());

  if (!cli.get("csv").empty()) {
    std::FILE* f = std::fopen(cli.get("csv").c_str(), "w");
    ECLP_CHECK_MSG(f != nullptr, "cannot open " << cli.get("csv"));
    const auto csv = trace.to_csv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    std::printf("raw timeline written to %s\n", cli.get("csv").c_str());
  }
  return 0;
}
