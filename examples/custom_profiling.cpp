// Applying the paper's methodology to YOUR OWN kernel.
//
//   $ ./custom_profiling [--scale=small]
//
// The paper's point (§7): don't only rely on sophisticated profilers — add
// counters to your source. This example writes a level-synchronous BFS
// kernel against the simulated device and instruments it with the
// profiling framework exactly the way the five ECL ports are instrumented:
//
//   * a GlobalCounter for edges relaxed per level (algorithm-specific),
//   * a PerThreadCounter for per-thread work (the load-balance metric,
//     paper §3.1.1),
//   * GlobalCounters for idle vs. active threads (paper §3.1.3-3.1.4),
//   * the device's AtomicStats for the CAS failure rate (paper §3.1.5).
//
// Pass --profile=out.json (or set ECLP_PROFILE) to also record a profiling
// session: per-level spans plus every launch, exported as an eclp.profile
// document and a Perfetto trace (docs/OBSERVABILITY.md).
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "gen/suite.hpp"
#include "graph/properties.hpp"
#include "profile/registry.hpp"
#include "profile/session.hpp"
#include "sim/device.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("scale", "tiny|small|default", "small");
  cli.add_option("input", "suite input name", "USA-road-d.NY");
  cli.add_option("sim-threads",
                 "host workers for block-parallel simulation "
                 "(0 = one per hardware thread)",
                 "");
  cli.add_option("profile",
                 "write a profiling session (eclp.profile JSON + Perfetto "
                 ".trace.json) to this path; overrides ECLP_PROFILE",
                 "");
  cli.parse(argc, argv);
  if (!cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(cli.get_int("sim-threads")));
  }
  const auto g =
      gen::find_input(cli.get("input")).make(gen::parse_scale(cli.get("scale")));
  const vidx n = g.num_vertices();

  sim::Device dev;
  profile::CounterRegistry reg;

  // Optional profiling session: spans cover the whole BFS and each level.
  std::string profile_path = cli.get("profile");
  if (profile_path.empty()) {
    const char* env = std::getenv("ECLP_PROFILE");
    if (env != nullptr) profile_path = env;
  }
  std::unique_ptr<profile::Session> session;
  if (!profile_path.empty()) {
    session = std::make_unique<profile::Session>(dev, &reg);
    session->set_meta("tool", "custom_profiling");
    session->set_meta("input", cli.get("input"));
    session->set_output(profile_path);
  }

  // --- the user's own BFS, manually instrumented -----------------------------
  constexpr u32 kUnvisited = ~u32{0};
  std::vector<u32> dist(n, kUnvisited);
  std::vector<vidx> frontier = {0};
  dist[0] = 0;

  auto& relaxed = reg.make<profile::GlobalCounter>("edges relaxed");
  auto& wins = reg.make<profile::GlobalCounter>("CAS wins");
  auto& idle = reg.make<profile::GlobalCounter>("idle threads");
  auto& active = reg.make<profile::GlobalCounter>("active threads");
  constexpr u32 kTpb = 256;
  auto& per_thread = reg.make<profile::PerThreadCounter>("edges per thread");

  profile::ScopedSpan bfs_span("custom-bfs", profile::SpanKind::kAlgorithm);
  u32 level = 0;
  while (!frontier.empty()) {
    ++level;
    profile::ScopedSpan level_span(profile::SpanKind::kIteration, "level",
                                   level);
    const u32 blocks =
        static_cast<u32>((frontier.size() + kTpb - 1) / kTpb);
    const sim::LaunchConfig cfg{blocks, kTpb};
    per_thread.resize(cfg.total_threads());
    std::vector<vidx> next;
    dev.launch("bfs_level", cfg, [&](sim::ThreadCtx& ctx) {
      const u32 tid = ctx.global_id();
      if (tid >= frontier.size()) {
        idle.inc();  // launched beyond the frontier: no work assigned
        return;
      }
      active.inc();
      const vidx u = frontier[tid];
      ctx.charge_coalesced_reads(1);
      for (const vidx v : g.neighbors(u)) {
        ctx.charge_reads(1);
        relaxed.inc();
        per_thread.inc(tid);
        // Claim the vertex with CAS, as a GPU BFS would.
        if (ctx.atomic_cas(dist[v], kUnvisited, level) == kUnvisited) {
          wins.inc();
          next.push_back(v);
        }
      }
    });
    // Per-level load balance: the spread of edges handled per thread.
    const auto s = per_thread.summary();
    std::printf("level %2u: frontier %6zu, relaxed/thread avg %6.1f max %4.0f"
                "  (imbalance %.1fx)\n",
                level, frontier.size(), s.mean, s.max,
                s.mean > 0 ? s.max / s.mean : 0.0);
    frontier = std::move(next);
  }
  bfs_span.end();
  if (session != nullptr) {
    session.reset();  // finalize + write both artifacts
    std::printf("profile: %s (+ %s)\n", profile_path.c_str(),
                profile::Session::trace_path_for(profile_path).c_str());
  }

  std::printf("\n%s\n", reg.report("BFS counters").to_text().c_str());
  const auto& at = dev.atomic_stats();
  std::printf("CAS failure rate: %.1f%% — every failure is a vertex two "
              "threads raced for.\n",
              100.0 * at.cas_failure_rate());

  // Sanity: instrumented BFS must agree with the reference.
  const auto ref = graph::bfs_distances(g, 0);
  for (vidx v = 0; v < n; ++v) {
    ECLP_CHECK_MSG(dist[v] == (ref[v] == graph::kUnreachable
                                   ? kUnvisited
                                   : (ref[v] == 0 ? 0u : ref[v])),
                   "BFS mismatch at " << v);
  }
  std::printf("BFS verified against the sequential reference.\n");
  return 0;
}
