// Quickstart: run one instrumented graph algorithm on the simulated device
// and read the counters the paper's methodology is built on.
//
//   $ ./quickstart [--input=europe_osm] [--scale=small]
//
// Steps: pick a suite input (or any Csr you build yourself), create a
// sim::Device, run ECL-CC, verify the result, and inspect (a) the
// application-specific counters the kernel collected and (b) the
// device-wide atomic outcome statistics no standard profiler reports.
#include <cstdio>

#include "algos/cc/ecl_cc.hpp"
#include "gen/suite.hpp"
#include "sim/device.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "suite input name (see gen/suite.hpp)",
                 "europe_osm");
  cli.add_option("scale", "tiny|small|default", "small");
  cli.add_option("sim-threads",
                 "host workers for block-parallel simulation "
                 "(0 = one per hardware thread)",
                 "");
  cli.parse(argc, argv);
  if (!cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(cli.get_int("sim-threads")));
  }

  // 1. Get a graph. Any undirected graph::Csr works; the suite mirrors the
  //    paper's Table 1 inputs.
  const auto& spec = gen::find_input(cli.get("input"));
  const auto g = spec.make(gen::parse_scale(cli.get("scale")));
  std::printf("input %s: %u vertices, %u edges (d-avg %.2f, d-max %u)\n\n",
              spec.name.c_str(), g.num_vertices(), g.num_edges(),
              graph::degree_stats(g).avg, graph::degree_stats(g).max);

  // 2. Create the simulated device and run the instrumented algorithm.
  sim::Device dev;
  const auto res = algos::cc::run(dev, g);
  ECLP_CHECK_MSG(algos::cc::verify(g, res.labels), "CC verification failed");

  // 3. Application-specific counters (what Nsight cannot tell you).
  const auto& p = res.profile;
  Table t("ECL-CC application-specific counters");
  t.set_header({"counter", "value"});
  t.add_row({"vertices initialized", fmt::grouped(p.vertices_initialized)});
  t.add_row({"init neighbors traversed",
             fmt::grouped(p.init_neighbors_traversed)});
  t.add_row({"representative() calls", fmt::grouped(p.representative_calls)});
  t.add_row({"representative moved", fmt::grouped(p.representative_moved)});
  t.add_row({"hook attempts", fmt::grouped(p.hook_attempts)});
  t.add_row({"hook CAS successes", fmt::grouped(p.hook_cas_success)});
  t.add_row({"hook CAS failures", fmt::grouped(p.hook_cas_failure)});
  std::printf("%s\n", t.to_text().c_str());

  // 4. Device-wide atomic outcomes and the modeled cost.
  const auto& at = dev.atomic_stats();
  std::printf("atomicCAS failure rate: %.2f%%  (%llu of %llu)\n",
              100.0 * at.cas_failure_rate(),
              static_cast<unsigned long long>(
                  at.count(sim::AtomicOutcome::kCasFailure)),
              static_cast<unsigned long long>(at.cas_total()));
  std::printf("modeled cycles: %llu (init kernel: %llu, %.1f%%)\n",
              static_cast<unsigned long long>(res.modeled_cycles),
              static_cast<unsigned long long>(res.init_cycles),
              100.0 * static_cast<double>(res.init_cycles) /
                  static_cast<double>(res.modeled_cycles));
  std::printf("\ncomponents found: ");
  usize comps = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) comps += (res.labels[v] == v);
  std::printf("%zu\n", comps);
  return 0;
}
