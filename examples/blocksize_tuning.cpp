// The paper's §6.2.1 workflow as a reusable tool: profile ECL-SCC per-block
// behaviour on a mesh, then sweep the thread-block size and report modeled
// speedups over the 512-thread default.
//
//   $ ./blocksize_tuning [--input=star] [--scale=small]
#include <algorithm>
#include <cstdio>

#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "sim/device.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace eclp;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("input", "mesh input (toroid-wedge, star, toroid-hex, "
                          "cold-flow, klein-bottle)",
                 "star");
  cli.add_option("scale", "tiny|small|default", "small");
  cli.add_option("sim-threads",
                 "host workers for block-parallel simulation "
                 "(0 = one per hardware thread)",
                 "");
  cli.parse(argc, argv);
  if (!cli.get("sim-threads").empty()) {
    sim::set_sim_threads(static_cast<u32>(cli.get_int("sim-threads")));
  }
  const auto g =
      gen::find_input(cli.get("input")).make(gen::parse_scale(cli.get("scale")));

  // Step 1 — profile at the default block size: how localized are the
  // signature updates? (This is what motivated the tuning in the paper.)
  {
    sim::Device dev;
    algos::scc::Options opt;
    opt.record_series = true;
    const auto res = algos::scc::run(dev, g, opt);
    ECLP_CHECK(algos::scc::verify(g, res.scc_id));
    const auto* first = res.series.find(1, 1);
    const u64 last_n = res.series.max_inner(res.outer_iterations);
    const auto* last = res.series.find(res.outer_iterations, last_n);
    const auto actives = [](const profile::BlockSeries::Snapshot* s) {
      usize a = 0;
      if (s != nullptr) {
        for (const u64 v : s->per_block) a += (v > 0);
      }
      return a;
    };
    std::printf(
        "profile at 512 threads/block: %u outer rounds, first launch has "
        "%zu/%zu active blocks, final launch %zu — updates localize, so "
        "whole blocks idle through block-wide syncs.\n\n",
        res.outer_iterations, actives(first),
        first ? first->per_block.size() : 0, actives(last));
  }

  // Step 2 — sweep the block size.
  Table t("ECL-SCC block-size sweep on " + cli.get("input") +
          " (speedup over 512)");
  t.set_header({"threads/block", "modeled cycles", "speedup vs 512"});
  u64 base = 0;
  {
    sim::Device dev;
    algos::scc::Options opt;
    opt.threads_per_block = 512;
    base = algos::scc::run(dev, g, opt).modeled_cycles;
  }
  u32 best_tpb = 512;
  double best = 1.0;
  for (const u32 tpb : {64u, 128u, 256u, 512u, 1024u}) {
    sim::Device dev;
    algos::scc::Options opt;
    opt.threads_per_block = tpb;
    const auto res = algos::scc::run(dev, g, opt);
    ECLP_CHECK(algos::scc::verify(g, res.scc_id));
    const double speedup =
        static_cast<double>(base) / static_cast<double>(res.modeled_cycles);
    t.add_row({std::to_string(tpb), fmt::grouped(res.modeled_cycles),
               fmt::fixed(speedup, 2)});
    if (speedup > best) {
      best = speedup;
      best_tpb = tpb;
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf("recommendation: %u threads/block (%.2fx over the default)\n",
              best_tpb, best);
  return 0;
}
