// The reproduction's headline claims (EXPERIMENTS.md), asserted in CI.
//
// Every table/figure bench prints data; these tests pin the *shapes* the
// reproduction stands on, so a regression in any substrate (generator, cost
// model, algorithm port) that would silently change a conclusion fails the
// suite instead. Tiny scale keeps them fast; the shapes hold at every scale.
#include <gtest/gtest.h>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "support/stats.hpp"

namespace eclp {
namespace {

// --- Table 2 / Table 3 shapes ----------------------------------------------------

TEST(Claims, MisMaxIterationsFarExceedAverage) {
  // §6.1.1: some threads spin while most finish quickly.
  for (const char* name : {"internet", "europe_osm", "as-skitter"}) {
    const auto g = gen::find_input(name).make(gen::Scale::kTiny);
    sim::Device dev;
    const auto res = algos::mis::run(dev, g);
    EXPECT_GE(res.metrics.iterations.max, 3.0 * res.metrics.iterations.mean)
        << name;
  }
}

TEST(Claims, MisFinalizedTracksVertexCount) {
  // §6.1.1: finalized-per-thread correlates ~perfectly with |V|.
  // Small scale: tiny inputs span too narrow a vertex range for a stable r.
  std::vector<double> finalized, vertices;
  for (const auto& spec : gen::general_inputs()) {
    const auto g = spec.make(gen::Scale::kSmall);
    sim::Device dev;
    const auto res = algos::mis::run(dev, g);
    finalized.push_back(res.metrics.vertices_finalized.mean);
    vertices.push_back(static_cast<double>(g.num_vertices()));
  }
  EXPECT_GT(stats::pearson(finalized, vertices), 0.85);
}

// --- Table 4 shape -----------------------------------------------------------------

TEST(Claims, CitationGraphsTraverseFarMoreThanSocialGraphs) {
  const auto ratio_of = [](const char* name) {
    const auto g = gen::find_input(name).make(gen::Scale::kTiny);
    sim::Device dev;
    const auto res = algos::cc::run(dev, g);
    return static_cast<double>(res.profile.init_neighbors_traversed) /
           static_cast<double>(res.profile.vertices_initialized);
  };
  EXPECT_GT(ratio_of("cit-Patents"), 1.5);
  EXPECT_LT(ratio_of("as-skitter"), 1.15);
  EXPECT_LT(ratio_of("soc-LiveJournal1"), 1.15);
  // The grid ratio depends on the shuffled numbering of the original file.
  const double grid = ratio_of("2d-2e20.sym");
  EXPECT_GT(grid, 1.4);
  EXPECT_LT(grid, 1.8);
}

// --- Table 5 shape -----------------------------------------------------------------

TEST(Claims, GcContentionGrowsWithDensity) {
  // §6.1.5: density drives invalidations and blocked attempts.
  const auto nyp_of = [](const char* name) {
    const auto g = gen::find_input(name).make(gen::Scale::kTiny);
    sim::Device dev;
    const auto res = algos::gc::run(dev, g);
    return res.run_large.not_yet_possible.mean;
  };
  EXPECT_GT(nyp_of("coPapersDBLP"), nyp_of("citationCiteseer"));
}

// --- Figure 2 shapes ----------------------------------------------------------------

TEST(Claims, MstConflictsFallAndUselessAtomicsRise) {
  const auto g = graph::with_random_weights(
      gen::find_input("amazon0601").make(gen::Scale::kTiny), 42);
  sim::Device dev;
  algos::mst::Options opt;
  opt.record_iteration_metrics = true;
  const auto res = algos::mst::run(dev, g, opt);
  std::vector<double> conflicts, useless;
  for (const auto& it : res.iterations) {
    if (it.kind != "Regular" || it.launched_threads == 0) continue;
    conflicts.push_back(it.pct_conflicting());
    if (it.atomic_attempts > 50) useless.push_back(it.pct_useless_atomics());
  }
  ASSERT_GE(conflicts.size(), 3u);
  ASSERT_GE(useless.size(), 2u);
  EXPECT_GT(conflicts.front(), conflicts.back());  // §6.1.4, decreasing
  EXPECT_LT(useless.front(), useless.back());      // §6.1.4, increasing
}

TEST(Claims, MstWorkCollapsesAfterFirstIteration) {
  const auto g = graph::with_random_weights(
      gen::find_input("amazon0601").make(gen::Scale::kTiny), 42);
  sim::Device dev;
  algos::mst::Options opt;
  opt.record_iteration_metrics = true;
  const auto res = algos::mst::run(dev, g, opt);
  ASSERT_GE(res.iterations.size(), 3u);
  EXPECT_GT(res.iterations[0].pct_with_work(), 90.0);
  EXPECT_LT(res.iterations[2].pct_with_work(), 70.0);
}

// --- Figure 1 shape ----------------------------------------------------------------

TEST(Claims, SccStarTakesManyRoundsAndLocalizes) {
  const auto g = gen::find_input("star").make(gen::Scale::kTiny);
  sim::Device dev;
  algos::scc::Options opt;
  opt.record_series = true;
  const auto res = algos::scc::run(dev, g, opt);
  EXPECT_GE(res.outer_iterations, 4u);  // the multi-round peeling
  // Activity shrinks to a few blocks by the end of m=1.
  const auto* first = res.series.find(1, 1);
  const auto* last = res.series.find(1, res.series.max_inner(1));
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  const auto active = [](const profile::BlockSeries::Snapshot& s) {
    usize a = 0;
    for (const u64 v : s.per_block) a += (v > 0);
    return a;
  };
  EXPECT_LE(active(*last) * 2, active(*first));
}

// --- Table 7 shape -----------------------------------------------------------------

TEST(Claims, OptimizedInitHelpsTraversalHeavyInputsOnly) {
  // Small scale: the init share of runtime is what carries the effect.
  const auto speedup_of = [](const char* name) {
    const auto g = gen::find_input(name).make(gen::Scale::kSmall);
    sim::Device d1, d2;
    algos::cc::Options fast;
    fast.optimized_init = true;
    const auto a = algos::cc::run(d1, g);
    const auto b = algos::cc::run(d2, g, fast);
    return static_cast<double>(a.modeled_cycles) /
           static_cast<double>(b.modeled_cycles);
  };
  const double heavy = speedup_of("cit-Patents");
  const double light = speedup_of("soc-LiveJournal1");
  EXPECT_GT(heavy, 1.01);
  EXPECT_GT(heavy, light);  // gains concentrate on the high-ratio input
  EXPECT_NEAR(light, 1.0, 0.03);
}

// --- Table 8 shape -----------------------------------------------------------------

TEST(Claims, MstLaunchFixIsNearNeutral) {
  // §6.2.3: "little to no improvement on average".
  std::vector<double> changes;
  for (const char* name : {"amazon0601", "r4-2e23.sym", "USA-road-d.NY",
                           "rmat16.sym", "europe_osm"}) {
    const auto g = graph::with_random_weights(
        gen::find_input(name).make(gen::Scale::kTiny), 42);
    sim::Device d1, d2;
    algos::mst::Options fix;
    fix.corrected_launch = true;
    const auto a = algos::mst::run(d1, g);
    const auto b = algos::mst::run(d2, g, fix);
    changes.push_back(100.0 *
                      (static_cast<double>(a.modeled_cycles) -
                       static_cast<double>(b.modeled_cycles)) /
                      static_cast<double>(a.modeled_cycles));
  }
  const auto s = stats::summarize(std::span<const double>(changes));
  EXPECT_LT(std::abs(s.mean), 15.0);  // near-neutral on average
  EXPECT_LT(s.max, 25.0);             // never a dramatic win
}

// --- cost-model pinning --------------------------------------------------------------

TEST(Claims, ModeledCyclesPinnedOnFixedInput) {
  // Golden values: any unintended cost-model or algorithm change that
  // shifts modeled time fails here before it silently reshapes a table.
  // (Update deliberately when the model changes; see docs/SIMULATOR.md.)
  const auto g = gen::find_input("rmat16.sym").make(gen::Scale::kTiny);
  sim::Device d1, d2;
  const auto cc = algos::cc::run(d1, g);
  const auto cc2 = algos::cc::run(d2, g);
  EXPECT_EQ(cc.modeled_cycles, cc2.modeled_cycles);
  EXPECT_GT(cc.modeled_cycles, 4'000u);
  EXPECT_LT(cc.modeled_cycles, 10'000'000u);
}

}  // namespace
}  // namespace eclp
