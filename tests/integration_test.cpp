// Cross-module integration tests: generate -> serialize -> reload -> run all
// five algorithms -> verify, plus end-to-end properties the benches rely on
// (cost determinism, per-run counter behaviour, seed-controlled variation).
#include <gtest/gtest.h>

#include <sstream>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "profile/registry.hpp"

namespace eclp {
namespace {

TEST(Integration, SerializeReloadRunAllUndirectedAlgos) {
  const auto g0 = gen::find_input("amazon0601").make(gen::Scale::kTiny);
  std::stringstream ss;
  graph::write_binary(g0, ss);
  const auto g = graph::read_binary(ss);

  sim::Device dev;
  const auto cc = algos::cc::run(dev, g);
  EXPECT_TRUE(algos::cc::verify(g, cc.labels));
  const auto mis = algos::mis::run(dev, g);
  EXPECT_TRUE(algos::mis::verify(g, mis.status));
  const auto gc = algos::gc::run(dev, g);
  EXPECT_TRUE(algos::gc::verify(g, gc.colors));
  const auto gw = graph::with_random_weights(g, 1);
  const auto mst = algos::mst::run(dev, gw);
  EXPECT_TRUE(algos::mst::verify(gw, mst));
  EXPECT_GT(dev.total_cycles(), 0u);
  EXPECT_GT(dev.kernel_launches(), 4u);
}

TEST(Integration, SerializeReloadRunScc) {
  const auto g0 = gen::find_input("cold-flow").make(gen::Scale::kTiny);
  std::stringstream ss;
  graph::write_matrix_market(g0, ss);
  const auto g = graph::read_matrix_market(ss);
  sim::Device dev;
  const auto res = algos::scc::run(dev, g);
  EXPECT_TRUE(algos::scc::verify(g, res.scc_id));
}

TEST(Integration, WholePipelineCycleCountIsReproducible) {
  const auto g = gen::find_input("rmat16.sym").make(gen::Scale::kTiny);
  const auto run_all = [&] {
    sim::Device dev;
    algos::cc::run(dev, g);
    algos::mis::run(dev, g);
    algos::gc::run(dev, g);
    const auto gw = graph::with_random_weights(g, 5);
    algos::mst::run(dev, gw);
    return dev.total_cycles();
  };
  EXPECT_EQ(run_all(), run_all());
}

TEST(Integration, AtomicStatsAggregateAcrossAlgorithms) {
  // The ER graph has many init-kernel roots, so CC must hook with CAS.
  const auto g = gen::find_input("r4-2e23.sym").make(gen::Scale::kTiny);
  sim::Device dev;
  algos::cc::run(dev, g);
  const u64 after_cc = dev.atomic_stats().total();
  EXPECT_GT(after_cc, 0u);  // CC hooks via atomicCAS
  const auto gw = graph::with_random_weights(g, 2);
  algos::mst::run(dev, gw);
  EXPECT_GT(dev.atomic_stats().total(), after_cc);  // MST adds atomicMin
  EXPECT_GT(dev.atomic_stats().min_total(), 0u);
  dev.atomic_stats().reset();
  EXPECT_EQ(dev.atomic_stats().total(), 0u);
}

TEST(Integration, CountersComposeWithRegistryReporting) {
  profile::CounterRegistry reg;
  auto& traversals = reg.make<profile::GlobalCounter>("init traversals");
  auto& per_thread = reg.make<profile::PerThreadCounter>("iterations", 64);
  const auto g = gen::find_input("USA-road-d.NY").make(gen::Scale::kTiny);
  sim::Device dev;
  dev.launch("user_kernel", {2, 32}, [&](sim::ThreadCtx& ctx) {
    for (vidx v = ctx.global_id(); v < g.num_vertices();
         v += ctx.grid_size()) {
      traversals.inc(g.degree(v));
      per_thread.inc(ctx.global_id());
    }
  });
  EXPECT_EQ(traversals.value(), g.num_edges());
  EXPECT_EQ(per_thread.total(), g.num_vertices());
  const auto report = reg.report();
  EXPECT_EQ(report.rows(), 2u);
}

TEST(Integration, Table3StyleSeedSweepIsReproducible) {
  // The bench for Table 3 runs MIS under three scheduler seeds; the whole
  // sweep must be bit-reproducible when repeated.
  const auto g = gen::find_input("citationCiteseer").make(gen::Scale::kTiny);
  const auto sweep = [&] {
    std::vector<double> means;
    for (const u64 seed : {1ull, 2ull, 3ull}) {
      sim::Device dev({}, seed, sim::ScheduleMode::kShuffled);
      means.push_back(algos::mis::run(dev, g).metrics.iterations.mean);
    }
    return means;
  };
  EXPECT_EQ(sweep(), sweep());
}

TEST(Integration, SpeedupRatiosAreStable) {
  // Table 7's speedup = original cycles / optimized cycles must be exactly
  // reproducible (the whole point of a modeled cost).
  const auto g = gen::find_input("cit-Patents").make(gen::Scale::kTiny);
  const auto ratio = [&] {
    sim::Device d1, d2;
    algos::cc::Options orig, fast;
    fast.optimized_init = true;
    const auto a = algos::cc::run(d1, g, orig);
    const auto b = algos::cc::run(d2, g, fast);
    return static_cast<double>(a.modeled_cycles) /
           static_cast<double>(b.modeled_cycles);
  };
  EXPECT_DOUBLE_EQ(ratio(), ratio());
  EXPECT_GT(ratio(), 1.0);  // the optimization must help on cit-Patents
}

TEST(Integration, SccBlockSizeSweepChangesCostNotResult) {
  const auto g = gen::find_input("toroid-wedge").make(gen::Scale::kTiny);
  std::vector<u64> cycles;
  usize sccs = 0;
  for (const u32 tpb : {64u, 128u, 256u, 512u, 1024u}) {
    sim::Device dev;
    algos::scc::Options opt;
    opt.threads_per_block = tpb;
    const auto res = algos::scc::run(dev, g, opt);
    if (sccs == 0) sccs = res.num_sccs;
    EXPECT_EQ(res.num_sccs, sccs);
    cycles.push_back(res.modeled_cycles);
  }
  // Cost must actually vary with block size (otherwise Table 6 is vacuous).
  EXPECT_NE(*std::min_element(cycles.begin(), cycles.end()),
            *std::max_element(cycles.begin(), cycles.end()));
}

}  // namespace
}  // namespace eclp
