# Serving smoke check, run as `cmake -P` by the serve-smoke ctest label.
#
# Inputs (all -D): ECLP_SERVE, ECLP_PROFILE_DIFF (tool paths), WORK_DIR
# (scratch directory, recreated every run).
#
# Steps:
#  1. cold -> warm pool: serve a mixed request file with --repeat=2; the
#     second round must be served entirely from the in-process graph pool
#     (hits == misses' round worth, checked via --stats-json), and both
#     rounds must produce identical deterministic response lines;
#  2. determinism: the same requests served at 1 and at 7 threads must
#     write byte-identical response files;
#  3. rejection on overload: --admission=reject with a 1-thread server and
#     a queue bound of 1 must bounce at least one request with the typed
#     "rejected" status while still exiting 0 (overload is not failure);
#  4. profile self-diff: a served run with --profile-dir writes one
#     eclp.profile artifact per request; eclp-profile-diff between two
#     servings of the same request must report zero regressions.
foreach(var ECLP_SERVE ECLP_PROFILE_DIFF WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "serve_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(requests "${WORK_DIR}/requests.jsonl")
file(WRITE "${requests}" [=[
# serve-smoke request mix: every algorithm, shared graphs across requests
{"id": "cc-rmat", "algo": "cc", "input": "rmat16.sym", "scale": "tiny"}
{"id": "gc-rmat", "algo": "gc", "input": "rmat16.sym", "scale": "tiny"}
{"id": "mis-inet", "algo": "mis", "input": "internet", "scale": "tiny", "seed": 7}
{"id": "mst-road", "algo": "mst", "input": "USA-road-d.NY", "scale": "tiny"}
{"id": "scc-cold", "algo": "scc", "input": "cold-flow", "scale": "tiny"}
]=])

# --- 1. cold -> warm pool ----------------------------------------------------
execute_process(
  COMMAND "${ECLP_SERVE}" --requests=${requests} --threads=4 --repeat=2
          --verify --out=${WORK_DIR}/repeat.jsonl
          --stats-json=${WORK_DIR}/stats.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "repeat serving failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${WORK_DIR}/stats.json" stats)
string(JSON completed GET "${stats}" completed)
string(JSON failed GET "${stats}" failed)
string(JSON pool_hits GET "${stats}" graph_pool hits)
string(JSON pool_misses GET "${stats}" graph_pool misses)
if(NOT completed EQUAL 10 OR NOT failed EQUAL 0)
  message(FATAL_ERROR "expected 10 completed / 0 failed, got "
          "${completed} / ${failed}:\n${stats}")
endif()
# 5 distinct requests over 4 distinct graphs (cc and gc share rmat16.sym):
# round one is 4 misses + 1 hit, round two is served warm — 6 hits total.
if(NOT pool_misses EQUAL 4 OR NOT pool_hits EQUAL 6)
  message(FATAL_ERROR "expected 6 pool hits / 4 misses over two rounds, got "
          "${pool_hits} / ${pool_misses}:\n${stats}")
endif()

# The warm round's deterministic lines must equal the cold round's.
file(READ "${WORK_DIR}/repeat.jsonl" repeat_body)
string(REPLACE "\n" ";" repeat_lines "${repeat_body}")
list(LENGTH repeat_lines n_lines)
if(n_lines LESS 10)
  message(FATAL_ERROR "expected 10 response lines, got ${n_lines}")
endif()
foreach(i RANGE 0 4)
  math(EXPR j "${i} + 5")
  list(GET repeat_lines ${i} cold_line)
  list(GET repeat_lines ${j} warm_line)
  if(NOT cold_line STREQUAL warm_line)
    message(FATAL_ERROR "warm round diverged from cold round:\n"
            "  cold: ${cold_line}\n  warm: ${warm_line}")
  endif()
endforeach()

# --- 2. determinism across serving thread counts -----------------------------
foreach(threads 1 7)
  execute_process(
    COMMAND "${ECLP_SERVE}" --requests=${requests} --threads=${threads}
            --out=${WORK_DIR}/t${threads}.jsonl
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "serving at ${threads} threads failed (${rc}):\n${out}\n${err}")
  endif()
endforeach()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/t1.jsonl" "${WORK_DIR}/t7.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "responses differ between 1 and 7 serving threads")
endif()

# --- 3. rejection on overload ------------------------------------------------
set(flood "${WORK_DIR}/flood.jsonl")
set(flood_body "")
foreach(i RANGE 0 31)
  string(APPEND flood_body
         "{\"id\": \"f${i}\", \"algo\": \"cc\", \"input\": \"rmat16.sym\"}\n")
endforeach()
file(WRITE "${flood}" "${flood_body}")
execute_process(
  COMMAND "${ECLP_SERVE}" --requests=${flood} --threads=1 --max-queue=1
          --admission=reject --out=${WORK_DIR}/flood_out.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "overloaded serving must still exit 0 (${rc}):\n${out}\n${err}")
endif()
file(READ "${WORK_DIR}/flood_out.jsonl" flood_out)
string(REGEX MATCHALL "\"status\":\"rejected\"" rejections "${flood_out}")
list(LENGTH rejections n_rejected)
if(n_rejected EQUAL 0)
  message(FATAL_ERROR "flooding a 1-slot queue produced no rejections:\n${out}")
endif()
string(REGEX MATCH "queue full" typed_error "${flood_out}")
if(NOT typed_error)
  message(FATAL_ERROR "rejections lack the typed queue-full error")
endif()

# --- 4. profile self-diff of a served run ------------------------------------
foreach(tag a b)
  execute_process(
    COMMAND "${ECLP_SERVE}" --requests=${requests} --threads=4
            --profile-dir=${WORK_DIR}/prof_${tag}
            --out=${WORK_DIR}/prof_${tag}.jsonl
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "profiled serving failed (${rc}):\n${out}\n${err}")
  endif()
endforeach()
foreach(id cc-rmat gc-rmat mis-inet mst-road scc-cold)
  foreach(tag a b)
    if(NOT EXISTS "${WORK_DIR}/prof_${tag}/${id}.json")
      message(FATAL_ERROR "served run did not write prof_${tag}/${id}.json")
    endif()
  endforeach()
endforeach()
execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" --check=${WORK_DIR}/prof_a/cc-rmat.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "served profile failed schema validation (${rc}):\n${out}\n${err}")
endif()
execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" "${WORK_DIR}/prof_a/cc-rmat.json"
          "${WORK_DIR}/prof_b/cc-rmat.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-diff of a served request reported regressions "
          "(${rc}):\n${out}\n${err}")
endif()

message(STATUS "serve smoke: ok")
