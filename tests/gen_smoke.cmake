# Chunked-generation smoke check, run as `cmake -P` by the gen-smoke
# ctest label.
#
# Inputs (all -D): ECLP_RUN (tool path), INPUT (suite input name with a
# streamed scale=huge generator), WORK_DIR (scratch directory, recreated
# every run), RSS_CEILING_MIB (peak-RSS budget for the cold run).
#
# Steps:
#  1. eclp-run --scale=huge --graph-cache=$WORK_DIR/cache — cold run; the
#     graph is generated through the chunked streaming path (no edge list
#     is ever materialized), must succeed, must populate the cache with at
#     least one .eclg entry, and the "peak rss: N MiB" line it prints must
#     stay under RSS_CEILING_MIB. A report of 0 MiB means procfs is not
#     available (non-Linux host), in which case the ceiling check is
#     skipped rather than failed.
#  2. an identical warm run — must succeed off the cache hit and print the
#     same modeled result line, since the streamed build is deterministic
#     and cached CSRs are bit-identical.
foreach(var ECLP_RUN INPUT WORK_DIR RSS_CEILING_MIB)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "gen_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_dir "${WORK_DIR}/cache")

execute_process(
  COMMAND "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=huge
          --graph-cache=${cache_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold huge-scale run failed (${rc}):\n${cold_out}\n${err}")
endif()

file(GLOB entries "${cache_dir}/*.eclg")
list(LENGTH entries num_entries)
if(num_entries EQUAL 0)
  message(FATAL_ERROR "cold run left no .eclg entries in ${cache_dir}")
endif()

# The streamed two-pass build must stay within a fixed multiple of the
# final CSR footprint; eclp-run prints the process-lifetime peak for
# exactly this assertion.
string(REGEX MATCH "peak rss: ([0-9]+) MiB" _ "${cold_out}")
if(NOT DEFINED CMAKE_MATCH_1)
  message(FATAL_ERROR "cold run printed no 'peak rss: N MiB' line:\n${cold_out}")
endif()
set(peak_mib "${CMAKE_MATCH_1}")
if(peak_mib EQUAL 0)
  message(STATUS "gen smoke ${INPUT}: procfs unavailable, skipping RSS ceiling")
elseif(peak_mib GREATER_EQUAL RSS_CEILING_MIB)
  message(FATAL_ERROR "cold huge-scale run peaked at ${peak_mib} MiB "
          ">= ceiling ${RSS_CEILING_MIB} MiB — the streamed build is no "
          "longer memory-bounded")
endif()

execute_process(
  COMMAND "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=huge
          --graph-cache=${cache_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm cached run failed (${rc}):\n${warm_out}\n${err}")
endif()
string(REGEX MATCH "CC: [^\n]* modeled cycles" cold_line "${cold_out}")
string(REGEX MATCH "CC: [^\n]* modeled cycles" warm_line "${warm_out}")
if(cold_line STREQUAL "")
  message(FATAL_ERROR "cold run printed no CC result line:\n${cold_out}")
endif()
if(NOT cold_line STREQUAL warm_line)
  message(FATAL_ERROR "warm run diverged from cold run:\n"
          "  cold: ${cold_line}\n  warm: ${warm_line}")
endif()

message(STATUS "gen smoke ${INPUT}: ok (peak rss ${peak_mib} MiB "
        "< ${RSS_CEILING_MIB} MiB)")
