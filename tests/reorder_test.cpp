// Reordering-suite tests: spec grammar, permutation validity for every
// order, the multi-component BFS regression, known-order locality values,
// build-thread invariance of the relabeled graphs, and the graph-cache
// memoization of apply_reorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <vector>

#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "support/parallel_for.hpp"

namespace eclp {
namespace {

graph::Csr path(vidx n) {
  std::vector<graph::Edge> edges;
  for (vidx v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 0});
  return graph::from_edges(n, edges);
}

/// Two triangles, one 2-path, and an isolated vertex: 4 components.
graph::Csr disconnected() {
  return graph::from_edges(
      9, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0},            // component A
          {3, 4, 0}, {4, 5, 0}, {3, 5, 0},            // component B
          {6, 7, 0}});                                // component C; 8 isolated
}

bool is_permutation_of_n(const std::vector<vidx>& perm, vidx n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const vidx p : perm) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::vector<vidx> inverse(const std::vector<vidx>& perm) {
  std::vector<vidx> inv(perm.size());
  for (vidx v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
  return inv;
}

// --- ReorderSpec grammar -----------------------------------------------------

TEST(ReorderSpec, ParsesEveryForm) {
  using Kind = graph::ReorderSpec::Kind;
  EXPECT_EQ(graph::ReorderSpec::parse("").kind, Kind::kNatural);
  EXPECT_EQ(graph::ReorderSpec::parse("none").kind, Kind::kNatural);
  EXPECT_EQ(graph::ReorderSpec::parse("natural").kind, Kind::kNatural);
  EXPECT_TRUE(graph::ReorderSpec::parse("natural").is_natural());

  const auto rnd = graph::ReorderSpec::parse("random");
  EXPECT_EQ(rnd.kind, Kind::kRandom);
  EXPECT_EQ(rnd.seed, 1u);
  EXPECT_EQ(graph::ReorderSpec::parse("random:7").seed, 7u);

  EXPECT_EQ(graph::ReorderSpec::parse("bfs").kind, Kind::kBfs);
  EXPECT_EQ(graph::ReorderSpec::parse("degree").kind, Kind::kDegree);
  EXPECT_EQ(graph::ReorderSpec::parse("hub").kind, Kind::kHub);
  EXPECT_EQ(graph::ReorderSpec::parse("hubcluster").kind, Kind::kHubCluster);

  const auto gorder = graph::ReorderSpec::parse("gorder");
  EXPECT_EQ(gorder.kind, Kind::kGorder);
  EXPECT_EQ(gorder.window, 8u);
  EXPECT_EQ(graph::ReorderSpec::parse("gorder:16").window, 16u);
}

TEST(ReorderSpec, CanonicalFormIsStable) {
  // Aliases collapse: cache/pool keys must not split on spelling.
  EXPECT_EQ(graph::ReorderSpec::parse("").canonical(), "natural");
  EXPECT_EQ(graph::ReorderSpec::parse("none").canonical(), "natural");
  EXPECT_EQ(graph::ReorderSpec::parse("random").canonical(), "random:1");
  EXPECT_EQ(graph::ReorderSpec::parse("random:1").canonical(), "random:1");
  EXPECT_EQ(graph::ReorderSpec::parse("gorder").canonical(), "gorder:8");
  EXPECT_EQ(graph::ReorderSpec::parse("hub").canonical(), "hub");
  // Round-trip: parsing a canonical form reproduces it.
  for (const auto& spec : graph::reorder_suite()) {
    EXPECT_EQ(graph::ReorderSpec::parse(spec.canonical()).canonical(),
              spec.canonical());
  }
}

TEST(ReorderSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(graph::ReorderSpec::parse("zorder"), CheckFailure);
  EXPECT_THROW(graph::ReorderSpec::parse("random:"), CheckFailure);
  EXPECT_THROW(graph::ReorderSpec::parse("random:abc"), CheckFailure);
  EXPECT_THROW(graph::ReorderSpec::parse("gorder:0"), CheckFailure);
  EXPECT_THROW(graph::ReorderSpec::parse("hub:3"), CheckFailure);
}

TEST(ReorderSpec, RejectsOutOfRangeArgumentsWithADiagnostic) {
  // Regression: these used to escape as uncaught std::out_of_range from
  // std::stoull/std::stoul instead of a typed CheckFailure diagnostic.
  EXPECT_THROW(graph::ReorderSpec::parse("random:99999999999999999999999"),
               CheckFailure);
  EXPECT_THROW(graph::ReorderSpec::parse("gorder:99999999999"), CheckFailure);
  try {
    graph::ReorderSpec::parse("random:99999999999999999999999");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos)
        << e.what();
  }
  // The extreme in-range values still parse.
  EXPECT_EQ(graph::ReorderSpec::parse("random:18446744073709551615").seed,
            ~u64{0});
  EXPECT_EQ(graph::ReorderSpec::parse("gorder:4294967295").window,
            4294967295u);
}

// --- permutation validity ----------------------------------------------------

TEST(Reorder, EveryOrderIsABijection) {
  const auto g = gen::rmat(10, 8000, 0.45, 0.22, 0.22, 5);
  for (const auto& spec : graph::reorder_suite()) {
    EXPECT_TRUE(is_permutation_of_n(graph::make_order(g, spec),
                                    g.num_vertices()))
        << spec.canonical();
  }
  EXPECT_TRUE(is_permutation_of_n(graph::order_hub_cluster(g),
                                  g.num_vertices()));
}

TEST(Reorder, EveryOrderCoversDisconnectedGraphs) {
  // Regression for the multi-component case: every order must rank every
  // vertex even when vertex 0's component does not reach the whole graph
  // (order_bfs restarts from the lowest-id unvisited vertex; order_gorder
  // falls back to id order when the affinity heap drains).
  const auto g = disconnected();
  for (const auto& spec : graph::reorder_suite()) {
    EXPECT_TRUE(is_permutation_of_n(graph::make_order(g, spec),
                                    g.num_vertices()))
        << spec.canonical();
  }
  EXPECT_TRUE(is_permutation_of_n(graph::order_hub_cluster(g),
                                  g.num_vertices()));
  // The isolated vertex (8) is ranked by the BFS restart chain, not left
  // at the sentinel.
  const auto bfs = graph::order_bfs(g);
  EXPECT_LT(bfs[8], g.num_vertices());
}

TEST(Reorder, MortonGridIsABijectionAndRejectsOverflowingSides) {
  // 64 exercises the exact power-of-two interleave; 257 needs 9 coordinate
  // bits and a non-power-of-two row stride.
  for (const u32 side : {64u, 257u}) {
    EXPECT_TRUE(is_permutation_of_n(graph::order_morton_grid(side),
                                    static_cast<vidx>(side * side)))
        << side;
  }
  // Regression: side >= 2^16 used to wrap y*side + x in 32-bit arithmetic
  // and hand back a non-permutation; it is now rejected up front.
  EXPECT_THROW(graph::order_morton_grid(65536), CheckFailure);
  EXPECT_THROW(graph::order_morton_grid(70000), CheckFailure);
}

TEST(Reorder, RelabelRoundTripsThroughTheInversePermutation) {
  const auto g = gen::rmat(9, 4000, 0.45, 0.22, 0.22, 7);
  for (const auto* spec : {"hub", "hubcluster", "gorder", "degree"}) {
    const auto perm = graph::make_order(g, graph::ReorderSpec::parse(spec));
    const auto forward = graph::relabel(g, perm);
    EXPECT_EQ(graph::relabel(forward, inverse(perm)), g) << spec;
  }
}

// --- order-specific structure ------------------------------------------------

TEST(Reorder, HubOrderFrontLoadsAboveMeanDegrees) {
  const auto g = gen::rmat(10, 8000, 0.45, 0.22, 0.22, 9);
  const double mean = static_cast<double>(g.num_edges()) /
                      static_cast<double>(g.num_vertices());
  vidx num_hubs = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    num_hubs += static_cast<double>(g.degree(v)) > mean;
  }
  ASSERT_GT(num_hubs, 0u);
  const auto r = graph::relabel(g, graph::order_hub(g));
  // Exactly the hub prefix exceeds the mean; degrees there are descending.
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (v < num_hubs) {
      EXPECT_GT(static_cast<double>(r.degree(v)), mean) << v;
      if (v + 1 < num_hubs) {
        EXPECT_GE(r.degree(v), r.degree(v + 1)) << v;
      }
    } else {
      EXPECT_LE(static_cast<double>(r.degree(v)), mean) << v;
    }
  }
}

TEST(Reorder, HubClusterBucketsAreMonotone) {
  const auto g = gen::rmat(10, 8000, 0.45, 0.22, 0.22, 11);
  const auto r = graph::relabel(g, graph::order_hub_cluster(g));
  const auto bucket = [&](vidx v) {
    u32 b = 0;
    for (u64 d = static_cast<u64>(r.degree(v)) + 1; d > 1; d >>= 1) ++b;
    return b;
  };
  for (vidx v = 0; v + 1 < r.num_vertices(); ++v) {
    EXPECT_GE(bucket(v), bucket(v + 1)) << v;
  }
}

// --- locality metrics on known orders ----------------------------------------

TEST(Reorder, PathGraphLocalityIsExact) {
  const vidx n = 256;
  const auto g = path(n);
  // Every edge spans id distance exactly 1, so the mean distance is 1 and
  // the normalized score is 1/n.
  EXPECT_NEAR(graph::locality_score(g), 1.0 / n, 1e-12);
  // 2 * 255 arcs; one edge (two arcs) crosses each of the three aligned
  // 64-boundaries (63-64, 127-128, 191-192).
  EXPECT_NEAR(graph::block_affinity(g, 64), (510.0 - 6.0) / 510.0, 1e-12);
}

TEST(Reorder, RandomOrderScoresNearOneThird) {
  const auto p = path(4096);
  const auto g = graph::relabel(p, graph::order_random(p, 3));
  EXPECT_NEAR(graph::locality_score(g), 1.0 / 3.0, 0.05);
  EXPECT_LT(graph::block_affinity(g, 64), 0.1);
}

TEST(Reorder, GorderBeatsRandomLocalityOnMeshes) {
  const auto g = gen::cold_flow(24, 3);
  const auto random = graph::relabel(g, graph::order_random(g, 5));
  const auto gordered =
      graph::relabel(random, graph::order_gorder(random));
  EXPECT_LT(graph::locality_score(gordered), graph::locality_score(random));
  EXPECT_GT(graph::block_affinity(gordered, 256),
            graph::block_affinity(random, 256));
}

// --- determinism across build threads ----------------------------------------

TEST(Reorder, OrdersAndRelabelsAreBuildThreadInvariant) {
  const u32 restore = build_threads();
  const auto g = gen::rmat(9, 4000, 0.45, 0.22, 0.22, 13);
  std::vector<graph::Csr> baseline;
  for (const u32 threads : {1u, 2u, 7u}) {
    set_build_threads(threads);
    std::vector<graph::Csr> relabeled;
    for (const auto& spec : graph::reorder_suite()) {
      relabeled.push_back(graph::apply_reorder(g, spec));
    }
    if (baseline.empty()) {
      baseline = std::move(relabeled);
      continue;
    }
    EXPECT_EQ(relabeled, baseline) << threads << " build threads";
  }
  set_build_threads(restore);
}

// --- graph-cache memoization -------------------------------------------------

TEST(Reorder, ApplyReorderIsMemoizedThroughTheGraphCache) {
  const std::string saved_dir = graph::cache_dir();
  const auto dir =
      std::filesystem::temp_directory_path() / "eclp_reorder_cache_test";
  std::filesystem::remove_all(dir);
  graph::set_cache_dir(dir.string());
  graph::reset_cache_stats();

  const auto g = gen::rmat(9, 4000, 0.45, 0.22, 0.22, 15);
  const auto spec = graph::ReorderSpec::parse("hub");
  const auto cold = graph::apply_reorder(g, spec);
  const auto after_cold = graph::cache_stats();
  EXPECT_EQ(after_cold.misses, 1u);
  EXPECT_EQ(after_cold.stores, 1u);

  const auto warm = graph::apply_reorder(g, spec);
  const auto after_warm = graph::cache_stats();
  EXPECT_EQ(after_warm.hits, 1u);
  EXPECT_EQ(warm, cold);

  // A different spec (and a different window of the same kind) must miss:
  // the key includes the canonical spec.
  graph::apply_reorder(g, graph::ReorderSpec::parse("gorder"));
  graph::apply_reorder(g, graph::ReorderSpec::parse("gorder:4"));
  EXPECT_EQ(graph::cache_stats().misses, 3u);

  // Natural specs bypass the cache entirely.
  graph::apply_reorder(g, graph::ReorderSpec::parse("natural"));
  EXPECT_EQ(graph::cache_stats().misses, 3u);
  EXPECT_EQ(graph::cache_stats().hits, 1u);

  graph::set_cache_dir(saved_dir);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace eclp
