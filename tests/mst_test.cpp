#include <gtest/gtest.h>

#include "algos/mst/ecl_mst.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/transforms.hpp"

namespace eclp::algos::mst {
namespace {

graph::Csr weighted(const graph::Csr& g, u64 seed = 7) {
  return graph::with_random_weights(g, seed);
}

graph::Csr small_weighted_fixture() {
  graph::BuildOptions opt;
  opt.weighted = true;
  // Classic CLRS-style example with a unique MST of weight 4+8+7+9+2+4+1+2=37.
  return graph::from_edges(
      9,
      {{0, 1, 4}, {0, 7, 8}, {1, 7, 11}, {1, 2, 8}, {7, 8, 7}, {7, 6, 1},
       {2, 8, 2}, {8, 6, 6}, {2, 3, 7}, {2, 5, 4}, {6, 5, 2}, {3, 5, 14},
       {3, 4, 9}, {5, 4, 10}},
      opt);
}

TEST(EclMst, KnownFixtureWeight) {
  sim::Device dev;
  const auto g = small_weighted_fixture();
  const auto res = run(dev, g);
  EXPECT_EQ(res.total_weight, 37u);
  EXPECT_EQ(res.mst_edges, 8u);
  EXPECT_TRUE(verify(g, res));
}

TEST(EclMst, MatchesKruskalOnRandomGraphs) {
  for (const u64 seed : {1ull, 2ull, 3ull, 4ull}) {
    sim::Device dev;
    const auto g = weighted(gen::uniform_random(2000, 6000, seed), seed);
    const auto res = run(dev, g);
    EXPECT_EQ(res.total_weight, reference_total_weight(g)) << "seed " << seed;
    EXPECT_TRUE(verify(g, res)) << "seed " << seed;
  }
}

TEST(EclMst, SpanningForestOnDisconnectedInput) {
  graph::BuildOptions opt;
  opt.weighted = true;
  const auto g = graph::from_edges(
      6, {{0, 1, 5}, {1, 2, 3}, {3, 4, 2}}, opt);  // vertex 5 isolated
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_EQ(res.mst_edges, 3u);
  EXPECT_EQ(res.total_weight, 10u);
  EXPECT_TRUE(verify(g, res));
}

TEST(EclMst, EmptyEdgeSet) {
  graph::BuildOptions opt;
  opt.weighted = true;
  const auto g = graph::from_edges(4, {}, opt);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_EQ(res.mst_edges, 0u);
  EXPECT_EQ(res.total_weight, 0u);
}

TEST(EclMst, DuplicateWeightsResolvedConsistently) {
  // All weights equal: any spanning tree is minimal; the result must still
  // be a spanning forest of n-1 edges with the right total.
  graph::BuildOptions opt;
  opt.weighted = true;
  std::vector<graph::Edge> edges;
  for (vidx u = 0; u < 30; ++u) {
    for (vidx v = u + 1; v < 30; ++v) edges.push_back({u, v, 5});
  }
  const auto g = graph::from_edges(30, edges, opt);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_EQ(res.mst_edges, 29u);
  EXPECT_EQ(res.total_weight, 29u * 5u);
  EXPECT_TRUE(verify(g, res));
}

TEST(EclMst, CorrectedLaunchSameResult) {
  const auto g = weighted(gen::preferential_attachment(3000, 4, 11), 11);
  sim::Device d1, d2;
  Options original;
  Options corrected;
  corrected.corrected_launch = true;
  const auto a = run(d1, g, original);
  const auto b = run(d2, g, corrected);
  EXPECT_EQ(a.total_weight, b.total_weight);
  EXPECT_EQ(a.mst_edges, b.mst_edges);
}

TEST(EclMst, FilterDisabledStillCorrect) {
  const auto g = weighted(gen::uniform_random(1500, 5000, 13), 13);
  sim::Device dev;
  Options opt;
  opt.filter_percentile = 0.0;
  const auto res = run(dev, g, opt);
  EXPECT_EQ(res.total_weight, reference_total_weight(g));
}

TEST(EclMst, IterationMetricsRecordedWhenAsked) {
  const auto g = weighted(gen::clique_union(2000, 900, 2, 7, 3), 3);
  sim::Device dev;
  Options opt;
  opt.record_iteration_metrics = true;
  const auto res = run(dev, g, opt);
  ASSERT_GT(res.iterations.size(), 2u);
  for (const auto& it : res.iterations) {
    EXPECT_TRUE(it.kind == "Regular" || it.kind == "Filter");
    EXPECT_LE(it.threads_with_work, it.launched_threads);
    EXPECT_LE(it.useless_atomics, it.atomic_attempts);
    EXPECT_GE(it.pct_with_work(), 0.0);
    EXPECT_LE(it.pct_with_work(), 100.0);
    EXPECT_LE(it.pct_conflicting(), 100.0);
    EXPECT_LE(it.pct_useless_atomics(), 100.0);
  }
  // Regular iterations precede filter iterations.
  bool seen_filter = false;
  for (const auto& it : res.iterations) {
    if (it.kind == "Filter") seen_filter = true;
    if (seen_filter) {
      EXPECT_EQ(it.kind, "Filter");
    }
  }
}

TEST(EclMst, MetricsOffByDefaultLeavesVectorEmpty) {
  const auto g = weighted(gen::grid2d_torus(24), 9);
  sim::Device dev;
  EXPECT_TRUE(run(dev, g).iterations.empty());
}

TEST(EclMst, WorkFractionDropsAcrossIterations) {
  // Paper Figure 2: after the first iteration of each kind, the fraction of
  // threads with work is low.
  const auto g = weighted(gen::clique_union(3000, 1500, 2, 7, 5), 5);
  sim::Device dev;
  Options opt;
  opt.record_iteration_metrics = true;
  const auto res = run(dev, g, opt);
  ASSERT_GE(res.iterations.size(), 3u);
  const auto& first = res.iterations.front();
  double later_max = 0;
  for (usize i = 2; i < res.iterations.size(); ++i) {
    if (res.iterations[i].kind == "Regular") {
      later_max = std::max(later_max, res.iterations[i].pct_with_work());
    }
  }
  EXPECT_GT(first.pct_with_work(), later_max);
}

TEST(EclMst, UselessAtomicsRiseAcrossRegularIterations) {
  // Paper §6.1.4: "The percentage of failed atomics increases with the
  // iteration count."
  const auto g = weighted(gen::uniform_random(20000, 60000, 17), 17);
  sim::Device dev;
  Options opt;
  opt.record_iteration_metrics = true;
  const auto res = run(dev, g, opt);
  std::vector<double> regular;
  for (const auto& it : res.iterations) {
    if (it.kind == "Regular" && it.atomic_attempts > 100) {
      regular.push_back(it.pct_useless_atomics());
    }
  }
  ASSERT_GE(regular.size(), 2u);
  EXPECT_GT(regular.back(), regular.front());
}

TEST(EclMst, CorrectedLaunchChargesHostOps) {
  const auto g = weighted(gen::grid2d_torus(32), 21);
  sim::Device d1, d2;
  Options original;
  Options corrected;
  corrected.corrected_launch = true;
  run(d1, g, original);
  run(d2, g, corrected);
  // Same kernel count, but the corrected variant pays for size readbacks.
  EXPECT_EQ(d1.kernel_launches(), d2.kernel_launches());
}

TEST(EclMst, UniqueEdgesDeterministicAndHalved) {
  const auto g = weighted(gen::uniform_random(500, 2000, 23), 23);
  const auto e1 = unique_edges(g);
  const auto e2 = unique_edges(g);
  EXPECT_EQ(e1.size(), g.num_edges() / 2);
  ASSERT_EQ(e1.size(), e2.size());
  for (usize i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].u, e2[i].u);
    EXPECT_EQ(e1[i].v, e2[i].v);
    EXPECT_LT(e1[i].u, e1[i].v);
  }
}

TEST(EclMst, RequiresWeights) {
  sim::Device dev;
  const auto g = gen::grid2d_torus(8);  // unweighted
  EXPECT_THROW(run(dev, g), CheckFailure);
}

class MstSuiteTest : public ::testing::TestWithParam<usize> {};

TEST_P(MstSuiteTest, MatchesKruskalOnSuiteInput) {
  const auto& spec = gen::general_inputs()[GetParam()];
  const auto g = weighted(spec.make(gen::Scale::kTiny), GetParam());
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_EQ(res.total_weight, reference_total_weight(g)) << spec.name;
  EXPECT_TRUE(verify(g, res)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllInputs, MstSuiteTest,
                         ::testing::Range<usize>(0, 17));

}  // namespace
}  // namespace eclp::algos::mst
