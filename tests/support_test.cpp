#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/prng.hpp"
#include "support/rss.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace eclp {
namespace {

// --- check -------------------------------------------------------------------

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(ECLP_CHECK(1 + 1 == 2));
}

TEST(Check, FailureThrowsWithExpression) {
  try {
    ECLP_CHECK(1 == 2);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, MessageIsStreamed) {
  try {
    const int x = 41;
    ECLP_CHECK_MSG(x == 42, "x=" << x);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("x=41"), std::string::npos);
  }
}

// --- prng --------------------------------------------------------------------

TEST(Prng, SplitmixIsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Avalanche smoke check: one-bit input change flips many output bits.
  const u64 d = splitmix64(0) ^ splitmix64(1);
  EXPECT_GT(std::popcount(d), 16);
}

TEST(Prng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDifferentStreams) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Prng, BelowStaysInBounds) {
  Rng rng(123);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Prng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Prng, BelowCoversSmallRangeUniformly) {
  Rng rng(99);
  std::array<int, 4> hits{};
  for (int i = 0; i < 8000; ++i) hits[rng.below(4)]++;
  for (const int h : hits) {
    EXPECT_GT(h, 1700);
    EXPECT_LT(h, 2300);
  }
}

TEST(Prng, RangeInclusive) {
  Rng rng(4);
  std::set<i64> seen;
  for (int i = 0; i < 500; ++i) {
    const i64 v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, UnitInHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, PermutationIsPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(257);
  std::vector<bool> seen(257, false);
  for (const u32 v : p) {
    ASSERT_LT(v, 257u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Prng, ShuffleKeepsMultiset) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 2, 3, 5, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(v, copy);
}

TEST(Prng, ReseedResetsStream) {
  Rng rng(1);
  const u64 first = rng();
  rng();
  rng.reseed(1);
  EXPECT_EQ(rng(), first);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<u64> xs = {1, 2, 3, 4, 5};
  const auto s = stats::summarize(std::span<const u64>(xs));
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.total, 15.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Stats, SummaryOfEmptySample) {
  const auto s = stats::summarize(std::span<const u64>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd = {5, 1, 3};
  EXPECT_DOUBLE_EQ(stats::median(std::span<const double>(odd)), 3.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(stats::median(std::span<const double>(even)), 2.5);
}

TEST(Stats, PercentileEndpointsAndMiddle) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(stats::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::pearson(xs, ys), 0.0);
}

TEST(Stats, PearsonUncorrelatedNearZero) {
  Rng rng(21);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.unit());
    ys.push_back(rng.unit());
  }
  EXPECT_LT(std::abs(stats::pearson(xs, ys)), 0.05);
}

TEST(Stats, MedianCiCoversMedian) {
  std::vector<double> xs;
  Rng rng(8);
  for (int i = 0; i < 101; ++i) xs.push_back(rng.unit());
  const auto ci = stats::median_ci95(xs);
  const double med = stats::median(xs);
  EXPECT_LE(ci.lo, med);
  EXPECT_GE(ci.hi, med);
}

TEST(Stats, MedianCiSmallSampleIsRange) {
  const std::vector<double> xs = {3, 1, 2};
  const auto ci = stats::median_ci95(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Stats, OnlineMatchesBatch) {
  Rng rng(31);
  std::vector<double> xs;
  stats::Online online;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.unit() * 100 - 50;
    xs.push_back(x);
    online.add(x);
  }
  const auto batch = stats::summarize(std::span<const double>(xs));
  EXPECT_EQ(online.count(), batch.count);
  EXPECT_NEAR(online.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(online.stddev(), batch.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(online.min(), batch.min);
  EXPECT_DOUBLE_EQ(online.max(), batch.max);
}

// --- table -------------------------------------------------------------------

TEST(Table, TextRenderingContainsAllCells) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string text = t.to_text();
  for (const char* needle : {"demo", "name", "value", "alpha", "beta", "22"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Table, RowArityIsChecked) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt::fixed(2.345, 2), "2.35");
  EXPECT_EQ(fmt::fixed(2.0, 0), "2");
  EXPECT_EQ(fmt::grouped(1234567), "1,234,567");
  EXPECT_EQ(fmt::grouped(12), "12");
  EXPECT_EQ(fmt::signed_pct(3.333, 2), "+3.33");
  EXPECT_EQ(fmt::signed_pct(-0.52, 2), "-0.52");
  EXPECT_EQ(fmt::sci(1.05e6, 2), "1.05e+06");
}

// --- cli ---------------------------------------------------------------------

TEST(Cli, ParsesAllForms) {
  Cli cli;
  cli.add_option("scale", "input scale", "default");
  cli.add_option("runs", "repetitions", "3");
  cli.add_flag("verbose", "chatty output");
  const char* argv[] = {"prog", "--scale=small", "--runs", "9", "--verbose",
                        "positional"};
  cli.parse(6, argv);
  EXPECT_EQ(cli.get("scale"), "small");
  EXPECT_EQ(cli.get_int("runs"), 9);
  EXPECT_TRUE(cli.get_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.add_option("runs", "repetitions", "3");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("runs"), 3);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli;
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), CheckFailure);
}

TEST(Cli, NonNumericValueThrows) {
  Cli cli;
  cli.add_option("runs", "repetitions", "3");
  const char* argv[] = {"prog", "--runs=abc"};
  cli.parse(2, argv);
  EXPECT_THROW(cli.get_int("runs"), std::exception);
}

TEST(Cli, UsageMentionsOptions) {
  Cli cli;
  cli.add_option("scale", "input scale", "default");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("--scale"), std::string::npos);
  EXPECT_NE(usage.find("input scale"), std::string::npos);
}

// --- rss ---------------------------------------------------------------------

TEST(Rss, SamplersReadTheProcess) {
  // On Linux both counters come from /proc/self/status and are nonzero
  // for any live process; on platforms without procfs they degrade to 0.
  const u64 current = current_rss_bytes();
  const u64 peak = peak_rss_bytes();
  if (current == 0 && peak == 0) GTEST_SKIP() << "procfs unavailable";
  EXPECT_GT(current, u64{1} << 20);  // a test binary resident under 1 MiB?
  EXPECT_GE(peak, current / 2);      // peak can lag briefly after a reset
}

TEST(Rss, ResetWindowsThePeakAroundAnAllocation) {
  if (!reset_peak_rss()) GTEST_SKIP() << "clear_refs unavailable";
  const u64 before = peak_rss_bytes();
  if (before == 0) GTEST_SKIP() << "procfs unavailable";
  constexpr usize kBytes = usize{64} << 20;
  {
    // Touch every page so the allocation is actually resident.
    std::vector<char> block(kBytes, 1);
    volatile char sink = block[kBytes - 1];
    (void)sink;
    EXPECT_GE(peak_rss_bytes(), before + (kBytes * 3) / 4);
  }
  // A second reset drops the watermark back near the (now block-free)
  // current RSS — this windowing is what the peak-RSS bench relies on.
  ASSERT_TRUE(reset_peak_rss());
  EXPECT_LT(peak_rss_bytes(), before + kBytes / 2);
}

}  // namespace
}  // namespace eclp
