// Tests for the serving-layer telemetry (src/serve/telemetry.*) and its
// integration into the Server: the trace log's admission-order grouping,
// the eclp.metrics snapshot/Prometheus renderings, schema validation, the
// slow-request auto-profiling hook, and the load-bearing determinism
// claim — under an injectable zero clock, the telemetry snapshot, the
// Prometheus exposition, and the full trace log are byte-identical across
// serving thread counts (pinned by tests/golden/telemetry_*).
//
// Lives in eclp_parallel_tests so `ctest -L tsan` race-checks the sharded
// instruments and the trace log under real serving concurrency.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "support/metrics.hpp"

namespace eclp {
namespace {

serve::Request make_request(const std::string& id, serve::Algo algo,
                            const std::string& input, u64 seed = 0) {
  serve::Request r;
  r.id = id;
  r.algo = algo;
  r.input = input;
  r.scale = gen::Scale::kTiny;
  r.seed = seed;
  return r;
}

// Same convention as serve_test.cpp / session_test.cpp: regenerate with
//   ECLP_UPDATE_GOLDEN=1 ./eclp_parallel_tests --gtest_filter='TelemetryGolden.*'
void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = std::string(ECLP_GOLDEN_DIR) + "/" + name;
  if (std::getenv("ECLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with ECLP_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << path;
}

// --- TraceLog ----------------------------------------------------------------

TEST(TraceLog, FlushesCompleteTracesInAdmissionOrder) {
  serve::TraceLog log([] { return u64{0}; });
  const u64 t0 = log.open("first");
  const u64 t1 = log.open("second");
  log.emit(t1, "started");
  log.close(t1);
  // t0 admitted earlier and still open: nothing may flush yet.
  EXPECT_EQ(log.text(), "");
  log.emit(t0, "started");
  log.close(t0);
  const std::string text = log.text();
  const auto first_pos = text.find("\"id\":\"first\"");
  const auto second_pos = text.find("\"id\":\"second\"");
  ASSERT_NE(first_pos, std::string::npos);
  ASSERT_NE(second_pos, std::string::npos);
  EXPECT_LT(first_pos, second_pos);  // admission order, not close order
}

TEST(TraceLog, EventLinesCarryTraceIdAndFields) {
  serve::TraceLog log([] { return u64{0}; });
  const u64 t = log.open("req-1");
  json::Value fields = json::Value::object();
  fields.set("outcome", "hit");
  log.emit(t, "pool", std::move(fields));
  log.close(t);
  EXPECT_EQ(log.text(),
            "{\"trace\":\"00000000\",\"id\":\"req-1\",\"event\":\"pool\","
            "\"ts_us\":0,\"outcome\":\"hit\"}\n");
}

TEST(TraceLog, IdStringIsFixedWidthHex) {
  EXPECT_EQ(serve::TraceLog::id_string(0), "00000000");
  EXPECT_EQ(serve::TraceLog::id_string(0x3), "00000003");
  EXPECT_EQ(serve::TraceLog::id_string(0xabc), "00000abc");
}

// --- snapshot renderings -----------------------------------------------------

TEST(Telemetry, PromPathDerivation) {
  EXPECT_EQ(serve::Telemetry::prom_path_for("metrics.jsonl"), "metrics.prom");
  EXPECT_EQ(serve::Telemetry::prom_path_for("/tmp/a/b.jsonl"),
            "/tmp/a/b.prom");
  EXPECT_EQ(serve::Telemetry::prom_path_for("metrics.txt"),
            "metrics.txt.prom");
}

TEST(Telemetry, SnapshotJsonValidatesAndRoundTrips) {
  metrics::Registry r;
  r.counter("serve.completed").inc(3);
  r.gauge("serve.inflight").set(2);
  r.histogram("serve.latency_us.cc").observe(100);
  r.histogram("serve.latency_us.cc").observe(5000);
  const json::Value doc =
      serve::Telemetry::to_json(r.snapshot(), /*seq=*/7, /*ts_ns=*/123);
  serve::validate_metrics_snapshot(doc);  // must not throw
  EXPECT_EQ(doc.at("seq").as_u64(), 7u);
  EXPECT_EQ(doc.at("ts_ns").as_u64(), 123u);
  const json::Value back = json::Value::parse(doc.dump());
  EXPECT_EQ(back.at("counters").at("serve.completed").as_u64(), 3u);
  EXPECT_EQ(back.at("gauges").at("serve.inflight").as_u64(), 2u);
  const json::Value& h = back.at("histograms").at("serve.latency_us.cc");
  EXPECT_EQ(h.at("count").as_u64(), 2u);
  EXPECT_EQ(h.at("sum").as_u64(), 5100u);
  EXPECT_EQ(h.at("buckets").items().size(), 2u);  // only non-empty buckets
}

TEST(Telemetry, ValidateRejectsBucketCountMismatch) {
  metrics::Registry r;
  r.histogram("h").observe(4);
  json::Value doc = serve::Telemetry::to_json(r.snapshot(), 0, 0);
  // Corrupt the histogram count relative to its buckets.
  json::Value histograms = json::Value::object();
  json::Value h = json::Value::object();
  h.set("count", u64{2});
  h.set("sum", u64{4});
  h.set("p50", u64{4});
  h.set("p90", u64{4});
  h.set("p99", u64{4});
  h.set("buckets", doc.at("histograms").at("h").at("buckets"));
  histograms.set("h", std::move(h));
  doc.set("histograms", std::move(histograms));
  EXPECT_THROW(serve::validate_metrics_snapshot(doc), CheckFailure);
}

TEST(Telemetry, ValidateRejectsWrongSchema) {
  json::Value doc = json::Value::object();
  doc.set("schema", "something.else");
  doc.set("version", u64{1});
  EXPECT_THROW(serve::validate_metrics_snapshot(doc), CheckFailure);
}

TEST(Telemetry, PrometheusRenderingIsCumulative) {
  metrics::Registry r;
  r.counter("pool.hits").inc(5);
  r.gauge("pool.bytes").set(1024);
  r.histogram("serve.wave_us").observe(1);
  r.histogram("serve.wave_us").observe(1);
  r.histogram("serve.wave_us").observe(100);
  const std::string prom = serve::Telemetry::to_prometheus(r.snapshot());
  EXPECT_NE(prom.find("# TYPE eclp_pool_hits_total counter\n"
                      "eclp_pool_hits_total 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("eclp_pool_bytes 1024\n"), std::string::npos);
  // Cumulative buckets: the [64,128) bucket's upper bound covers all 3.
  EXPECT_NE(prom.find("eclp_serve_wave_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("eclp_serve_wave_us_bucket{le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("eclp_serve_wave_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("eclp_serve_wave_us_sum 102\n"), std::string::npos);
  EXPECT_NE(prom.find("eclp_serve_wave_us_count 3\n"), std::string::npos);
}

TEST(Telemetry, SnapshotAppendsJsonlAndRewritesProm) {
  const auto dir =
      std::filesystem::temp_directory_path() / "eclp_telemetry_files";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string jsonl = (dir / "m.jsonl").string();
  metrics::Registry r;
  metrics::Counter& c = r.counter("c");
  serve::TelemetryOptions opt;
  opt.jsonl_path = jsonl;
  opt.clock_ns = [] { return u64{0}; };
  serve::Telemetry telemetry(r, opt);
  c.inc();
  telemetry.snapshot();
  c.inc();
  telemetry.snapshot();
  std::ifstream is(jsonl);
  ASSERT_TRUE(is.good());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  json::Value first = json::Value::parse(line);
  EXPECT_EQ(first.at("seq").as_u64(), 0u);
  EXPECT_EQ(first.at("counters").at("c").as_u64(), 1u);
  ASSERT_TRUE(std::getline(is, line));
  json::Value second = json::Value::parse(line);
  EXPECT_EQ(second.at("seq").as_u64(), 1u);
  EXPECT_EQ(second.at("counters").at("c").as_u64(), 2u);
  // The prom file is rewritten in place: only the latest value survives.
  std::ifstream prom(serve::Telemetry::prom_path_for(jsonl));
  ASSERT_TRUE(prom.good());
  std::stringstream buf;
  buf << prom.rdbuf();
  EXPECT_NE(buf.str().find("eclp_c_total 2\n"), std::string::npos);
  EXPECT_EQ(buf.str().find("eclp_c_total 1\n"), std::string::npos);
  std::filesystem::remove_all(dir);
}

// --- end-to-end determinism golden -------------------------------------------

/// The telemetry golden mix: eight requests over eight *distinct* pool
/// keys (so hit/miss attribution cannot depend on scheduling), every
/// algorithm, a reorder variant, an LLC variant, and one guaranteed
/// failure. Phase one serves all eight concurrently from a pre-filled
/// queue (manual_start: one wave, queue peak 8, all misses); phase two
/// re-serves the same mix one request at a time (eight single-request
/// waves, warm hits — and the failing request missing again).
std::vector<serve::Request> telemetry_mix() {
  std::vector<serve::Request> reqs;
  reqs.push_back(make_request("cc-rmat", serve::Algo::kCc, "rmat16.sym"));
  reqs.push_back(make_request("gc-inet", serve::Algo::kGc, "internet"));
  reqs.push_back(make_request("mis-road", serve::Algo::kMis, "USA-road-d.NY"));
  reqs.push_back(make_request("mst-road", serve::Algo::kMst, "USA-road-d.NY"));
  reqs.push_back(make_request("scc-cold", serve::Algo::kScc, "cold-flow"));
  serve::Request hub = make_request("cc-rmat-hub", serve::Algo::kCc,
                                    "rmat16.sym");
  hub.reorder = "hub";
  reqs.push_back(hub);
  serve::Request llc = make_request("mis-inet-llc", serve::Algo::kMis,
                                    "internet", 12345);
  llc.llc = "on";
  reqs.push_back(llc);
  // SCC needs a directed graph; rmat16.sym is undirected -> typed error.
  reqs.push_back(make_request("scc-undirected", serve::Algo::kScc,
                              "rmat16.sym"));
  return reqs;
}

struct TelemetryRun {
  std::string snapshot_json;
  std::string prom;
  std::string trace;
};

TelemetryRun run_telemetry_mix(u32 threads) {
  metrics::Registry registry;
  serve::TraceLog trace([] { return u64{0}; });
  serve::ServerOptions opt;
  opt.threads = threads;
  opt.manual_start = true;  // fill the queue first: one deterministic wave
  opt.metrics = &registry;
  opt.trace = &trace;
  opt.clock_ns = [] { return u64{0}; };  // zero clock: byte-stable exports
  {
    serve::Server server(opt);
    std::vector<std::future<serve::Response>> futures;
    for (const serve::Request& r : telemetry_mix()) {
      futures.push_back(server.submit(r));
    }
    server.start();
    for (auto& f : futures) f.get();
    // Warm phase, strictly sequential: each request is admitted only after
    // the previous response resolved, so it runs in its own wave and its
    // pool outcome is resident-vs-absent, never a single-flight race.
    for (const serve::Request& r : telemetry_mix()) {
      server.enqueue(r).get();
    }
  }  // destructor joins the dispatcher: wave metrics are all recorded
  const metrics::Snapshot snap = registry.snapshot();
  TelemetryRun run;
  const json::Value doc = serve::Telemetry::to_json(snap, 0, 0);
  serve::validate_metrics_snapshot(doc);
  run.snapshot_json = doc.dump(2) + "\n";
  run.prom = serve::Telemetry::to_prometheus(snap);
  run.trace = trace.text();
  return run;
}

TEST(TelemetryGolden, ExportsAreByteStableAcrossThreadCounts) {
  const TelemetryRun one = run_telemetry_mix(1);
  const TelemetryRun seven = run_telemetry_mix(7);
  EXPECT_EQ(one.snapshot_json, seven.snapshot_json);
  EXPECT_EQ(one.prom, seven.prom);
  EXPECT_EQ(one.trace, seven.trace);
}

TEST(TelemetryGolden, Snapshot) {
  expect_matches_golden("telemetry_snapshot.json",
                        run_telemetry_mix(7).snapshot_json);
}

TEST(TelemetryGolden, Prometheus) {
  expect_matches_golden("telemetry_metrics.prom", run_telemetry_mix(7).prom);
}

TEST(TelemetryGolden, Trace) {
  expect_matches_golden("telemetry_trace.jsonl", run_telemetry_mix(7).trace);
}

// --- slow-request auto-profiling ---------------------------------------------

usize count_profiles(const std::filesystem::path& dir) {
  usize n = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 5 && name.find(".trace.") == std::string::npos &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      n++;
    }
  }
  return n;
}

TEST(SlowRequests, ZeroThresholdProfilesEveryCompletedRequest) {
  const auto dir =
      std::filesystem::temp_directory_path() / "eclp_slow_all";
  std::filesystem::remove_all(dir);
  serve::ServerOptions opt;
  opt.slow_ms = 0.0;  // real clock: every request's wall latency exceeds 0
  opt.slow_dir = dir.string();
  serve::Server server(opt);
  const auto responses = server.serve({
      make_request("slow-cc", serve::Algo::kCc, "rmat16.sym"),
      make_request("slow-mis", serve::Algo::kMis, "internet"),
  });
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, serve::Status::kOk);
  EXPECT_TRUE(std::filesystem::exists(dir / "slow-cc.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "slow-mis.json"));
  std::filesystem::remove_all(dir);
}

TEST(SlowRequests, FastRequestsLeaveNoArtifacts) {
  const auto dir =
      std::filesystem::temp_directory_path() / "eclp_slow_none";
  std::filesystem::remove_all(dir);
  serve::ServerOptions opt;
  opt.slow_ms = 1e9;  // nothing is that slow
  opt.slow_dir = dir.string();
  serve::Server server(opt);
  const auto responses = server.serve({
      make_request("fast-cc", serve::Algo::kCc, "rmat16.sym"),
  });
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, serve::Status::kOk);
  EXPECT_EQ(count_profiles(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST(SlowRequests, SlowCounterTracksThresholdCrossings) {
  const auto dir =
      std::filesystem::temp_directory_path() / "eclp_slow_counter";
  std::filesystem::remove_all(dir);
  metrics::Registry registry;
  serve::ServerOptions opt;
  opt.slow_ms = 0.0;
  opt.slow_dir = dir.string();
  opt.metrics = &registry;
  {
    serve::Server server(opt);
    server.serve({make_request("s1", serve::Algo::kCc, "rmat16.sym"),
                  make_request("s2", serve::Algo::kGc, "rmat16.sym")});
  }
  const metrics::Snapshot snap = registry.snapshot();
  u64 slow = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serve.slow") slow = value;
  }
  EXPECT_EQ(slow, 2u);
  std::filesystem::remove_all(dir);
}

TEST(SlowRequests, ThresholdWithoutDirectoryThrows) {
  serve::ServerOptions opt;
  opt.slow_ms = 5.0;  // no slow_dir, no profile_dir
  EXPECT_THROW(serve::Server server(opt), CheckFailure);
}

}  // namespace
}  // namespace eclp
