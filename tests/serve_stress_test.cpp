// Saturation tests for the serving stack (graph::Pool + serve::Server):
// many submitter threads, a graph pool deliberately sized to force
// continuous eviction, and mixed request streams. Lives in
// eclp_parallel_tests so `ctest -L tsan` runs exactly these under
// ThreadSanitizer — the pool's single-flight build, pin ref-counting, and
// LRU eviction are the shared mutable state of the whole serving layer.
//
// Invariants asserted after every storm:
//  * hits + misses == requests (every acquire classified exactly once);
//  * all pins released (pins == 0, pinned == 0) — refcounts return to zero;
//  * no graph is evicted while pinned: every pinned graph stays intact and
//    readable for the lifetime of its pin (checked by content, and by the
//    pool's own ECLP_CHECK on the eviction path);
//  * resident bytes return under the budget once all pins drop;
//  * responses are consistent: the same request spec always produces the
//    same checksum, no matter which thread ran it or whether its graph
//    was a pool hit, a fresh build, or a rebuild after eviction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/pool.hpp"
#include "serve/server.hpp"

namespace eclp {
namespace {

graph::Csr ring_graph(vidx n) {
  std::vector<graph::Edge> edges;
  for (vidx v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 0});
  graph::BuildOptions opt;
  return graph::from_edges(n, edges, opt);
}

/// Thrash a small pool from many threads; every pin is verified against
/// the graph its key promises while held (an eviction-while-pinned or a
/// cross-key mixup would be caught immediately, and under TSan any
/// unsynchronized access to the entry table races loudly).
TEST(ServeStress, PoolSurvivesConcurrentThrashingWithEviction) {
  constexpr u32 kKeys = 8;
  constexpr u32 kThreads = 8;
  constexpr u32 kAcquiresPerThread = 200;
  const std::vector<vidx> sizes = {64, 96, 128, 160, 192, 224, 256, 288};
  // Budget fits roughly two of the graphs: most acquires evict something.
  graph::Pool pool(2 * graph::graph_bytes(ring_graph(160)));

  std::atomic<u64> builds{0};
  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u32 i = 0; i < kAcquiresPerThread; ++i) {
        // Deterministic per-thread walk, out of phase across threads so
        // hits, misses, waits-on-inflight-build, and evictions all occur.
        const u32 k = (t * 13 + i * 7) % kKeys;
        const vidx n = sizes[k];
        auto pin = pool.acquire("ring" + std::to_string(k), [&, n] {
          builds.fetch_add(1);
          return ring_graph(n);
        });
        ASSERT_TRUE(pin.valid());
        // The pinned graph must be the right one and fully intact.
        ASSERT_EQ(pin->num_vertices(), n);
        ASSERT_EQ(pin->num_edges(), 2u * n);
        ASSERT_EQ(pin->neighbors(0).size(), 2u);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto s = pool.stats();
  EXPECT_EQ(s.requests, u64{kThreads} * kAcquiresPerThread);
  EXPECT_EQ(s.hits + s.misses, s.requests);  // classified exactly once
  EXPECT_EQ(s.misses, builds.load());        // every miss is one build
  EXPECT_EQ(s.pins, 0u);                     // refcounts back to zero
  EXPECT_EQ(s.pinned, 0u);
  EXPECT_GE(s.evictions, 1u);                // the budget actually bit
  EXPECT_LE(s.bytes, pool.byte_budget());    // and is respected at rest
  EXPECT_GE(s.peak_bytes, s.bytes);
}

/// Pins must keep their entries alive across heavy eviction pressure from
/// other threads (the "no graph evicted while pinned" contract, held for
/// long stretches rather than checked at a single instant).
TEST(ServeStress, PinnedGraphsSurviveEvictionPressure) {
  graph::Pool pool(graph::graph_bytes(ring_graph(64)));  // one-graph budget
  auto held = pool.acquire("held", [] { return ring_graph(300); });

  std::vector<std::thread> threads;
  for (u32 t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (u32 i = 0; i < 100; ++i) {
        auto pin = pool.acquire(
            "churn" + std::to_string(t) + "_" + std::to_string(i % 5),
            [] { return ring_graph(64); });
        ASSERT_EQ(pin->num_vertices(), 64u);
        // The long-held pin stays intact under everyone else's churn.
        ASSERT_EQ(held->num_vertices(), 300u);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(pool.contains("held"));  // never evicted while pinned
  held.reset();
  const auto s = pool.stats();
  EXPECT_EQ(s.pins, 0u);
  EXPECT_LE(s.bytes, pool.byte_budget());
  EXPECT_EQ(s.hits + s.misses, s.requests);
}

/// Regression: stats() used to count a request at acquire() entry but
/// classify it as a hit or miss only later, so a snapshot taken while a
/// build was in flight — in particular a failing build with a crowd of
/// waiters parked behind it — saw hits + misses < requests. The documented
/// invariant must hold at every instant, across the failed-build retry
/// path included.
TEST(ServeStress, StatsInvariantHoldsWhileAFailedBuildIsInFlight) {
  constexpr u32 kWaiters = 4;
  graph::Pool pool(1 << 20);

  std::atomic<u32> entered{0};       // waiters that have reached acquire()
  std::atomic<bool> sampled{false};  // main thread took the mid-build sample
  std::atomic<u64> builds{0};
  std::promise<void> first_build_running;
  auto build = [&]() -> graph::Csr {
    if (builds.fetch_add(1) == 0) {
      first_build_running.set_value();
      // Hold the doomed build open until every waiter is inside acquire()
      // and the main thread has sampled stats() mid-flight, then fail.
      while (entered.load() < kWaiters || !sampled.load()) {
        std::this_thread::yield();
      }
      throw std::runtime_error("synthetic build failure");
    }
    return ring_graph(32);
  };

  std::atomic<u32> failures{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // first builder: its acquire() rethrows
    try {
      auto pin = pool.acquire("flaky", build);
      ADD_FAILURE() << "first build unexpectedly succeeded";
    } catch (const std::runtime_error&) {
      failures.fetch_add(1);
    }
  });
  first_build_running.get_future().wait();
  for (u32 t = 0; t < kWaiters; ++t) {
    threads.emplace_back([&] {
      entered.fetch_add(1);
      // Parks behind the in-flight failing build, then retries: exactly
      // one waiter becomes the second builder, the rest hit its entry.
      auto pin = pool.acquire("flaky", build);
      ASSERT_TRUE(pin.valid());
      ASSERT_EQ(pin->num_vertices(), 32u);
    });
  }
  // Let the waiters pass acquire() entry and park behind the placeholder,
  // then snapshot while the doomed build is still running.
  while (entered.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    const auto s = pool.stats();
    EXPECT_EQ(s.hits + s.misses, s.requests)
        << "stats() snapshot during an in-flight build breaks the invariant";
  }
  sampled.store(true);
  for (auto& th : threads) th.join();

  const auto s = pool.stats();
  EXPECT_EQ(s.requests, u64{kWaiters} + 1);
  EXPECT_EQ(s.hits + s.misses, s.requests);
  EXPECT_EQ(s.misses, 2u);  // the failed attempt and the successful retry
  EXPECT_EQ(s.hits, u64{kWaiters} - 1);
  EXPECT_EQ(builds.load(), 2u);
  EXPECT_EQ(failures.load(), 1u);
  EXPECT_EQ(s.pins, 0u);
  EXPECT_TRUE(pool.contains("flaky"));
}

/// Full-stack storm: submitter threads firing mixed algorithm requests at
/// a Server whose graph pool is far too small for the working set, so
/// requests continuously rebuild, share, and evict graphs while the wave
/// executor runs them concurrently.
TEST(ServeStress, ServerHandlesConcurrentMixedLoadWithTinyPool) {
  serve::ServerOptions opt;
  opt.threads = 4;
  opt.max_queue = 1024;
  opt.graph_pool_bytes = 64 << 10;  // ~one tiny suite graph: forces eviction
  serve::Server server(opt);

  struct Spec {
    serve::Algo algo;
    const char* input;
    u64 seed;
  };
  const std::vector<Spec> specs = {
      {serve::Algo::kCc, "rmat16.sym", 0},
      {serve::Algo::kGc, "rmat16.sym", 0},
      {serve::Algo::kMis, "internet", 0},
      {serve::Algo::kMis, "internet", 7},
      {serve::Algo::kCc, "cold-flow", 0},
      {serve::Algo::kMst, "USA-road-d.NY", 0},
  };

  constexpr u32 kThreads = 4;
  constexpr u32 kPerThread = 12;
  std::mutex collected_mutex;
  std::vector<serve::Response> collected;
  std::vector<std::thread> submitters;
  for (u32 t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      std::vector<std::future<serve::Response>> futures;
      for (u32 i = 0; i < kPerThread; ++i) {
        const Spec& spec = specs[(t + i) % specs.size()];
        serve::Request r;
        r.id = "t" + std::to_string(t) + "-" + std::to_string(i);
        r.algo = spec.algo;
        r.input = spec.input;
        r.scale = gen::Scale::kTiny;
        r.seed = spec.seed;
        futures.push_back(server.enqueue(std::move(r)));
      }
      std::vector<serve::Response> mine;
      mine.reserve(futures.size());
      for (auto& f : futures) mine.push_back(f.get());
      std::lock_guard<std::mutex> lk(collected_mutex);
      for (auto& r : mine) collected.push_back(std::move(r));
    });
  }
  for (auto& th : submitters) th.join();

  ASSERT_EQ(collected.size(), u64{kThreads} * kPerThread);
  // Same spec -> same result, independent of thread, wave, or pool state.
  std::map<std::string, std::string> checksum_by_spec;
  for (const auto& r : collected) {
    ASSERT_EQ(r.status, serve::Status::kOk) << r.id << ": " << r.error;
    EXPECT_FALSE(r.checksum.empty());
    const std::string spec_key =
        std::string(serve::algo_name(r.algo)) + "|" + r.graph + "|" +
        r.summary;
    const auto [it, fresh] =
        checksum_by_spec.emplace(spec_key, r.checksum);
    EXPECT_EQ(it->second, r.checksum) << "divergent result for " << spec_key;
    (void)fresh;
  }

  const auto s = server.stats();
  EXPECT_EQ(s.submitted, collected.size());
  EXPECT_EQ(s.accepted, s.submitted);  // enqueue never rejects
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.graphs.requests, s.completed);  // one acquire per request
  EXPECT_EQ(s.graphs.hits + s.graphs.misses, s.graphs.requests);
  EXPECT_EQ(s.graphs.pins, 0u);    // every request released its pin
  EXPECT_EQ(s.graphs.pinned, 0u);
  EXPECT_GE(s.graphs.evictions, 1u);  // the tiny budget actually evicted
  EXPECT_LE(s.graphs.bytes, opt.graph_pool_bytes);
}

/// submit() under storm: some requests bounce off the admission bound,
/// but every future resolves, rejected ones carry the typed status, and
/// accepted + rejected == submitted.
TEST(ServeStress, AdmissionControlStaysConsistentUnderConcurrentSubmit) {
  serve::ServerOptions opt;
  opt.threads = 2;
  opt.max_queue = 4;  // small bound: storms must trip rejection
  serve::Server server(opt);

  constexpr u32 kThreads = 6;
  constexpr u32 kPerThread = 30;
  std::atomic<u64> ok{0};
  std::atomic<u64> rejected{0};
  std::vector<std::thread> submitters;
  for (u32 t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (u32 i = 0; i < kPerThread; ++i) {
        serve::Request r;
        r.id = "s" + std::to_string(t) + "-" + std::to_string(i);
        r.algo = serve::Algo::kCc;
        r.input = "rmat16.sym";
        r.scale = gen::Scale::kTiny;
        const auto resp = server.submit(std::move(r)).get();
        if (resp.status == serve::Status::kOk) {
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(resp.status, serve::Status::kRejected);
          ASSERT_NE(resp.error.find("queue full"), std::string::npos);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : submitters) th.join();

  EXPECT_EQ(ok.load() + rejected.load(), u64{kThreads} * kPerThread);
  const auto s = server.stats();
  EXPECT_EQ(s.submitted, u64{kThreads} * kPerThread);
  EXPECT_EQ(s.accepted, ok.load());
  EXPECT_EQ(s.rejected, rejected.load());
  EXPECT_EQ(s.completed, s.accepted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.graphs.pins, 0u);
}

}  // namespace
}  // namespace eclp
