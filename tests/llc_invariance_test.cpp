// Modeled-LLC determinism across host sim-threads.
//
// The cache is simulated per block (each block owns a private slice, cold
// at launch) and the per-block hit/miss tallies are merged in block-index
// order, so every modeled quantity — cycles, hit and miss counts — must be
// bit-identical whether the blocks run on 1 host thread or N. This is the
// LLC extension of the determinism_test invariant; it runs all five codes
// with the cache enabled at 1/2/7 sim-threads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/transforms.hpp"
#include "sim/cache.hpp"
#include "sim/device.hpp"
#include "sim/pool.hpp"

namespace eclp {
namespace {

constexpr u32 kWorkerCounts[] = {1, 2, 7};
constexpr u64 kSeeds[] = {0, 12345};  // deterministic and shuffled schedules

struct LlcDigest {
  u64 total_cycles = 0;
  u64 llc_hits = 0;
  u64 llc_misses = 0;

  bool operator==(const LlcDigest&) const = default;
};

template <typename Body>
LlcDigest run_with_workers(u32 workers, u64 seed, Body&& body) {
  sim::Pool pool(workers);
  sim::CostModel cost;
  cost.cache = sim::parse_cache_config("on");
  sim::Device dev(cost, seed,
                  seed == 0 ? sim::ScheduleMode::kDeterministic
                            : sim::ScheduleMode::kShuffled);
  dev.set_pool(workers > 1 ? &pool : nullptr);
  body(dev);
  LlcDigest d;
  d.total_cycles = dev.total_cycles();
  d.llc_hits = dev.llc_hits();
  d.llc_misses = dev.llc_misses();
  return d;
}

template <typename Body>
void expect_invariant(const std::string& algo, Body&& body) {
  for (const u64 seed : kSeeds) {
    LlcDigest base;
    for (const u32 workers : kWorkerCounts) {
      const LlcDigest d = run_with_workers(workers, seed, body);
      if (workers == 1) {
        base = d;
        // The runs must actually exercise the cache for the invariant to
        // mean anything.
        EXPECT_GT(base.llc_hits + base.llc_misses, 0u) << algo;
        continue;
      }
      EXPECT_EQ(d, base) << algo << " seed=" << seed << " workers="
                         << workers;
    }
  }
}

TEST(LlcInvariance, EclCcBitIdenticalAcrossSimThreads) {
  const auto g = gen::rmat(11, 16000, 0.45, 0.22, 0.22, 5);
  expect_invariant("cc",
                   [&](sim::Device& dev) { algos::cc::run(dev, g); });
}

TEST(LlcInvariance, EclGcBitIdenticalAcrossSimThreads) {
  const auto g = gen::uniform_random(3000, 12000, 9);
  expect_invariant("gc",
                   [&](sim::Device& dev) { algos::gc::run(dev, g); });
}

TEST(LlcInvariance, EclMisBitIdenticalAcrossSimThreads) {
  const auto g = gen::uniform_random(3000, 12000, 11);
  expect_invariant("mis",
                   [&](sim::Device& dev) { algos::mis::run(dev, g); });
}

TEST(LlcInvariance, EclMstBitIdenticalAcrossSimThreads) {
  const auto g =
      graph::with_random_weights(gen::uniform_random(2500, 10000, 13), 13);
  expect_invariant("mst",
                   [&](sim::Device& dev) { algos::mst::run(dev, g); });
}

TEST(LlcInvariance, EclSccBitIdenticalAcrossSimThreads) {
  const auto g = gen::cold_flow(48, 3);
  expect_invariant("scc",
                   [&](sim::Device& dev) { algos::scc::run(dev, g); });
}

}  // namespace
}  // namespace eclp
