// Temporary smoke driver used during bring-up; superseded by the gtest
// suites but kept runnable for quick end-to-end sanity checks.
#include <cstdio>
#include <cstdlib>

#include "algos/cc/ecl_cc.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/suite.hpp"
#include "graph/transforms.hpp"
#include "support/timer.hpp"

using namespace eclp;

int main() {
  auto scale = gen::Scale::kTiny;
  if (const char* env = std::getenv("ECLP_SCALE")) {
    scale = gen::parse_scale(env);
  }
  for (const auto& spec : gen::general_inputs()) {
    Timer t;
    const auto g = spec.make(scale);
    sim::Device dev;
    const auto cc = algos::cc::run(dev, g);
    const bool cc_ok = algos::cc::verify(g, cc.labels);
    const auto mis = algos::mis::run(dev, g);
    const bool mis_ok = algos::mis::verify(g, mis.status);
    const auto gc = algos::gc::run(dev, g);
    const bool gc_ok = algos::gc::verify(g, gc.colors);
    const auto gw = graph::with_random_weights(g, 42);
    algos::mst::Options mopt;
    mopt.record_iteration_metrics = true;
    const auto mst = algos::mst::run(dev, gw, mopt);
    const bool mst_ok = algos::mst::verify(gw, mst);
    std::printf(
        "%-18s n=%7u e=%8u | cc %s | mis %s (|S|=%zu it avg %.2f max %.0f) | "
        "gc %s (%u colors, %llu iters) | mst %s (w=%llu, %zu mst-iters) | %.2fs\n",
        spec.name.c_str(), g.num_vertices(), g.num_edges(),
        cc_ok ? "OK" : "FAIL", mis_ok ? "OK" : "FAIL", mis.set_size,
        mis.metrics.iterations.mean, mis.metrics.iterations.max,
        gc_ok ? "OK" : "FAIL", gc.num_colors,
        static_cast<unsigned long long>(gc.host_iterations),
        mst_ok ? "OK" : "FAIL",
        static_cast<unsigned long long>(mst.total_weight),
        mst.iterations.size(), t.seconds());
    fflush(stdout);
  }
  for (const auto& spec : gen::mesh_inputs()) {
    Timer t;
    const auto g = spec.make(scale);
    sim::Device dev;
    algos::scc::Options opt;
    opt.record_series = true;
    const auto scc = algos::scc::run(dev, g, opt);
    const bool ok = algos::scc::verify(g, scc.scc_id);
    u32 n1 = scc.inner_per_outer.empty() ? 0 : scc.inner_per_outer[0];
    std::printf(
        "%-18s n=%7u e=%8u | scc %s (%zu SCCs, m=%u, n1=%u) | %.2fs\n",
        spec.name.c_str(), g.num_vertices(), g.num_edges(),
        ok ? "OK" : "FAIL", scc.num_sccs, scc.outer_iterations, n1,
        t.seconds());
    fflush(stdout);
  }
  return 0;
}
