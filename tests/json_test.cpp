// Tests for the minimal JSON document model (src/support/json.*): parsing,
// navigation, escaping, number formatting, and the deterministic
// insertion-ordered serialization the profile artifacts rely on.
#include <string>

#include <gtest/gtest.h>

#include "support/json.hpp"

namespace eclp::json {
namespace {

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_TRUE(Value::parse("true").as_bool());
  EXPECT_FALSE(Value::parse("false").as_bool());
  EXPECT_EQ(Value::parse("42").as_number(), 42.0);
  EXPECT_EQ(Value::parse("-17").as_number(), -17.0);
  EXPECT_EQ(Value::parse("2.5").as_number(), 2.5);
  EXPECT_EQ(Value::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNestedDocument) {
  const Value doc = Value::parse(
      R"({"name":"cc","counts":[1,2,3],"nested":{"ok":true}})");
  EXPECT_EQ(doc.at("name").as_string(), "cc");
  ASSERT_EQ(doc.at("counts").items().size(), 3u);
  EXPECT_EQ(doc.at("counts").items()[2].as_u64(), 3u);
  EXPECT_TRUE(doc.at("nested").at("ok").as_bool());
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), CheckFailure);
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Value::parse(R"("a\"b\\c\/d")").as_string(), "a\"b\\c/d");
  EXPECT_EQ(Value::parse(R"("tab\there\nline")").as_string(),
            "tab\there\nline");
  EXPECT_EQ(Value::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // \uXXXX escapes decode to UTF-8: 1-, 2-, and 3-byte code points.
  EXPECT_EQ(Value::parse(R"("\u0041\u00e9\u20ac")").as_string(),
            "A\xc3\xa9\xe2\x82\xac");
  EXPECT_THROW(Value::parse(R"("\uZZZZ")"), CheckFailure);
  EXPECT_THROW(Value::parse(R"("\q")"), CheckFailure);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Value::parse(""), CheckFailure);
  EXPECT_THROW(Value::parse("{"), CheckFailure);
  EXPECT_THROW(Value::parse("[1,]"), CheckFailure);
  EXPECT_THROW(Value::parse("{\"a\":1,}"), CheckFailure);
  EXPECT_THROW(Value::parse("\"unterminated"), CheckFailure);
  EXPECT_THROW(Value::parse("truex"), CheckFailure);
  EXPECT_THROW(Value::parse("1 2"), CheckFailure);  // trailing garbage
}

TEST(Json, RoundTripPreservesDocument) {
  const std::string text =
      R"({"schema":"eclp.profile","version":1,"spans":[{"id":0,"cycles":8890}]})";
  const Value doc = Value::parse(text);
  EXPECT_EQ(doc.dump(), text);
  // Re-parsing the dump yields the same dump (fixed point).
  EXPECT_EQ(Value::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, IntegralNumbersSerializeWithoutDecimalPoint) {
  EXPECT_EQ(format_number(0.0), "0");
  EXPECT_EQ(format_number(8890.0), "8890");
  EXPECT_EQ(format_number(-3.0), "-3");
  EXPECT_EQ(format_number(2.5), "2.5");
  // u64 counters round-trip textually through the double storage.
  Value v(static_cast<u64>(1234567890123ULL));
  EXPECT_EQ(v.dump(), "1234567890123");
  EXPECT_EQ(Value::parse(v.dump()).as_u64(), 1234567890123ULL);
}

TEST(Json, AsU64Checked) {
  EXPECT_EQ(Value::parse("0").as_u64(), 0u);
  EXPECT_THROW(Value::parse("-1").as_u64(), CheckFailure);
  EXPECT_THROW(Value::parse("2.5").as_u64(), CheckFailure);
  EXPECT_THROW(Value::parse("\"7\"").as_u64(), CheckFailure);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Value obj = Value::object();
  obj.set("zeta", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":2,"mid":3})");
  // Overwrite keeps first-set position.
  obj.set("alpha", 9);
  EXPECT_EQ(obj.dump(), R"({"zeta":1,"alpha":9,"mid":3})");
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[1].first, "alpha");
}

TEST(Json, EscapeControlCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
}

TEST(Json, PrettyDumpIsDeterministic) {
  Value doc = Value::object();
  doc.set("a", Value::array());
  doc.set("b", Value::object());
  const std::string once = doc.dump(1);
  EXPECT_EQ(doc.dump(1), once);
  EXPECT_NE(once.find('\n'), std::string::npos);
  // Compact dump has no whitespace at all.
  EXPECT_EQ(doc.dump(), R"({"a":[],"b":{}})");
}

TEST(Json, KindChecksThrowOnMismatch) {
  const Value v = Value::parse("[1]");
  EXPECT_THROW(v.as_string(), CheckFailure);
  EXPECT_THROW(v.members(), CheckFailure);
  EXPECT_THROW(v.at("k"), CheckFailure);
  Value num(1.0);
  EXPECT_THROW(num.push_back(Value()), CheckFailure);
}

}  // namespace
}  // namespace eclp::json
