#include <gtest/gtest.h>

#include "algos/gc/ecl_gc.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"

namespace eclp::algos::gc {
namespace {

using graph::from_edges;

TEST(EclGc, TriangleNeedsThreeColors) {
  sim::Device dev;
  const auto g = from_edges(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  EXPECT_EQ(res.num_colors, 3u);
}

TEST(EclGc, BipartiteGridGetsTwoColors) {
  sim::Device dev;
  const auto g = gen::grid2d_torus(16);  // even side => bipartite
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  EXPECT_EQ(res.num_colors, 2u);
}

TEST(EclGc, PathUsesTwoColors) {
  sim::Device dev;
  std::vector<graph::Edge> edges;
  for (vidx v = 0; v + 1 < 50; ++v) edges.push_back({v, v + 1, 0});
  const auto g = from_edges(50, edges);
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  EXPECT_EQ(res.num_colors, 2u);
}

TEST(EclGc, IsolatedVerticesAllColorZero) {
  sim::Device dev;
  const auto g = from_edges(4, {});
  const auto res = run(dev, g);
  for (const u32 c : res.colors) EXPECT_EQ(c, 0u);
  EXPECT_EQ(res.num_colors, 1u);
}

TEST(EclGc, ColorCountBoundedByMaxDegreePlusOne) {
  sim::Device dev;
  const auto g = gen::rmat(12, 20000, 0.45, 0.22, 0.22, 14);
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  EXPECT_LE(res.num_colors, graph::degree_stats(g).max + 1);
}

TEST(EclGc, QualityCloseToSequentialGreedy) {
  const auto g = gen::preferential_attachment(5000, 6, 25);
  sim::Device dev;
  const auto res = run(dev, g);
  const auto greedy = reference_greedy(g);
  // JP with LDF ordering should not use dramatically more colors.
  EXPECT_LE(res.num_colors, count_colors(greedy) + 3);
}

TEST(EclGc, ShortcutsFireOnNontrivialInputs) {
  sim::Device dev;
  const auto g = gen::clique_union(3000, 800, 3, 25, 31);
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  EXPECT_GT(res.shortcut1_colorings, 0u);
  EXPECT_GT(res.shortcut2_removals, 0u);
}

TEST(EclGc, RunLargeMetricsOnlyWhenLargeVerticesExist) {
  sim::Device dev;
  // All degrees <= 4: runLarge handles nothing.
  const auto g = gen::grid2d_torus(24);
  const auto res = run(dev, g);
  EXPECT_EQ(res.run_large.large_vertices, 0u);
  EXPECT_EQ(res.run_large.not_yet_possible.count, 0u);
}

TEST(EclGc, RunLargeMetricsPopulatedOnDenseInput) {
  sim::Device dev;
  const auto g = gen::clique_union(2000, 400, 20, 40, 37);
  const auto res = run(dev, g);
  EXPECT_GT(res.run_large.large_vertices, 0u);
  EXPECT_EQ(res.run_large.not_yet_possible.count,
            res.run_large.large_vertices);
  // Dense inputs must show contention (paper Table 5: coPapersDBLP-style).
  EXPECT_GT(res.run_large.not_yet_possible.mean, 0.0);
}

TEST(EclGc, DenserInputsSeeMoreInvalidations) {
  // The paper correlates Table 5's counters with average degree (r ~ 0.62).
  sim::Device d1, d2;
  const auto sparse = gen::clique_union(3000, 300, 8, 33, 4);
  const auto dense = gen::clique_union(3000, 1800, 20, 60, 4);
  const auto rs = run(d1, sparse);
  const auto rd = run(d2, dense);
  ASSERT_GT(rs.run_large.large_vertices, 0u);
  ASSERT_GT(rd.run_large.large_vertices, 0u);
  EXPECT_GT(rd.run_large.not_yet_possible.mean,
            rs.run_large.not_yet_possible.mean);
}

TEST(EclGc, DeterministicColors) {
  const auto g = gen::weblink(4000, 12.0, 51);
  sim::Device d1, d2;
  EXPECT_EQ(run(d1, g).colors, run(d2, g).colors);
}

TEST(EclGc, HostIterationsBounded) {
  sim::Device dev;
  const auto g = gen::kronecker(12, 40000, 3);
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors));
  // Shortcutting keeps rounds far below the color count ceiling.
  EXPECT_LT(res.host_iterations, 200u);
}

TEST(EclGc, RejectsDirectedGraph) {
  sim::Device dev;
  graph::BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(3, {{0, 1, 0}}, opt);
  EXPECT_THROW(run(dev, g), CheckFailure);
}

TEST(EclGc, VerifyRejectsImproperColoring) {
  const auto g = from_edges(2, {{0, 1, 0}});
  EXPECT_FALSE(verify(g, std::vector<u32>{1, 1}));
  EXPECT_FALSE(verify(g, std::vector<u32>{0, kNoColor}));
  EXPECT_TRUE(verify(g, std::vector<u32>{0, 1}));
}

TEST(EclGc, GreedyReferenceIsProper) {
  const auto g = gen::uniform_random(3000, 12000, 15);
  EXPECT_TRUE(verify(g, reference_greedy(g)));
}

class GcSuiteTest : public ::testing::TestWithParam<usize> {};

TEST_P(GcSuiteTest, ProperColoringOnSuiteInput) {
  const auto& spec = gen::general_inputs()[GetParam()];
  const auto g = spec.make(gen::Scale::kTiny);
  sim::Device dev;
  const auto res = run(dev, g);
  EXPECT_TRUE(verify(g, res.colors)) << spec.name;
  EXPECT_GT(res.num_colors, 0u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllInputs, GcSuiteTest,
                         ::testing::Range<usize>(0, 17));

}  // namespace
}  // namespace eclp::algos::gc
