// Tests for the profiling/graph extensions: log2 histograms, the kernel
// launch trace, DIMACS formats, and vertex reordering.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/generators.hpp"
#include "graph/builder.hpp"
#include "graph/dimacs.hpp"
#include "graph/reorder.hpp"
#include "graph/transforms.hpp"
#include "profile/histogram.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"

namespace eclp {
namespace {

// --- histogram -------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  using H = profile::Log2Histogram;
  EXPECT_EQ(H::bucket_floor(0), 0u);
  EXPECT_EQ(H::bucket_floor(1), 1u);
  EXPECT_EQ(H::bucket_floor(2), 2u);
  EXPECT_EQ(H::bucket_floor(3), 4u);
  EXPECT_EQ(H::bucket_label(0), "0");
  EXPECT_EQ(H::bucket_label(3), "[4,8)");
}

TEST(Histogram, ValuesLandInRightBuckets) {
  profile::Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.count(0), 1u);  // 0
  EXPECT_EQ(h.count(1), 1u);  // 1
  EXPECT_EQ(h.count(2), 2u);  // 2, 3
  EXPECT_EQ(h.count(3), 2u);  // 4, 7
  EXPECT_EQ(h.count(4), 1u);  // 8
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, HugeValuesCapIntoLastBucket) {
  profile::Log2Histogram h;
  h.add(~u64{0});
  EXPECT_EQ(h.count(profile::Log2Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, QuantileBucket) {
  profile::Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(1000);
  EXPECT_EQ(h.quantile_bucket(0.5), 1u);
  EXPECT_GT(h.quantile_bucket(0.99), 1u);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  const profile::Log2Histogram h;
  EXPECT_EQ(h.quantile_bucket(0.0), 0u);
  EXPECT_EQ(h.quantile_bucket(0.5), 0u);
  EXPECT_EQ(h.quantile_bucket(1.0), 0u);
}

TEST(Histogram, QuantileSkipsEmptyLeadingBuckets) {
  // All mass far from bucket 0: even fraction 0.0 must land on the first
  // bucket that actually holds samples, never on an empty bucket 0.
  profile::Log2Histogram h;
  for (int i = 0; i < 5; ++i) h.add(1000);
  const usize b = profile::Log2Histogram::bucket_of(1000);
  EXPECT_GT(b, 0u);
  EXPECT_EQ(h.quantile_bucket(0.0), b);
  EXPECT_EQ(h.quantile_bucket(1.0), b);
}

TEST(Histogram, QuantileWithSingleBucketMass) {
  profile::Log2Histogram h;
  h.add(0);  // one sample, in bucket 0 — fraction 0.0 may return bucket 0
  EXPECT_EQ(h.quantile_bucket(0.0), 0u);
  EXPECT_EQ(h.quantile_bucket(0.5), 0u);
  EXPECT_EQ(h.quantile_bucket(1.0), 0u);
}

TEST(Histogram, QuantileFractionOneReachesLastMass) {
  profile::Log2Histogram h;
  for (int i = 0; i < 99; ++i) h.add(1);
  h.add(~u64{0});  // 1% of mass in the cap bucket
  EXPECT_EQ(h.quantile_bucket(0.5), 1u);
  EXPECT_EQ(h.quantile_bucket(1.0), profile::Log2Histogram::kBuckets - 1);
}

TEST(Histogram, AddAllAndTableRender) {
  profile::Log2Histogram h;
  const std::vector<u64> xs = {1, 1, 2, 5, 100};
  h.add_all(xs);
  EXPECT_EQ(h.total(), 5u);
  const auto t = h.to_table("demo");
  EXPECT_GE(t.rows(), 3u);
  EXPECT_NE(t.to_text().find("#"), std::string::npos);
}

TEST(Histogram, ResetClears) {
  profile::Log2Histogram h;
  h.add(5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

// --- trace -----------------------------------------------------------------------

TEST(Trace, RecordsEveryLaunch) {
  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);
  dev.launch("alpha", {2, 32}, [](sim::ThreadCtx& ctx) { ctx.charge_alu(1); });
  dev.launch("beta", {1, 64}, [](sim::ThreadCtx&) {});
  dev.launch("alpha", {2, 32}, [](sim::ThreadCtx&) {});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.events()[0].kernel, "alpha");
  EXPECT_EQ(trace.events()[1].kernel, "beta");
  EXPECT_EQ(trace.events()[1].blocks, 1u);
  EXPECT_GT(trace.events()[0].modeled_cycles, 0u);
  // Cumulative cycles are nondecreasing.
  EXPECT_LE(trace.events()[0].cumulative_cycles,
            trace.events()[2].cumulative_cycles);
}

TEST(Trace, CapturesAtomicsDelta) {
  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);
  u32 x = 0;
  dev.launch("atomics", {1, 8},
             [&](sim::ThreadCtx& ctx) { ctx.atomic_add(x, 1u); });
  dev.launch("quiet", {1, 8}, [](sim::ThreadCtx&) {});
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].atomics_delta, 8u);
  EXPECT_EQ(trace.events()[1].atomics_delta, 0u);
}

TEST(Trace, SummaryAggregatesByKernel) {
  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);
  for (int i = 0; i < 3; ++i) {
    dev.launch("hot", {4, 64}, [](sim::ThreadCtx& ctx) { ctx.charge_alu(50); });
  }
  dev.launch("cold", {1, 1}, [](sim::ThreadCtx&) {});
  const auto t = trace.summary();
  ASSERT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(0)[0], "hot");  // sorted by cycle share
  EXPECT_EQ(t.row(0)[1], "3");
}

TEST(Trace, CsvHasHeaderAndRows) {
  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);
  dev.launch("k", {1, 1}, [](sim::ThreadCtx&) {});
  const auto csv = trace.to_csv();
  EXPECT_NE(csv.find("sequence,kernel"), std::string::npos);
  EXPECT_NE(csv.find("k,1,1"), std::string::npos);
}

TEST(Trace, DetachStopsRecording) {
  sim::Device dev;
  sim::Trace trace;
  dev.set_trace(&trace);
  dev.launch("a", {1, 1}, [](sim::ThreadCtx&) {});
  dev.set_trace(nullptr);
  dev.launch("b", {1, 1}, [](sim::ThreadCtx&) {});
  EXPECT_EQ(trace.size(), 1u);
}

// --- dimacs ----------------------------------------------------------------------

TEST(DimacsSp, ReadsHandWrittenFile) {
  std::stringstream ss(
      "c tiny road network\n"
      "p sp 3 3\n"
      "a 1 2 7\n"
      "a 2 3 9\n"
      "a 3 1 2\n");
  const auto g = graph::read_dimacs_sp(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.directed());
  ASSERT_TRUE(g.weighted());
  EXPECT_EQ(g.weights_of(0)[0], 7u);
}

TEST(DimacsSp, RoundtripWeightedDirected) {
  graph::BuildOptions opt;
  opt.directed = true;
  opt.weighted = true;
  const auto g = graph::from_edges(
      6, {{0, 1, 3}, {1, 0, 3}, {2, 5, 8}, {4, 3, 1}}, opt);
  std::stringstream ss;
  graph::write_dimacs_sp(g, ss);
  const auto back = graph::read_dimacs_sp(ss);
  EXPECT_TRUE(back == g);
}

TEST(DimacsSp, HeaderCountMismatchThrows) {
  std::stringstream ss("p sp 2 2\na 1 2 1\n");
  EXPECT_THROW(graph::read_dimacs_sp(ss), CheckFailure);
}

TEST(DimacsSp, WrongKindThrows) {
  std::stringstream ss("p edge 2 1\ne 1 2\n");
  EXPECT_THROW(graph::read_dimacs_sp(ss), CheckFailure);
}

TEST(DimacsCol, RoundtripUndirected) {
  const auto g = gen::uniform_random(40, 100, 3);
  std::stringstream ss;
  graph::write_dimacs_col(g, ss);
  const auto back = graph::read_dimacs_col(ss);
  EXPECT_TRUE(back == g);
}

TEST(DimacsCol, OutOfRangeEndpointThrows) {
  std::stringstream ss("p edge 2 1\ne 1 5\n");
  EXPECT_THROW(graph::read_dimacs_col(ss), CheckFailure);
}

// --- reorder ---------------------------------------------------------------------

TEST(Reorder, DegreeDescPutsHubFirst) {
  const auto g = graph::from_edges(5, {{0, 4, 0}, {1, 4, 0}, {2, 4, 0}});
  const auto perm = graph::order_by_degree_desc(g);
  EXPECT_EQ(perm[4], 0u);  // the hub gets rank 0
}

TEST(Reorder, BfsOrderIsPermutationAndLocal) {
  const auto g = gen::road_network(24, 0.3, 5);
  const auto perm = graph::order_bfs(g);
  std::vector<bool> seen(g.num_vertices(), false);
  for (const vidx p : perm) {
    ASSERT_LT(p, g.num_vertices());
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
  // BFS numbering must beat a random one on locality.
  const auto bfs_g = graph::relabel(g, perm);
  const auto rnd_g = graph::relabel(g, graph::order_random(g, 1));
  EXPECT_LT(graph::locality_score(bfs_g), graph::locality_score(rnd_g));
}

TEST(Reorder, MortonBeatsRowMajorOnBlockAffinity) {
  // Morton patches keep both grid directions inside one id-block; row-major
  // strips lose every vertical edge at small block sizes.
  const u32 side = 64;
  const auto g = gen::grid2d_torus(side);
  const auto morton_g = graph::relabel(g, graph::order_morton_grid(side));
  EXPECT_GT(graph::block_affinity(morton_g, 64),
            graph::block_affinity(g, 64));
  // And both beat a random numbering at GPU block sizes.
  const auto rnd_g = graph::relabel(g, graph::order_random(g, 11));
  EXPECT_GT(graph::block_affinity(morton_g, 512),
            graph::block_affinity(rnd_g, 512));
}

TEST(Reorder, RandomOrderScoresNearOneThird) {
  const auto g = gen::grid2d_torus(48);
  const auto shuffled = graph::relabel(g, graph::order_random(g, 7));
  EXPECT_NEAR(graph::locality_score(shuffled), 1.0 / 3.0, 0.05);
}

TEST(Reorder, RelabeledGraphsKeepStructure) {
  const auto g = gen::preferential_attachment(500, 3, 9);
  for (const auto& perm :
       {graph::order_by_degree_desc(g), graph::order_bfs(g),
        graph::order_random(g, 4)}) {
    const auto r = graph::relabel(g, perm);
    EXPECT_EQ(r.num_edges(), g.num_edges());
    EXPECT_EQ(graph::degree_stats(r).max, graph::degree_stats(g).max);
    EXPECT_TRUE(graph::is_symmetric(r));
  }
}

}  // namespace
}  // namespace eclp
