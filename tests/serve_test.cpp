// Tests for the serving layer: the request/response schema
// (src/serve/request.*), the ref-counted in-process graph pool
// (src/graph/pool.*), and the concurrent Server (src/serve/server.*).
//
// The load-bearing claims pinned here:
//  * a served request is bit-identical (modeled cycles + solution
//    checksum) to the same run issued directly against a fresh Device —
//    i.e. serving is an execution vehicle, not a different semantics;
//  * the deterministic response rendering is byte-stable across serving
//    thread counts, pinned by tests/golden/serve_results.txt;
//  * pool admission/eviction bookkeeping adds up exactly (hits + misses
//    == requests, nothing evicted while pinned).
//
// Lives in eclp_parallel_tests so `ctest -L tsan` race-checks the same
// code paths (see also serve_stress_test.cpp for the saturation runs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/cc/ecl_cc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/cache.hpp"
#include "graph/pool.hpp"
#include "serve/server.hpp"
#include "sim/cache.hpp"
#include "sim/device.hpp"

namespace eclp {
namespace {

/// Same 128-bit content mix Server uses for response checksums.
template <typename T>
std::string checksum_of(const std::vector<T>& v) {
  graph::CacheKey key;
  key.mix(std::string_view(reinterpret_cast<const char*>(v.data()),
                           v.size() * sizeof(T)));
  return key.hex();
}

graph::Csr line_graph(vidx n) {
  std::vector<graph::Edge> edges;
  for (vidx v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 0});
  graph::BuildOptions opt;
  return graph::from_edges(n, edges, opt);
}

// --- request schema ----------------------------------------------------------

TEST(ServeRequest, ParsesJsonlWithCommentsBlanksAndCrlf) {
  const std::string text =
      "# a comment line\r\n"
      "\r\n"
      "{\"algo\": \"cc\", \"input\": \"rmat16.sym\"}\r\n"
      "{\"id\": \"named\", \"algo\": \"mst\", \"input\": \"USA-road-d.NY\", "
      "\"scale\": \"small\", \"seed\": 7, \"weights\": 9}\n"
      "{\"algo\": \"scc\", \"graph\": \"/tmp/g.el\", \"directed\": true}";
  const auto reqs = serve::parse_requests_jsonl(text);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].id, "r0");  // anonymous ids index the request line
  EXPECT_EQ(reqs[0].algo, serve::Algo::kCc);
  EXPECT_EQ(reqs[0].input, "rmat16.sym");
  EXPECT_EQ(reqs[0].scale, gen::Scale::kTiny);
  EXPECT_EQ(reqs[1].id, "named");
  EXPECT_EQ(reqs[1].scale, gen::Scale::kSmall);
  EXPECT_EQ(reqs[1].seed, 7u);
  EXPECT_EQ(reqs[1].weights_seed, 9u);
  EXPECT_EQ(reqs[2].file, "/tmp/g.el");
  EXPECT_TRUE(reqs[2].directed);
}

TEST(ServeRequest, RejectsMalformedRequests) {
  // Unknown fields are an error so typos do not silently run defaults.
  EXPECT_THROW(serve::parse_requests_jsonl(
                   "{\"algo\": \"cc\", \"input\": \"internet\", "
                   "\"sale\": \"tiny\"}"),
               CheckFailure);
  // Exactly one of input/graph.
  EXPECT_THROW(serve::parse_requests_jsonl("{\"algo\": \"cc\"}"),
               CheckFailure);
  EXPECT_THROW(serve::parse_requests_jsonl(
                   "{\"algo\": \"cc\", \"input\": \"internet\", "
                   "\"graph\": \"g.el\"}"),
               CheckFailure);
  EXPECT_THROW(serve::parse_requests_jsonl(
                   "{\"algo\": \"pagerank\", \"input\": \"internet\"}"),
               CheckFailure);
}

TEST(ServeRequest, JsonRoundTrip) {
  serve::Request r;
  r.id = "round-trip";
  r.algo = serve::Algo::kMst;
  r.input = "USA-road-d.NY";
  r.scale = gen::Scale::kSmall;
  r.seed = 123;
  r.weights_seed = 7;
  r.verify = true;
  const auto back = serve::Request::from_json(r.to_json(), 0);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.algo, r.algo);
  EXPECT_EQ(back.input, r.input);
  EXPECT_EQ(back.scale, r.scale);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.weights_seed, r.weights_seed);
  EXPECT_EQ(back.verify, r.verify);
}

TEST(ServeRequest, TimingFieldsStayOutOfDeterministicRendering) {
  serve::Response r;
  r.id = "x";
  r.algo = serve::Algo::kCc;
  r.graph = "internet";
  r.summary = "CC: 1 components";
  r.modeled_cycles = 42;
  r.checksum = "00ff";
  r.pool_hit = true;
  r.wall_ms = 3.5;
  const std::string det = r.to_json(false).dump();
  EXPECT_EQ(det.find("wall_ms"), std::string::npos);
  EXPECT_EQ(det.find("pool"), std::string::npos);
  const std::string timed = r.to_json(true).dump();
  EXPECT_NE(timed.find("\"pool\":\"hit\""), std::string::npos);
  EXPECT_NE(timed.find("wall_ms"), std::string::npos);
}

// --- graph::Pool -------------------------------------------------------------

TEST(GraphPool, HitSharesTheResidentInstance) {
  graph::Pool pool(u64{64} << 20);
  u32 builds = 0;
  const auto build = [&] {
    ++builds;
    return line_graph(100);
  };
  auto a = pool.acquire("k", build);
  auto b = pool.acquire("k", build);
  EXPECT_EQ(builds, 1u);
  EXPECT_FALSE(a.was_hit());
  EXPECT_TRUE(b.was_hit());
  EXPECT_EQ(a.get(), b.get());  // literally the same resident CSR
  const auto s = pool.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.pins, 2u);
  EXPECT_EQ(s.pinned, 1u);
  EXPECT_EQ(s.bytes, graph::graph_bytes(*a));
}

TEST(GraphPool, EvictsLeastRecentlyUsedUnderBudget) {
  const u64 one = graph::graph_bytes(line_graph(256));
  graph::Pool pool(2 * one);  // room for two graphs, not three
  pool.acquire("a", [] { return line_graph(256); });
  pool.acquire("b", [] { return line_graph(256); });
  // Touch "a" so "b" is the LRU entry when "c" overflows the budget.
  pool.acquire("a", [] { return line_graph(256); });
  pool.acquire("c", [] { return line_graph(256); });
  EXPECT_TRUE(pool.contains("a"));
  EXPECT_FALSE(pool.contains("b"));
  EXPECT_TRUE(pool.contains("c"));
  const auto s = pool.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, pool.byte_budget());
  EXPECT_EQ(s.hits + s.misses, s.requests);
}

TEST(GraphPool, NeverEvictsAPinnedEntry) {
  const u64 one = graph::graph_bytes(line_graph(256));
  graph::Pool pool(one);  // budget for a single graph
  auto pinned = pool.acquire("pinned", [] { return line_graph(256); });
  // Both overflow the budget; the pinned entry must survive regardless.
  pool.acquire("other1", [] { return line_graph(256); });
  pool.acquire("other2", [] { return line_graph(256); });
  EXPECT_TRUE(pool.contains("pinned"));
  EXPECT_EQ(pinned->num_vertices(), 256u);  // still intact
  EXPECT_EQ(pool.stats().pinned, 1u);
  pinned.reset();
  // Last release re-checks the budget: the pool is back under it.
  EXPECT_LE(pool.stats().bytes, pool.byte_budget());
  EXPECT_EQ(pool.stats().pins, 0u);
}

TEST(GraphPool, ZeroBudgetMeansDropOnLastRelease) {
  graph::Pool pool(0);
  u32 builds = 0;
  {
    auto a = pool.acquire("k", [&] { ++builds; return line_graph(64); });
    auto b = pool.acquire("k", [&] { ++builds; return line_graph(64); });
    EXPECT_TRUE(b.was_hit());  // sharing still works while pinned
    EXPECT_EQ(pool.stats().entries, 1u);
  }
  EXPECT_EQ(pool.stats().entries, 0u);
  pool.acquire("k", [&] { ++builds; return line_graph(64); });
  EXPECT_EQ(builds, 2u);  // rebuilt: nothing stays resident
}

TEST(GraphPool, ConcurrentAcquiresAreSingleFlight) {
  graph::Pool pool(u64{64} << 20);
  std::atomic<u32> builds{0};
  constexpr u32 kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<const graph::Csr*> seen(kThreads, nullptr);
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto pin = pool.acquire("shared", [&] {
        builds.fetch_add(1);
        return line_graph(2000);
      });
      seen[t] = pin.get();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1u);  // one build, amortized across all waiters
  for (u32 t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  const auto s = pool.stats();
  EXPECT_EQ(s.requests, kThreads);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(s.pins, 0u);
}

TEST(GraphPool, FailedBuildLeavesNoTraceAndWaitersRetry) {
  graph::Pool pool(u64{64} << 20);
  u32 attempts = 0;
  const auto flaky = [&]() -> graph::Csr {
    if (++attempts == 1) throw CheckFailure("synthetic build failure");
    return line_graph(32);
  };
  EXPECT_THROW(pool.acquire("k", flaky), CheckFailure);
  EXPECT_FALSE(pool.contains("k"));
  EXPECT_EQ(pool.stats().pins, 0u);
  auto pin = pool.acquire("k", flaky);  // clean retry succeeds
  EXPECT_EQ(pin->num_vertices(), 32u);
  EXPECT_EQ(attempts, 2u);
}

TEST(GraphPool, PinMoveTransfersTheRefCount) {
  graph::Pool pool(u64{64} << 20);
  auto a = pool.acquire("k", [] { return line_graph(16); });
  graph::Pool::Pin b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): post-move probe
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.stats().pins, 1u);
  b.reset();
  EXPECT_EQ(pool.stats().pins, 0u);
}

// --- Server ------------------------------------------------------------------

serve::Request make_request(const std::string& id, serve::Algo algo,
                            const std::string& input, u64 seed = 0) {
  serve::Request r;
  r.id = id;
  r.algo = algo;
  r.input = input;
  r.scale = gen::Scale::kTiny;
  r.seed = seed;
  r.verify = true;
  return r;
}

/// The fixed request mix behind the determinism golden: all five
/// algorithms, repeated specs (pool hits), a nonzero-seed (shuffled
/// schedule) variant, and one guaranteed-failing request.
std::vector<serve::Request> golden_mix() {
  std::vector<serve::Request> reqs;
  reqs.push_back(make_request("cc-rmat", serve::Algo::kCc, "rmat16.sym"));
  reqs.push_back(make_request("gc-rmat", serve::Algo::kGc, "rmat16.sym"));
  reqs.push_back(make_request("mis-inet", serve::Algo::kMis, "internet"));
  reqs.push_back(
      make_request("mst-road", serve::Algo::kMst, "USA-road-d.NY"));
  reqs.push_back(make_request("scc-cold", serve::Algo::kScc, "cold-flow"));
  reqs.push_back(
      make_request("cc-rmat-again", serve::Algo::kCc, "rmat16.sym"));
  reqs.push_back(
      make_request("mis-inet-seeded", serve::Algo::kMis, "internet", 12345));
  // SCC needs a directed graph; rmat16.sym is undirected -> typed error.
  serve::Request bad = make_request("scc-undirected", serve::Algo::kScc,
                                    "rmat16.sym");
  reqs.push_back(bad);
  return reqs;
}

std::string serve_deterministic_jsonl(u32 threads) {
  serve::ServerOptions opt;
  opt.threads = threads;
  serve::Server server(opt);
  return serve::responses_to_jsonl(server.serve(golden_mix()), false);
}

// Same convention as session_test.cpp: regenerate with
//   ECLP_UPDATE_GOLDEN=1 ./eclp_parallel_tests --gtest_filter='ServeGolden.*'
void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = std::string(ECLP_GOLDEN_DIR) + "/" + name;
  if (std::getenv("ECLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with ECLP_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << path;
}

/// A served request must be bit-identical to the same run issued directly
/// against a fresh deterministic Device — serving adds concurrency, not
/// semantics. (The one-shot CLI is this direct path; tests/serve_smoke
/// covers the actual binary.)
TEST(Server, ServedResultMatchesDirectRun) {
  serve::Server server;
  auto responses = server.serve({
      make_request("cc", serve::Algo::kCc, "rmat16.sym"),
      make_request("mis", serve::Algo::kMis, "internet", 7),
  });
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_EQ(responses[0].status, serve::Status::kOk);
  ASSERT_EQ(responses[1].status, serve::Status::kOk);

  {
    const auto g = gen::find_input("rmat16.sym").make(gen::Scale::kTiny);
    sim::Device dev(sim::CostModel{}, 0, sim::ScheduleMode::kDeterministic);
    const auto res = algos::cc::run(dev, g);
    EXPECT_EQ(responses[0].modeled_cycles, res.modeled_cycles);
    EXPECT_EQ(responses[0].checksum, checksum_of(res.labels));
  }
  {
    const auto g = gen::find_input("internet").make(gen::Scale::kTiny);
    sim::Device dev(sim::CostModel{}, 7, sim::ScheduleMode::kShuffled);
    const auto res = algos::mis::run(dev, g);
    EXPECT_EQ(responses[1].modeled_cycles, res.modeled_cycles);
    EXPECT_EQ(responses[1].checksum, checksum_of(res.status));
  }
}

TEST(Server, SharesOnePooledGraphAcrossAlgorithms) {
  // cc and gc over the same input want the same algorithm-ready graph.
  EXPECT_EQ(serve::Server::graph_key(
                make_request("a", serve::Algo::kCc, "rmat16.sym")),
            serve::Server::graph_key(
                make_request("b", serve::Algo::kGc, "rmat16.sym")));
  // MST attaches weights; SCC wants the directed form: distinct keys.
  EXPECT_NE(serve::Server::graph_key(
                make_request("a", serve::Algo::kCc, "rmat16.sym")),
            serve::Server::graph_key(
                make_request("c", serve::Algo::kMst, "rmat16.sym")));
  EXPECT_NE(serve::Server::graph_key(
                make_request("a", serve::Algo::kCc, "cold-flow")),
            serve::Server::graph_key(
                make_request("d", serve::Algo::kScc, "cold-flow")));

  serve::Server server;
  auto responses = server.serve({
      make_request("first", serve::Algo::kCc, "rmat16.sym"),
      make_request("second", serve::Algo::kGc, "rmat16.sym"),
  });
  const auto s = server.stats();
  EXPECT_EQ(s.graphs.misses, 1u);
  EXPECT_EQ(s.graphs.hits, 1u);
}

TEST(Server, ReorderAndLlcSpecsSplitThePoolKey) {
  const auto base = make_request("a", serve::Algo::kCc, "rmat16.sym");
  const auto with = [&](const std::string& reorder, const std::string& llc) {
    serve::Request r = base;
    r.reorder = reorder;
    r.llc = llc;
    return serve::Server::graph_key(r);
  };
  // Spelling variants of one canonical spec share a pool entry...
  EXPECT_EQ(with("", ""), with("natural", "off"));
  EXPECT_EQ(with("random", ""), with("random:1", ""));
  EXPECT_EQ(with("", "on"), with("", "64:8:64"));
  // ...but any semantic difference splits the key: a reordered graph must
  // never alias a natural-order entry, and an LLC shape change alters
  // every modeled result computed on the pooled graph.
  EXPECT_NE(with("", ""), with("hub", ""));
  EXPECT_NE(with("hub", ""), with("gorder", ""));
  EXPECT_NE(with("gorder:8", ""), with("gorder:4", ""));
  EXPECT_NE(with("", ""), with("", "on"));
  EXPECT_NE(with("", "on"), with("", "32:4:16"));

  // Cold/warm through the live pool: a repeated reorder spec hits the
  // resident relabeled graph; a different spec builds its own.
  serve::Server server;
  const auto reordered = [&](const std::string& id,
                             const std::string& reorder) {
    serve::Request r = make_request(id, serve::Algo::kCc, "rmat16.sym");
    r.reorder = reorder;
    return r;
  };
  const auto responses = server.serve({reordered("cold", "hub"),
                                       reordered("warm", "hub"),
                                       reordered("other", "random")});
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, serve::Status::kOk) << r.id << ": " << r.error;
  }
  const auto s = server.stats();
  EXPECT_EQ(s.graphs.misses, 2u);
  EXPECT_EQ(s.graphs.hits, 1u);
}

TEST(Server, MalformedReorderSpecBecomesATypedError) {
  serve::Server server;
  serve::Request bad = make_request("bad", serve::Algo::kCc, "rmat16.sym");
  bad.reorder = "zorder";
  const auto responses = server.serve({bad});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, serve::Status::kError);
  EXPECT_NE(responses[0].error.find("reorder"), std::string::npos);
}

TEST(Server, LlcRequestMatchesDirectCacheEnabledRun) {
  serve::Server server;
  serve::Request req = make_request("llc", serve::Algo::kCc, "rmat16.sym");
  req.llc = "on";
  const auto responses = server.serve({req});
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_EQ(responses[0].status, serve::Status::kOk);

  const auto g = gen::find_input("rmat16.sym").make(gen::Scale::kTiny);
  sim::CostModel cost;
  cost.cache = sim::parse_cache_config("on");
  sim::Device dev(cost, 0, sim::ScheduleMode::kDeterministic);
  const auto res = algos::cc::run(dev, g);
  EXPECT_EQ(responses[0].modeled_cycles, res.modeled_cycles);
  EXPECT_EQ(responses[0].checksum, checksum_of(res.labels));
  EXPECT_GT(dev.llc_hits() + dev.llc_misses(), 0u);
}

TEST(Server, ResponsesComeBackInRequestOrder) {
  serve::ServerOptions opt;
  opt.threads = 7;
  serve::Server server(opt);
  std::vector<serve::Request> reqs;
  for (u32 i = 0; i < 24; ++i) {
    reqs.push_back(make_request("r" + std::to_string(i),
                                i % 2 == 0 ? serve::Algo::kCc
                                           : serve::Algo::kMis,
                                i % 3 == 0 ? "internet" : "rmat16.sym"));
  }
  const auto responses = server.serve(reqs);
  ASSERT_EQ(responses.size(), reqs.size());
  for (u32 i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(responses[i].id, reqs[i].id);
    EXPECT_EQ(responses[i].status, serve::Status::kOk);
  }
}

TEST(Server, RejectsWhenQueueIsFullAndRecovers) {
  serve::ServerOptions opt;
  opt.threads = 1;
  opt.max_queue = 2;
  opt.manual_start = true;  // fill the queue before the dispatcher runs
  serve::Server server(opt);
  std::vector<std::future<serve::Response>> futures;
  for (u32 i = 0; i < 4; ++i) {
    futures.push_back(server.submit(
        make_request("q" + std::to_string(i), serve::Algo::kCc, "internet")));
  }
  // Admission decided synchronously: 2 queued, 2 rejected, none executed.
  auto s = server.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.completed, 0u);
  // Rejected futures are already fulfilled with the typed response.
  for (u32 i = 2; i < 4; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto r = futures[i].get();
    EXPECT_EQ(r.status, serve::Status::kRejected);
    EXPECT_NE(r.error.find("queue full"), std::string::npos);
    EXPECT_EQ(r.id, "q" + std::to_string(i));
  }
  server.start();
  for (u32 i = 0; i < 2; ++i) {
    EXPECT_EQ(futures[i].get().status, serve::Status::kOk);
  }
  // The server accepts again once the queue drained.
  EXPECT_EQ(server.submit(make_request("again", serve::Algo::kCc, "internet"))
                .get()
                .status,
            serve::Status::kOk);
  s = server.stats();
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.accepted, s.completed + s.failed);
}

TEST(Server, TracksQueueDepthAndHighWaterMark) {
  serve::ServerOptions opt;
  opt.threads = 2;
  opt.manual_start = true;  // queue fills before the dispatcher drains it
  serve::Server server(opt);
  std::vector<std::future<serve::Response>> futures;
  for (u32 i = 0; i < 5; ++i) {
    futures.push_back(server.submit(
        make_request("d" + std::to_string(i), serve::Algo::kCc, "internet")));
  }
  auto s = server.stats();
  EXPECT_EQ(s.queue_depth, 5u);
  EXPECT_EQ(s.queue_peak, 5u);
  server.start();
  for (auto& f : futures) f.get();
  s = server.stats();
  // Drained: depth returns to zero, the high-water mark stays.
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.queue_peak, 5u);
}

TEST(Server, StatsJsonRoundTripsWithConsistentInvariants) {
  serve::Server server;
  server.serve({
      make_request("cc-a", serve::Algo::kCc, "rmat16.sym"),
      make_request("cc-b", serve::Algo::kCc, "rmat16.sym"),
      make_request("mis", serve::Algo::kMis, "internet"),
      make_request("bad-scc", serve::Algo::kScc, "rmat16.sym"),
  });
  const json::Value doc =
      json::Value::parse(serve::stats_to_json(server.stats()).dump(2));
  for (const char* field : {"submitted", "accepted", "rejected", "completed",
                            "failed", "queue_depth", "queue_peak"}) {
    ASSERT_NE(doc.find(field), nullptr) << "missing field " << field;
  }
  const json::Value& pool = doc.at("graph_pool");
  for (const char* field : {"requests", "hits", "misses", "evictions",
                            "bytes", "peak_bytes", "entries", "pins"}) {
    ASSERT_NE(pool.find(field), nullptr) << "missing pool field " << field;
  }
  EXPECT_EQ(pool.at("hits").as_u64() + pool.at("misses").as_u64(),
            pool.at("requests").as_u64());
  EXPECT_EQ(doc.at("submitted").as_u64(),
            doc.at("accepted").as_u64() + doc.at("rejected").as_u64());
  EXPECT_EQ(doc.at("completed").as_u64() + doc.at("failed").as_u64(), 4u);
  EXPECT_EQ(doc.at("failed").as_u64(), 1u);  // bad-scc
  EXPECT_EQ(doc.at("queue_depth").as_u64(), 0u);
  EXPECT_GE(doc.at("queue_peak").as_u64(), 1u);
  EXPECT_EQ(pool.at("pins").as_u64(), 0u);  // nothing in flight
}

TEST(Server, ExecutionFailuresBecomeTypedErrorResponses) {
  serve::Server server;
  auto responses = server.serve({
      make_request("good", serve::Algo::kCc, "rmat16.sym"),
      make_request("bad-input", serve::Algo::kCc, "no-such-input"),
      make_request("bad-scc", serve::Algo::kScc, "rmat16.sym"),
  });
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, serve::Status::kOk);
  EXPECT_EQ(responses[1].status, serve::Status::kError);
  EXPECT_FALSE(responses[1].error.empty());
  EXPECT_EQ(responses[2].status, serve::Status::kError);
  EXPECT_NE(responses[2].error.find("directed"), std::string::npos);
  const auto s = server.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 2u);
}

TEST(Server, ProfileDirWritesPerRequestSessions) {
  const auto dir = std::filesystem::temp_directory_path() / "eclp_serve_prof";
  std::filesystem::remove_all(dir);
  {
    serve::ServerOptions opt;
    opt.profile_dir = dir.string();
    serve::Server server(opt);
    auto responses = server.serve({
        make_request("alpha", serve::Algo::kCc, "rmat16.sym"),
        make_request("beta/0", serve::Algo::kMis, "internet"),
    });
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].status, serve::Status::kOk);
  }
  // One eclp.profile JSON + one Perfetto twin per request; unsafe id
  // characters sanitized.
  EXPECT_TRUE(std::filesystem::exists(dir / "alpha.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "alpha.trace.json"));
  EXPECT_TRUE(std::filesystem::exists(dir / "beta_0.json"));
  std::ifstream is(dir / "alpha.json");
  std::stringstream body;
  body << is.rdbuf();
  const auto doc = json::Value::parse(body.str());
  EXPECT_EQ(doc.at("meta").at("tool").as_string(), "eclp-serve");
  EXPECT_EQ(doc.at("meta").at("request").as_string(), "alpha");
  std::filesystem::remove_all(dir);
}

// --- determinism goldens -----------------------------------------------------

TEST(ServeGolden, DeterministicRenderingIsByteStableAcrossThreadCounts) {
  const std::string one = serve_deterministic_jsonl(1);
  const std::string many = serve_deterministic_jsonl(7);
  EXPECT_EQ(one, many);
}

TEST(ServeGolden, Results) {
  expect_matches_golden("serve_results.txt", serve_deterministic_jsonl(7));
}

}  // namespace
}  // namespace eclp
