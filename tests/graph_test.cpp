#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/properties.hpp"
#include "graph/transforms.hpp"

namespace eclp::graph {
namespace {

Csr triangle() {
  return from_edges(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}});
}

Csr path(vidx n) {
  std::vector<Edge> edges;
  for (vidx v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 0});
  return from_edges(n, edges);
}

// --- Csr ---------------------------------------------------------------------

TEST(Csr, EmptyGraph) {
  Csr g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Csr, FromPartsRejectsBadOffsets) {
  EXPECT_THROW(Csr::from_parts(2, {0, 1}, {0}), CheckFailure);   // n+1 size
  EXPECT_THROW(Csr::from_parts(2, {0, 1, 3}, {0}), CheckFailure);  // back
}

TEST(Csr, FromPartsRejectsWeightMismatch) {
  EXPECT_THROW(Csr::from_parts(2, {0, 1, 2}, {1, 0}, {5}), CheckFailure);
}

TEST(Csr, TriangleBasics) {
  const auto g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 6u);  // both directions stored
  EXPECT_FALSE(g.directed());
  EXPECT_FALSE(g.weighted());
  for (vidx v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Csr, NeighborsAreSorted) {
  const auto g = from_edges(5, {{4, 0, 0}, {2, 0, 0}, {3, 0, 0}, {1, 0, 0}});
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Csr, ValidateCatchesAsymmetry) {
  // Hand-built: arc 0->1 without 1->0 but flagged undirected.
  auto g = Csr::from_parts(2, {0, 1, 1}, {1}, {}, /*directed=*/false);
  EXPECT_THROW(g.validate(), CheckFailure);
}

TEST(Csr, ValidateAcceptsDirectedAsymmetry) {
  auto g = Csr::from_parts(2, {0, 1, 1}, {1}, {}, /*directed=*/true);
  EXPECT_NO_THROW(g.validate());
}

TEST(Csr, DegreeStatsOfTriangle) {
  const auto s = degree_stats(triangle());
  EXPECT_DOUBLE_EQ(s.avg, 2.0);
  EXPECT_EQ(s.max, 2u);
  EXPECT_EQ(s.min, 2u);
}

// --- Builder -----------------------------------------------------------------

TEST(Builder, RemovesSelfLoopsByDefault) {
  const auto g = from_edges(3, {{0, 0, 0}, {0, 1, 0}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Builder, DedupesParallelEdges) {
  const auto g = from_edges(2, {{0, 1, 0}, {0, 1, 0}, {1, 0, 0}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, KeepsParallelEdgesWhenAsked) {
  BuildOptions opt;
  opt.dedupe = false;
  const auto g = from_edges(2, {{0, 1, 0}, {0, 1, 0}}, opt);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Builder, DirectedKeepsArcDirection) {
  BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(3, {{0, 1, 0}, {1, 2, 0}}, opt);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_TRUE(g.directed());
}

TEST(Builder, WeightsFollowEdges) {
  BuildOptions opt;
  opt.weighted = true;
  const auto g = from_edges(2, {{0, 1, 77}}, opt);
  ASSERT_TRUE(g.weighted());
  EXPECT_EQ(g.weights_of(0)[0], 77u);
  EXPECT_EQ(g.weights_of(1)[0], 77u);  // mirrored arc carries same weight
}

TEST(Builder, OutOfRangeEdgeThrows) {
  Builder b(2);
  EXPECT_THROW(b.add(0, 5), CheckFailure);
}

TEST(Builder, EmptyGraphBuilds) {
  Builder b(4);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.validate());
}

// --- transforms ---------------------------------------------------------------

TEST(Transforms, TransposeReversesArcs) {
  BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(3, {{0, 1, 0}, {1, 2, 0}}, opt);
  const auto t = transpose(g);
  EXPECT_EQ(t.degree(1), 1u);
  EXPECT_EQ(t.neighbors(1)[0], 0u);
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.num_edges(), g.num_edges());
}

TEST(Transforms, TransposeTwiceIsIdentity) {
  BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(4, {{0, 1, 0}, {1, 2, 0}, {3, 0, 0}}, opt);
  const auto tt = transpose(transpose(g));
  EXPECT_EQ(tt.col_indices().size(), g.col_indices().size());
  for (vidx v = 0; v < 4; ++v) {
    const auto a = g.neighbors(v), b = tt.neighbors(v);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Transforms, SymmetrizeMakesUndirected) {
  BuildOptions opt;
  opt.directed = true;
  const auto g = from_edges(3, {{0, 1, 0}, {1, 2, 0}}, opt);
  const auto s = symmetrize(g);
  EXPECT_FALSE(s.directed());
  EXPECT_TRUE(is_symmetric(s));
  EXPECT_EQ(s.num_edges(), 4u);
}

TEST(Transforms, RelabelPreservesStructure) {
  const auto g = path(5);
  const std::vector<vidx> perm = {4, 3, 2, 1, 0};
  const auto r = relabel(g, perm);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  // Path 0-1-2-3-4 relabeled is path 4-3-2-1-0: same degree sequence.
  for (vidx v = 0; v < 5; ++v) EXPECT_EQ(r.degree(v), g.degree(4 - v));
  EXPECT_TRUE(is_symmetric(r));
}

TEST(Transforms, RelabelRejectsNonPermutation) {
  const auto g = path(3);
  const std::vector<vidx> bad = {0, 0, 1};
  EXPECT_THROW(relabel(g, bad), CheckFailure);
}

TEST(Transforms, DegreeDescendingOrder) {
  // Star: center 0 has degree 3.
  const auto g = from_edges(4, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}});
  const auto order = degree_descending_order(g);
  EXPECT_EQ(order[0], 0u);
}

TEST(Transforms, InducedSubgraphOfTriangle) {
  const auto g = triangle();
  const std::vector<vidx> keep = {0, 2};
  const auto s = induced_subgraph(g, keep);
  EXPECT_EQ(s.num_vertices(), 2u);
  EXPECT_EQ(s.num_edges(), 2u);  // the 0-2 edge, both directions
}

TEST(Transforms, RandomWeightsAreSymmetricAndBounded) {
  const auto g = triangle();
  const auto w = with_random_weights(g, 99, 100);
  ASSERT_TRUE(w.weighted());
  for (vidx u = 0; u < 3; ++u) {
    const auto nbrs = w.neighbors(u);
    const auto ws = w.weights_of(u);
    for (usize i = 0; i < nbrs.size(); ++i) {
      EXPECT_GE(ws[i], 1u);
      EXPECT_LE(ws[i], 100u);
      // Find reverse arc weight.
      const vidx v = nbrs[i];
      const auto vn = w.neighbors(v);
      const auto vw = w.weights_of(v);
      const auto it = std::find(vn.begin(), vn.end(), u);
      ASSERT_NE(it, vn.end());
      EXPECT_EQ(vw[static_cast<usize>(it - vn.begin())], ws[i]);
    }
  }
}

TEST(Transforms, RandomWeightsDeterministicPerSeed) {
  const auto g = path(10);
  const auto a = with_random_weights(g, 1);
  const auto b = with_random_weights(g, 1);
  const auto c = with_random_weights(g, 2);
  EXPECT_TRUE(std::equal(a.weights().begin(), a.weights().end(),
                         b.weights().begin()));
  EXPECT_FALSE(std::equal(a.weights().begin(), a.weights().end(),
                          c.weights().begin()));
}

// --- properties ----------------------------------------------------------------

TEST(Properties, BfsDistancesOnPath) {
  const auto g = path(5);
  const auto d = bfs_distances(g, 0);
  for (vidx v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Properties, BfsUnreachableMarked) {
  const auto g = from_edges(4, {{0, 1, 0}, {2, 3, 0}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Properties, ComponentCounting) {
  const auto g = from_edges(6, {{0, 1, 0}, {1, 2, 0}, {3, 4, 0}});
  EXPECT_EQ(count_components(g), 3u);  // {0,1,2}, {3,4}, {5}
  const auto labels = connected_component_labels(g);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[5], 5u);
}

TEST(Properties, DiameterOfPathIsExact) {
  EXPECT_EQ(estimate_diameter(path(10)), 9u);
}

TEST(Properties, ConnectivityCheck) {
  EXPECT_TRUE(is_connected(path(4)));
  EXPECT_FALSE(is_connected(from_edges(3, {{0, 1, 0}})));
}

TEST(Properties, DegreeHistogramCapsOverflow) {
  const auto g = from_edges(5, {{0, 1, 0}, {0, 2, 0}, {0, 3, 0}, {0, 4, 0}});
  const auto h = degree_histogram(g, 2);
  EXPECT_EQ(h[1], 4u);  // four leaves
  EXPECT_EQ(h[2], 1u);  // center (degree 4) capped into last bucket
}

}  // namespace
}  // namespace eclp::graph
