# Reorder smoke check, run as `cmake -P` by the reorder-smoke ctest label.
#
# Inputs (all -D): ECLP_RUN, ECLP_PROFILE_DIFF (tool paths), ALGO, INPUT
# (suite input name), WORK_DIR (scratch directory, recreated every run).
#
# Steps:
#  1. eclp-run --algo=$ALGO --input=$INPUT --scale=tiny --reorder=hub
#     --profile=a.json — the reordered run must succeed, verify, and write
#     a profile artifact;
#  2. eclp-profile-diff --check a.json — schema validation;
#  3. a second identical run into b.json, then a self-diff that must report
#     zero regressions (reordering is memoized + deterministic, so two runs
#     of the same spec are bit-identical);
#  4. one LLC-enabled run (--llc=on) whose artifact must also pass the
#     schema check — covers the optional llc fields in the profile format.
foreach(var ECLP_RUN ECLP_PROFILE_DIFF ALGO INPUT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "reorder_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(profile_a "${WORK_DIR}/a.json")
set(profile_b "${WORK_DIR}/b.json")
set(profile_llc "${WORK_DIR}/llc.json")

execute_process(
  COMMAND "${ECLP_RUN}" --algo=${ALGO} --input=${INPUT} --scale=tiny
          --reorder=hub --verify --profile=${profile_a}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "eclp-run --reorder=hub failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${profile_a}")
  message(FATAL_ERROR "reordered run did not write ${profile_a}")
endif()

execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" --check=${profile_a}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${ECLP_RUN}" --algo=${ALGO} --input=${INPUT} --scale=tiny
          --reorder=hub --verify --profile=${profile_b}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second reordered run failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" "${profile_a}" "${profile_b}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-diff reported regressions (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${ECLP_RUN}" --algo=${ALGO} --input=${INPUT} --scale=tiny
          --reorder=hub --llc=on --verify --profile=${profile_llc}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "LLC-enabled run failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" --check=${profile_llc}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "LLC profile schema validation failed (${rc}):\n${out}\n${err}")
endif()

message(STATUS "reorder smoke ${ALGO}/${INPUT}: ok")
