// Tests for the chunked streaming generation layer (gen/stream.hpp) and
// the streamed CSR pipeline (graph/stream_build.hpp).
//
// The contract under test is the determinism story from docs/INGEST.md
// "Chunked streaming generation": a stream's canonical edge sequence is a
// pure function of (generator parameters, seed) — independent of chunk
// count, build thread count, and chunk schedule — and build_from_chunks
// over that sequence is byte-identical to materializing it and running
// the classic from_edges path. Lives in eclp_parallel_tests so the TSan
// configuration race-checks the two re-emission passes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gen/chunk_source.hpp"
#include "gen/stream.hpp"
#include "gen/suite.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/stream_build.hpp"
#include "support/parallel_for.hpp"

namespace eclp {
namespace {

static_assert(gen::ChunkSource<gen::UniformRandomStream>);
static_assert(gen::ChunkSource<gen::RmatStream>);
static_assert(gen::ChunkSource<gen::PreferentialAttachmentStream>);
static_assert(gen::ChunkSource<graph::VectorChunkSource>);

std::string bytes_of(const graph::Csr& g) {
  std::stringstream ss;
  graph::write_binary(g, ss);
  return std::move(ss).str();
}

/// Restores the build thread count a test mutates.
class ThreadGuard {
 public:
  ThreadGuard() : threads_(build_threads()) {}
  ~ThreadGuard() { set_build_threads(threads_); }

 private:
  u32 threads_;
};

/// One row per ported generator family: build the stream at a given
/// chunk count. Small sizes — the invariance matrix below is 4 families
/// x 2 seeds x 3 chunkings x 3 thread counts.
struct Family {
  const char* name;
  graph::Csr (*build)(u64 seed, u64 chunks);
};

const Family kFamilies[] = {
    {"uniform",
     [](u64 seed, u64 chunks) {
       return graph::build_from_chunks(
           gen::UniformRandomStream(500, 3000, seed, chunks));
     }},
    {"rmat",
     [](u64 seed, u64 chunks) {
       return graph::build_from_chunks(
           gen::RmatStream(8, 2000, 0.45, 0.22, 0.22, seed, chunks));
     }},
    {"kronecker",
     [](u64 seed, u64 chunks) {
       return graph::build_from_chunks(
           gen::RmatStream(8, 2000, 0.57, 0.19, 0.19, seed, chunks));
     }},
    {"pa",
     [](u64 seed, u64 chunks) {
       return graph::build_from_chunks(
           gen::PreferentialAttachmentStream(400, 3, seed, chunks));
     }},
};

// --- chunk/thread schedule invariance ---------------------------------------

TEST(StreamInvariance, SameBytesAtAnyChunkCountAndThreadCount) {
  ThreadGuard guard;
  for (const Family& family : kFamilies) {
    for (const u64 seed : {u64{0}, u64{12345}}) {
      set_build_threads(1);
      const std::string reference = bytes_of(family.build(seed, 1));
      for (const u64 chunks : {u64{1}, u64{4}, u64{13}}) {
        for (const u32 threads : {1u, 2u, 7u}) {
          set_build_threads(threads);
          EXPECT_EQ(bytes_of(family.build(seed, chunks)), reference)
              << family.name << " seed=" << seed << " chunks=" << chunks
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(StreamInvariance, SeedsProduceDistinctGraphs) {
  for (const Family& family : kFamilies) {
    EXPECT_NE(bytes_of(family.build(0, 4)), bytes_of(family.build(1, 4)))
        << family.name;
  }
}

// --- streamed == materialized ------------------------------------------------

TEST(StreamBuild, MatchesMaterializedPathForEveryFamily) {
  ThreadGuard guard;
  const gen::UniformRandomStream uniform(500, 3000, 7, 13);
  const gen::RmatStream rm(8, 2000, 0.45, 0.22, 0.22, 7, 13);
  const gen::PreferentialAttachmentStream pa(400, 3, 7, 13);
  const auto check = [&](const auto& source, const char* name) {
    const auto edges = graph::materialize_chunks(source);
    const auto reference =
        graph::from_edges(source.num_vertices(), edges);
    for (const u32 threads : {1u, 2u, 7u}) {
      set_build_threads(threads);
      EXPECT_EQ(bytes_of(graph::build_from_chunks(source)),
                bytes_of(reference))
          << name << " threads=" << threads;
    }
  };
  check(uniform, "uniform");
  check(rm, "rmat");
  check(pa, "pa");
}

TEST(StreamBuild, HonorsBuildOptions) {
  // Self-loop handling and directedness must match Builder::build's
  // semantics exactly — including the keep-loops and directed variants
  // the suite never exercises.
  std::vector<graph::Edge> edges{{0, 1, 0}, {1, 1, 0}, {2, 0, 0},
                                 {1, 0, 0}, {0, 1, 0}};
  const graph::VectorChunkSource source(3, edges, 2);
  for (const bool directed : {false, true}) {
    for (const bool loops : {true, false}) {
      for (const bool dedupe : {true, false}) {
        graph::BuildOptions opt;
        opt.directed = directed;
        opt.remove_self_loops = loops;
        opt.dedupe = dedupe;
        EXPECT_EQ(bytes_of(graph::build_from_chunks(source, opt)),
                  bytes_of(graph::from_edges(3, edges, opt)))
            << "directed=" << directed << " loops=" << loops
            << " dedupe=" << dedupe;
      }
    }
  }
}

// Every suite entry, streamed through VectorChunkSource and rebuilt
// against the classic pipeline — the generator that produced the edges
// does not matter, the two assembly paths must agree on every structural
// class in Table 1.
void expect_suite_identity(gen::Scale scale, std::initializer_list<u32>
                                                 thread_counts) {
  ThreadGuard guard;
  const auto check = [&](const gen::InputSpec& spec) {
    set_build_threads(1);
    const auto g = spec.make(scale);
    // Recover a representative edge list: each undirected edge once
    // (u <= dst side), every directed arc as-is.
    std::vector<graph::Edge> edges;
    edges.reserve(g.num_edges());
    for (vidx u = 0; u < g.num_vertices(); ++u) {
      for (const vidx v : g.neighbors(u)) {
        if (g.directed() || u <= v) edges.push_back({u, v, 0});
      }
    }
    graph::BuildOptions opt;
    opt.directed = g.directed();
    const graph::VectorChunkSource source(g.num_vertices(), edges, 13);
    const std::string expected = bytes_of(g);
    for (const u32 threads : thread_counts) {
      set_build_threads(threads);
      EXPECT_EQ(bytes_of(graph::build_from_chunks(source, opt)), expected)
          << spec.name << " threads=" << threads;
    }
  };
  for (const auto& spec : gen::general_inputs()) check(spec);
  for (const auto& spec : gen::mesh_inputs()) check(spec);
}

TEST(StreamBuild, SuiteByteIdentityAtTiny) {
  expect_suite_identity(gen::Scale::kTiny, {1, 2, 7});
}

TEST(StreamBuild, SuiteByteIdentityAtSmall) {
  expect_suite_identity(gen::Scale::kSmall, {7});
}

// --- stream mechanics --------------------------------------------------------

TEST(StreamSeeding, BlockSeedsAreDecorrelated) {
  EXPECT_NE(gen::stream_block_seed(0, gen::kStreamTagUniform, 0),
            gen::stream_block_seed(0, gen::kStreamTagUniform, 1));
  EXPECT_NE(gen::stream_block_seed(0, gen::kStreamTagUniform, 0),
            gen::stream_block_seed(0, gen::kStreamTagRmat, 0));
  EXPECT_NE(gen::stream_block_seed(0, gen::kStreamTagUniform, 0),
            gen::stream_block_seed(1, gen::kStreamTagUniform, 0));
}

TEST(StreamSeeding, ReEmissionIsIdempotent) {
  // emit() must be a pure function of the chunk id — the pipeline calls
  // it twice per chunk (histogram pass, scatter pass).
  const gen::RmatStream source(8, 2000, 0.45, 0.22, 0.22, 3, 5);
  for (u64 c = 0; c < source.num_chunks(); ++c) {
    std::vector<std::pair<vidx, vidx>> first, second;
    source.emit(c, [&](vidx u, vidx v) { first.emplace_back(u, v); });
    source.emit(c, [&](vidx u, vidx v) { second.emplace_back(u, v); });
    EXPECT_EQ(first, second) << "chunk " << c;
  }
}

TEST(StreamSeeding, CanonicalSequenceIgnoresChunkCount) {
  const auto sequence_of = [](u64 chunks) {
    const gen::UniformRandomStream source(300, 5000, 9, chunks);
    std::vector<std::pair<vidx, vidx>> seq;
    for (u64 c = 0; c < source.num_chunks(); ++c) {
      source.emit(c, [&](vidx u, vidx v) { seq.emplace_back(u, v); });
    }
    return seq;
  };
  const auto reference = sequence_of(1);
  EXPECT_EQ(sequence_of(4), reference);
  EXPECT_EQ(sequence_of(13), reference);
}

TEST(StreamPa, ResolvesToValidBarabasiAlbertStructure) {
  const gen::PreferentialAttachmentStream source(1000, 4, 42, 8);
  u64 emitted = 0;
  for (u64 c = 0; c < source.num_chunks(); ++c) {
    source.emit(c, [&](vidx u, vidx v) {
      ASSERT_LT(u, 1000u);
      ASSERT_LT(v, 1000u);
      ASSERT_NE(u, v);
      ++emitted;
    });
  }
  // The clique plus m edges per later vertex, minus the rare self-draw
  // skips.
  const u64 budget = source.estimated_edges();
  EXPECT_LE(emitted, budget);
  EXPECT_GT(emitted, budget * 95 / 100);
  // Degree-proportional attachment concentrates on the clique: the seed
  // vertices should end up far above m.
  const auto g = graph::build_from_chunks(source);
  u64 clique_degree = 0;
  for (vidx v = 0; v <= 4; ++v) clique_degree += g.degree(v);
  EXPECT_GT(clique_degree / 5, u64{4} * 4);
}

TEST(StreamChunks, DefaultIsProcessWideAndRestorable) {
  const u64 original = gen::gen_chunks();
  gen::set_gen_chunks(13);
  EXPECT_EQ(gen::gen_chunks(), 13u);
  const gen::UniformRandomStream source(100, 200000, 1);
  EXPECT_EQ(source.num_chunks(), 4u);  // clamped to ceil(200000/65536) blocks
  gen::set_gen_chunks(0);
  EXPECT_EQ(gen::gen_chunks(), original);
}

// --- builder growth policy ---------------------------------------------------

TEST(BuilderGrowth, AddEdgesGrowsGeometrically) {
  graph::Builder b(100);
  std::vector<graph::Edge> batch(50, graph::Edge{1, 2, 0});
  usize reallocations = 0;
  usize capacity = b.capacity_edges();
  for (int i = 0; i < 200; ++i) {
    b.add_edges(batch);
    if (b.capacity_edges() != capacity) {
      ++reallocations;
      capacity = b.capacity_edges();
    }
  }
  EXPECT_EQ(b.num_pending_edges(), 10000u);
  // Size+batch reservation would reallocate ~200 times; doubling stays
  // logarithmic.
  EXPECT_LE(reallocations, 16u);
}

TEST(BuilderGrowth, ReserveEdgesHintSkipsGrowth) {
  graph::Builder b(100);
  b.reserve_edges(10000);
  EXPECT_GE(b.capacity_edges(), 10000u);
  const usize capacity = b.capacity_edges();
  std::vector<graph::Edge> batch(50, graph::Edge{1, 2, 0});
  for (int i = 0; i < 200; ++i) b.add_edges(batch);
  EXPECT_EQ(b.capacity_edges(), capacity);
}

}  // namespace
}  // namespace eclp
