// Tests for profiling sessions (src/profile/session.*) and run-to-run diff
// gating (src/profile/diff.*): span hierarchy and deltas, counter
// snapshots, both exported artifacts, schema validation, and the goldens
// that pin the artifacts byte-for-byte across sim-thread counts.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "profile/diff.hpp"
#include "profile/session.hpp"
#include "sim/trace.hpp"

namespace eclp::profile {
namespace {

TEST(Session, SpanHierarchyAndDeltas) {
  sim::Device dev;
  Session session(dev);
  ASSERT_EQ(Session::current(), &session);
  const u32 algo = session.open_span("algo", SpanKind::kAlgorithm);
  const u32 phase = session.open_span("phase", SpanKind::kPhase);
  dev.launch("work", {2, 16}, [](sim::ThreadCtx& ctx) { ctx.charge_alu(3); });
  session.close_span(phase);
  session.close_span(algo);
  session.finalize();
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[algo].parent, -1);
  EXPECT_EQ(spans[algo].depth, 0u);
  EXPECT_EQ(spans[algo].kind, SpanKind::kAlgorithm);
  EXPECT_EQ(spans[phase].parent, static_cast<i32>(algo));
  EXPECT_EQ(spans[phase].depth, 1u);
  // The launch inside the phase produced a kernel span under it.
  const Span& kernel = spans[2];
  EXPECT_EQ(kernel.kind, SpanKind::kKernel);
  EXPECT_EQ(kernel.parent, static_cast<i32>(phase));
  EXPECT_EQ(kernel.name, "work");
  EXPECT_EQ(kernel.blocks, 2u);
  EXPECT_EQ(kernel.threads_per_block, 16u);
  EXPECT_EQ(kernel.active_threads, 32u);
  EXPECT_EQ(kernel.idle_threads, 0u);
  EXPECT_GT(kernel.cycles(), 0u);
  ASSERT_EQ(kernel.block_cycles.size(), 2u);
  // Cycle and launch deltas roll up: the phase saw exactly the kernel.
  EXPECT_EQ(spans[phase].launches, 1u);
  EXPECT_EQ(spans[phase].cycles(), spans[algo].cycles());
  EXPECT_EQ(spans[algo].launches, 1u);
}

TEST(Session, AtomicDeltasPerSpan) {
  sim::Device dev;
  Session session(dev);
  u64 counter = 0;
  const u32 quiet = session.open_span("quiet", SpanKind::kPhase);
  dev.launch("noatomics", {1, 8},
             [](sim::ThreadCtx& ctx) { ctx.charge_alu(1); });
  session.close_span(quiet);
  const u32 noisy = session.open_span("noisy", SpanKind::kPhase);
  dev.launch("atomics", {2, 32},
             [&](sim::ThreadCtx& ctx) { ctx.atomic_add(counter, u64{1}); });
  session.close_span(noisy);
  session.finalize();
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 4u);  // two phases + two kernel spans
  EXPECT_EQ(spans[quiet].atomics, 0u);
  EXPECT_EQ(spans[noisy].atomics, 64u);
}

TEST(Session, CounterDeltasPerSpan) {
  sim::Device dev;
  CounterRegistry reg;
  auto& hits = reg.make<GlobalCounter>("test.hits");
  auto& misses = reg.make<GlobalCounter>("test.misses");
  Session session(dev, &reg);
  const u32 a = session.open_span("a", SpanKind::kPhase);
  hits.inc(5);
  session.close_span(a);
  const u32 b = session.open_span("b", SpanKind::kPhase);
  hits.inc(2);
  misses.inc(1);
  session.close_span(b);
  session.finalize();
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Only the counters that changed inside the span, name-ordered.
  ASSERT_EQ(spans[a].counters.size(), 1u);
  EXPECT_EQ(spans[a].counters[0].first, "test.hits");
  EXPECT_EQ(spans[a].counters[0].second, 5u);
  ASSERT_EQ(spans[b].counters.size(), 2u);
  EXPECT_EQ(spans[b].counters[0].first, "test.hits");
  EXPECT_EQ(spans[b].counters[0].second, 2u);
  EXPECT_EQ(spans[b].counters[1].first, "test.misses");
  EXPECT_EQ(spans[b].counters[1].second, 1u);
}

TEST(Session, ScopedSpanWithoutSessionIsNoop) {
  ASSERT_EQ(Session::current(), nullptr);
  ScopedSpan orphan("orphan");
  orphan.end();  // must be a no-op, not a crash
}

TEST(Session, SessionsNestAndRestore) {
  sim::Device dev;
  ASSERT_EQ(Session::current(), nullptr);
  Session outer(dev);
  EXPECT_EQ(Session::current(), &outer);
  {
    Session inner(dev);
    EXPECT_EQ(Session::current(), &inner);
    ScopedSpan span("inner-only");
  }
  EXPECT_EQ(Session::current(), &outer);
}

TEST(Session, FinalizeClosesStragglersInLifoOrder) {
  sim::Device dev;
  Session session(dev);
  const u32 a = session.open_span("outer", SpanKind::kAlgorithm);
  const u32 b = session.open_span("leaked", SpanKind::kPhase);
  session.finalize();
  const auto spans = session.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[b].end_cycles, spans[a].end_cycles);
  EXPECT_EQ(spans[a].end_cycles, spans[a].start_cycles);  // nothing ran
}

TEST(Session, TracePathFor) {
  EXPECT_EQ(Session::trace_path_for("out.json"), "out.trace.json");
  EXPECT_EQ(Session::trace_path_for("runs/p.json"), "runs/p.trace.json");
  EXPECT_EQ(Session::trace_path_for("profile"), "profile.trace.json");
}

// --- a deterministic reference workload ------------------------------------------
// Phases + iteration spans + a mix of launch shapes, including a
// block-independent launch that actually fans out across the host pool.
// Everything the artifacts record for it is modeled, so the bytes must be
// identical no matter how many sim threads execute it.

struct Artifacts {
  std::string csv;       ///< Trace::to_csv()
  std::string perfetto;  ///< Session::perfetto_json()
  std::string profile;   ///< Session::profile_json()
};

Artifacts run_workload(u32 sim_threads, u64 rounds = 3) {
  const u32 prev_threads = sim::sim_threads();
  sim::set_sim_threads(sim_threads);
  Artifacts out;
  {
    sim::Device dev;
    sim::Trace trace;
    dev.set_trace(&trace);
    CounterRegistry reg;
    auto& pushes = reg.make<GlobalCounter>("workload.pushes");
    Session::Options options;
    options.record_wall = false;  // byte-stable profile document
    Session session(dev, &reg, options);
    session.set_meta("bench", "session-golden-workload");
    {
      ScopedSpan algo_span("golden", SpanKind::kAlgorithm);
      ScopedSpan init_span("init");
      sim::LaunchConfig cfg;
      cfg.blocks = 4;
      cfg.threads_per_block = 32;
      cfg.block_independent = true;
      dev.launch("seed_values", cfg, [&](sim::ThreadCtx& ctx) {
        ctx.charge_alu(1 + ctx.global_id() % 5);
        pushes.inc();
      });
      init_span.end();
      u64 best = 0;
      for (u64 round = 0; round < rounds; ++round) {
        ScopedSpan round_span(SpanKind::kIteration, "round", round);
        dev.launch("relax", {4, 32}, [&](sim::ThreadCtx& ctx) {
          if (ctx.global_id() % 2 == 0) {
            ctx.charge_reads(2);
            ctx.charge_writes(1);
            ctx.atomic_max(best, u64{ctx.global_id()});
            pushes.inc();
          }
        });
      }
    }
    session.finalize();
    out.csv = trace.to_csv();
    out.perfetto = session.perfetto_json();
    out.profile = session.profile_json();
  }
  sim::set_sim_threads(prev_threads);
  return out;
}

TEST(Session, PerfettoExportStructure) {
  const Artifacts a = run_workload(1);
  const json::Value doc = json::Value::parse(a.perfetto);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  usize meta = 0, slices = 0, counters = 0, block_slices = 0;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") ++meta;
    if (ph == "C") ++counters;
    if (ph == "X") {
      ++slices;
      if (e.at("cat").as_string() == "block") ++block_slices;
    }
  }
  EXPECT_GT(meta, 0u);
  EXPECT_GT(counters, 0u);
  // One per-block slice for each of the four 4-block launches, plus the
  // algorithm span, the init phase, 3 iteration spans, and 4 kernel spans.
  EXPECT_EQ(block_slices, 16u);
  EXPECT_EQ(slices - block_slices, 9u);
}

TEST(Session, ProfileValidatesAndSelfDiffIsClean) {
  const Artifacts a = run_workload(1);
  const json::Value doc = json::Value::parse(a.profile);
  ASSERT_NO_THROW(validate_profile(doc));
  const DiffReport report = diff_profiles(doc, doc);
  EXPECT_EQ(report.regressions(), 0u);
  for (const DiffEntry& e : report.entries) {
    EXPECT_EQ(e.status, DiffStatus::kOk) << e.metric;
  }
}

TEST(Session, DiffDetectsGrowthAndImprovement) {
  const json::Value base = json::Value::parse(run_workload(1, 3).profile);
  const json::Value grown = json::Value::parse(run_workload(1, 4).profile);
  // One extra round: more launches, cycles, and counter increments — all
  // beyond the default tolerances.
  const DiffReport worse = diff_profiles(base, grown);
  EXPECT_GT(worse.regressions(), 0u);
  const std::string rendered = worse.to_string();
  EXPECT_NE(rendered.find("regression"), std::string::npos);
  EXPECT_NE(rendered.find("totals/launches"), std::string::npos);
  // The reverse direction is an improvement, which never fails the gate.
  const DiffReport better = diff_profiles(grown, base);
  EXPECT_EQ(better.regressions(), 0u);
  // Generous tolerances absorb the growth.
  DiffOptions loose;
  loose.cycle_tolerance_pct = 1000.0;
  loose.counter_tolerance_pct = 1000.0;
  EXPECT_EQ(diff_profiles(base, grown, loose).regressions(), 0u);
}

TEST(Session, ValidateRejectsMalformedDocuments) {
  json::Value doc = json::Value::object();
  EXPECT_THROW(validate_profile(doc), CheckFailure);
  doc.set("schema", "not-a-profile");
  doc.set("version", u64{1});
  EXPECT_THROW(validate_profile(doc), CheckFailure);
  json::Value wrong_version = json::Value::parse(run_workload(1).profile);
  wrong_version.set("version", u64{999});
  EXPECT_THROW(validate_profile(wrong_version), CheckFailure);
}

TEST(Session, WriteEmitsBothArtifacts) {
  const std::string dir = ::testing::TempDir();
  const std::string profile_path = dir + "/eclp_session_test.json";
  const std::string trace_path = Session::trace_path_for(profile_path);
  {
    sim::Device dev;
    Session session(dev);
    session.set_output(profile_path);
    ScopedSpan span("only", SpanKind::kAlgorithm);
    dev.launch("k", {1, 4}, [](sim::ThreadCtx& ctx) { ctx.charge_alu(1); });
  }  // destructor finalizes and writes
  std::ifstream profile_in(profile_path);
  ASSERT_TRUE(profile_in.good()) << profile_path;
  std::stringstream profile_text;
  profile_text << profile_in.rdbuf();
  ASSERT_NO_THROW(validate_profile(json::Value::parse(profile_text.str())));
  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << trace_path;
  std::stringstream trace_text;
  trace_text << trace_in.rdbuf();
  EXPECT_NO_THROW(json::Value::parse(trace_text.str()));
  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

// --- golden files -----------------------------------------------------------------
// Same convention as profile_test.cpp: regenerate with
//   ECLP_UPDATE_GOLDEN=1 ctest -R Golden

void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = std::string(ECLP_GOLDEN_DIR) + "/" + name;
  if (std::getenv("ECLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with ECLP_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << is.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "golden mismatch: " << path;
}

TEST(SessionGolden, ArtifactsAreByteStableAcrossSimThreadCounts) {
  const Artifacts one = run_workload(1);
  const Artifacts many = run_workload(7);
  EXPECT_EQ(one.csv, many.csv);
  EXPECT_EQ(one.perfetto, many.perfetto);
  EXPECT_EQ(one.profile, many.profile);
}

TEST(SessionGolden, TimelineCsv) {
  expect_matches_golden("session_timeline.csv", run_workload(1).csv);
}

TEST(SessionGolden, PerfettoTrace) {
  expect_matches_golden("session_perfetto.trace.json",
                        run_workload(1).perfetto);
}

TEST(SessionGolden, ProfileDocument) {
  expect_matches_golden("session_profile.json", run_workload(1).profile);
}

}  // namespace
}  // namespace eclp::profile
