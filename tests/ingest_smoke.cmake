# Ingest smoke check, run as `cmake -P` by the ingest-smoke ctest label.
#
# Inputs (all -D): ECLP_RUN (tool path), INPUT (suite input name),
# WORK_DIR (scratch directory, recreated every run).
#
# Steps:
#  1. eclp-run --graph-cache=$WORK_DIR/cache — cold run, must succeed and
#     must populate the cache with at least one .eclg entry;
#  2. an identical run — the warm run must succeed off the cache hit (and
#     print the same result line, since cached CSRs are bit-identical);
#  3. every cached entry is truncated to garbage, then a third run — the
#     corruption fallback must warn, rebuild, and still succeed;
#  4. a fourth run driven through the ECLP_GRAPH_CACHE environment
#     variable instead of the flag (covers the env plumbing).
foreach(var ECLP_RUN INPUT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ingest_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_dir "${WORK_DIR}/cache")

execute_process(
  COMMAND "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=tiny
          --graph-cache=${cache_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE cold_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold cached run failed (${rc}):\n${cold_out}\n${err}")
endif()

file(GLOB entries "${cache_dir}/*.eclg")
list(LENGTH entries num_entries)
if(num_entries EQUAL 0)
  message(FATAL_ERROR "cold run left no .eclg entries in ${cache_dir}")
endif()

execute_process(
  COMMAND "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=tiny
          --graph-cache=${cache_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE warm_out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "warm cached run failed (${rc}):\n${warm_out}\n${err}")
endif()
# Cached CSRs are bit-identical, so the deterministic result line must be
# the modeled-cycle-for-modeled-cycle same.
string(REGEX MATCH "CC: [^\n]* modeled cycles" cold_line "${cold_out}")
string(REGEX MATCH "CC: [^\n]* modeled cycles" warm_line "${warm_out}")
if(NOT cold_line STREQUAL warm_line)
  message(FATAL_ERROR "warm run diverged from cold run:\n"
          "  cold: ${cold_line}\n  warm: ${warm_line}")
endif()

foreach(entry IN LISTS entries)
  file(WRITE "${entry}" "garbage: deliberately corrupted by ingest_smoke")
endforeach()

execute_process(
  COMMAND "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=tiny
          --graph-cache=${cache_dir}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE corrupt_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "run over corrupted cache failed (${rc}):\n${out}\n${corrupt_err}")
endif()
string(REGEX MATCH "CC: [^\n]* modeled cycles" corrupt_line "${out}")
if(NOT cold_line STREQUAL corrupt_line)
  message(FATAL_ERROR "corruption-fallback run diverged:\n"
          "  cold:    ${cold_line}\n  rebuilt: ${corrupt_line}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env ECLP_GRAPH_CACHE=${cache_dir}
          "${ECLP_RUN}" --algo=cc --input=${INPUT} --scale=tiny
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "eclp-run under ECLP_GRAPH_CACHE failed (${rc}):\n${out}\n${err}")
endif()

message(STATUS "ingest smoke ${INPUT}: ok")
