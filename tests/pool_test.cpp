// Work-stealing pool semantics (sim/pool.hpp) and the determinism contract
// of block-independent dispatch: per-block shard merges in block-index
// order, worker-count-independent counters, exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "profile/counters.hpp"
#include "sim/device.hpp"
#include "sim/pool.hpp"
#include "support/worker.hpp"

namespace eclp::sim {
namespace {

TEST(Pool, EmptyRunExecutesNothing) {
  Pool pool(4);
  std::atomic<u64> calls{0};
  pool.run(0, [&](u64, u32) { calls++; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(Pool, SingleTaskRunsOnce) {
  Pool pool(4);
  std::atomic<u64> calls{0};
  u64 seen_task = ~u64{0};
  pool.run(1, [&](u64 task, u32) {
    calls++;
    seen_task = task;
  });
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(seen_task, 0u);
}

TEST(Pool, ManyMoreTasksThanWorkersEachRunsExactlyOnce) {
  Pool pool(4);
  constexpr u64 kTasks = 10000;
  // Each task writes only its own slot, so plain ints suffice.
  std::vector<u32> runs(kTasks, 0);
  pool.run(kTasks, [&](u64 task, u32) { runs[task]++; });
  for (u64 t = 0; t < kTasks; ++t) {
    ASSERT_EQ(runs[t], 1u) << "task " << t;
  }
}

TEST(Pool, WorkerIdsAreInRange) {
  Pool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<u32> bad{0};
  pool.run(256, [&](u64, u32 worker) {
    if (worker >= 3) bad++;
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(Pool, SizeOneRunsInlineOnCaller) {
  Pool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  u64 calls = 0;
  pool.run(64, [&](u64, u32 worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, current_worker_slot());
    calls++;
  });
  EXPECT_EQ(calls, 64u);
}

TEST(Pool, ExceptionFromSingleFailingTaskPropagates) {
  Pool pool(4);
  EXPECT_THROW(pool.run(64,
                        [&](u64 task, u32) {
                          if (task == 7) throw std::runtime_error("task 7");
                        }),
               std::runtime_error);
  // The pool must survive a failed run and accept the next one.
  std::atomic<u64> calls{0};
  pool.run(16, [&](u64, u32) { calls++; });
  EXPECT_EQ(calls.load(), 16u);
}

TEST(Pool, ExceptionCarriesLowestFailingTask) {
  Pool pool(2);
  // Every task throws its own index. A failure does not stop the run, so
  // every task executes and the rethrown exception is always task 0's —
  // exactly what a sequential sweep would have reported first.
  try {
    pool.run(100, [&](u64 task, u32) {
      throw std::runtime_error(std::to_string(task));
    });
    FAIL() << "run() should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(Pool, ReentrantRunDegradesToInline) {
  Pool pool(4);
  std::atomic<u64> inner_calls{0};
  pool.run(8, [&](u64, u32 worker) {
    // A task that itself calls run() (a simulated kernel launching from a
    // worker) must not deadlock; the nested call runs inline.
    pool.run(4, [&](u64, u32 inner_worker) {
      EXPECT_EQ(inner_worker, worker);
      inner_calls++;
    });
  });
  EXPECT_EQ(inner_calls.load(), 32u);
}

TEST(Pool, SimThreadsConfigRoundTrips) {
  const u32 before = sim_threads();
  set_sim_threads(3);
  EXPECT_EQ(sim_threads(), 3u);
  Pool* pool = shared_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 3u);
  set_sim_threads(1);
  EXPECT_EQ(sim_threads(), 1u);
  EXPECT_EQ(shared_pool(), nullptr);
  set_sim_threads(before);
}

// --- block-independent dispatch through Device -------------------------------

/// Run one block-independent launch whose blocks produce distinct atomic
/// outcome mixes, on a device driven by `workers` workers; return the
/// device's outcome tallies.
std::vector<u64> atomic_tallies_with_workers(u32 workers) {
  Pool pool(workers);
  Device dev;
  dev.set_pool(&pool);
  LaunchConfig cfg{8, 32};
  cfg.block_independent = true;
  std::vector<u32> cells(8, 0);
  dev.launch("mix", cfg, [&](ThreadCtx& ctx) {
    const u32 b = ctx.block_idx();
    // Within a block threads run sequentially, so these CAS/min/max
    // outcomes are deterministic per block — and must stay so when blocks
    // land on different workers.
    ctx.atomic_cas(cells[b], ctx.thread_idx(), ctx.thread_idx() + 1);
    ctx.atomic_max(cells[b], ctx.thread_idx() % (b + 1));
    ctx.atomic_add(cells[b], 1);
  });
  std::vector<u64> tallies;
  for (usize o = 0; o < static_cast<usize>(AtomicOutcome::kCount_); ++o) {
    tallies.push_back(dev.atomic_stats().count(static_cast<AtomicOutcome>(o)));
  }
  tallies.push_back(dev.total_cycles());
  return tallies;
}

TEST(BlockIndependentDispatch, ShardMergeIsWorkerCountIndependent) {
  const auto base = atomic_tallies_with_workers(1);
  EXPECT_EQ(atomic_tallies_with_workers(2), base);
  EXPECT_EQ(atomic_tallies_with_workers(4), base);
  EXPECT_EQ(atomic_tallies_with_workers(7), base);
}

TEST(BlockIndependentDispatch, ExceptionReportsLowestFailingBlock) {
  Pool pool(4);
  Device dev;
  dev.set_pool(&pool);
  LaunchConfig cfg{16, 4};
  cfg.block_independent = true;
  try {
    dev.launch("boom", cfg, [&](ThreadCtx& ctx) {
      // Every block's first thread fails; block 0 runs at the front of
      // worker 0's chunk, so the reported block is deterministic.
      if (ctx.thread_idx() == 0) {
        throw std::runtime_error("block " + std::to_string(ctx.block_idx()));
      }
    });
    FAIL() << "launch should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block 0");
  }
  // The device must remain usable after a failed launch.
  const auto ks = dev.launch("ok", {2, 2}, [](ThreadCtx& ctx) {
    ctx.charge_alu(1);
  });
  EXPECT_EQ(ks.cost.active_threads, 4u);
}

/// Worker-sharded profile counters must fold to the same totals for any
/// worker count (sums in worker-slot order are commutative over u64).
TEST(ShardedCounters, TotalsIndependentOfWorkerCount) {
  const auto run_counters = [](u32 workers, u64& global_total,
                               std::vector<u64>& per_block) {
    Pool pool(workers);
    Device dev;
    dev.set_pool(&pool);
    LaunchConfig cfg{16, 64};
    cfg.block_independent = true;
    profile::GlobalCounter events;
    profile::PerBlockCounter block_events(cfg.blocks);
    dev.launch("count", cfg, [&](ThreadCtx& ctx) {
      ctx.charge_alu(1);
      events.inc(1 + ctx.thread_idx() % 3);
      block_events.inc(ctx.block_idx());
    });
    global_total = events.value();
    per_block.assign(block_events.values().begin(),
                     block_events.values().end());
  };
  u64 base_total = 0;
  std::vector<u64> base_blocks;
  run_counters(1, base_total, base_blocks);
  for (const u32 workers : {2u, 4u, 7u}) {
    u64 total = 0;
    std::vector<u64> blocks;
    run_counters(workers, total, blocks);
    EXPECT_EQ(total, base_total) << workers << " workers";
    EXPECT_EQ(blocks, base_blocks) << workers << " workers";
  }
}

TEST(ShardedCounters, ResizeAndResetClearWorkerShards) {
  profile::PerBlockCounter c(4);
  set_current_worker_slot(2);
  c.inc(1, 5);
  set_current_worker_slot(0);
  EXPECT_EQ(c.at(1), 5u);  // consolidated on read
  c.resize(4);
  EXPECT_EQ(c.total(), 0u);
  set_current_worker_slot(3);
  c.inc(2, 7);
  set_current_worker_slot(0);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

/// resize() keeps worker-shard arenas alive (assign, not reconstruct): a
/// shard a worker populated before a resize must keep counting correctly
/// afterwards — re-zeroed, re-sized to the new bucket count (grow and
/// shrink), never stale and never lost. This is the launch-loop pattern:
/// one counter, resize() before every instrumented launch.
TEST(ShardedCounters, ShardsSurviveResizeWithoutLossOrLeak) {
  profile::PerThreadCounter c(8);
  set_current_worker_slot(4);
  for (usize b = 0; b < 8; ++b) c.inc(b, 10 + b);
  set_current_worker_slot(0);
  EXPECT_EQ(c.total(), 8 * 10 + 7 * 8 / 2);

  // Grow: old shard contents must not leak into the new window, and the
  // reused shard must cover the new, larger index range.
  c.resize(16);
  EXPECT_EQ(c.total(), 0u);
  set_current_worker_slot(4);
  c.inc(15, 3);  // index only valid if the shard was re-sized, not kept
  set_current_worker_slot(0);
  EXPECT_EQ(c.at(15), 3u);
  EXPECT_EQ(c.total(), 3u);

  // Shrink: same guarantees in the other direction, and a second worker's
  // shard (allocated before the shrink) participates too.
  set_current_worker_slot(6);
  c.inc(12, 100);
  set_current_worker_slot(0);
  c.resize(4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.total(), 0u);
  set_current_worker_slot(4);
  c.inc(1, 2);
  set_current_worker_slot(6);
  c.inc(1, 5);
  set_current_worker_slot(0);
  EXPECT_EQ(c.at(1), 7u);
  EXPECT_EQ(c.total(), 7u);
}

}  // namespace
}  // namespace eclp::sim
