# Profile smoke check, run as `cmake -P` by the profile-smoke ctest label.
#
# Inputs (all -D): ECLP_RUN, ECLP_PROFILE_DIFF (tool paths), ALGO, INPUT
# (suite input name), WORK_DIR (scratch directory, recreated every run).
#
# Steps:
#  1. eclp-run --algo=$ALGO --input=$INPUT --scale=tiny --profile=a.json
#     — must succeed and must write both artifacts (profile + Perfetto);
#  2. eclp-profile-diff --check a.json — schema validation;
#  3. a second identical run into b.json, driven through the ECLP_PROFILE
#     environment variable instead of the flag (covers the env plumbing);
#  4. eclp-profile-diff a.json b.json — the self-diff must report zero
#     regressions (everything gated is modeled, hence bit-stable).
foreach(var ECLP_RUN ECLP_PROFILE_DIFF ALGO INPUT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "profile_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(profile_a "${WORK_DIR}/a.json")
set(profile_b "${WORK_DIR}/b.json")

execute_process(
  COMMAND "${ECLP_RUN}" --algo=${ALGO} --input=${INPUT} --scale=tiny
          --profile=${profile_a}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "eclp-run --profile failed (${rc}):\n${out}\n${err}")
endif()

foreach(artifact "${profile_a}" "${WORK_DIR}/a.trace.json")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "profiled run did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" --check=${profile_a}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed (${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env ECLP_PROFILE=${profile_b}
          "${ECLP_RUN}" --algo=${ALGO} --input=${INPUT} --scale=tiny
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "eclp-run under ECLP_PROFILE failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${profile_b}")
  message(FATAL_ERROR "ECLP_PROFILE run did not write ${profile_b}")
endif()

execute_process(
  COMMAND "${ECLP_PROFILE_DIFF}" "${profile_a}" "${profile_b}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "self-diff reported regressions (${rc}):\n${out}\n${err}")
endif()

message(STATUS "profile smoke ${ALGO}/${INPUT}: ok")
