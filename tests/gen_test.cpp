#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "gen/suite.hpp"
#include "graph/properties.hpp"
#include "graph/transforms.hpp"

namespace eclp::gen {
namespace {

using graph::Csr;

// --- individual generators -----------------------------------------------------

TEST(Grid2d, TorusHasExactDegreeFour) {
  const auto g = grid2d_torus(16);
  EXPECT_EQ(g.num_vertices(), 256u);
  for (vidx v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_NO_THROW(g.validate());
}

TEST(TriangulatedGrid, DegreesInPlanarRange) {
  const auto g = triangulated_grid(24, 7);
  const auto s = graph::degree_stats(g);
  EXPECT_GE(s.min, 4u);
  EXPECT_LE(s.max, 8u);
  EXPECT_NEAR(s.avg, 6.0, 0.3);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(UniformRandom, EdgeBudgetRoughlyMet) {
  const auto g = uniform_random(1000, 4000, 11);
  // Dedup and self-loop removal lose a little; both directions stored.
  EXPECT_GT(g.num_edges(), 7500u);
  EXPECT_LE(g.num_edges(), 8000u);
  EXPECT_NO_THROW(g.validate());
}

TEST(UniformRandom, DeterministicPerSeed) {
  const auto a = uniform_random(500, 1500, 3);
  const auto b = uniform_random(500, 1500, 3);
  const auto c = uniform_random(500, 1500, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Rmat, SkewedDegrees) {
  const auto g = rmat(12, 32768, 0.45, 0.22, 0.22, 9);
  const auto s = graph::degree_stats(g);
  // RMAT should produce hubs far above the average.
  EXPECT_GT(static_cast<double>(s.max), 6.0 * s.avg);
}

TEST(Kronecker, EvenMoreSkewedThanRmat) {
  const auto k = kronecker(12, 32768, 9);
  const auto r = rmat(12, 32768, 0.45, 0.22, 0.22, 9);
  EXPECT_GT(graph::degree_stats(k).max, graph::degree_stats(r).max);
}

TEST(PreferentialAttachment, ConnectedWithHubs) {
  const auto g = preferential_attachment(2000, 4, 13);
  EXPECT_TRUE(graph::is_connected(g));
  const auto s = graph::degree_stats(g);
  EXPECT_GT(s.max, 40u);     // hubs emerge
  EXPECT_NEAR(s.avg, 8.0, 1.5);  // ~2m
}

TEST(InternetTopology, LowAverageLargeHubs) {
  const auto g = internet_topology(4000, 17);
  const auto s = graph::degree_stats(g);
  EXPECT_GT(s.avg, 2.0);
  EXPECT_LT(s.avg, 4.5);
  EXPECT_GT(s.max, 50u);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Citation, NoCitationFractionLeavesHigherIdNeighborsOnly) {
  const auto g = citation(4000, 4.0, 0.35, 19);
  // Vertices whose first (smallest) neighbor is larger than themselves:
  // should be a sizable fraction (the "boundary patents").
  usize no_smaller = 0, with_edges = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) continue;
    ++with_edges;
    if (g.neighbors(v)[0] > v) ++no_smaller;
  }
  EXPECT_GT(static_cast<double>(no_smaller) / static_cast<double>(with_edges),
            0.15);
}

TEST(RoadNetwork, LowDegreeHighDiameter) {
  const auto g = road_network(40, 0.2, 23);
  const auto s = graph::degree_stats(g);
  EXPECT_TRUE(graph::is_connected(g));  // spanning tree guarantees this
  EXPECT_LT(s.avg, 3.2);
  EXPECT_LE(s.max, 8u);
  // Diameter of a road-like 40x40 grid remnant is large.
  EXPECT_GT(graph::estimate_diameter(g), 40u);
}

TEST(CliqueUnion, DenseAndClustered) {
  const auto g = clique_union(2000, 500, 3, 20, 29);
  const auto s = graph::degree_stats(g);
  EXPECT_GT(s.avg, 4.0);
  EXPECT_NO_THROW(g.validate());
}

TEST(Weblink, HighAverageDegreeWithHubs) {
  const auto g = weblink(4000, 16.0, 31);
  const auto s = graph::degree_stats(g);
  EXPECT_GT(s.avg, 8.0);
  EXPECT_GT(static_cast<double>(s.max), 8.0 * s.avg);
}

TEST(ChungLu, HitsTargetMeanAndTail) {
  const auto g = chung_lu(20000, 8.0, 2.5, 500.0, 7);
  const auto s = graph::degree_stats(g);
  // Dedup + clamping shave the mean; the tail must reach near the cap.
  EXPECT_GT(s.avg, 4.0);
  EXPECT_LT(s.avg, 9.0);
  EXPECT_GT(s.max, 250u);
  EXPECT_LE(s.max, 650u);  // realized degree fluctuates around the cap
  EXPECT_NO_THROW(g.validate());
}

TEST(ChungLu, ExponentControlsSkew) {
  const auto heavy = chung_lu(10000, 6.0, 2.2, 2000.0, 9);
  const auto light = chung_lu(10000, 6.0, 3.5, 2000.0, 9);
  EXPECT_GT(graph::degree_stats(heavy).max,
            2 * graph::degree_stats(light).max);
}

TEST(ChungLu, DeterministicPerSeed) {
  EXPECT_TRUE(chung_lu(3000, 5.0, 2.5, 100.0, 1) ==
              chung_lu(3000, 5.0, 2.5, 100.0, 1));
  EXPECT_FALSE(chung_lu(3000, 5.0, 2.5, 100.0, 1) ==
               chung_lu(3000, 5.0, 2.5, 100.0, 2));
}

// --- meshes ---------------------------------------------------------------------

class MeshTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MeshTest, DirectedValidatedAndDegreeBounded) {
  const auto& spec = find_input(GetParam());
  const auto g = spec.make(Scale::kTiny);
  EXPECT_TRUE(g.directed());
  EXPECT_NO_THROW(g.validate());
  const auto s = graph::degree_stats(g);  // out-degrees
  EXPECT_GT(s.avg, 0.8);
  EXPECT_LT(s.avg, 3.5);
}

INSTANTIATE_TEST_SUITE_P(AllMeshes, MeshTest,
                         ::testing::Values("toroid-wedge", "star",
                                           "toroid-hex", "cold-flow",
                                           "klein-bottle"));

TEST(StarMesh, MostVerticesOutDegreeTwo) {
  // Chorded cycles: d-avg = d-max(out) = 2, the paper's star signature.
  const auto g = star_mesh(20, 50, 3);
  usize deg2 = 0;
  for (vidx v = 0; v < g.num_vertices(); ++v) deg2 += (g.degree(v) == 2);
  EXPECT_GT(static_cast<double>(deg2) / g.num_vertices(), 0.9);
}

// --- suite -----------------------------------------------------------------------

TEST(Suite, HasAllTableOneInputs) {
  EXPECT_EQ(general_inputs().size(), 17u);
  EXPECT_EQ(mesh_inputs().size(), 5u);
}

TEST(Suite, FindByNameWorksAndThrowsOnUnknown) {
  EXPECT_EQ(find_input("europe_osm").name, "europe_osm");
  EXPECT_EQ(find_input("star").name, "star");
  EXPECT_THROW(find_input("no-such-graph"), CheckFailure);
}

TEST(Suite, ScaleParsing) {
  EXPECT_EQ(parse_scale("tiny"), Scale::kTiny);
  EXPECT_EQ(parse_scale("small"), Scale::kSmall);
  EXPECT_EQ(parse_scale("default"), Scale::kDefault);
  EXPECT_EQ(parse_scale("huge"), Scale::kHuge);
  EXPECT_THROW(parse_scale("gigantic"), CheckFailure);
}

TEST(Suite, HugeScaleIsFlaggedOnStreamedEntriesOnly) {
  // Exactly the four entries whose generator family has a streaming port
  // (gen/stream.hpp) advertise scale=huge.
  std::vector<std::string> huge;
  for (const auto& spec : general_inputs()) {
    if (spec.huge) huge.push_back(spec.name);
  }
  for (const auto& spec : mesh_inputs()) {
    if (spec.huge) huge.push_back(spec.name);
  }
  EXPECT_EQ(huge, (std::vector<std::string>{
                      "as-skitter", "kron_g500-logn21", "r4-2e23.sym",
                      "rmat22.sym"}));
  // Entries without a streamed generator reject kHuge loudly instead of
  // silently returning some other scale.
  EXPECT_THROW(find_input("2d-2e20.sym").make(Scale::kHuge), CheckFailure);
}

TEST(Suite, CacheKeyMovedWithTheVersionBump) {
  // Regression pin for the kSuiteCacheVersion=2 bump: stale .eclg files
  // written by the v1 builder must not alias the new keys. The v1 key for
  // (r4-2e23.sym, tiny) was produced by mixing version 1 with no
  // chunk-stream component; pin the current derivation's output so any
  // accidental revert (or accidental re-keying) fails here.
  graph::CacheKey v1;
  v1.mix("eclp-suite").mix_u64(1).mix("r4-2e23.sym")
      .mix_u64(static_cast<u64>(Scale::kTiny))
      .mix_u64(0xec1900df11e00001ULL);
  EXPECT_NE(suite_cache_key("r4-2e23.sym", Scale::kTiny).hex(), v1.hex());
  // The chunk-stream seeding-scheme version participates: a future bump
  // of either component moves every key.
  EXPECT_EQ(suite_cache_version() & 0xffffffffULL, 2u);
  EXPECT_NE(suite_cache_version() >> 32, 0u);
  // Keys separate by name and by scale (huge included).
  EXPECT_NE(suite_cache_key("r4-2e23.sym", Scale::kTiny).hex(),
            suite_cache_key("rmat22.sym", Scale::kTiny).hex());
  EXPECT_NE(suite_cache_key("r4-2e23.sym", Scale::kHuge).hex(),
            suite_cache_key("r4-2e23.sym", Scale::kDefault).hex());
}

class SuiteInputTest : public ::testing::TestWithParam<usize> {};

TEST_P(SuiteInputTest, TinyInstanceIsValidAndUndirected) {
  const auto& spec = general_inputs()[GetParam()];
  const auto g = spec.make(Scale::kTiny);
  EXPECT_FALSE(g.directed()) << spec.name;
  EXPECT_NO_THROW(g.validate()) << spec.name;
  EXPECT_GT(g.num_vertices(), 1000u) << spec.name;
  EXPECT_GT(g.num_edges(), 0u) << spec.name;
}

TEST_P(SuiteInputTest, GenerationIsDeterministic) {
  const auto& spec = general_inputs()[GetParam()];
  EXPECT_TRUE(spec.make(Scale::kTiny) == spec.make(Scale::kTiny))
      << spec.name;
}

TEST_P(SuiteInputTest, ScalesGrowMonotonically) {
  const auto& spec = general_inputs()[GetParam()];
  EXPECT_LT(spec.make(Scale::kTiny).num_vertices(),
            spec.make(Scale::kSmall).num_vertices())
      << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllGeneral, SuiteInputTest,
                         ::testing::Range<usize>(0, 17));

TEST(Suite, DegreeRegimesMatchPaperClasses) {
  // Road networks must be sparse, clique/weblink graphs dense, grids exact.
  const auto road = find_input("USA-road-d.USA").make(Scale::kTiny);
  const auto dense = find_input("coPapersDBLP").make(Scale::kTiny);
  const auto grid = find_input("2d-2e20.sym").make(Scale::kTiny);
  EXPECT_LT(graph::degree_stats(road).avg, 3.5);
  EXPECT_GT(graph::degree_stats(dense).avg, 15.0);
  EXPECT_EQ(graph::degree_stats(grid).max, 4u);
}

}  // namespace
}  // namespace eclp::gen
