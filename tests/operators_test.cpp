// Operator-substrate tests (src/sim/operators.hpp): compute / advance /
// filter / iterate_until must be drop-in equivalents of the hand-rolled
// launch loops they abstract — same outputs, same modeled cycles, same
// modeled-LLC hit/miss counts, same 1-vs-N worker bit-identity for
// block-independent launches — and must open SpanKind::kOperator spans
// under an attached profile session, with the kernel span nested inside.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "algos/common.hpp"
#include "graph/builder.hpp"
#include "profile/session.hpp"
#include "sim/operators.hpp"
#include "sim/pool.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace eclp {
namespace {

using algos::blocks_for;
using sim::Device;
using sim::LaunchConfig;
using sim::ThreadCtx;
namespace ops = sim::ops;
using Shape = ops::AdvanceShape;

/// A hub (vertex 0, degree 6) plus a path along the rim: degrees vary from
/// 1 to 6, so stripe loops see uneven adjacency lists.
graph::Csr wheel() {
  std::vector<graph::Edge> edges;
  for (vidx v = 1; v <= 6; ++v) edges.push_back({0, v, 0});
  for (vidx v = 1; v < 6; ++v) edges.push_back({v, v + 1, 0});
  return graph::from_edges(7, edges);
}

// --- compute -----------------------------------------------------------------

TEST(Operators, ComputeMatchesHandRolledGridStrideLoop) {
  const vidx n = 1000;
  const LaunchConfig cfg{4, 64};  // 256 threads over 1000 items: grid-strides

  Device hand_dev;
  std::vector<u32> hand_out(n, 0);
  hand_dev.launch("square", cfg, [&](ThreadCtx& ctx) {
    for (vidx v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      ctx.charge_reads(1);
      ctx.charge_alu(2);
      hand_out[v] = v * v;
      ctx.charge_writes(1);
    }
  });

  Device op_dev;
  std::vector<u32> op_out(n, 0);
  const auto ks =
      ops::compute(op_dev, "square", cfg, n, [&](ThreadCtx& ctx, vidx v) {
        ctx.charge_reads(1);
        ctx.charge_alu(2);
        op_out[v] = v * v;
        ctx.charge_writes(1);
      });

  EXPECT_EQ(op_out, hand_out);
  EXPECT_EQ(op_dev.total_cycles(), hand_dev.total_cycles());
  EXPECT_EQ(ks.cost.modeled_cycles, hand_dev.total_cycles());
  EXPECT_EQ(ks.name, "square");
}

// --- advance -----------------------------------------------------------------

/// Hand-rolled equivalent of the advance shape: per (vertex, lane) visit,
/// charge the row offsets, run enter, stripe the adjacency list charging
/// one edge read before each edge, then leave. This is the literal loop
/// ECL-CC/GC ran before the port.
template <typename Enter, typename Edge, typename Leave>
void hand_advance(Device& dev, const std::string& name, LaunchConfig cfg,
                  const graph::Csr& g, const std::vector<vidx>& frontier,
                  Shape shape, Enter&& enter, Edge&& edge, Leave&& leave) {
  const u64 items = static_cast<u64>(frontier.size()) * shape.width;
  dev.launch(name, cfg, [&](ThreadCtx& ctx) {
    for (u64 i = ctx.global_id(); i < items; i += ctx.grid_size()) {
      const vidx v = frontier[i / shape.width];
      const u32 lane = static_cast<u32>(i % shape.width);
      const auto nbrs = g.neighbors(v);
      if (shape.row_offset_reads != 0) {
        ctx.charge_coalesced_reads(shape.row_offset_reads);
      }
      auto state = enter(ctx, v, lane);
      for (usize e = lane; e < nbrs.size(); e += shape.width) {
        if (shape.edge_charge == Shape::EdgeCharge::kReads) {
          ctx.charge_reads(1);
        } else if (shape.edge_charge == Shape::EdgeCharge::kCoalesced) {
          ctx.charge_coalesced_reads(1);
        }
        edge(ctx, state, v, nbrs[e]);
      }
      leave(ctx, v, state);
    }
  });
}

TEST(Operators, AdvanceMatchesHandRolledStripeLoopAtEveryWidth) {
  const auto g = wheel();
  const std::vector<vidx> frontier = {0, 2, 5, 6};
  for (const u32 width : {1u, 4u, 32u}) {
    const Shape shape{.width = width,
                      .row_offset_reads = 2,
                      .edge_charge = Shape::EdgeCharge::kCoalesced};
    const u64 items = static_cast<u64>(frontier.size()) * width;
    const LaunchConfig cfg = blocks_for(items, 8);

    // Sum of neighbor ids per frontier vertex, accumulated lane-locally and
    // flushed by leave() — every lane contributes its stripe.
    Device hand_dev;
    std::vector<u64> hand_sum(g.num_vertices(), 0);
    const auto enter = [](ThreadCtx& ctx, vidx, u32) -> u64 {
      ctx.charge_alu(1);
      return 0;
    };
    const auto edge = [](ThreadCtx&, u64& sum, vidx, vidx u) { sum += u; };
    hand_advance(hand_dev, "nbr_sum", cfg, g, frontier, shape, enter, edge,
                 [&](ThreadCtx& ctx, vidx v, u64& sum) {
                   hand_sum[v] += sum;
                   ctx.charge_writes(1);
                 });

    Device op_dev;
    std::vector<u64> op_sum(g.num_vertices(), 0);
    ops::advance(op_dev, "nbr_sum", cfg, g, frontier, shape, enter, edge,
                 [&](ThreadCtx& ctx, vidx v, u64& sum) {
                   op_sum[v] += sum;
                   ctx.charge_writes(1);
                 });

    EXPECT_EQ(op_sum, hand_sum) << "width " << width;
    EXPECT_EQ(op_dev.total_cycles(), hand_dev.total_cycles())
        << "width " << width;
    // Spot-check the data: vertex 0's six neighbors are 1..6.
    EXPECT_EQ(op_sum[0], 21u) << "width " << width;
  }
}

TEST(Operators, AdvanceChargesFollowTheDeclaredShape) {
  const auto g = wheel();
  const u64 edges_touched = g.neighbors(0).size();  // frontier = {0}
  const std::vector<vidx> frontier = {0};
  const LaunchConfig cfg{1, 1};
  const auto no_state = [](ThreadCtx&, vidx, u32) { return 0; };
  const auto no_edge = [](ThreadCtx&, int&, vidx, vidx) {};
  // Compare the summed per-thread charges: total_cycles() would fold in the
  // launch/block overheads and the SM throughput formula, which are not what
  // the shape controls.
  const auto run = [&](Shape shape) {
    Device dev;
    return ops::advance(dev, "charges", cfg, g, frontier, shape, no_state,
                        no_edge)
        .cost.thread_work;
  };
  const sim::CostModel cost;  // defaults, same as Device's
  EXPECT_EQ(run({.width = 1,
                 .row_offset_reads = 2,
                 .edge_charge = Shape::EdgeCharge::kCoalesced}),
            2 * cost.coalesced_read + edges_touched * cost.coalesced_read);
  EXPECT_EQ(run({.width = 1,
                 .row_offset_reads = 0,
                 .edge_charge = Shape::EdgeCharge::kReads}),
            edges_touched * cost.global_read);
  EXPECT_EQ(run({.width = 1,
                 .row_offset_reads = 0,
                 .edge_charge = Shape::EdgeCharge::kNone}),
            0u);
}

TEST(Operators, AdvanceOverAllVerticesVisitsEveryEdgeOnce) {
  const auto g = wheel();
  Device dev;
  u64 visited = 0;
  ops::advance(dev, "count", blocks_for(g.num_vertices(), 4), g,
               ops::all_vertices(g.num_vertices()),
               Shape{.width = 1,
                     .row_offset_reads = 0,
                     .edge_charge = Shape::EdgeCharge::kNone},
               [](ThreadCtx&, vidx, u32) { return 0; },
               [&](ThreadCtx&, int&, vidx, vidx) { ++visited; });
  EXPECT_EQ(visited, g.num_edges());  // each directed CSR entry exactly once
}

// --- filter ------------------------------------------------------------------

TEST(Operators, FilterMatchesHandRolledCompaction) {
  // Keep vertices whose id is odd; the hand-rolled loop is the worklist
  // pattern of ECL-GC's run_small.
  std::vector<vidx> in;
  for (vidx v = 0; v < 100; ++v) in.push_back(v);
  const LaunchConfig cfg = blocks_for(in.size(), 16);

  Device hand_dev;
  std::vector<vidx> hand_out;
  hand_dev.launch("odd", cfg, [&](ThreadCtx& ctx) {
    for (u64 i = ctx.global_id(); i < in.size(); i += ctx.grid_size()) {
      const vidx v = in[i];
      ctx.charge_reads(1);
      if (v % 2 == 1) hand_out.push_back(v);
    }
  });

  Device op_dev;
  std::vector<vidx> op_out;
  ops::filter(op_dev, "odd", cfg, in, 1, op_out,
              [](ThreadCtx& ctx, vidx v, u32) {
                ctx.charge_reads(1);
                return v % 2 == 1;
              });

  EXPECT_EQ(op_out, hand_out);
  EXPECT_EQ(op_out.size(), 50u);
  EXPECT_EQ(op_dev.total_cycles(), hand_dev.total_cycles());
}

TEST(Operators, FilterWideLanesShareCostButOnlyLaneZeroDecides) {
  // Warp-cooperative filtering (ECL-GC run_large): lane 0 evaluates, every
  // lane charges a 1/width share; the output holds each kept vertex once.
  constexpr u32 kWidth = 4;
  const std::vector<vidx> in = {10, 11, 12, 13, 14};
  const LaunchConfig cfg = blocks_for(in.size() * kWidth, 8);
  Device dev;
  u64 evaluations = 0;
  std::vector<vidx> out;
  const auto ks = ops::filter(dev, "wide", cfg, in, kWidth, out,
                              [&](ThreadCtx& ctx, vidx v, u32 lane) {
                                if (lane == 0) ++evaluations;
                                ctx.charge_reads(1);  // every lane's share
                                return v != 12;
                              });
  EXPECT_EQ(out, (std::vector<vidx>{10, 11, 13, 14}));
  EXPECT_EQ(evaluations, in.size());  // one pass per vertex, not per lane
  const sim::CostModel cost;
  EXPECT_EQ(ks.cost.thread_work, u64{in.size()} * kWidth * cost.global_read);
}

// --- iterate_until -----------------------------------------------------------

TEST(Operators, IterateUntilHostCountsRoundsAndStopsWhenDone) {
  int remaining = 3;
  u64 seen = 0;
  const u64 rounds = ops::iterate_until(
      "countdown", [&] { return remaining == 0; },
      [&](u64 round) {
        --remaining;
        seen = round;
      });
  EXPECT_EQ(rounds, 3u);
  EXPECT_EQ(seen, 3u);  // rounds number from 1
  EXPECT_EQ(remaining, 0);
}

TEST(Operators, IterateUntilHostRunsZeroRoundsWhenAlreadyConverged) {
  bool ran = false;
  const u64 rounds =
      ops::iterate_until("noop", [] { return true; }, [&](u64) { ran = true; });
  EXPECT_EQ(rounds, 0u);
  EXPECT_FALSE(ran);
}

TEST(Operators, IterateUntilHostProgressGuardThrowsTheGivenDiagnostic) {
  try {
    ops::iterate_until(
        "stuck", [] { return false; }, [](u64) {},
        {.round_base = "round",
         .max_rounds = 5,
         .on_exceeded = "stuck loop failed to make progress"});
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("stuck loop failed to make progress"),
              std::string::npos)
        << e.what();
  }
}

TEST(Operators, IterateUntilCooperativeMatchesLaunchCooperative) {
  const LaunchConfig cfg{2, 8};
  const auto make_step = [](std::vector<u32>& todo) {
    return [&todo](ThreadCtx& ctx) {
      ctx.charge_alu(1);
      return --todo[ctx.global_id()] == 0;
    };
  };
  const auto seed_todo = [&] {
    std::vector<u32> todo(cfg.total_threads());
    for (u32 i = 0; i < todo.size(); ++i) todo[i] = 1 + i % 5;
    return todo;
  };

  Device hand_dev;
  auto hand_todo = seed_todo();
  const auto hand_ks =
      hand_dev.launch_cooperative("steps", cfg, make_step(hand_todo));

  Device op_dev;
  auto op_todo = seed_todo();
  const auto op_ks =
      ops::iterate_until(op_dev, "steps", cfg, make_step(op_todo));

  EXPECT_EQ(op_ks.cooperative_rounds, hand_ks.cooperative_rounds);
  EXPECT_EQ(op_ks.cooperative_rounds, 5u);
  EXPECT_EQ(op_dev.total_cycles(), hand_dev.total_cycles());
  EXPECT_EQ(op_todo, hand_todo);
}

// --- modeled LLC equivalence -------------------------------------------------

sim::CostModel llc_cost() {
  sim::CostModel cost;
  cost.cache.enabled = true;
  cost.cache.line_bytes = 64;
  cost.cache.ways = 4;
  cost.cache.sets = 16;
  return cost;
}

TEST(Operators, AdvanceUnderModeledLlcMatchesHandRolledHitsAndMisses) {
  const auto g = wheel();
  const vidx n = g.num_vertices();
  const std::vector<vidx> frontier = {0, 3, 6};
  const Shape shape{.width = 1,
                    .row_offset_reads = 2,
                    .edge_charge = Shape::EdgeCharge::kCoalesced};
  const LaunchConfig cfg = blocks_for(frontier.size(), 4);

  // Classified per-edge loads into a registered label array: the access
  // sequence (and so every LLC hit/miss) must survive the port verbatim.
  const auto run = [&](auto&& launcher) {
    Device dev(llc_cost());
    std::vector<u32> labels(n, 7);
    dev.register_buffer(labels);
    u64 sum = 0;
    launcher(dev, labels, sum);
    return std::tuple{dev.total_cycles(), dev.llc_hits(), dev.llc_misses(),
                      sum};
  };

  const auto hand = run([&](Device& dev, std::vector<u32>& labels, u64& sum) {
    hand_advance(dev, "chase", cfg, g, frontier, shape,
                 [](ThreadCtx&, vidx, u32) { return 0; },
                 [&](ThreadCtx& ctx, int&, vidx, vidx u) {
                   sum += ctx.load(labels[u]);
                 },
                 ops::NoLeave{});
  });
  const auto op = run([&](Device& dev, std::vector<u32>& labels, u64& sum) {
    ops::advance(dev, "chase", cfg, g, frontier, shape,
                 [](ThreadCtx&, vidx, u32) { return 0; },
                 [&](ThreadCtx& ctx, int&, vidx, vidx u) {
                   sum += ctx.load(labels[u]);
                 });
  });

  EXPECT_EQ(op, hand);
  EXPECT_GT(std::get<2>(op), 0u);  // the cache actually classified accesses
}

// --- block-independent worker invariance ------------------------------------

TEST(Operators, BlockIndependentComputeIsBitIdenticalAcrossWorkerCounts) {
  const vidx n = 4096;
  LaunchConfig cfg = blocks_for(n, 64);
  cfg.block_independent = true;

  const auto run = [&](u32 workers) {
    sim::Pool pool(workers);
    Device dev;
    dev.set_pool(workers > 1 ? &pool : nullptr);
    std::vector<u64> out(n, 0);
    ops::compute(dev, "fill", cfg, n, [&](ThreadCtx& ctx, vidx v) {
      ctx.charge_reads(1);
      ctx.charge_alu(3);
      out[v] = splitmix64(v);
      ctx.charge_writes(1);
    });
    return std::pair{dev.total_cycles(), std::move(out)};
  };

  const auto one = run(1);
  for (const u32 workers : {2u, 7u}) {
    const auto many = run(workers);
    EXPECT_EQ(many.first, one.first) << workers << " workers";
    EXPECT_EQ(many.second, one.second) << workers << " workers";
  }
}

// --- operator spans ----------------------------------------------------------

TEST(Operators, OperatorsOpenOperatorSpansWithTheKernelNested) {
  const auto g = wheel();
  Device dev;
  profile::Session session(dev);
  std::vector<vidx> out;
  ops::compute(dev, "mapk", {1, 8}, g.num_vertices(),
               [](ThreadCtx& ctx, vidx) { ctx.charge_alu(1); });
  ops::filter(dev, "filtk", {1, 8}, std::vector<vidx>{1, 2, 3}, 1, out,
              [](ThreadCtx&, vidx v, u32) { return v == 2; });
  ops::iterate_until("loopk", [&] { return out.empty(); },
                     [&](u64) { out.clear(); });
  session.finalize();

  const auto spans = session.spans();
  // compute: operator + kernel; filter: operator + kernel; iterate_until:
  // operator + one iteration span.
  ASSERT_EQ(spans.size(), 6u);
  EXPECT_EQ(spans[0].kind, profile::SpanKind::kOperator);
  EXPECT_EQ(spans[0].name, "compute mapk");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].kind, profile::SpanKind::kKernel);
  EXPECT_EQ(spans[1].name, "mapk");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "filter filtk");
  EXPECT_EQ(spans[3].parent, 2);
  EXPECT_EQ(spans[4].kind, profile::SpanKind::kOperator);
  EXPECT_EQ(spans[4].name, "iterate_until loopk");
  EXPECT_EQ(spans[5].kind, profile::SpanKind::kIteration);
  EXPECT_EQ(spans[5].name, "round 1");
  EXPECT_EQ(spans[5].parent, 4);
  // Operator spans carry the launch/cycle deltas of their kernels.
  EXPECT_EQ(spans[0].launches, 1u);
  EXPECT_EQ(spans[0].cycles(), spans[1].cycles());
  EXPECT_EQ(std::string(profile::span_kind_name(spans[0].kind)), "operator");
}

}  // namespace
}  // namespace eclp
