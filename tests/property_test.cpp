// Property sweeps: every algorithm's invariants across every generator
// family and several seeds — the broad net that catches generator-specific
// edge cases the targeted tests miss.
#include <gtest/gtest.h>

#include "algos/baselines/fw_bw_scc.hpp"
#include "algos/cc/ecl_cc.hpp"
#include "algos/common.hpp"
#include "algos/gc/ecl_gc.hpp"
#include "algos/mis/ecl_mis.hpp"
#include "algos/mst/ecl_mst.hpp"
#include "algos/scc/ecl_scc.hpp"
#include "gen/generators.hpp"
#include "gen/meshes.hpp"
#include "graph/properties.hpp"
#include "graph/transforms.hpp"

namespace eclp {
namespace {

struct UndirectedFamily {
  const char* name;
  graph::Csr (*make)(u64 seed);
};

graph::Csr make_grid(u64 seed) {
  return graph::relabel(gen::grid2d_torus(24 + seed % 3 * 8),
                        Rng(seed).permutation((24 + static_cast<u32>(seed % 3) * 8) *
                                              (24 + static_cast<u32>(seed % 3) * 8)));
}
graph::Csr make_er(u64 seed) {
  return gen::uniform_random(1500 + 100 * (seed % 5), 5000, seed);
}
graph::Csr make_rmat(u64 seed) {
  return gen::rmat(11, 12000, 0.45, 0.22, 0.22, seed);
}
graph::Csr make_pa(u64 seed) { return gen::preferential_attachment(1800, 3, seed); }
graph::Csr make_road(u64 seed) { return gen::road_network(36, 0.3, seed); }
graph::Csr make_cliques(u64 seed) {
  return gen::clique_union(1500, 500, 2, 12, seed);
}
graph::Csr make_citation(u64 seed) { return gen::citation(2000, 3.5, 0.3, seed); }

const UndirectedFamily kFamilies[] = {
    {"grid", make_grid},       {"er", make_er},
    {"rmat", make_rmat},       {"pa", make_pa},
    {"road", make_road},       {"cliques", make_cliques},
    {"citation", make_citation},
};

class UndirectedProperty
    : public ::testing::TestWithParam<std::tuple<usize, u64>> {
 protected:
  graph::Csr make() const {
    return kFamilies[std::get<0>(GetParam())].make(std::get<1>(GetParam()));
  }
};

TEST_P(UndirectedProperty, CcMatchesReference) {
  const auto g = make();
  sim::Device dev;
  EXPECT_TRUE(algos::cc::verify(g, algos::cc::run(dev, g).labels));
}

TEST_P(UndirectedProperty, MisIsIndependentAndMaximal) {
  const auto g = make();
  sim::Device dev;
  EXPECT_TRUE(algos::mis::verify(g, algos::mis::run(dev, g).status));
}

TEST_P(UndirectedProperty, GcIsProperAndBounded) {
  const auto g = make();
  sim::Device dev;
  const auto res = algos::gc::run(dev, g);
  EXPECT_TRUE(algos::gc::verify(g, res.colors));
  EXPECT_LE(res.num_colors, graph::degree_stats(g).max + 1);
}

TEST_P(UndirectedProperty, MstMatchesKruskal) {
  const auto g = graph::with_random_weights(make(), std::get<1>(GetParam()));
  sim::Device dev;
  const auto res = algos::mst::run(dev, g);
  EXPECT_EQ(res.total_weight, algos::mst::reference_total_weight(g));
  EXPECT_TRUE(algos::mst::verify(g, res));
}

INSTANTIATE_TEST_SUITE_P(
    Families, UndirectedProperty,
    ::testing::Combine(::testing::Range<usize>(0, std::size(kFamilies)),
                       ::testing::Values(1ull, 2ull, 3ull)));

// Directed families for the SCC algorithms.
class DirectedProperty : public ::testing::TestWithParam<u64> {};

TEST_P(DirectedProperty, EclSccAndFwBwAgreeWithTarjanOnMeshMix) {
  const u64 seed = GetParam();
  for (const auto& g :
       {gen::toroid_wedge(20 + seed % 4 * 4, seed), gen::cold_flow(24, seed),
        gen::star_mesh(12 + static_cast<u32>(seed % 5), 40, seed),
        gen::klein_bottle(16, seed)}) {
    sim::Device d1, d2;
    const auto ecl = algos::scc::run(d1, g);
    EXPECT_TRUE(algos::scc::verify(g, ecl.scc_id));
    const auto fwbw = algos::baselines::fw_bw_scc(d2, g);
    EXPECT_EQ(algos::normalize_labels(ecl.scc_id),
              algos::normalize_labels(fwbw.scc_id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedProperty,
                         ::testing::Values(5ull, 6ull, 7ull, 8ull));

// Transform properties: algorithm results are invariant under relabeling.
TEST(RelabelInvariance, CcComponentCountStable) {
  const auto g = gen::uniform_random(2000, 4500, 11);
  const auto r = graph::relabel(g, Rng(3).permutation(g.num_vertices()));
  sim::Device d1, d2;
  const auto count = [](std::span<const vidx> labels) {
    usize c = 0;
    for (usize v = 0; v < labels.size(); ++v) c += (labels[v] == v);
    return c;
  };
  EXPECT_EQ(count(algos::cc::run(d1, g).labels),
            count(algos::cc::run(d2, r).labels));
}

TEST(RelabelInvariance, MstWeightStable) {
  const auto g = graph::with_random_weights(gen::grid2d_torus(20), 9);
  // Relabel but carry the same weights (permutation preserves them).
  const auto r = graph::relabel(g, Rng(5).permutation(g.num_vertices()));
  sim::Device d1, d2;
  EXPECT_EQ(algos::mst::run(d1, g).total_weight,
            algos::mst::run(d2, r).total_weight);
}

TEST(RelabelInvariance, SccCountStable) {
  const auto g = gen::cold_flow(24, 13);
  const auto r = graph::relabel(g, Rng(7).permutation(g.num_vertices()));
  sim::Device d1, d2;
  EXPECT_EQ(algos::scc::run(d1, g).num_sccs, algos::scc::run(d2, r).num_sccs);
}

TEST(RelabelInvariance, GcColorCountNearStable) {
  // JP color count depends on the LDF tie-break order, so allow slack.
  const auto g = gen::rmat(11, 10000, 0.45, 0.22, 0.22, 17);
  const auto r = graph::relabel(g, Rng(9).permutation(g.num_vertices()));
  sim::Device d1, d2;
  const auto a = algos::gc::run(d1, g);
  const auto b = algos::gc::run(d2, r);
  EXPECT_TRUE(algos::gc::verify(r, b.colors));
  EXPECT_NEAR(static_cast<double>(a.num_colors),
              static_cast<double>(b.num_colors), 4.0);
}

}  // namespace
}  // namespace eclp
